# Convenience targets. Everything assumes the in-tree layout
# (PYTHONPATH=src); no installation required.

PYTHON ?= python
PYTEST := PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test suite docs-check faults-check bench

## tier-1: full suite, then the docs and fault-injection contracts
test: suite docs-check faults-check

suite:
	$(PYTEST) -x -q

## fail if the observability surface and docs/metrics.md disagree
docs-check:
	$(PYTEST) tests/test_docs_contract.py -q

## fault-injection & chunk-granular recovery suite (docs/faults.md)
faults-check:
	$(PYTEST) -m faults -q

## paper-figure benchmark suite (slow)
bench:
	PYTHONPATH=src:. $(PYTHON) -m pytest benchmarks -q
