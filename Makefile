# Convenience targets. Everything assumes the in-tree layout
# (PYTHONPATH=src); no installation required.

PYTHON ?= python

# Cap every test's wall-clock when pytest-timeout is available (CI
# installs it; a bare container may not have it — a hung worker-death
# test then still fails at the backend's own bounded timeouts, just
# later). The cap is generous: these are liveness bounds, not perf
# budgets.
TIMEOUT_FLAGS := $(shell $(PYTHON) -c "import pytest_timeout" 2>/dev/null && echo "--timeout=300 --timeout-method=thread")

PYTEST := PYTHONPATH=src $(PYTHON) -m pytest $(TIMEOUT_FLAGS)

.PHONY: test suite docs-check faults-check exec-check exec-faults-check \
	chaos-check motif-check storage-check perf-check perf-bench \
	perf-bench-motifs perf-bench-scale service-check bench

## tier-1: full suite, then the docs/fault/backend/perf contracts
test: suite docs-check faults-check exec-check exec-faults-check \
	chaos-check motif-check storage-check perf-check service-check

suite:
	$(PYTEST) -x -q

## fail if the observability surface and docs/metrics.md disagree
docs-check:
	$(PYTEST) tests/test_docs_contract.py -q

## fault-injection & chunk-granular recovery suite (docs/faults.md)
faults-check:
	$(PYTEST) -m faults -q

## execution-backend equivalence suite (docs/execution.md)
exec-check:
	$(PYTEST) -m exec -q

## worker-death liveness/recovery suite (docs/execution.md,
## "Real-process failure semantics") — kills real worker processes
exec-faults-check:
	$(PYTEST) -m exec_faults -q

## chaos suite: real SIGKILLs of workers and the whole parent against
## durable checkpoints — resumed/redistributed counts must match the
## clean oracle bit-identically (docs/faults.md, "Durability")
chaos-check:
	PYTHONPATH=src:. $(PYTHON) -m pytest $(TIMEOUT_FLAGS) \
		benchmarks/chaos.py -q

## IEP counting-plan suite (docs/performance.md, "Inclusion–exclusion
## counting"): plan compilation, bit-identity against the enumeration
## oracle across extend modes and backends, the 3/4/5-motif census
## (IEP route vs induced oracle), and the schedule cost-model pins
motif-check:
	$(PYTEST) tests/test_iep.py -q

## out-of-core storage suite (docs/storage.md): streaming-vs-eager
## builder parity, store round-trip/corruption rejection, ram-vs-mmap
## bit-identity across backends and extend modes, admission baseline
storage-check:
	$(PYTEST) tests/test_storage.py -q

## wall-clock perf gates: tiny-graph smoke (batched EXTEND never loses
## to scalar, counts agree), the headline process-backend speedup gate
## with its CPU-aware floor — >=2x over inline-batched at 4 workers
## given >=4 CPUs (docs/performance.md) — and the storage scale-sweep
## smoke (mmap-over-ram wall ratio under its documented ceiling,
## docs/storage.md)
perf-check:
	PYTHONPATH=src:. $(PYTHON) -m pytest $(TIMEOUT_FLAGS) \
		benchmarks/bench_wallclock.py benchmarks/bench_scale.py -q

## full wall-clock sweep over the bundled datasets; writes
## BENCH_PR6.json (the >=3x wdc-triangle batched-over-scalar headline
## and the inline-vs-process rows live there)
perf-bench:
	PYTHONPATH=src:. $(PYTHON) benchmarks/bench_wallclock.py \
		--out BENCH_PR6.json

## full motif-census sweep (IEP vs enumerate on k-GraphPi); writes
## BENCH_PR9.json — the 5-motif row is the >=3x IEP-over-enumerate
## headline (docs/performance.md, "Inclusion–exclusion counting")
perf-bench-motifs:
	PYTHONPATH=src:. $(PYTHON) benchmarks/bench_wallclock.py \
		--motifs --out BENCH_PR9.json

## full 10x/30x/100x out-of-core storage scale sweep; writes
## BENCH_PR10.json — every decade's graph exceeds the resident cap,
## counts are bit-identical ram-vs-mmap, and the gate holds the
## mmap-over-ram penalty flat across decades (docs/storage.md)
perf-bench-scale:
	PYTHONPATH=src:. $(PYTHON) benchmarks/bench_scale.py \
		--out BENCH_PR10.json --gate

## resident mining service: equivalence/admission/shutdown suite plus
## the latency/throughput load harness — one server answers a mixed
## 20-query trace bit-identically to one-shot runs and its amortized
## p50 must beat the fastest one-shot wall-clock; writes
## BENCH_PR8.json (docs/service.md)
service-check:
	PYTHONPATH=src:. $(PYTHON) -m pytest $(TIMEOUT_FLAGS) \
		tests/test_service.py benchmarks/bench_service.py -q

## paper-figure benchmark suite (slow)
bench:
	PYTHONPATH=src:. $(PYTHON) -m pytest benchmarks -q
