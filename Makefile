# Convenience targets. Everything assumes the in-tree layout
# (PYTHONPATH=src); no installation required.

PYTHON ?= python
PYTEST := PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test docs-check bench

## tier-1: the full unit/integration suite
test:
	$(PYTEST) -x -q

## fail if the observability surface and docs/metrics.md disagree
docs-check:
	$(PYTEST) tests/test_docs_contract.py -q

## paper-figure benchmark suite (slow)
bench:
	PYTHONPATH=src:. $(PYTHON) -m pytest benchmarks -q
