# Convenience targets. Everything assumes the in-tree layout
# (PYTHONPATH=src); no installation required.

PYTHON ?= python
PYTEST := PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test suite docs-check faults-check exec-check bench

## tier-1: full suite, then the docs/fault/backend contracts
test: suite docs-check faults-check exec-check

suite:
	$(PYTEST) -x -q

## fail if the observability surface and docs/metrics.md disagree
docs-check:
	$(PYTEST) tests/test_docs_contract.py -q

## fault-injection & chunk-granular recovery suite (docs/faults.md)
faults-check:
	$(PYTEST) -m faults -q

## execution-backend equivalence suite (docs/execution.md)
exec-check:
	$(PYTEST) -m exec -q

## paper-figure benchmark suite (slow)
bench:
	PYTHONPATH=src:. $(PYTHON) -m pytest benchmarks -q
