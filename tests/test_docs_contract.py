"""The docs contract: the observability surface stays documented.

``repro.obs.names.SPECS`` is the single source of truth for metric
names; ``docs/metrics.md`` is the human reference. These tests keep the
two in lockstep in both directions — run them alone via
``make docs-check``. They are plain-text checks on purpose: adding a
metric without a docs row (or documenting a name the code cannot emit)
must fail even if no engine test exercises the new metric.
"""

import re
from pathlib import Path

from repro.obs import names
from repro.obs.tracer import PHASE_ATTRS

DOCS = Path(__file__).parent.parent / "docs" / "metrics.md"

#: metric names as they appear in the reference table rows (one or
#: more dotted segments after the family, e.g. exec.heartbeat.checks)
_ROW_NAME = re.compile(r"^\|\s*`([a-z]+(?:\.[a-z_0-9]+)+)`\s*\|")
#: span names documented in the trace-span table
_SPAN_ROW = re.compile(r"^\|\s*`([a-z_]+)`\s*\|")


def _doc_text() -> str:
    assert DOCS.exists(), "docs/metrics.md is missing"
    return DOCS.read_text()


def _documented_metric_names() -> set[str]:
    return {
        match.group(1)
        for line in _doc_text().splitlines()
        if (match := _ROW_NAME.match(line))
    }


def test_every_emitted_metric_is_documented():
    documented = _documented_metric_names()
    missing = set(names.SPECS) - documented
    assert not missing, (
        f"metrics declared in repro.obs.names but absent from "
        f"docs/metrics.md: {sorted(missing)}"
    )


def test_every_documented_metric_exists_in_code():
    documented = _documented_metric_names()
    assert documented, "docs/metrics.md has no metric table rows"
    stale = documented - set(names.SPECS)
    assert not stale, (
        f"docs/metrics.md documents metrics the registry would reject: "
        f"{sorted(stale)}"
    )


def test_docs_mention_kind_and_unit_of_every_metric():
    text = _doc_text()
    for name, spec in names.SPECS.items():
        row = next(
            (line for line in text.splitlines()
             if _ROW_NAME.match(line) and _ROW_NAME.match(line).group(1) == name),
            None,
        )
        assert row is not None, f"no table row for {name}"
        assert spec.kind in row, f"row for {name} does not state its kind"
        assert spec.unit in row, f"row for {name} does not state its unit"


def test_every_metric_constant_is_used_by_the_source_tree():
    """Every name in SPECS is referenced (via its constant) by at least
    one module outside repro.obs — no dead entries in the surface."""
    src = Path(__file__).parent.parent / "src" / "repro"
    constant_of = {
        value: const
        for const, value in vars(names).items()
        if isinstance(value, str) and value in names.SPECS
    }
    corpus = "\n".join(
        path.read_text()
        for path in src.rglob("*.py")
        if "obs" not in path.parts
    )
    unused = [
        name for name, const in constant_of.items()
        if f"names.{const}" not in corpus
    ]
    assert not unused, f"declared but never emitted: {sorted(unused)}"


def test_execution_doc_covers_every_backend():
    """docs/execution.md documents each name ``--backend`` accepts."""
    from repro.exec import BACKENDS

    doc = Path(__file__).parent.parent / "docs" / "execution.md"
    assert doc.exists(), "docs/execution.md is missing"
    text = doc.read_text()
    for backend in BACKENDS:
        assert f"`{backend}`" in text, (
            f"backend {backend!r} missing from docs/execution.md"
        )
    # the exec.* family is documented in metrics.md but lives here too:
    # the doc must explain its wall-clock (non-reproducible) nature
    assert "wall-clock" in text
    assert "bit-identical" in text, "determinism contract not stated"


def test_span_phases_documented():
    text = _doc_text()
    for attr in PHASE_ATTRS:
        assert f"`{attr}`" in text, f"phase attr {attr} undocumented"
    for span in ("startup", "roots", "chunk", "batch"):
        assert any(
            match.group(1) == span
            for line in text.splitlines()
            if (match := _SPAN_ROW.match(line))
        ), f"span {span!r} missing from the trace-span table"
