"""Tests for vertex reordering and graph statistics."""

import numpy as np
import pytest

from repro.analysis import count_embeddings_brute_force
from repro.cluster import Cluster, ClusterConfig
from repro.core import KhuzdulEngine
from repro.graph import dataset, from_edges
from repro.graph.generators import erdos_renyi, power_law_graph, star_graph
from repro.graph.reorder import apply_order, reorder_by_degree, restore_ids
from repro.graph.stats import degree_stats, hot_vertices, traffic_concentration
from repro.patterns import clique
from repro.patterns.schedule import automine_schedule


# ----------------------------------------------------------------------
# reordering
# ----------------------------------------------------------------------
def test_reorder_is_permutation(small_random_graph):
    reordered, old_of_new = reorder_by_degree(small_random_graph)
    assert sorted(old_of_new.tolist()) == list(
        range(small_random_graph.num_vertices)
    )
    assert reordered.num_edges == small_random_graph.num_edges


def test_reorder_descending_puts_hubs_first(skewed_graph):
    reordered, _ = reorder_by_degree(skewed_graph, descending=True)
    degrees = reordered.degrees()
    assert degrees[0] == skewed_graph.max_degree()
    assert np.all(degrees[:-1] >= degrees[1:]) or True  # sorted by construction
    # in fact it must be exactly non-increasing:
    assert all(int(degrees[i]) >= int(degrees[i + 1])
               for i in range(len(degrees) - 1))


def test_reorder_ascending(skewed_graph):
    reordered, _ = reorder_by_degree(skewed_graph, descending=False)
    degrees = reordered.degrees()
    assert all(int(degrees[i]) <= int(degrees[i + 1])
               for i in range(len(degrees) - 1))


def test_reorder_preserves_counts(skewed_graph):
    expected = count_embeddings_brute_force(skewed_graph, clique(3))
    reordered, _ = reorder_by_degree(skewed_graph)
    cluster = Cluster(reordered, ClusterConfig(num_machines=2))
    report = KhuzdulEngine(cluster).run(automine_schedule(clique(3)))
    assert report.counts == expected


def test_reorder_preserves_labels():
    g = from_edges([(0, 1), (1, 2), (1, 3)], labels=[9, 8, 7, 6])
    reordered, old_of_new = reorder_by_degree(g)
    for new_id in range(4):
        assert reordered.label(new_id) == g.label(int(old_of_new[new_id]))


def test_reorder_preserves_edge_labels():
    g = from_edges([(0, 1), (1, 2)], edge_labels=[4, 5])
    reordered, old_of_new = reorder_by_degree(g)
    new_of_old = {int(o): n for n, o in enumerate(old_of_new)}
    assert reordered.edge_label(new_of_old[0], new_of_old[1]) == 4
    assert reordered.edge_label(new_of_old[1], new_of_old[2]) == 5


def test_apply_order_validates():
    g = from_edges([(0, 1)])
    with pytest.raises(ValueError):
        apply_order(g, np.array([0, 0]))


def test_restore_ids_roundtrip(skewed_graph):
    reordered, old_of_new = reorder_by_degree(skewed_graph)
    new_of_old = np.empty_like(old_of_new)
    new_of_old[old_of_new] = np.arange(len(old_of_new))
    embedding_new = (3, 7, 11)
    original = restore_ids(embedding_new, old_of_new)
    assert tuple(int(new_of_old[v]) for v in original) == embedding_new


# ----------------------------------------------------------------------
# statistics
# ----------------------------------------------------------------------
def test_degree_stats_star():
    stats = degree_stats(star_graph(20))
    assert stats.max_degree == 20
    assert stats.median_degree == 1.0
    assert stats.gini > 0.4  # extremely unequal


def test_degree_stats_regular():
    # ER graphs are near-uniform: low Gini
    stats = degree_stats(erdos_renyi(200, 800, seed=1))
    assert stats.gini < 0.35
    assert stats.avg_degree == pytest.approx(8.0, rel=0.01)


def test_skewed_more_concentrated_than_uniform():
    uniform = erdos_renyi(300, 1500, seed=2)
    skewed = power_law_graph(300, 1500, exponent=1.9, seed=2)
    assert (
        degree_stats(skewed).top5_degree_share
        > degree_stats(uniform).top5_degree_share
    )
    assert traffic_concentration(skewed) > traffic_concentration(uniform)


def test_paper_skew_ordering_in_analogues():
    """patents must be the least skewed analogue; uk among the most."""
    gini = {
        name: degree_stats(dataset(name)).gini
        for name in ("patents", "livejournal", "uk")
    }
    assert gini["patents"] < gini["livejournal"] < gini["uk"]


def test_hot_vertices_are_highest_degree(skewed_graph):
    hot = hot_vertices(skewed_graph, 0.05)
    degrees = skewed_graph.degrees()
    threshold = min(degrees[v] for v in hot)
    cold = np.setdiff1d(np.arange(skewed_graph.num_vertices), hot)
    assert all(degrees[v] <= threshold for v in cold)


def test_empty_graph_stats():
    stats = degree_stats(from_edges([], num_vertices=0))
    assert stats.avg_degree == 0.0
    assert stats.gini == 0.0
