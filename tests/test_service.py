"""Tests for the resident mining service (docs/service.md).

The acceptance contract of the service layer:

- a mixed trace served by one resident server returns counts
  bit-identical to fresh one-shot runs of each query;
- per-query metrics registries are disjoint and fold into the
  server-lifetime registry by summation;
- the admission controller turns over-budget queries into structured
  ``REJECTED`` reports instead of exceptions;
- shutdown is leak-free: the queue drains into ``REJECTED`` reports
  and the shm janitor runs exactly once;
- a serving worker dying mid-query degrades that one query to
  ``CRASHED`` while the server survives and respawns the worker.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.engine import EngineConfig
from repro.errors import ConfigurationError
from repro.faults.recovery import FailureSummary, Outcome
from repro.graph import dataset
from repro.obs import Observability
from repro.service import (
    AdmissionController,
    MiningServer,
    PriorityJobQueue,
    QueryRequest,
    ServiceClient,
    ServiceConfig,
    estimate_query_bytes,
    parse_pattern_spec,
)
from repro.service.protocol import jsonable_counts, refusal_payload
from repro.systems import KAutomine, KGraphPi, motif_count

pytestmark = pytest.mark.service

#: the small serving shape every test uses (mico at scale 0.2 on a
#: 2x2 simulated cluster — triangle count 1562, clique4 count 552)
SMALL = dict(graph="mico", scale=0.2, machines=2, cores=2)


def small_server(**overrides) -> MiningServer:
    config = ServiceConfig(**{**SMALL, **overrides})
    return MiningServer(config).start()


def one_shot(request: QueryRequest, config: ServiceConfig):
    """Run one query the one-shot way: fresh system, fresh engine —
    exactly what a standalone CLI invocation does."""
    graph = dataset(config.graph, scale=config.scale, labeled=False)
    system_name = request.system or config.system
    cls = KGraphPi if system_name == "k-graphpi" else KAutomine
    system = cls(graph, config.cluster_config(), graph_name=config.graph)
    if request.app == "motifs":
        report = motif_count(system, request.size)
    else:
        report = system.count_pattern(
            parse_pattern_spec(request.effective_pattern()),
            induced=request.induced,
            oriented=request.oriented,
        )
    return jsonable_counts(report.counts)


def mixed_trace() -> list[QueryRequest]:
    """A 20-query mixed trace: every app, both systems, induced and
    oriented variants, interleaved priorities."""
    requests = [
        QueryRequest(id="t0", app="triangle", priority=2),
        QueryRequest(id="c4", app="count", pattern="clique4", priority=0),
        QueryRequest(id="m3", app="motifs", size=3, priority=5),
        QueryRequest(id="ch3", app="count", pattern="chain3", priority=1),
        QueryRequest(id="cy4", app="count", pattern="cycle4", priority=3),
        QueryRequest(id="s3", app="count", pattern="star3", priority=0),
        QueryRequest(id="t1", app="triangle", system="k-graphpi",
                     priority=4),
        QueryRequest(id="c4o", app="count", pattern="clique4",
                     oriented=True, priority=2),
        QueryRequest(id="ch3i", app="count", pattern="chain3",
                     induced=True, priority=1),
        QueryRequest(id="hs", app="count", pattern="house", priority=0),
        QueryRequest(id="tt", app="count", pattern="tailed_triangle",
                     priority=3),
        QueryRequest(id="m3g", app="motifs", size=3, system="k-graphpi",
                     priority=1),
        QueryRequest(id="e1", app="count", pattern="0-1,1-2,0-2",
                     priority=2),
        QueryRequest(id="c5", app="count", pattern="clique5", priority=0),
        QueryRequest(id="cy5", app="count", pattern="cycle5", priority=4),
        QueryRequest(id="s4", app="count", pattern="star4", priority=1),
        QueryRequest(id="t2", app="triangle", oriented=True, priority=0),
        QueryRequest(id="ch4", app="count", pattern="chain4", priority=2),
        QueryRequest(id="c4g", app="count", pattern="clique4",
                     system="k-graphpi", priority=5),
        QueryRequest(id="t3", app="triangle", priority=0),
    ]
    assert len(requests) == 20
    return requests


# ---------------------------------------------------------------------
# protocol units
# ---------------------------------------------------------------------
def test_rejected_outcome_is_structured():
    assert Outcome.REJECTED.value == "REJECTED"
    summary = FailureSummary(Outcome.REJECTED, message="cap exceeded")
    assert summary.fatal
    assert summary.to_dict()["outcome"] == "REJECTED"


def test_request_roundtrip_and_validation():
    request = QueryRequest(id="x", app="count", pattern="clique4",
                           priority=3)
    assert QueryRequest.from_dict(request.to_dict()) == request
    with pytest.raises(ConfigurationError):
        QueryRequest.from_json_line("not json at all")
    with pytest.raises(ConfigurationError):
        QueryRequest.from_json_line('{"bogus_field": 1}')
    with pytest.raises(ConfigurationError):
        QueryRequest(app="frobnicate").validate()
    with pytest.raises(ConfigurationError):
        QueryRequest(pattern="dodecahedron").validate()
    with pytest.raises(ConfigurationError):
        QueryRequest(induced=True, oriented=True).validate()
    with pytest.raises(ConfigurationError):
        QueryRequest(app="motifs", size=9).validate()
    # chaos comes in from wire JSON too: garbage must be REJECTED at
    # validation, never an exception out of a serving lane
    with pytest.raises(ConfigurationError):
        QueryRequest(chaos="sleep:x").validate()
    with pytest.raises(ConfigurationError):
        QueryRequest(chaos="sleep:-1").validate()
    with pytest.raises(ConfigurationError):
        QueryRequest(chaos="frobnicate").validate()
    QueryRequest(chaos="exit").validate()
    QueryRequest(chaos="sleep:0.25").validate()


def test_request_arity_drives_admission_estimate():
    assert QueryRequest(app="triangle").arity() == 3
    assert QueryRequest(pattern="clique6").arity() == 6
    assert QueryRequest(app="motifs", size=4).arity() == 4
    # deeper patterns book more chunk memory (pre-clamp)
    small = estimate_query_bytes(10_000, 3, 2, 1 << 30)
    large = estimate_query_bytes(10_000, 6, 2, 1 << 30)
    assert large > small


def test_priority_queue_orders_strictly_then_fifo():
    queue = PriorityJobQueue()
    queue.push(0, "low-a")
    queue.push(5, "high")
    queue.push(0, "low-b")
    queue.push(2, "mid")
    assert queue.peek() == "high"
    assert [queue.pop() for _ in range(len(queue))] == [
        "high", "mid", "low-a", "low-b",
    ]
    queue.push(1, "x")
    queue.push(9, "y")
    assert queue.drain() == ["y", "x"]
    assert not queue


def test_admission_controller_verdicts():
    controller = AdmissionController(cap_bytes=1000, baseline_bytes=300)
    assert controller.decide(500) == "admit"
    assert controller.decide(800) == "reject"  # 300 + 800 > 1000
    controller.admit("q1", 500)
    assert controller.inflight_bytes == 500
    # would fit an empty server, so it waits rather than rejects
    assert controller.decide(400) == "wait"
    controller.release("q1")
    assert controller.decide(400) == "admit"
    snapshot = controller.snapshot()
    assert snapshot["cap_bytes"] == 1000
    assert snapshot["inflight_bytes"] == 0


# ---------------------------------------------------------------------
# the resident server: equivalence with one-shot runs
# ---------------------------------------------------------------------
def test_mixed_trace_matches_one_shot_runs():
    """The acceptance trace: 20 mixed queries through one resident
    server return counts bit-identical to 20 fresh one-shot runs."""
    server = small_server()
    try:
        reports = ServiceClient(server).run_trace(mixed_trace())
        assert [r.id for r in reports] == [r.id for r in mixed_trace()]
        for request, report in zip(mixed_trace(), reports):
            assert report.ok, f"{request.id}: {report.message()}"
            assert report.counts == one_shot(request, server.config), (
                f"{request.id} diverged from its one-shot run"
            )
            assert report.report is not None
            assert report.failure is None
    finally:
        summary = server.shutdown()
    assert summary["queries"] == 20
    assert summary["ok"] == 20
    assert summary["failed"] == 0
    # known-good spot values for the serving shape
    by_id = {r.id: r for r in reports}
    assert by_id["t0"].counts == 1562
    assert by_id["c4"].counts == 552


def test_concurrent_clients_process_lane_match_one_shot():
    """Queries raced from concurrent threads onto a two-worker process
    pool still come back bit-identical to one-shot runs."""
    server = small_server(workers=2, heartbeat=0.2)
    client = ServiceClient(server)
    requests = [
        QueryRequest(id="p0", app="triangle"),
        QueryRequest(id="p1", app="count", pattern="clique4"),
        QueryRequest(id="p2", app="motifs", size=3),
        QueryRequest(id="p3", app="count", pattern="chain3"),
        QueryRequest(id="p4", app="triangle", system="k-graphpi"),
        QueryRequest(id="p5", app="count", pattern="star3"),
    ]
    results: dict[str, object] = {}

    def run(request: QueryRequest) -> None:
        results[request.id] = client.query(request, timeout=120.0)

    try:
        threads = [threading.Thread(target=run, args=(r,))
                   for r in requests]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert len(results) == len(requests)
        workers_used = set()
        for request in requests:
            report = results[request.id]
            assert report.ok, f"{request.id}: {report.message()}"
            assert report.counts == one_shot(request, server.config)
            workers_used.add(report.worker)
        # the pool actually served them (not the in-process lane)
        assert workers_used <= {0, 1} and None not in workers_used
    finally:
        summary = server.shutdown()
    assert summary["ok"] == len(requests)
    assert server.janitor_runs == 1  # shared segments unlinked once


def test_priority_order_under_load():
    """With the serial lane blocked, a later high-priority query
    overtakes earlier low-priority ones (FIFO within a class)."""
    server = small_server()
    client = ServiceClient(server)
    try:
        blocker = client.submit(id="blocker", app="triangle",
                                chaos="sleep:0.4")
        # wait until the blocker actually occupies the serial lane so
        # the rest genuinely queue behind it
        deadline = 50
        while blocker.dispatch_time is None and deadline:
            time.sleep(0.02)
            deadline -= 1
        low_a = client.submit(id="low-a", app="triangle", priority=0)
        low_b = client.submit(id="low-b", app="triangle", priority=0)
        high = client.submit(id="high", app="triangle", priority=9)
        for handle in (blocker, low_a, low_b, high):
            handle.result(timeout=60.0)
        order = server.completed_ids()
        assert order == ["blocker", "high", "low-a", "low-b"]
    finally:
        server.shutdown()


# ---------------------------------------------------------------------
# admission control and failure semantics
# ---------------------------------------------------------------------
def test_admission_rejects_over_budget_query():
    """A deep pattern books more chunk memory than a 16 MiB resident
    cap allows; the query ends REJECTED — structured, not raised —
    while a shallow one on the same server is served fine."""
    server = small_server(resident_mb=16)
    client = ServiceClient(server)
    try:
        ok = client.query(id="fits", app="triangle")
        assert ok.ok and ok.counts == 1562
        rejected = client.query(id="deep", app="count", pattern="clique6")
        assert rejected.outcome == "REJECTED"
        assert rejected.fatal
        assert rejected.counts is None and rejected.report is None
        assert "admission rejected" in rejected.message()
        # the verdict matches the public estimator
        estimate = estimate_query_bytes(
            server.graph.size_bytes(), 6, server.config.machines,
            server.config.cluster_config().memory_bytes,
        )
        assert (estimate + server.graph.size_bytes()
                > server.config.resident_cap_bytes)
    finally:
        summary = server.shutdown()
    assert summary["rejected"] == 1
    assert summary["ok"] == 1


def test_malformed_and_duplicate_queries_reject_not_raise():
    server = small_server()
    client = ServiceClient(server)
    try:
        bad = client.query(id="bad", app="count", pattern="dodecahedron")
        assert bad.outcome == "REJECTED"
        assert "dodecahedron" in bad.message()
        first = client.query(id="dup", app="triangle")
        assert first.ok
        second = client.query(id="dup", app="triangle")
        assert second.outcome == "REJECTED"
        assert "duplicate" in second.message()
    finally:
        server.shutdown()


def test_time_budget_exceeded_reports_timeout():
    server = small_server()
    client = ServiceClient(server)
    try:
        report = client.query(id="slow", app="triangle",
                              time_budget=1e-12)
        assert report.outcome == Outcome.TIMEOUT.value
        assert report.fatal
        assert "budget" in report.message()
    finally:
        server.shutdown()


def test_worker_death_degrades_one_query_not_the_server():
    """The PR-7 contract carried over: a serving worker SIGKILLing
    itself mid-query yields one CRASHED report, a respawned worker,
    and an immediately healthy server."""
    server = small_server(workers=1, heartbeat=0.1)
    client = ServiceClient(server)
    try:
        victim = client.query(id="victim", app="triangle", chaos="exit",
                              timeout=60.0)
        assert victim.outcome == Outcome.CRASHED.value
        assert "died mid-query" in victim.message()
        healthy = client.query(id="after", app="triangle", timeout=60.0)
        assert healthy.ok and healthy.counts == 1562
        assert server.worker_deaths == 1
    finally:
        summary = server.shutdown()
    assert summary["worker_deaths"] == 1
    assert summary["ok"] == 1
    assert server.janitor_runs == 1


def test_worker_death_before_pickup_does_not_wedge_the_lane():
    """The dispatch window the 'exit' hook cannot reach: the worker
    dies *between* the dispatcher's inbox.put and its own inbox.get.
    The respawned incarnation must discard the leftover request (it
    was already reported CRASHED) instead of replaying it — a replayed
    result used to desynchronize the lane and wedge it forever."""
    server = small_server(workers=1, heartbeat=0.4)
    client = ServiceClient(server)
    try:
        warmup = client.query(id="warmup", app="triangle", timeout=60.0)
        assert warmup.ok
        # kill the idle worker; the dispatcher still believes the lane
        # is free, so the next request lands in a dead worker's inbox
        process = server._processes[0]
        process.kill()
        process.join(timeout=10.0)
        assert process.exitcode is not None
        orphaned = client.query(id="orphaned", app="triangle",
                                timeout=60.0)
        # CRASHED when dispatched into the death window, OK if the
        # sweep respawned first — either way it must terminate
        assert orphaned.outcome in ("OK", Outcome.CRASHED.value)
        # the lane is not wedged: later queries still complete
        for i in range(2):
            healthy = client.query(id=f"after-{i}", app="triangle",
                                   timeout=60.0)
            assert healthy.ok and healthy.counts == 1562
    finally:
        summary = server.shutdown()
    assert summary["worker_deaths"] == 1
    assert summary["queries"] == 4


def test_stale_inbox_request_is_discarded_by_respawned_worker():
    """A request tagged with a dead predecessor's epoch (left behind
    in the dispatch window) must be dropped by the worker, never
    replayed — a replayed result answers a query the server already
    reported CRASHED and desynchronizes the lane."""
    server = small_server(workers=1, heartbeat=0.1)
    client = ServiceClient(server)
    try:
        server._inboxes[0].put(
            (0, QueryRequest(id="ghost", app="triangle"))
        )
        healthy = client.query(id="after", app="triangle", timeout=60.0)
        assert healthy.ok and healthy.counts == 1562
        assert server.completed_ids() == ["after"]
    finally:
        summary = server.shutdown()
    assert summary["queries"] == 1


def test_mismatched_result_never_frees_a_busy_worker():
    """A result that does not answer the query a lane is serving must
    not pop the in-flight handle or free the busy worker. (Results
    from dead incarnations cannot arrive at all — their private pipe
    reader is closed at respawn — so the id guard is the last line.)"""
    server = small_server(workers=1, heartbeat=0.1)
    client = ServiceClient(server)
    try:
        blocker = client.submit(id="blocker", app="triangle",
                                chaos="sleep:0.5")
        deadline = 100
        while blocker.dispatch_time is None and deadline:
            time.sleep(0.02)
            deadline -= 1
        stale = refusal_payload(Outcome.CRASHED, "stale incarnation")
        server._handle_result(0, "bogus", stale)
        report = blocker.result(timeout=60.0)
        assert report.ok and report.counts == 1562
        healthy = client.query(id="after", app="triangle", timeout=60.0)
        assert healthy.ok
        assert server.completed_ids() == ["blocker", "after"]
    finally:
        summary = server.shutdown()
    assert summary["ok"] == 2
    assert summary["worker_deaths"] == 0


def test_bad_chaos_spec_fails_itself_not_the_dispatcher():
    """A malformed chaos field from the wire must become a REJECTED
    report; it used to raise out of execute() and kill the serial
    lane's dispatcher thread, silently wedging the server."""
    server = small_server()
    client = ServiceClient(server)
    try:
        bad = client.query(id="bad-chaos", app="triangle",
                           chaos="sleep:x", timeout=60.0)
        assert bad.outcome == "REJECTED"
        assert "chaos" in bad.message()
        healthy = client.query(id="after", app="triangle", timeout=60.0)
        assert healthy.ok and healthy.counts == 1562
    finally:
        summary = server.shutdown()
    assert summary["rejected"] == 1
    assert summary["ok"] == 1


# ---------------------------------------------------------------------
# metrics isolation
# ---------------------------------------------------------------------
def test_per_query_metrics_snapshots_are_disjoint():
    """Each query gets a fresh registry: its snapshot equals a
    standalone instrumented run of the same query, and the
    server-lifetime registry holds the sum."""
    server = small_server(metrics=True)
    client = ServiceClient(server)
    try:
        triangle = client.query(id="t", app="triangle")
        clique4 = client.query(id="c", app="count", pattern="clique4")
        assert triangle.metrics is not None
        assert clique4.metrics is not None
        # disjoint registries: different queries, different counters
        assert triangle.metrics != clique4.metrics

        def standalone(request: QueryRequest) -> dict:
            graph = dataset(SMALL["graph"], scale=SMALL["scale"],
                            labeled=False)
            system = KAutomine(graph, server.config.cluster_config(),
                               graph_name=SMALL["graph"])
            obs = Observability()
            system.reconfigure(EngineConfig(), obs)
            system.count_pattern(
                parse_pattern_spec(request.effective_pattern()))
            return obs.registry.snapshot()

        assert triangle.metrics == standalone(QueryRequest(app="triangle"))
        assert clique4.metrics == standalone(
            QueryRequest(pattern="clique4"))
    finally:
        summary = server.shutdown()
    # the lifetime registry absorbed both per-query registries
    lifetime = summary["metrics"]["counters"]
    for name in ("extend.calls", "extend.matches_emitted"):
        per_query = sum(
            sum(report.metrics["counters"][name].values())
            for report in (triangle, clique4)
        )
        assert sum(lifetime[name].values()) == per_query
    assert sum(lifetime["service.queries"].values()) == 2


def test_service_counters_track_outcomes():
    server = small_server(metrics=True)
    client = ServiceClient(server)
    try:
        client.query(id="ok", app="triangle")
        client.query(id="no", app="count", pattern="garbage-spec")
        client.query(id="late", app="triangle", time_budget=1e-12)
    finally:
        summary = server.shutdown()
    counters = summary["metrics"]["counters"]
    assert sum(counters["service.queries"].values()) == 3
    assert sum(counters["service.rejected"].values()) == 1
    assert sum(counters["service.failed"].values()) == 1
    histograms = summary["metrics"]["histograms"]
    assert sum(h["count"] for h in
               histograms["service.latency_seconds"].values()) == 3


# ---------------------------------------------------------------------
# leak-free shutdown
# ---------------------------------------------------------------------
def test_shutdown_drains_queue_and_runs_janitor_once(tmp_path):
    """Shutdown mid-stream: the in-flight query finishes inside the
    drain budget, queued queries come back REJECTED, and repeated
    shutdowns keep the summary stable with one janitor run."""
    server = small_server(workers=1, heartbeat=0.1,
                          checkpoint_dir=str(tmp_path / "svc"))
    client = ServiceClient(server)
    blocker = client.submit(id="inflight", app="triangle",
                            chaos="sleep:0.4")
    queued = [client.submit(id=f"queued-{i}", app="triangle")
              for i in range(3)]
    # let the blocker reach the worker before draining
    deadline = 50
    while blocker.dispatch_time is None and deadline:
        time.sleep(0.05)
        deadline -= 1
    summary = server.shutdown()
    assert blocker.result(timeout=1.0).ok
    for handle in queued:
        report = handle.result(timeout=1.0)
        assert report.outcome == "REJECTED"
        assert "shutting down" in report.message()
    assert summary["queries"] == 4
    assert summary["rejected"] == 3
    assert server.janitor_runs == 1
    # idempotent: same summary object, no second janitor run
    assert server.shutdown() is summary
    assert server.janitor_runs == 1
    # the shm ledger was cleared by the janitor
    assert not (tmp_path / "svc" / "shm.json").exists()


def test_submit_after_shutdown_is_rejected_structurally():
    server = small_server()
    client = ServiceClient(server)
    server.shutdown()
    report = client.query(id="late", app="triangle")
    assert report.outcome == "REJECTED"
    assert "shutting down" in report.message()


def test_client_context_manager_shuts_down():
    server = small_server()
    with ServiceClient(server) as client:
        assert client.query(app="triangle").ok
    assert server.janitor_runs == 1
    assert server.shutdown()["queries"] == 1


def test_server_refuses_graph_larger_than_cap():
    config = ServiceConfig(**SMALL)
    config.resident_mb = 0  # dodge the ctor check to exercise start()
    with pytest.raises(ConfigurationError):
        MiningServer(config).start()
