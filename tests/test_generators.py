"""Tests for synthetic graph generators and dataset analogues."""

import numpy as np
import pytest

from repro.graph.datasets import DATASETS, DatasetSpec, dataset
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    power_law_graph,
    random_labels,
    star_graph,
)


def test_erdos_renyi_edge_count():
    g = erdos_renyi(100, 300, seed=1)
    assert g.num_edges == 300
    assert g.num_vertices == 100


def test_erdos_renyi_deterministic():
    assert erdos_renyi(50, 100, seed=9) == erdos_renyi(50, 100, seed=9)
    assert erdos_renyi(50, 100, seed=9) != erdos_renyi(50, 100, seed=10)


def test_erdos_renyi_dense_cap():
    # requesting more edges than possible caps at the complete graph
    g = erdos_renyi(5, 100, seed=0)
    assert g.num_edges == 10


def test_power_law_skew_increases_with_smaller_exponent():
    flat = power_law_graph(300, 1500, exponent=3.5, seed=4)
    skewed = power_law_graph(300, 1500, exponent=1.9, seed=4)
    assert skewed.max_degree() > flat.max_degree()


def test_power_law_max_degree_cap():
    g = power_law_graph(300, 1500, exponent=1.9, max_degree=40, seed=4)
    # the cap is on the expected degree; allow modest stochastic overshoot
    assert g.max_degree() <= 80


def test_power_law_simple_graph():
    g = power_law_graph(100, 400, seed=2)
    for v in g.vertices():
        nbrs = list(g.neighbors(v))
        assert v not in nbrs
        assert nbrs == sorted(set(nbrs))


def test_random_labels_range_and_determinism():
    g = random_labels(erdos_renyi(40, 80, seed=0), 4, seed=5)
    assert g.labels is not None
    assert set(int(x) for x in g.labels) <= set(range(4))
    g2 = random_labels(erdos_renyi(40, 80, seed=0), 4, seed=5)
    assert np.array_equal(g.labels, g2.labels)


def test_star_complete_cycle_fixture_shapes():
    assert star_graph(7).num_edges == 7
    assert complete_graph(6).num_edges == 15
    assert cycle_graph(5).num_edges == 5


# ----------------------------------------------------------------------
# dataset analogues
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(DATASETS))
def test_every_dataset_builds(name):
    g = dataset(name, scale=0.25)
    assert g.num_vertices > 0
    assert g.num_edges > 0


def test_dataset_relative_size_ordering():
    small = dataset("mico")
    medium = dataset("friendster")
    large = dataset("wdc")
    assert small.num_edges < medium.num_edges < large.num_edges


def test_patents_low_skew_vs_livejournal():
    """Patents is the paper's less-skewed graph; the analogue preserves it."""
    pt = dataset("patents")
    lj = dataset("livejournal")
    assert pt.max_degree() < lj.max_degree() / 3


def test_dataset_memoization():
    assert dataset("mico") is dataset("mico")
    assert dataset("mico") is not dataset("mico", scale=0.5)


def test_dataset_labeled_variant():
    g = dataset("mico", labeled=True)
    assert g.labels is not None
    assert dataset("mico").labels is None


def test_dataset_unknown_name():
    with pytest.raises(KeyError):
        dataset("nonexistent")


def test_dataset_scaling_changes_size():
    full = dataset("patents")
    half = dataset("patents", scale=0.5)
    assert half.num_vertices < full.num_vertices
    assert half.num_edges < full.num_edges


def test_spec_scaled_floors():
    spec = DatasetSpec("x", 1, 1, 100, 200, 2.0, 50, 0)
    tiny = spec.scaled(1e-9)
    assert tiny.num_vertices >= 8
    assert tiny.max_degree >= 4


def test_paper_metadata_recorded():
    spec = DATASETS["wdc"]
    assert spec.paper_edges == pytest.approx(128.7e9)
    assert spec.paper_vertices == pytest.approx(3.5e9)
