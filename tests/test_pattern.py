"""Tests for the Pattern graph type."""

import pytest

from repro.errors import PatternError
from repro.patterns import Pattern, chain, clique, cycle, star


def test_basic_construction():
    p = Pattern(3, [(0, 1), (1, 2)])
    assert p.num_vertices == 3
    assert p.num_edges == 2
    assert p.has_edge(0, 1) and p.has_edge(1, 0)
    assert not p.has_edge(0, 2)


def test_duplicate_edges_collapse():
    p = Pattern(2, [(0, 1), (1, 0), (0, 1)])
    assert p.num_edges == 1


def test_self_loop_rejected():
    with pytest.raises(PatternError):
        Pattern(2, [(0, 0)])


def test_out_of_range_edge_rejected():
    with pytest.raises(PatternError):
        Pattern(2, [(0, 2)])


def test_empty_pattern_rejected():
    with pytest.raises(PatternError):
        Pattern(0, [])


def test_label_validation():
    with pytest.raises(PatternError):
        Pattern(2, [(0, 1)], labels=[1])


def test_neighbors_and_degree():
    p = star(3)
    assert p.degree(0) == 3
    assert p.neighbors(0) == frozenset({1, 2, 3})
    assert p.neighbors(1) == frozenset({0})


def test_connectivity():
    assert clique(4).is_connected()
    assert not Pattern(3, [(0, 1)]).is_connected()
    assert Pattern(1, []).is_connected()


def test_relabel_preserves_structure():
    p = chain(3)  # 0-1-2
    q = p.relabel([2, 0, 1])  # old 0 -> new 2, old 1 -> new 0, old 2 -> new 1
    assert q.has_edge(2, 0)
    assert q.has_edge(0, 1)
    assert not q.has_edge(2, 1)


def test_relabel_moves_labels():
    p = Pattern(3, [(0, 1), (1, 2)], labels=(7, 8, 9))
    q = p.relabel([1, 2, 0])
    assert q.labels == (9, 7, 8)


def test_add_vertex():
    p = chain(2).add_vertex([1])
    assert p.num_vertices == 3
    assert p.has_edge(1, 2)


def test_add_vertex_with_label():
    p = Pattern(2, [(0, 1)], labels=(1, 2)).add_vertex([0], label=3)
    assert p.labels == (1, 2, 3)


def test_add_vertex_requires_attachment():
    with pytest.raises(PatternError):
        chain(2).add_vertex([])


def test_add_edge():
    p = chain(3).add_edge(0, 2)
    assert p.num_edges == 3
    assert p.has_edge(0, 2)


def test_labels_default_zero():
    p = chain(2)
    assert p.label(0) == 0
    labeled = p.with_labels([4, 5])
    assert labeled.label(1) == 5
    assert labeled.unlabeled().labels is None


def test_equality_and_hash():
    a = Pattern(3, [(0, 1), (1, 2)])
    b = Pattern(3, [(1, 2), (0, 1)])
    c = Pattern(3, [(0, 1), (0, 2)])
    assert a == b and hash(a) == hash(b)
    assert a != c
    assert a != a.with_labels([1, 2, 3])


def test_patterns_usable_as_dict_keys():
    d = {clique(3): "triangle", chain(3): "wedge"}
    assert d[Pattern(3, [(0, 1), (0, 2), (1, 2)])] == "triangle"


def test_catalog_shapes():
    assert clique(4).num_edges == 6
    assert chain(5).num_edges == 4
    assert cycle(5).num_edges == 5
    assert star(4).num_edges == 4


def test_catalog_validation():
    with pytest.raises(PatternError):
        clique(1)
    with pytest.raises(PatternError):
        chain(1)
    with pytest.raises(PatternError):
        cycle(2)
    with pytest.raises(PatternError):
        star(0)
