"""Tests for the ported systems (k-Automine / k-GraphPi) and apps."""

import pytest

from repro.analysis import count_embeddings_brute_force
from repro.cluster import ClusterConfig
from repro.core import EngineConfig
from repro.errors import ConfigurationError
from repro.patterns import Pattern, chain, clique
from repro.patterns.canonical import canonical_code
from repro.patterns.catalog import motifs
from repro.systems import (
    KAutomine,
    KGraphPi,
    clique_count,
    motif_count,
    triangle_count,
)


@pytest.fixture(scope="module")
def systems(small_random_graph):
    config = ClusterConfig(num_machines=4, memory_bytes=64 << 20)
    return (
        KAutomine(small_random_graph, config, graph_name="rnd"),
        KGraphPi(small_random_graph, config, graph_name="rnd"),
    )


def test_triangle_count_both_systems(systems, small_random_graph):
    expected = count_embeddings_brute_force(small_random_graph, clique(3))
    for system in systems:
        report = triangle_count(system)
        assert report.counts == expected
        assert report.app == "TC"
        assert report.graph_name == "rnd"


def test_clique_count(systems, small_random_graph):
    expected = count_embeddings_brute_force(small_random_graph, clique(4))
    for system in systems:
        assert clique_count(system, 4).counts == expected


def test_oriented_clique_count_matches(systems, small_random_graph):
    expected = count_embeddings_brute_force(small_random_graph, clique(3))
    for system in systems:
        report = triangle_count(system, oriented=True)
        assert report.counts == expected


def test_oriented_reduces_traffic(systems):
    """Orientation halves adjacency and shrinks candidate sets."""
    system = systems[0]
    plain = triangle_count(system)
    oriented = triangle_count(system, oriented=True)
    assert oriented.network_bytes < plain.network_bytes


def test_orientation_rejected_for_non_cliques(systems):
    with pytest.raises(ConfigurationError):
        systems[0].count_pattern(chain(3), oriented=True)
    with pytest.raises(ConfigurationError):
        systems[0].count_pattern(clique(3), induced=True, oriented=True)


def test_motif_count_matches_brute_force(systems, small_random_graph):
    per_pattern = {
        canonical_code(p): count_embeddings_brute_force(
            small_random_graph, p, induced=True
        )
        for p in motifs(3)
    }
    for system in systems:
        report = motif_count(system, 3)
        assert report.counts == per_pattern


def test_motif_counts_sum_rule(systems, small_random_graph):
    """Induced size-3 motif counts sum to C(n,3) connected triples."""
    report = motif_count(systems[0], 3)
    total = sum(report.counts.values())
    # triangles + wedges = all connected 3-vertex subsets
    tri = count_embeddings_brute_force(small_random_graph, clique(3))
    wedge = count_embeddings_brute_force(
        small_random_graph, chain(3), induced=True
    )
    assert total == tri + wedge


def test_systems_agree_with_each_other(systems):
    a, g = systems
    assert triangle_count(a).counts == triangle_count(g).counts
    assert motif_count(a, 3).counts == motif_count(g, 3).counts


def test_mni_supports(systems, small_random_graph):
    patterns = [Pattern(2, [(0, 1)])]
    for system in systems:
        supports, report = system.mni_supports(patterns)
        # unlabeled single edge: every non-isolated vertex is in the image
        non_isolated = sum(
            1 for v in small_random_graph.vertices()
            if small_random_graph.degree(v) > 0
        )
        assert supports == [non_isolated]
        assert report.simulated_seconds > 0


def test_engine_config_respected(small_random_graph):
    system = KAutomine(
        small_random_graph,
        ClusterConfig(num_machines=2),
        EngineConfig(vcs=False, hds=False),
    )
    assert system.engine.config.vcs is False
    report = triangle_count(system)
    assert report.counts == count_embeddings_brute_force(
        small_random_graph, clique(3)
    )


def test_system_names():
    from repro.graph.generators import erdos_renyi

    g = erdos_renyi(20, 40, seed=0)
    assert KAutomine(g).name == "k-automine"
    assert KGraphPi(g).name == "k-graphpi"


def test_oriented_engine_cached(systems):
    system = systems[0]
    engine1 = system._oriented_engine()
    engine2 = system._oriented_engine()
    assert engine1 is engine2
