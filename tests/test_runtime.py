"""Tests for run reports and formatting helpers."""

import pytest

from repro.analysis.report import ExperimentResult, format_cell
from repro.core.runtime import RunReport, format_bytes, format_seconds
from repro.systems.base import merge_reports


def test_format_seconds_units():
    assert format_seconds(0.0352) == "35.2ms"
    assert format_seconds(2.5) == "2.50s"
    assert format_seconds(7200.0) == "2.00h"


def test_format_bytes_units():
    assert format_bytes(512) == "512.0B"
    assert format_bytes(33.8 * 1024**3) == "33.8GB"
    assert format_bytes(4.4 * 1024**4) == "4.4TB"


def _report(seconds=1.0, **kwargs):
    defaults = dict(
        system="khuzdul", app="TC", graph_name="g", counts=10,
        simulated_seconds=seconds,
    )
    defaults.update(kwargs)
    return RunReport(**defaults)


def test_speedup_over():
    fast = _report(seconds=1.0)
    slow = _report(seconds=19.0)
    assert fast.speedup_over(slow) == pytest.approx(19.0)
    assert slow.speedup_over(fast) == pytest.approx(1 / 19.0)


def test_breakdown_fractions_sum_to_one():
    report = _report(breakdown={"compute": 3.0, "network": 1.0})
    fractions = report.breakdown_fractions()
    assert sum(fractions.values()) == pytest.approx(1.0)
    assert fractions["compute"] == pytest.approx(0.75)


def test_breakdown_fractions_empty():
    assert _report(breakdown={}).breakdown_fractions() == {}


def test_describe_contains_fields():
    text = _report().describe()
    assert "khuzdul" in text and "TC" in text and "count=10" in text


def test_merge_reports_sums_phases():
    a = _report(seconds=1.0, network_bytes=10,
                breakdown={"compute": 1.0}, machine_seconds=[1.0, 0.5],
                peak_memory_bytes=100)
    b = _report(seconds=2.0, network_bytes=30,
                breakdown={"compute": 1.5, "network": 0.5},
                machine_seconds=[2.0, 1.0], peak_memory_bytes=300)
    merged = merge_reports([a, b], "sys", "FSM", "g", counts=5)
    assert merged.simulated_seconds == pytest.approx(3.0)
    assert merged.network_bytes == 40
    assert merged.breakdown["compute"] == pytest.approx(2.5)
    assert merged.machine_seconds == [3.0, 1.5]
    assert merged.peak_memory_bytes == 300
    assert merged.counts == 5


def test_merge_reports_empty():
    merged = merge_reports([], "sys", "app", "g")
    assert merged.simulated_seconds == 0.0


# ----------------------------------------------------------------------
# experiment result tables
# ----------------------------------------------------------------------
def _table():
    return ExperimentResult(
        "Table X",
        "demo",
        ["app", "time", "traffic"],
        [
            {"app": "TC", "time": 0.5, "traffic": ("bytes", 2048)},
            {"app": "4-CC", "time": "CRASHED", "traffic": None},
        ],
        notes=["a note"],
    )


def test_format_cell_kinds():
    assert format_cell(None) == "-"
    assert format_cell("CRASHED") == "CRASHED"
    assert format_cell(1.5) == "1.50s"
    assert format_cell(("bytes", 1024)) == "1.0KB"
    assert format_cell(42) == "42"


def test_experiment_format_contains_rows_and_notes():
    text = _table().format()
    assert "Table X" in text
    assert "CRASHED" in text
    assert "2.0KB" in text
    assert "note: a note" in text


def test_experiment_markdown():
    md = _table().to_markdown()
    assert md.startswith("### Table X")
    assert "| TC |" in md or "| TC " in md
    assert "*Note: a note*" in md


def test_row_value_selector():
    table = _table()
    assert table.row_value("time", app="TC") == 0.5
    with pytest.raises(KeyError):
        table.row_value("time", app="nonexistent")
