"""Tests for edge-label support.

The paper notes Khuzdul "supports vertex labels, but the edge label
support can be added without fundamental difficulty" — this extension
adds it end to end: graph storage, pattern definition, isomorphism,
canonical codes, schedules, and the candidate kernel.
"""

import numpy as np
import pytest

from repro.analysis import count_embeddings_brute_force
from repro.cluster import Cluster, ClusterConfig
from repro.core import KhuzdulEngine
from repro.errors import GraphFormatError, PatternError
from repro.graph import from_edges
from repro.patterns import Pattern, are_isomorphic, automorphisms
from repro.patterns.canonical import canonical_code, canonical_form
from repro.patterns.schedule import automine_schedule, graphpi_schedule


@pytest.fixture(scope="module")
def elabeled_graph():
    rng = np.random.default_rng(3)
    edges = [
        (u, v) for u in range(40) for v in range(u + 1, 40)
        if rng.random() < 0.22
    ]
    labels = [int(rng.integers(0, 3)) for _ in edges]
    return from_edges(edges, edge_labels=labels)


# ----------------------------------------------------------------------
# graph storage
# ----------------------------------------------------------------------
def test_edge_label_lookup_symmetric():
    g = from_edges([(0, 1), (1, 2)], edge_labels=[5, 7])
    assert g.edge_label(0, 1) == 5
    assert g.edge_label(1, 0) == 5
    assert g.edge_label(2, 1) == 7


def test_edge_label_missing_edge_raises():
    g = from_edges([(0, 1)], edge_labels=[1])
    with pytest.raises(KeyError):
        g.edge_label(0, 2)


def test_unlabeled_graph_edge_label_zero():
    g = from_edges([(0, 1)])
    assert g.edge_label(0, 1) == 0
    assert g.edge_label_slice(0) is None


def test_edge_label_slice_alignment(elabeled_graph):
    g = elabeled_graph
    for v in range(0, 40, 7):
        nbrs = g.neighbors(v)
        slice_ = g.edge_label_slice(v)
        for i, u in enumerate(nbrs):
            assert slice_[i] == g.edge_label(v, int(u))


def test_edge_labels_survive_duplicate_collapse():
    g = from_edges([(0, 1), (1, 0)], edge_labels=[4, 9])
    assert g.edge_label(0, 1) == 4  # first occurrence wins


def test_edge_labels_length_validation():
    with pytest.raises(GraphFormatError):
        from_edges([(0, 1), (1, 2)], edge_labels=[1])


def test_edge_labels_in_size_bytes():
    plain = from_edges([(0, 1), (1, 2)])
    labeled = from_edges([(0, 1), (1, 2)], edge_labels=[1, 2])
    assert labeled.size_bytes() > plain.size_bytes()


def test_edge_labels_in_equality():
    a = from_edges([(0, 1)], edge_labels=[1])
    b = from_edges([(0, 1)], edge_labels=[2])
    c = from_edges([(0, 1)])
    assert a != b
    assert a != c


# ----------------------------------------------------------------------
# patterns
# ----------------------------------------------------------------------
def test_pattern_edge_labels_normalized():
    p = Pattern(3, [(0, 1), (1, 2)], edge_labels={(1, 0): 5, (1, 2): 7})
    assert p.edge_label(0, 1) == 5
    assert p.edge_label(2, 1) == 7


def test_pattern_edge_label_validation():
    with pytest.raises(PatternError):
        Pattern(3, [(0, 1)], edge_labels={(0, 2): 1})  # non-existent edge
    with pytest.raises(PatternError):
        Pattern(3, [(0, 1), (1, 2)], edge_labels={(0, 1): 1})  # missing


def test_pattern_edge_labels_in_equality_and_hash():
    a = Pattern(2, [(0, 1)], edge_labels={(0, 1): 1})
    b = Pattern(2, [(0, 1)], edge_labels={(0, 1): 1})
    c = Pattern(2, [(0, 1)], edge_labels={(0, 1): 2})
    assert a == b and hash(a) == hash(b)
    assert a != c


def test_edge_labels_break_automorphisms():
    unlabeled = Pattern(3, [(0, 1), (1, 2)])
    labeled = Pattern(3, [(0, 1), (1, 2)],
                      edge_labels={(0, 1): 1, (1, 2): 2})
    symmetric = Pattern(3, [(0, 1), (1, 2)],
                        edge_labels={(0, 1): 1, (1, 2): 1})
    assert len(automorphisms(unlabeled)) == 2
    assert len(automorphisms(labeled)) == 1
    assert len(automorphisms(symmetric)) == 2


def test_edge_labeled_isomorphism():
    a = Pattern(3, [(0, 1), (1, 2)], edge_labels={(0, 1): 1, (1, 2): 2})
    b = Pattern(3, [(0, 2), (2, 1)], edge_labels={(0, 2): 1, (2, 1): 2})
    c = Pattern(3, [(0, 1), (1, 2)], edge_labels={(0, 1): 2, (1, 2): 2})
    assert are_isomorphic(a, b)
    assert not are_isomorphic(a, c)


def test_edge_labeled_canonical_codes():
    a = Pattern(3, [(0, 1), (1, 2)], edge_labels={(0, 1): 1, (1, 2): 2})
    b = a.relabel([2, 1, 0])
    c = Pattern(3, [(0, 1), (1, 2)], edge_labels={(0, 1): 2, (1, 2): 2})
    assert canonical_code(a) == canonical_code(b)
    assert canonical_code(a) != canonical_code(c)
    assert are_isomorphic(a, canonical_form(a))


def test_relabel_moves_edge_labels():
    p = Pattern(3, [(0, 1), (1, 2)], edge_labels={(0, 1): 5, (1, 2): 9})
    q = p.relabel([2, 0, 1])  # 0->2, 1->0, 2->1
    assert q.edge_label(2, 0) == 5
    assert q.edge_label(0, 1) == 9


def test_growth_of_edge_labeled_patterns_rejected():
    p = Pattern(2, [(0, 1)], edge_labels={(0, 1): 1})
    with pytest.raises(PatternError):
        p.add_vertex([0])
    with pytest.raises(PatternError):
        Pattern(3, [(0, 1), (1, 2)],
                edge_labels={(0, 1): 1, (1, 2): 1}).add_edge(0, 2)


# ----------------------------------------------------------------------
# end-to-end counting
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "edges,edge_labels",
    [
        ([(0, 1)], {(0, 1): 1}),
        ([(0, 1), (1, 2)], {(0, 1): 1, (1, 2): 2}),
        ([(0, 1), (1, 2)], {(0, 1): 1, (1, 2): 1}),
        ([(0, 1), (1, 2), (0, 2)], {(0, 1): 0, (1, 2): 1, (0, 2): 2}),
        ([(0, 1), (1, 2), (0, 2)], {(0, 1): 1, (1, 2): 1, (0, 2): 1}),
    ],
    ids=["edge", "path-12", "path-11", "tri-012", "tri-111"],
)
def test_engine_counts_edge_labeled_patterns(elabeled_graph, edges, edge_labels):
    size = max(max(e) for e in edges) + 1
    pattern = Pattern(size, edges, edge_labels=edge_labels)
    expected = count_embeddings_brute_force(elabeled_graph, pattern)
    cluster = Cluster(elabeled_graph, ClusterConfig(num_machines=3))
    for schedule_fn in (automine_schedule, graphpi_schedule):
        report = KhuzdulEngine(cluster).run(schedule_fn(pattern))
        assert report.counts == expected


def test_edge_label_counts_partition_plain_count(elabeled_graph):
    """Summing over all label combinations recovers the unlabeled count."""
    cluster = Cluster(elabeled_graph, ClusterConfig(num_machines=3))
    engine = KhuzdulEngine(cluster)
    plain = engine.run(automine_schedule(Pattern(2, [(0, 1)]))).counts
    total = 0
    for label in range(3):
        pattern = Pattern(2, [(0, 1)], edge_labels={(0, 1): label})
        total += engine.run(automine_schedule(pattern)).counts
    assert total == plain


def test_required_label_on_unlabeled_graph_matches_nothing(small_random_graph):
    pattern = Pattern(2, [(0, 1)], edge_labels={(0, 1): 3})
    cluster = Cluster(small_random_graph, ClusterConfig(num_machines=2))
    report = KhuzdulEngine(cluster).run(automine_schedule(pattern))
    assert report.counts == 0
