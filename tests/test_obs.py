"""Tests for the observability layer (repro.obs) and its engine wiring."""

import json

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.core import EngineConfig, KhuzdulEngine
from repro.obs import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_OBS,
    MetricsRegistry,
    NullRegistry,
    Observability,
    Span,
    Tracer,
    names,
)
from repro.obs.tracer import PHASE_ATTRS
from repro.patterns import clique
from repro.patterns.schedule import automine_schedule


def _engine(graph, machines=4, obs=None, **config):
    cluster = Cluster(
        graph, ClusterConfig(num_machines=machines, memory_bytes=64 << 20)
    )
    return KhuzdulEngine(cluster, EngineConfig(**config), obs=obs)


# ---------------------------------------------------------------------
# registry semantics
# ---------------------------------------------------------------------
def test_counter_series_are_independent_and_cumulative():
    registry = MetricsRegistry()
    registry.counter(names.FETCH_LOCAL, machine=0).inc()
    registry.counter(names.FETCH_LOCAL, machine=0).inc(4)
    registry.counter(names.FETCH_LOCAL, machine=1).inc(2)
    assert registry.counter_value(names.FETCH_LOCAL, machine=0) == 5
    assert registry.counter_value(names.FETCH_LOCAL, machine=1) == 2
    assert registry.total(names.FETCH_LOCAL) == 7
    # the same (name, labels) pair always resolves to the same instrument
    assert registry.counter(names.FETCH_LOCAL, machine=0) is registry.counter(
        names.FETCH_LOCAL, machine=0
    )


def test_histogram_summary_statistics():
    registry = MetricsRegistry()
    hist = registry.histogram(names.CHUNK_ITEMS)
    for value in (4, 1, 7):
        hist.observe(value)
    assert hist.count == 3
    assert hist.total == 12
    assert hist.min == 1
    assert hist.max == 7
    assert hist.mean == 4
    assert registry.histogram(names.CHUNK_ITEMS).summary()["count"] == 3


def test_empty_histogram_summary_is_zeroed():
    empty = MetricsRegistry().histogram(names.CHUNK_ITEMS)
    assert empty.summary() == {
        "count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
    }


def test_gauge_keeps_last_value():
    gauge = MetricsRegistry().gauge(names.CACHE_USED_BYTES, machine=0)
    gauge.set(10)
    gauge.set(3)
    assert gauge.value == 3


def test_scope_preapplies_labels():
    registry = MetricsRegistry()
    scope = registry.scope(machine=2)
    scope.counter(names.HDS_PROBES).inc(9)
    assert registry.counter_value(names.HDS_PROBES, machine=2) == 9
    nested = scope.scope(extra="x")
    nested.counter(names.HDS_HITS).inc()
    assert registry.counter_value(names.HDS_HITS, machine=2, extra="x") == 1


def test_strict_registry_rejects_undeclared_names():
    registry = MetricsRegistry()
    with pytest.raises(KeyError, match="not declared"):
        registry.counter("bogus.metric")
    # declared, but as a counter — asking for a histogram is a bug
    with pytest.raises(TypeError, match="declared as a counter"):
        registry.histogram(names.FETCH_LOCAL)
    # non-strict registries are for scratch use only
    MetricsRegistry(strict=False).counter("bogus.metric").inc()


def test_every_spec_name_creates_its_declared_kind():
    registry = MetricsRegistry()
    factories = {
        "counter": registry.counter,
        "gauge": registry.gauge,
        "histogram": registry.histogram,
    }
    for name, spec in names.SPECS.items():
        factories[spec.kind](name)
    assert registry.emitted_names() == set(names.SPECS)


def test_null_registry_hands_out_shared_noop_instruments():
    registry = NullRegistry()
    assert not registry.enabled
    assert registry.counter(names.FETCH_LOCAL, machine=0) is NULL_COUNTER
    assert registry.gauge(names.CACHE_USED_BYTES) is NULL_GAUGE
    assert registry.histogram(names.CHUNK_ITEMS) is NULL_HISTOGRAM
    NULL_COUNTER.inc(5)
    NULL_GAUGE.set(5)
    NULL_HISTOGRAM.observe(5)
    assert NULL_COUNTER.value == 0
    assert NULL_GAUGE.value == 0
    assert NULL_HISTOGRAM.count == 0
    # even undeclared names are fine: nothing is created
    registry.counter("bogus.metric").inc()
    assert not NULL_OBS.enabled


def test_snapshot_shape():
    registry = MetricsRegistry()
    registry.counter(names.FETCH_LOCAL, machine=0).inc(3)
    registry.histogram(names.CHUNK_ITEMS, machine=0).observe(2.0)
    registry.gauge(names.CACHE_USED_BYTES, machine=0).set(64)
    snap = registry.snapshot()
    assert snap["counters"][names.FETCH_LOCAL] == {"machine=0": 3}
    assert snap["gauges"][names.CACHE_USED_BYTES] == {"machine=0": 64}
    assert snap["histograms"][names.CHUNK_ITEMS]["machine=0"]["count"] == 1
    registry.reset()
    assert registry.snapshot() == {
        "counters": {}, "gauges": {}, "histograms": {},
    }


# ---------------------------------------------------------------------
# tracer semantics
# ---------------------------------------------------------------------
def test_tracer_phase_aggregation_survives_span_cap():
    tracer = Tracer(max_spans=2)
    for chunk in range(5):
        tracer.record(Span(
            "chunk", machine=0, level=1, chunk=chunk,
            attrs={"compute": 1.0, "network": 0.5},
        ))
    assert len(tracer.spans) == 2
    assert tracer.dropped == 3
    # the aggregation saw all five spans
    phases = tracer.phase_seconds()[0]
    assert phases["compute"] == pytest.approx(5.0)
    assert phases["network"] == pytest.approx(2.5)
    summary = tracer.summary()
    assert summary["num_spans"] == 2
    assert summary["dropped_spans"] == 3
    assert summary["spans_by_name"] == {"chunk": 2}
    tracer.reset()
    assert tracer.phase_seconds() == {}


def test_span_export_roundtrips_through_json():
    tracer = Tracer()
    tracer.record(Span("batch", machine=1, level=2, chunk=3, batch=4,
                       start=0.5, attrs={"requests": 7}))
    exported = json.loads(json.dumps(tracer.export()))
    assert exported == [{
        "name": "batch", "machine": 1, "level": 2, "chunk": 3,
        "batch": 4, "start": 0.5, "attrs": {"requests": 7},
    }]


# ---------------------------------------------------------------------
# engine wiring
# ---------------------------------------------------------------------
def test_noop_and_instrumented_runs_are_identical(small_random_graph):
    schedule = automine_schedule(clique(4))
    plain = _engine(small_random_graph).run(schedule)
    obs = Observability()
    traced = _engine(small_random_graph, obs=obs).run(schedule)
    assert traced.counts == plain.counts
    assert traced.simulated_seconds == plain.simulated_seconds
    assert traced.network_bytes == plain.network_bytes
    assert traced.breakdown == plain.breakdown
    assert traced.machine_breakdowns == plain.machine_breakdowns
    assert traced.extra["hds"] == plain.extra["hds"]
    assert traced.extra["fetch_sources"] == plain.extra["fetch_sources"]
    # only the obs summary differs
    assert "obs" in traced.extra and "obs" not in plain.extra


def test_chunk_spans_reproduce_clock_buckets(small_random_graph):
    obs = Observability()
    report = _engine(small_random_graph, obs=obs).run(
        automine_schedule(clique(4))
    )
    phases = obs.tracer.phase_seconds()
    assert set(phases) == set(range(report.num_machines))
    for machine, buckets in enumerate(report.machine_breakdowns):
        for phase in PHASE_ATTRS:
            assert phases[machine][phase] == pytest.approx(
                buckets[phase], abs=1e-12
            ), f"machine {machine} phase {phase}"


def test_counters_match_report_aggregates(skewed_graph):
    obs = Observability()
    report = _engine(skewed_graph, obs=obs).run(automine_schedule(clique(3)))
    registry = obs.registry
    fetch = report.extra["fetch_sources"]
    assert registry.total(names.FETCH_LOCAL) == fetch["local"]
    assert registry.total(names.FETCH_REMOTE) == fetch["remote"]
    assert registry.total(names.FETCH_CACHE) == fetch["cache"]
    assert registry.total(names.FETCH_SHARED) == fetch["shared"]
    assert registry.total(names.CHUNKS_CREATED) == report.extra["chunks"]
    assert registry.total(names.NET_REQUESTS) == report.extra["requests"]
    assert registry.total(names.MATCHES_EMITTED) == report.counts
    assert registry.total(names.NET_WIRE_BYTES) == report.network_bytes
    assert registry.total(names.TIME_SERVE) == pytest.approx(
        sum(b["serve"] for b in report.machine_breakdowns)
    )
    # every emitted name is part of the documented surface
    assert registry.emitted_names() <= set(names.SPECS)


def test_hds_stats_not_double_counted(skewed_graph):
    """The engine builds a fresh scheduler (and HDS table) per
    (schedule, machine); summing their stats must count each probe
    exactly once — i.e. match the per-machine registry series exactly
    and satisfy the probe identity."""
    obs = Observability()
    report = _engine(skewed_graph, obs=obs).run(automine_schedule(clique(3)))
    hds = report.extra["hds"]
    assert hds["probes"] > 0, "test graph produced no HDS traffic"
    registry = obs.registry
    assert registry.total(names.HDS_PROBES) == hds["probes"]
    assert registry.total(names.HDS_HITS) == hds["hits"]
    assert registry.total(names.HDS_DROPS) == hds["drops"]
    # every probe is exactly one of hit / fresh insert / collision drop
    assert hds["probes"] == (
        hds["hits"]
        + registry.total(names.HDS_INSERTS)
        + hds["drops"]
    )
    # shared fetches are exactly the HDS hits
    assert registry.total(names.FETCH_SHARED) == hds["hits"]


def test_obs_summary_resets_between_runs(small_random_graph):
    obs = Observability()
    engine = _engine(small_random_graph, obs=obs)
    first = engine.run(automine_schedule(clique(3)))
    second = engine.run(automine_schedule(clique(3)))
    # the second summary describes one run, not two
    assert (
        second.extra["obs"]["num_spans"] == first.extra["obs"]["num_spans"]
    )
    assert obs.registry.total(names.CHUNKS_CREATED) == second.extra["chunks"]


# ---------------------------------------------------------------------
# CLI output (golden shape)
# ---------------------------------------------------------------------
def _key_paths(value, prefix=""):
    """Sorted list of key paths of a JSON document (values ignored)."""
    if not isinstance(value, dict):
        return [prefix or "."]
    paths = []
    for key, child in value.items():
        paths.extend(_key_paths(child, f"{prefix}/{key}"))
    return sorted(paths)


def test_metrics_json_golden_shape(capsys):
    from pathlib import Path

    from repro.__main__ import main

    code = main([
        "count", "--graph", "mico", "--scale", "0.3",
        "--pattern", "clique3", "--machines", "2", "--metrics", "json",
    ])
    assert code == 0
    document = json.loads(capsys.readouterr().out)
    assert set(document) == {"report", "metrics", "trace"}
    golden = Path(__file__).parent / "data" / "metrics_json_shape.txt"
    expected = [
        line for line in golden.read_text().splitlines()
        if line and not line.startswith("#")
    ]
    assert _key_paths(document) == expected, (
        "the --metrics json document shape changed; if intentional, "
        "regenerate tests/data/metrics_json_shape.txt (see its header)"
    )


def test_metrics_table_prints_per_machine_breakdown(capsys):
    from repro.__main__ import main

    code = main([
        "count", "--graph", "mico", "--scale", "0.3",
        "--pattern", "clique3", "--machines", "2", "--metrics", "table",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "per-machine breakdown" in out
    assert "cache: hit-rate=" in out
    assert "network: traffic=" in out
    assert "counters (summed over machines):" in out
    assert names.FETCH_LOCAL in out
