"""Tests for frequent subgraph mining with MNI support."""

import pytest

from repro.baselines import SingleMachine
from repro.cluster import ClusterConfig
from repro.errors import ConfigurationError
from repro.graph import from_edges
from repro.patterns import Pattern
from repro.patterns.canonical import canonical_code
from repro.systems import KAutomine, run_fsm
from repro.systems.fsm import _shrink_codes


def _labeled_triangle_graph():
    """Two labeled triangles sharing structure, plus a pendant edge.

    Vertices 0,1,2 labeled (0,0,1) form a triangle; vertices 3,4,5
    labeled (0,0,1) form another; vertex 6 (label 2) hangs off vertex 0.
    """
    edges = [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5), (0, 6)]
    labels = [0, 0, 1, 0, 0, 1, 2]
    return from_edges(edges, labels=labels)


def test_fsm_known_small_graph():
    g = _labeled_triangle_graph()
    result = run_fsm(SingleMachine(g), threshold=2)
    frequent_codes = {canonical_code(p): s for p, s in result.frequent}
    # the 0-0 edge appears in both triangles: MNI support 4
    edge_00 = canonical_code(Pattern(2, [(0, 1)], (0, 0)))
    assert frequent_codes[edge_00] == 4
    # the labeled triangle (0,0,1) appears twice: support 2
    tri = canonical_code(Pattern(3, [(0, 1), (0, 2), (1, 2)], (0, 0, 1)))
    assert frequent_codes[tri] == 2
    # the pendant (0,2) edge appears once: not frequent at threshold 2
    edge_02 = canonical_code(Pattern(2, [(0, 1)], (0, 2)))
    assert edge_02 not in frequent_codes


def test_fsm_threshold_monotonicity(labeled_graph):
    system = SingleMachine(labeled_graph)
    low = run_fsm(system, threshold=4)
    high = run_fsm(system, threshold=10)
    low_codes = {canonical_code(p) for p, _ in low.frequent}
    high_codes = {canonical_code(p) for p, _ in high.frequent}
    assert high_codes <= low_codes


def test_fsm_supports_anti_monotone(labeled_graph):
    """A pattern's support never exceeds any subpattern's support."""
    result = run_fsm(SingleMachine(labeled_graph), threshold=3)
    by_code = {canonical_code(p): s for p, s in result.frequent}
    all_supports = result.all_supports
    for pattern, support in result.frequent:
        if pattern.num_edges < 2:
            continue
        for sub_code in _shrink_codes(pattern):
            if sub_code in all_supports:
                assert all_supports[sub_code] >= support


def test_fsm_max_edges_respected(labeled_graph):
    result = run_fsm(SingleMachine(labeled_graph), threshold=3, max_edges=2)
    assert all(p.num_edges <= 2 for p, _ in result.frequent)


def test_fsm_cross_system_agreement(labeled_graph):
    single = run_fsm(SingleMachine(labeled_graph), threshold=6)
    distributed = run_fsm(
        KAutomine(labeled_graph, ClusterConfig(num_machines=4)), threshold=6
    )
    as_set = lambda r: {(canonical_code(p), s) for p, s in r.frequent}
    assert as_set(single) == as_set(distributed)


def test_fsm_requires_labels(small_random_graph):
    with pytest.raises(ConfigurationError):
        run_fsm(SingleMachine(small_random_graph), threshold=3)


def test_fsm_report_aggregates(labeled_graph):
    result = run_fsm(SingleMachine(labeled_graph), threshold=6)
    assert result.report.simulated_seconds > 0
    assert result.report.counts == len(result.frequent)
    assert result.rounds >= 1
    assert result.candidates_evaluated >= len(result.frequent)


def test_fsm_impossible_threshold(labeled_graph):
    result = run_fsm(SingleMachine(labeled_graph), threshold=10**9)
    assert result.frequent == []
    assert result.rounds == 1  # nothing frequent: no growth rounds


def test_shrink_codes_drop_isolated_vertex():
    # removing the pendant edge of a tailed triangle must drop vertex 3
    p = Pattern(4, [(0, 1), (0, 2), (1, 2), (2, 3)], (0, 0, 0, 1))
    codes = _shrink_codes(p)
    triangle = canonical_code(Pattern(3, [(0, 1), (0, 2), (1, 2)], (0, 0, 0)))
    assert triangle in codes


def test_shrink_codes_keep_connected_only():
    # removing the middle edge of a path disconnects it: not a candidate
    p = Pattern(4, [(0, 1), (1, 2), (2, 3)], (0, 0, 0, 0))
    codes = _shrink_codes(p)
    assert len(codes) == 2  # only the two end-edge removals survive
