"""Tests for the horizontal data sharing hash table (Section 5.2)."""

from repro.core.hds import HorizontalShareTable, ProbeOutcome


def test_insert_then_hit():
    table = HorizontalShareTable(64)
    assert table.probe(5) is ProbeOutcome.INSERTED
    assert table.probe(5) is ProbeOutcome.HIT
    assert table.hits == 1
    assert table.inserts == 1


def test_collisions_are_dropped_not_chained():
    table = HorizontalShareTable(1)  # everything collides
    assert table.probe(1) is ProbeOutcome.INSERTED
    assert table.probe(2) is ProbeOutcome.DROPPED
    assert table.probe(2) is ProbeOutcome.DROPPED  # never inserted
    assert table.probe(1) is ProbeOutcome.HIT  # original entry intact
    assert table.drops == 2


def test_clear_resets_slots_keeps_stats():
    table = HorizontalShareTable(64)
    table.probe(1)
    table.probe(1)
    table.clear()
    assert table.probe(1) is ProbeOutcome.INSERTED
    assert table.hits == 1  # stats survive for reporting
    assert table.probes == 3


def test_distinct_vertices_distinct_slots_mostly():
    table = HorizontalShareTable(4096)
    outcomes = [table.probe(v) for v in range(200)]
    inserted = sum(1 for o in outcomes if o is ProbeOutcome.INSERTED)
    # multiplicative hashing into 4096 slots: few collisions among 200
    assert inserted >= 190


def test_minimum_one_slot():
    table = HorizontalShareTable(0)
    assert table.num_slots == 1
    table.probe(1)
    assert table.probe(99) is ProbeOutcome.DROPPED


def test_dedup_rate_reflects_requests():
    table = HorizontalShareTable(1024)
    for _ in range(10):
        table.probe(42)
    assert table.hits == 9
    assert table.inserts == 1
