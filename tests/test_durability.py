"""Durable checkpoint/resume (docs/faults.md, "Durability").

Covers the on-disk session itself (manifest fingerprinting, log codec,
truncation tolerance) and the engine-level contract: a run checkpointed
under ``--checkpoint-dir`` and resumed with ``--resume`` reproduces the
uninterrupted run's counts bit-identically. Real ``SIGKILL``
mid-run scenarios live in ``tests/test_exec.py`` (subprocess-based,
marked ``exec_faults``) and ``benchmarks/chaos.py``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cluster import ClusterConfig
from repro.core import EngineConfig
from repro.errors import ConfigurationError
from repro.faults import FaultPlan
from repro.faults.durability import (
    CheckpointSession,
    _format_log_line,
    _parse_log_line,
    run_manifest,
)
from repro.graph import dataset
from repro.patterns import catalog
from repro.systems import KAutomine

pytestmark = pytest.mark.faults

_CLUSTER = ClusterConfig(num_machines=4)


def _mico():
    return dataset("mico", scale=0.3)


def _manifest(graph=None, config=None, pattern=None):
    graph = graph if graph is not None else _mico()
    config = config or EngineConfig()
    system = KAutomine(graph, _CLUSTER, engine_config=config,
                       graph_name="mico")
    schedule = system.build_schedule(pattern or catalog.clique(3),
                                     induced=False)
    return run_manifest(system.engine.cluster, [schedule], config,
                        "k-automine", "test", "mico")


# ======================================================================
# log line codec
# ======================================================================
def test_log_line_codec_round_trip():
    line = _format_log_line(2, 3, 17, 940)
    assert line.endswith(b"\n")
    assert _parse_log_line(line.rstrip(b"\n")) == (2, 3, 17, 940)


@pytest.mark.parametrize("corrupt", [
    b"",                                  # empty
    b"deadbeef",                          # no body
    b"nothexno {}",                       # unparseable CRC
    b'00000000 {"p":1,"m":0,"r":2,"c":3}',  # CRC mismatch
    b'xxxxxxxx {"p":1,"m":0,"r":2,"c":3}',  # bad CRC text
])
def test_log_line_codec_rejects_corruption(corrupt):
    assert _parse_log_line(corrupt) is None


def test_log_line_codec_rejects_torn_tail():
    line = _format_log_line(0, 1, 5, 123).rstrip(b"\n")
    assert _parse_log_line(line[:-3]) is None  # kill mid-append


# ======================================================================
# session: record / flush / resume
# ======================================================================
def test_session_round_trip(tmp_path):
    directory = str(tmp_path)
    manifest = _manifest()
    session = CheckpointSession(directory, manifest, num_patterns=1)
    session.record(0, 0, 2, 10)
    session.record(0, 0, 5, 25)   # absolute cursor supersedes
    session.record(0, 2, 3, 7)
    session.finalize()
    assert session.records_written == 3
    assert session.flushes >= 1

    resumed = CheckpointSession(directory, manifest, num_patterns=1,
                                resume=True)
    assert resumed.progress == {(0, 0): (5, 25), (0, 2): (3, 7)}
    assert resumed.counts() == [32]
    assert not resumed.truncated
    assert resumed.stats()["resumed_entries"] == 2


def test_session_cadence_buffers_between_flushes(tmp_path):
    session = CheckpointSession(str(tmp_path), _manifest(),
                                num_patterns=1, every=3)
    session.record(0, 0, 1, 1)
    session.record(0, 0, 2, 2)
    assert session.flushes == 0           # buffered, not yet durable
    assert not os.path.exists(tmp_path / "chunks.log")
    session.record(0, 0, 3, 3)
    assert session.flushes == 1           # third record crossed cadence
    assert session.records_written == 3


def test_resume_of_resume_is_idempotent(tmp_path):
    directory = str(tmp_path)
    manifest = _manifest()
    first = CheckpointSession(directory, manifest, num_patterns=1)
    first.record(0, 1, 4, 40)
    first.finalize()
    second = CheckpointSession(directory, manifest, num_patterns=1,
                               resume=True)
    second.record(0, 1, 9, 90)            # keep going past the resume
    second.finalize()
    third = CheckpointSession(directory, manifest, num_patterns=1,
                              resume=True)
    # absolute cursors: replaying both appended records lands on the
    # later one, no compaction needed
    assert third.progress == {(0, 1): (9, 90)}


# ======================================================================
# stale-manifest rejection
# ======================================================================
def test_resume_refuses_missing_manifest(tmp_path):
    with pytest.raises(ConfigurationError, match="nothing to resume"):
        CheckpointSession(str(tmp_path), _manifest(), num_patterns=1,
                          resume=True)


def test_resume_refuses_stale_manifest(tmp_path):
    directory = str(tmp_path)
    CheckpointSession(directory, _manifest(), num_patterns=1)
    changed_graph = _manifest(graph=dataset("mico", scale=0.2))
    with pytest.raises(ConfigurationError, match="stale checkpoint"):
        CheckpointSession(directory, changed_graph, num_patterns=1,
                          resume=True)
    changed_pattern = _manifest(pattern=catalog.chain(3))
    with pytest.raises(ConfigurationError, match="schedules"):
        CheckpointSession(directory, changed_pattern, num_patterns=1,
                          resume=True)
    changed_knob = _manifest(config=EngineConfig(chunk_bytes=1024))
    with pytest.raises(ConfigurationError, match="chunk_bytes"):
        CheckpointSession(directory, changed_knob, num_patterns=1,
                          resume=True)


def test_resume_refuses_format_mismatch(tmp_path):
    directory = str(tmp_path)
    manifest = _manifest()
    CheckpointSession(directory, manifest, num_patterns=1)
    path = tmp_path / "manifest.json"
    saved = json.loads(path.read_text())
    saved["format"] = 99
    path.write_text(json.dumps(saved))
    with pytest.raises(ConfigurationError, match="format"):
        CheckpointSession(directory, manifest, num_patterns=1,
                          resume=True)


# ======================================================================
# truncation tolerance
# ======================================================================
def test_resume_tolerates_torn_log_tail(tmp_path):
    directory = str(tmp_path)
    manifest = _manifest()
    session = CheckpointSession(directory, manifest, num_patterns=1)
    session.record(0, 0, 3, 30)
    session.record(0, 1, 2, 20)
    session.finalize()
    # a SIGKILL mid-append leaves a torn final line
    with open(tmp_path / "chunks.log", "ab") as handle:
        handle.write(_format_log_line(0, 2, 9, 99)[:-4])

    resumed = CheckpointSession(directory, manifest, num_patterns=1,
                                resume=True)
    assert resumed.truncated
    assert resumed.stats()["log_truncated"]
    # everything before the torn line is trusted, the tail is not
    assert resumed.progress == {(0, 0): (3, 30), (0, 1): (2, 20)}


# ======================================================================
# configuration gates
# ======================================================================
def test_resume_requires_checkpoint_dir():
    with pytest.raises(ConfigurationError, match="resume"):
        EngineConfig(resume=True)


def test_checkpoints_exclude_fault_plans():
    with pytest.raises(ConfigurationError):
        EngineConfig(checkpoint_dir="/tmp/x",
                     faults=FaultPlan.parse("crash:m1@chunk=2"))


def test_checkpoint_every_validated():
    with pytest.raises(ConfigurationError, match="checkpoint_every"):
        EngineConfig(checkpoint_dir="/tmp/x", checkpoint_every=0)


# ======================================================================
# engine-level resume: bit-identical counts
# ======================================================================
def test_inline_resume_skips_completed_chunks(tmp_path):
    graph = _mico()
    oracle = KAutomine(graph, _CLUSTER, graph_name="mico")
    expected = oracle.count_pattern(catalog.clique(3))

    directory = str(tmp_path)
    config = EngineConfig(checkpoint_dir=directory)
    first = KAutomine(graph, _CLUSTER, engine_config=config,
                      graph_name="mico")
    checkpointed = first.count_pattern(catalog.clique(3))
    assert checkpointed.counts == expected.counts
    assert checkpointed.extra["checkpoint"]["records"] > 0

    # resume after the full run: every chunk is skipped, yet the
    # final counts are reproduced bit-identically from the log
    resumed_config = EngineConfig(checkpoint_dir=directory, resume=True)
    second = KAutomine(graph, _CLUSTER, engine_config=resumed_config,
                       graph_name="mico")
    resumed = second.count_pattern(catalog.clique(3))
    assert resumed.counts == expected.counts
    stats = resumed.extra["checkpoint"]
    assert stats["resumed"]
    assert stats["resumed_roots"] > 0


def test_inline_resume_with_udf_state(tmp_path):
    graph = dataset("mico", scale=0.25, labeled=True)
    patterns = [catalog.chain(2), catalog.chain(3)]
    oracle = KAutomine(graph, _CLUSTER, graph_name="mico")
    expected, _ = oracle.mni_supports(patterns)

    directory = str(tmp_path)
    config = EngineConfig(checkpoint_dir=directory)
    first = KAutomine(graph, _CLUSTER, engine_config=config,
                      graph_name="mico")
    got, _ = first.mni_supports(patterns)
    assert got == expected

    resumed_config = EngineConfig(checkpoint_dir=directory, resume=True)
    second = KAutomine(graph, _CLUSTER, engine_config=resumed_config,
                       graph_name="mico")
    resumed, _ = second.mni_supports(patterns)
    # the UDF state came back from the snapshot, not from re-running
    assert resumed == expected


def test_process_backend_resume_counts_identical(tmp_path):
    from repro.exec import ProcessBackend

    graph = _mico()
    oracle = KAutomine(graph, _CLUSTER, graph_name="mico")
    expected = oracle.count_pattern(catalog.clique(3))

    directory = str(tmp_path)
    config = EngineConfig(checkpoint_dir=directory)
    first = KAutomine(graph, _CLUSTER, engine_config=config,
                      graph_name="mico", backend=ProcessBackend(workers=2))
    checkpointed = first.count_pattern(catalog.clique(3))
    assert checkpointed.counts == expected.counts
    assert checkpointed.extra["checkpoint"]["records"] > 0
    # the clean teardown cleared the segment ledger
    assert not os.path.exists(tmp_path / "shm.json")

    # a checkpoint written by the process backend resumes inline — the
    # manifest is backend-independent by design
    resumed_config = EngineConfig(checkpoint_dir=directory, resume=True)
    second = KAutomine(graph, _CLUSTER, engine_config=resumed_config,
                       graph_name="mico")
    resumed = second.count_pattern(catalog.clique(3))
    assert resumed.counts == expected.counts


def test_process_backend_refuses_udf_checkpointing(tmp_path):
    from repro.exec import ProcessBackend

    graph = dataset("mico", scale=0.25, labeled=True)
    config = EngineConfig(checkpoint_dir=str(tmp_path))
    proc = KAutomine(graph, _CLUSTER, engine_config=config,
                     graph_name="mico", backend=ProcessBackend(workers=2))
    with pytest.raises(ConfigurationError, match="checkpoint"):
        proc.mni_supports([catalog.chain(2)])
