"""Tests for the command-line interface (python -m repro)."""

import json

import pytest

from repro.__main__ import _parse_pattern, main
from repro.patterns import catalog


def test_parse_catalog_patterns():
    assert _parse_pattern("clique4") == catalog.clique(4)
    assert _parse_pattern("chain3") == catalog.chain(3)
    assert _parse_pattern("cycle5") == catalog.cycle(5)
    assert _parse_pattern("star3") == catalog.star(3)
    assert _parse_pattern("house") == catalog.house()
    assert _parse_pattern("tailed_triangle") == catalog.tailed_triangle()


def test_parse_explicit_edge_list():
    pattern = _parse_pattern("0-1,1-2,0-2")
    assert pattern == catalog.clique(3)


def test_parse_rejects_garbage():
    with pytest.raises(SystemExit):
        _parse_pattern("dodecahedron")


def test_datasets_command(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "mico" in out and "wdc" in out


def test_count_command(capsys):
    code = main([
        "count", "--graph", "mico", "--scale", "0.3",
        "--pattern", "clique3", "--machines", "2",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "count=" in out
    assert "breakdown" in out


def test_count_oriented(capsys):
    code = main([
        "count", "--graph", "mico", "--scale", "0.3",
        "--pattern", "clique3", "--oriented", "--machines", "2",
    ])
    assert code == 0


def test_motifs_command(capsys):
    code = main([
        "motifs", "--graph", "mico", "--scale", "0.3", "--size", "3",
        "--machines", "2", "--system", "k-graphpi",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "simulated" in out


def test_fsm_command(capsys):
    code = main([
        "fsm", "--graph", "mico", "--scale", "0.3", "--threshold", "25",
        "--machines", "2",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "frequent patterns" in out


def test_experiment_command(capsys):
    code = main(["experiment", "table7", "--scale", "0.15"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Table 7" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


# ---------------------------------------------------------------------
# the serve subcommand (docs/service.md)
# ---------------------------------------------------------------------
SERVE_BASE = ["serve", "--graph", "mico", "--scale", "0.2",
              "--machines", "2", "--cores", "2"]


def _write_trace(tmp_path, lines):
    path = tmp_path / "trace.jsonl"
    path.write_text("\n".join(lines) + "\n")
    return str(path)


def test_serve_happy_path(tmp_path, capsys):
    trace = _write_trace(tmp_path, [
        '{"id": "t", "app": "triangle"}',
        '{"id": "c", "app": "count", "pattern": "clique4"}',
    ])
    code = main(SERVE_BASE + ["--input", trace])
    assert code == 0
    out = capsys.readouterr().out
    assert "service: ready graph=mico" in out
    assert "outcome: OK query=t" in out
    assert "outcome: OK query=c" in out
    assert "service session: 2 queries (ok=2 rejected=0 failed=0)" in out


def test_serve_bad_query_fails_itself_not_the_session(tmp_path, capsys):
    trace = _write_trace(tmp_path, [
        '{"id": "good", "app": "triangle"}',
        "this is not json",
        '{"id": "bad", "pattern": "dodecahedron"}',
    ])
    code = main(SERVE_BASE + ["--input", trace])
    assert code == 1  # rejected queries are fatal outcomes
    out = capsys.readouterr().out
    assert "outcome: OK query=good" in out
    assert out.count("outcome: REJECTED") == 2
    assert "service session: 3 queries (ok=1 rejected=2 failed=0)" in out


def test_serve_json_mode_streams_reports(tmp_path, capsys):
    trace = _write_trace(tmp_path, ['{"id": "t", "app": "triangle"}'])
    code = main(SERVE_BASE + ["--metrics", "json", "--input", trace])
    assert code == 0
    captured = capsys.readouterr()
    lines = [json.loads(line) for line in captured.out.splitlines()
             if line.strip()]
    hello, report, summary = lines
    assert hello["service"] == "ready"
    assert hello["graph"] == "mico" and hello["workers"] == 0
    assert report["id"] == "t" and report["outcome"] == "OK"
    assert report["counts"] == 1562
    assert report["metrics"]["counters"]
    assert summary["service"] == "summary" and summary["ok"] == 1
    assert "service.queries" in summary["metrics"]["counters"]
    # outcome lines move to stderr in json mode
    assert "outcome: OK query=t" in captured.err


@pytest.mark.parametrize("flags, message", [
    (["--workers", "-3"], "workers must be >= 0"),
    (["--memory-kb", "0"], "memory_kb must be positive"),
    (["--resident-mb", "0"], "resident_mb must be positive"),
    (["--scale", "-1"], "scale must be positive"),
    (["--heartbeat", "0"], "heartbeat must be positive"),
])
def test_serve_validates_config_before_reading_queries(
        tmp_path, flags, message):
    trace = _write_trace(tmp_path, ['{"app": "triangle"}'])
    with pytest.raises(SystemExit) as excinfo:
        main(SERVE_BASE + flags + ["--input", trace])
    assert "configuration error" in str(excinfo.value)
    assert message in str(excinfo.value)


def test_serve_missing_input_is_a_configuration_error(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        main(SERVE_BASE + ["--input", str(tmp_path / "no-such-trace")])
    assert "configuration error" in str(excinfo.value)
    assert "cannot read --input" in str(excinfo.value)


def test_serve_rejects_checkpoint_dir_that_is_a_file(tmp_path):
    bogus = tmp_path / "not-a-dir"
    bogus.write_text("occupied")
    with pytest.raises(SystemExit) as excinfo:
        main(SERVE_BASE + ["--checkpoint-dir", str(bogus)])
    assert "configuration error" in str(excinfo.value)
    assert "not a directory" in str(excinfo.value)
