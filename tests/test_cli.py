"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.__main__ import _parse_pattern, main
from repro.patterns import catalog


def test_parse_catalog_patterns():
    assert _parse_pattern("clique4") == catalog.clique(4)
    assert _parse_pattern("chain3") == catalog.chain(3)
    assert _parse_pattern("cycle5") == catalog.cycle(5)
    assert _parse_pattern("star3") == catalog.star(3)
    assert _parse_pattern("house") == catalog.house()
    assert _parse_pattern("tailed_triangle") == catalog.tailed_triangle()


def test_parse_explicit_edge_list():
    pattern = _parse_pattern("0-1,1-2,0-2")
    assert pattern == catalog.clique(3)


def test_parse_rejects_garbage():
    with pytest.raises(SystemExit):
        _parse_pattern("dodecahedron")


def test_datasets_command(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "mico" in out and "wdc" in out


def test_count_command(capsys):
    code = main([
        "count", "--graph", "mico", "--scale", "0.3",
        "--pattern", "clique3", "--machines", "2",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "count=" in out
    assert "breakdown" in out


def test_count_oriented(capsys):
    code = main([
        "count", "--graph", "mico", "--scale", "0.3",
        "--pattern", "clique3", "--oriented", "--machines", "2",
    ])
    assert code == 0


def test_motifs_command(capsys):
    code = main([
        "motifs", "--graph", "mico", "--scale", "0.3", "--size", "3",
        "--machines", "2", "--system", "k-graphpi",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "simulated" in out


def test_fsm_command(capsys):
    code = main([
        "fsm", "--graph", "mico", "--scale", "0.3", "--threshold", "25",
        "--machines", "2",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "frequent patterns" in out


def test_experiment_command(capsys):
    code = main(["experiment", "table7", "--scale", "0.15"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Table 7" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
