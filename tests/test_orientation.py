"""Tests for degree-orientation (DAG) preprocessing."""

import numpy as np

from repro.analysis import count_embeddings_brute_force
from repro.baselines.common import ExploreStats, RecursiveExplorer
from repro.core.extend import ScheduleExtender
from repro.graph.generators import erdos_renyi, star_graph
from repro.graph.orientation import orient_by_degree, orientation_rank
from repro.patterns import clique
from repro.patterns.schedule import automine_schedule


def test_orientation_halves_directed_entries(small_random_graph):
    dag = orient_by_degree(small_random_graph)
    assert dag.num_directed_edges * 2 == small_random_graph.num_directed_edges
    assert dag.directed


def test_orientation_is_acyclic(small_random_graph):
    dag = orient_by_degree(small_random_graph)
    rank = orientation_rank(small_random_graph)
    for u in dag.vertices():
        for v in dag.neighbors(u):
            assert rank[u] < rank[int(v)]


def test_orientation_points_to_higher_degree(star10):
    dag = orient_by_degree(star10)
    # all leaves point at the hub, never the reverse
    assert dag.degree(0) == 0
    for leaf in range(1, 11):
        assert list(dag.neighbors(leaf)) == [0]


def test_orientation_preserves_triangle_count(small_random_graph):
    expected = count_embeddings_brute_force(small_random_graph, clique(3))
    dag = orient_by_degree(small_random_graph)
    schedule = automine_schedule(clique(3), use_restrictions=False)
    explorer = RecursiveExplorer(dag, ScheduleExtender(schedule))
    stats = ExploreStats()
    for root in dag.vertices():
        explorer.explore_root(root, stats)
    assert stats.matches == expected


def test_orientation_preserves_4clique_count(small_random_graph):
    expected = count_embeddings_brute_force(small_random_graph, clique(4))
    dag = orient_by_degree(small_random_graph)
    schedule = automine_schedule(clique(4), use_restrictions=False)
    explorer = RecursiveExplorer(dag, ScheduleExtender(schedule))
    stats = ExploreStats()
    for root in dag.vertices():
        explorer.explore_root(root, stats)
    assert stats.matches == expected


def test_orientation_keeps_labels():
    g = erdos_renyi(20, 40, seed=0).with_labels(list(range(20)))
    dag = orient_by_degree(g)
    assert np.array_equal(dag.labels, g.labels)


def test_orientation_rank_is_permutation(small_random_graph):
    rank = orientation_rank(small_random_graph)
    assert sorted(rank.tolist()) == list(range(small_random_graph.num_vertices))
