"""Tests for the static data cache and replacement policies."""

import pytest

from repro.cluster.costmodel import CostModel
from repro.core.cache import CachePolicy, EdgeCache


def _cache(policy=CachePolicy.STATIC, capacity=1000, threshold=4):
    return EdgeCache(capacity, threshold, policy, CostModel())


# ----------------------------------------------------------------------
# static policy (paper Section 5.3)
# ----------------------------------------------------------------------
def test_static_admit_and_hit():
    cache = _cache()
    assert not cache.query(7)
    assert cache.admit(7, 100, degree=10)
    assert cache.query(7)
    assert cache.hit_rate() == pytest.approx(0.5)


def test_static_degree_threshold():
    cache = _cache(threshold=16)
    assert not cache.admit(1, 50, degree=3)
    assert cache.admit(2, 50, degree=16)


def test_static_never_evicts():
    cache = _cache(capacity=150)
    assert cache.admit(1, 100, degree=10)
    assert not cache.admit(2, 100, degree=10)  # full: dropped, no evict
    assert cache.query(1)
    assert not cache.query(2)
    assert cache.evictions == 0


def test_static_full_stays_full():
    cache = _cache(capacity=100)
    cache.admit(1, 100, degree=10)
    for v in range(2, 10):
        assert not cache.admit(v, 10, degree=10)
    assert len(cache) == 1


def test_admit_existing_is_noop():
    cache = _cache()
    cache.admit(1, 100, degree=10)
    assert cache.admit(1, 100, degree=10)
    assert cache.inserts == 1


# ----------------------------------------------------------------------
# replacement policies (Figure 16)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "policy", [CachePolicy.FIFO, CachePolicy.LIFO, CachePolicy.LRU, CachePolicy.MRU]
)
def test_replacement_policies_admit_everything(policy):
    cache = _cache(policy, capacity=200)
    assert cache.admit(1, 100, degree=1)  # below static threshold: still in
    assert cache.admit(2, 100, degree=1)
    assert cache.admit(3, 100, degree=1)  # triggers eviction
    assert cache.evictions >= 1
    assert len(cache) == 2


def test_fifo_evicts_oldest():
    cache = _cache(CachePolicy.FIFO, capacity=200)
    cache.admit(1, 100, 9)
    cache.admit(2, 100, 9)
    cache.query(1)  # recency must NOT matter for FIFO
    cache.admit(3, 100, 9)
    assert not cache.query(1)
    assert cache.query(2)


def test_lifo_evicts_newest():
    cache = _cache(CachePolicy.LIFO, capacity=200)
    cache.admit(1, 100, 9)
    cache.admit(2, 100, 9)
    cache.admit(3, 100, 9)
    assert cache.query(1)
    assert not cache.query(2)


def test_lru_evicts_least_recent():
    cache = _cache(CachePolicy.LRU, capacity=200)
    cache.admit(1, 100, 9)
    cache.admit(2, 100, 9)
    cache.query(1)  # touch 1 so 2 is least recent
    cache.admit(3, 100, 9)
    assert cache.query(1)
    assert not cache.query(2)


def test_mru_evicts_most_recent():
    cache = _cache(CachePolicy.MRU, capacity=200)
    cache.admit(1, 100, 9)
    cache.admit(2, 100, 9)
    cache.query(1)  # 1 becomes most recent
    cache.admit(3, 100, 9)
    assert not cache.query(1)
    assert cache.query(2)


def test_lru_readmission_refreshes_recency():
    """Re-admitting a resident vertex is a touch: under LRU it must
    move to the back of the eviction order, exactly like a query hit
    (the early-return used to skip the policy update)."""
    cache = _cache(CachePolicy.LRU, capacity=200)
    cache.admit(1, 100, 9)
    cache.admit(2, 100, 9)
    cache.admit(1, 100, 9)  # re-admission: 2 is now least recent
    cache.admit(3, 100, 9)
    assert cache.query(1)
    assert not cache.query(2)


def test_mru_readmission_refreshes_recency():
    cache = _cache(CachePolicy.MRU, capacity=200)
    cache.admit(1, 100, 9)
    cache.admit(2, 100, 9)
    cache.admit(1, 100, 9)  # 1 becomes most recent → next victim
    cache.admit(3, 100, 9)
    assert not cache.query(1)
    assert cache.query(2)


def test_fifo_readmission_keeps_insertion_order():
    """FIFO ignores touches: a re-admission must not reset age."""
    cache = _cache(CachePolicy.FIFO, capacity=200)
    cache.admit(1, 100, 9)
    cache.admit(2, 100, 9)
    cache.admit(1, 100, 9)  # no-op for FIFO
    cache.admit(3, 100, 9)
    assert not cache.query(1)  # 1 is still the oldest insert
    assert cache.query(2)


def test_lru_readmission_charges_policy_update():
    cost = CostModel()
    cache = EdgeCache(10_000, 0, CachePolicy.LRU, cost)
    cache.admit(1, 100, degree=10)
    cache.drain_cost()
    cache.admit(1, 100, degree=10)  # recency bookkeeping is not free
    assert cache.drain_cost() == pytest.approx(cost.cache_policy_update)
    static = EdgeCache(10_000, 0, CachePolicy.STATIC, cost)
    static.admit(1, 100, degree=10)
    static.drain_cost()
    static.admit(1, 100, degree=10)  # static order never changes
    assert static.drain_cost() == 0.0


def test_oversized_entry_rejected():
    cache = _cache(CachePolicy.LRU, capacity=100)
    assert not cache.admit(1, 500, degree=9)


# ----------------------------------------------------------------------
# cost accounting (Section 7.6 behaviours)
# ----------------------------------------------------------------------
def test_drain_cost_resets():
    cache = _cache()
    cache.query(1)
    first = cache.drain_cost()
    assert first > 0
    assert cache.drain_cost() == 0.0


def test_replacement_costs_exceed_static():
    """Replacement policies pay policy updates + dynamic allocation."""
    cost = CostModel()
    static = EdgeCache(10_000, 0, CachePolicy.STATIC, cost)
    lru = EdgeCache(10_000, 0, CachePolicy.LRU, cost)
    for v in range(50):
        static.query(v)
        static.admit(v, 100, degree=10)
        lru.query(v)
        lru.admit(v, 100, degree=10)
    assert lru.drain_cost() > static.drain_cost()


def test_fragmentation_grows_with_churn():
    cost = CostModel().derive(cache_fragmentation_rate=0.5)
    cache = EdgeCache(100, 0, CachePolicy.LRU, cost)
    cache.admit(0, 100, 1)
    cache.drain_cost()
    cache.admit(1, 100, 1)  # one evict + one insert
    first_churn = cache.drain_cost()
    for v in range(2, 6):
        cache.admit(v, 100, 1)
    later_churn = cache.drain_cost() / 4
    assert later_churn > first_churn


def test_l3_spill_raises_query_cost():
    cost = CostModel()
    small = EdgeCache(10_000_000, 0, CachePolicy.STATIC, cost)
    small.query(1)
    cheap = small.drain_cost()
    big = EdgeCache(10_000_000, 0, CachePolicy.STATIC, cost)
    big.admit(1, cost.l3_bytes * 2, degree=10**6)
    big.drain_cost()
    big.query(2)
    expensive = big.drain_cost()
    assert expensive > cheap


def test_hit_rate_empty():
    assert _cache().hit_rate() == 0.0
