"""Inclusion-exclusion counting plans (docs/performance.md).

The central contract: ``--counting iep`` is bit-identical to the
enumeration oracle for every catalog pattern, on every graph, across
both extend modes and both backends — the same equivalence class the
batched/scalar kernel contract lives in. The IEP terminal kernel only
changes *where* work happens, never what is counted.
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.core.engine import EngineConfig, KhuzdulEngine
from repro.errors import ConfigurationError
from repro.exec import ProcessBackend
from repro.graph.generators import erdos_renyi, random_labels
from repro.patterns import Pattern, automorphisms, catalog
from repro.patterns.schedule import compile_counting_plan, graphpi_schedule
from repro.patterns.symmetry import symmetry_restrictions
from repro.systems import apps
from repro.systems.graphpi import KGraphPi

#: every named catalog pattern with <= 5 vertices
CATALOG = {
    "triangle": catalog.triangle(),
    "clique4": catalog.clique(4),
    "clique5": catalog.clique(5),
    "chain3": catalog.chain(3),
    "chain4": catalog.chain(4),
    "chain5": catalog.chain(5),
    "cycle4": catalog.cycle(4),
    "cycle5": catalog.cycle(5),
    "star2": catalog.star(2),
    "star3": catalog.star(3),
    "star4": catalog.star(4),
    "tailed_triangle": catalog.tailed_triangle(),
    "house": catalog.house(),
    "bowtie": catalog.bowtie(),
    "bull": catalog.bull(),
}


def _cluster(graph, machines=2):
    return Cluster(graph, ClusterConfig(num_machines=machines))


def _count(cluster, schedule, **config):
    return KhuzdulEngine(cluster, EngineConfig(**config)).run(schedule).counts


# ---------------------------------------------------------------------
# plan compilation
# ---------------------------------------------------------------------
def test_star_plan_shape():
    schedule = graphpi_schedule(catalog.star(3), counting="iep")
    plan = compile_counting_plan(schedule)
    assert plan is not None
    assert plan.suffix_size == 3
    # all 3! leaf orderings collapse into one restricted embedding
    assert plan.divisor == len(automorphisms(catalog.star(3)))
    assert plan.prefix_schedule.pattern.num_vertices == 1
    # the set-partition expansion of 3 identical blocks has 3 terms
    assert len(plan.terms) == 3
    assert 0 in plan.fetch_positions


def test_plan_rejects_ineligible_schedules():
    # adjacent last two vertices: no independent suffix
    assert compile_counting_plan(graphpi_schedule(catalog.triangle())) is None
    # induced matching cannot be expressed as cardinalities
    assert compile_counting_plan(
        graphpi_schedule(catalog.star(3), induced=True)
    ) is None
    # labeled patterns fall back to enumeration
    labeled = catalog.star(3).with_labels([0, 1, 1, 1])
    assert compile_counting_plan(graphpi_schedule(labeled)) is None


def test_plan_compiles_without_restrictions():
    schedule = graphpi_schedule(
        catalog.star(3), use_restrictions=False, counting="iep"
    )
    plan = compile_counting_plan(schedule)
    assert plan is not None
    assert schedule.restrictions == ()
    assert plan.divisor == 1


def test_counting_config_validated():
    with pytest.raises(ConfigurationError):
        EngineConfig(counting="magic")


# ---------------------------------------------------------------------
# bit-identity against the enumeration oracle
# ---------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(CATALOG), ids=sorted(CATALOG))
@pytest.mark.parametrize("extend_mode", ["batched", "scalar"])
def test_iep_matches_enumerate_catalog(
    small_random_graph, name, extend_mode
):
    pattern = CATALOG[name]
    cluster = _cluster(small_random_graph)
    oracle = _count(cluster, graphpi_schedule(pattern))
    schedule = graphpi_schedule(pattern, counting="iep")
    assert _count(
        cluster, schedule, counting="iep", extend_mode=extend_mode
    ) == oracle
    # the IEP-aware order must also agree under plain enumeration
    assert _count(cluster, schedule) == oracle


@pytest.mark.parametrize("name", ["star3", "chain4", "star4", "chain5"])
def test_iep_on_labeled_graph(labeled_graph, name):
    """Unlabeled patterns on a vertex-labeled graph still plan."""
    pattern = CATALOG[name]
    cluster = _cluster(labeled_graph)
    schedule = graphpi_schedule(pattern, counting="iep")
    assert compile_counting_plan(schedule) is not None
    assert _count(cluster, schedule, counting="iep") == _count(
        cluster, graphpi_schedule(pattern)
    )


def test_iep_unrestricted_matches_unrestricted_enumerate(
    small_random_graph,
):
    """Without symmetry restrictions the numerator IS the count."""
    cluster = _cluster(small_random_graph)
    for pattern in (catalog.star(3), catalog.chain(4)):
        schedule = graphpi_schedule(
            pattern, use_restrictions=False, counting="iep"
        )
        assert _count(cluster, schedule, counting="iep") == _count(
            cluster, graphpi_schedule(pattern, use_restrictions=False)
        )


def test_iep_seeded_er_sweep():
    """Property sweep: several seeded graphs, every planning pattern."""
    for seed in (1, 5, 9):
        graph = erdos_renyi(40, 160, seed=seed)
        cluster = _cluster(graph)
        for name in ("star3", "chain4", "chain5", "star4"):
            pattern = CATALOG[name]
            schedule = graphpi_schedule(pattern, counting="iep")
            assert compile_counting_plan(schedule) is not None, name
            assert _count(cluster, schedule, counting="iep") == _count(
                cluster, graphpi_schedule(pattern)
            ), (name, seed)


def test_iep_accounting_identical_across_extend_modes(small_random_graph):
    """Simulated measurements match bit-for-bit, batched vs scalar."""
    cluster = _cluster(small_random_graph)
    for name in ("star3", "chain4", "chain5"):
        schedule = graphpi_schedule(CATALOG[name], counting="iep")
        engine_b = KhuzdulEngine(
            cluster, EngineConfig(counting="iep", extend_mode="batched")
        )
        engine_s = KhuzdulEngine(
            cluster, EngineConfig(counting="iep", extend_mode="scalar")
        )
        rb = engine_b.run(schedule)
        rs = engine_s.run(schedule)
        assert rb.counts == rs.counts
        assert rb.simulated_seconds == rs.simulated_seconds
        assert rb.breakdown == rs.breakdown


def test_iep_process_backend_matches_inline(small_random_graph):
    cluster = _cluster(small_random_graph)
    for name in ("star3", "chain5"):
        schedule = graphpi_schedule(CATALOG[name], counting="iep")
        inline = _count(cluster, schedule, counting="iep")
        engine = KhuzdulEngine(
            cluster,
            EngineConfig(counting="iep"),
            backend=ProcessBackend(workers=2),
        )
        assert engine.run(schedule).counts == inline


# ---------------------------------------------------------------------
# new 5-vertex patterns: the restricted x |Aut| invariant
# ---------------------------------------------------------------------
@pytest.mark.parametrize(
    "pattern", [catalog.bowtie(), catalog.bull()], ids=["bowtie", "bull"]
)
def test_new_pattern_restriction_factor(small_random_graph, pattern):
    assert symmetry_restrictions(pattern) != ()
    cluster = _cluster(small_random_graph)
    restricted = _count(cluster, graphpi_schedule(pattern))
    unrestricted = _count(
        cluster, graphpi_schedule(pattern, use_restrictions=False)
    )
    assert unrestricted == restricted * len(automorphisms(pattern))


# ---------------------------------------------------------------------
# motif census tiers
# ---------------------------------------------------------------------
@pytest.mark.parametrize("k", [3, 4, 5])
def test_motif_census_iep_equals_enumerate(small_random_graph, k):
    config = ClusterConfig(num_machines=2)
    census_e = apps.motif_count(
        KGraphPi(small_random_graph, config, EngineConfig()), k
    ).counts
    census_i = apps.motif_count(
        KGraphPi(small_random_graph, config,
                 EngineConfig(counting="iep")), k
    ).counts
    assert census_e == census_i
    assert len(census_i) == len(catalog.motifs(k))


def test_motif_census_totals_are_nonnegative(small_random_graph):
    """The back-substituted induced counts can never dip below zero."""
    config = ClusterConfig(num_machines=2)
    census = apps.motif_count(
        KGraphPi(small_random_graph, config, EngineConfig(counting="iep")),
        5,
    ).counts
    assert all(count >= 0 for count in census.values())


# ---------------------------------------------------------------------
# satellite pin: _order_cost threads induced/use_restrictions/counting
# ---------------------------------------------------------------------
def test_order_cost_threads_execution_flags():
    """Orders must be costed as they will execute. Before the fix,
    ``_order_cost`` always compiled candidates with the default
    ``induced=False, use_restrictions=True``, so these pairs chose the
    same order regardless of the flags."""
    # restriction-halving off changes the winner for symmetric cycles
    assert (
        graphpi_schedule(catalog.cycle(4), use_restrictions=False).order
        != graphpi_schedule(catalog.cycle(4)).order
    )
    assert (
        graphpi_schedule(catalog.cycle(5), use_restrictions=False).order
        != graphpi_schedule(catalog.cycle(5)).order
    )
    # IEP costing prefers orders that leave an independent suffix
    iep_order = graphpi_schedule(catalog.chain(4), counting="iep").order
    assert iep_order != graphpi_schedule(catalog.chain(4)).order
    assert compile_counting_plan(
        graphpi_schedule(catalog.chain(4), counting="iep")
    ) is not None


# ---------------------------------------------------------------------
# satellite pin: scalar/batched edge-label filter on unlabeled graphs
# ---------------------------------------------------------------------
@pytest.mark.parametrize("extend_mode", ["batched", "scalar"])
def test_edge_labeled_pattern_on_unlabeled_graph(
    small_random_graph, extend_mode
):
    """An unlabeled graph satisfies exactly the all-zero edge-label
    requirement; scalar and batched must agree on both branches."""
    cluster = _cluster(small_random_graph)
    triangle = catalog.triangle()
    nonzero = triangle.with_edge_labels(
        {(0, 1): 1, (0, 2): 0, (1, 2): 0}
    )
    allzero = triangle.with_edge_labels(
        {(0, 1): 0, (0, 2): 0, (1, 2): 0}
    )
    plain = _count(cluster, graphpi_schedule(triangle))
    assert plain > 0
    for pattern, expected in ((nonzero, 0), (allzero, plain)):
        schedule = graphpi_schedule(pattern)
        assert _count(
            cluster, schedule, extend_mode=extend_mode
        ) == expected


def _brute_force_star3(graph) -> int:
    degrees = graph.degrees()
    total = 0
    for v in range(graph.num_vertices):
        d = int(degrees[v])
        total += d * (d - 1) * (d - 2) // 6
    return total


def test_star_counts_against_closed_form(small_random_graph):
    """IEP star counts equal the closed-form sum of C(deg, 3)."""
    cluster = _cluster(small_random_graph)
    schedule = graphpi_schedule(catalog.star(3), counting="iep")
    assert _count(cluster, schedule, counting="iep") == _brute_force_star3(
        small_random_graph
    )


def test_iep_metrics_emitted_only_on_batched_path(small_random_graph):
    from repro.obs import Observability, names

    cluster = _cluster(small_random_graph)
    schedule = graphpi_schedule(catalog.star(3), counting="iep")
    for mode, expect_batches in (("batched", True), ("scalar", False)):
        obs = Observability()
        engine = KhuzdulEngine(
            cluster, EngineConfig(counting="iep", extend_mode=mode),
            obs=obs,
        )
        engine.run(schedule)
        batches = obs.registry.total(names.KERNEL_IEP_BATCHES)
        embeddings = obs.registry.total(names.KERNEL_IEP_EMBEDDINGS)
        if expect_batches:
            assert batches > 0
            assert embeddings > 0
        else:
            assert batches == 0
            assert embeddings == 0


def test_udf_queries_never_take_the_iep_path(small_random_graph):
    """A real UDF consumes candidate arrays, so counting='iep' must
    transparently enumerate."""
    cluster = _cluster(small_random_graph)
    seen = []

    def udf(prefix, candidates):
        seen.append((prefix, len(candidates)))

    schedule = graphpi_schedule(catalog.star(3), counting="iep")
    engine = KhuzdulEngine(cluster, EngineConfig(counting="iep"))
    report = engine.run(schedule, udf=udf)
    assert report.counts == sum(n for _, n in seen)
    assert report.counts == _count(cluster, schedule, counting="iep")


def test_run_many_mixes_planned_and_unplanned(small_random_graph):
    """run_many under IEP: eligible schedules plan, the rest enumerate;
    each count is still exact."""
    cluster = _cluster(small_random_graph)
    patterns = [catalog.triangle(), catalog.star(3), catalog.chain(4)]
    schedules = [graphpi_schedule(p, counting="iep") for p in patterns]
    oracle = [
        _count(cluster, graphpi_schedule(p)) for p in patterns
    ]
    engine = KhuzdulEngine(cluster, EngineConfig(counting="iep"))
    assert engine.run_many(schedules).counts == oracle


def test_service_request_accepts_counting():
    from repro.service.protocol import QueryRequest

    QueryRequest(app="count", pattern="bowtie", counting="iep").validate()
    QueryRequest(app="count", pattern="bull").validate()
    with pytest.raises(ConfigurationError):
        QueryRequest(app="count", counting="magic").validate()


def test_new_patterns_shape():
    assert catalog.bowtie().num_edges == 6
    assert catalog.bull().num_edges == 5
    assert len(automorphisms(catalog.bowtie())) == 8
    assert len(automorphisms(catalog.bull())) == 2
