"""Tests for circulant-schedule pipeline timing (Section 4.3)."""

import pytest

from repro.core.pipeline import exposed_network_time, pipeline_time


def test_empty_pipeline():
    assert pipeline_time([], []) == 0.0


def test_single_batch():
    # fetch then compute, nothing to overlap with
    assert pipeline_time([2.0], [3.0]) == 5.0


def test_full_overlap():
    # compute always covers the next fetch: only the first fetch shows
    comm = [1.0, 1.0, 1.0]
    compute = [5.0, 5.0, 5.0]
    assert pipeline_time(comm, compute) == 1.0 + 15.0


def test_no_overlap_when_comm_dominates():
    comm = [4.0, 4.0, 4.0]
    compute = [1.0, 1.0, 1.0]
    # c0 + max(p0,c1) + max(p1,c2) + p2 = 4 + 4 + 4 + 1
    assert pipeline_time(comm, compute) == 13.0


def test_mixed_overlap():
    comm = [2.0, 3.0, 0.5]
    compute = [1.0, 4.0, 2.0]
    # 2 + max(1,3) + max(4,0.5) + 2 = 11
    assert pipeline_time(comm, compute) == 11.0


def test_local_first_batch():
    # batch 0 local (no comm): pipeline starts computing immediately
    comm = [0.0, 2.0]
    compute = [3.0, 1.0]
    assert pipeline_time(comm, compute) == 0.0 + 3.0 + 1.0


def test_exposed_network_time():
    comm = [1.0, 1.0]
    compute = [5.0, 5.0]
    assert exposed_network_time(comm, compute) == pytest.approx(1.0)


def test_exposed_never_negative_under_domination():
    comm = [0.0, 0.0]
    compute = [1.0, 1.0]
    assert exposed_network_time(comm, compute) == 0.0


def test_length_mismatch_rejected():
    with pytest.raises(ValueError):
        pipeline_time([1.0], [1.0, 2.0])


def test_pipeline_bounded_by_serial():
    comm = [1.0, 2.0, 1.5]
    compute = [2.0, 1.0, 3.0]
    pipelined = pipeline_time(comm, compute)
    serial = sum(comm) + sum(compute)
    assert pipelined <= serial
    assert pipelined >= max(sum(comm), sum(compute))
