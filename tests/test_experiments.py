"""Tests for the experiment harness (scaled-down smoke runs)."""

import pytest

from repro.analysis.experiments import (
    ABBR,
    EXPERIMENTS,
    fig11,
    fig19,
    memory_ratio,
    node_memory_bytes,
    run_experiment,
    table7,
)
from repro.graph import dataset


def test_memory_ratios_follow_paper():
    # small graphs: capped; medium graphs: single-digit; massive: < 1
    assert memory_ratio("mico") == 4096
    assert 5 < memory_ratio("uk") < 12
    assert memory_ratio("wdc") < 0.2


def test_node_memory_scales_with_graph():
    graph = dataset("patents", scale=0.25)
    assert node_memory_bytes("patents", graph) > graph.size_bytes() * 100


def test_every_experiment_registered():
    expected = {
        "table2", "table3", "table4", "table5", "table6", "table7",
        "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
        "fig17", "fig18", "fig19",
        "ablation_hds_chaining", "ablation_circulant",
        "ablation_cache_threshold",
    }
    assert set(EXPERIMENTS) == expected


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        run_experiment("table99")


def test_abbreviations_cover_datasets():
    from repro.graph.datasets import DATASETS

    assert set(ABBR) == set(DATASETS)


# quick smoke runs at tiny scale: rows exist and have the right shape
def test_fig11_smoke():
    result = fig11(scale=0.2)
    assert result.experiment == "Figure 11"
    assert len(result.rows) == 8
    for row in result.rows:
        assert row["speedup"].endswith("x")
        # VCS must never make things slower in the model
        assert float(row["speedup"][:-1]) >= 0.99


def test_table7_smoke():
    result = table7(scale=0.2)
    for row in result.rows:
        gain = float(row["gain"][:-1])
        assert 1.0 <= gain < 2.0  # paper band: 1.02-1.53x


def test_fig19_smoke():
    result = fig19(scale=0.2)
    for row in result.rows:
        utilization = float(row["net-utilization"].rstrip("%"))
        assert 0.0 <= utilization <= 100.0


def test_result_round_trip_format():
    result = fig11(scale=0.15)
    text = result.format()
    assert "Figure 11" in text
    md = result.to_markdown()
    assert md.startswith("### Figure 11")


def test_ablation_circulant_smoke():
    from repro.analysis.experiments import ablation_circulant

    result = ablation_circulant(scale=0.15)
    for row in result.rows:
        # pipelining must never lose to serialized fetches
        assert float(row["speedup"][:-1]) >= 0.99


def test_ablation_hds_chaining_smoke():
    from repro.analysis.experiments import ablation_hds_chaining

    result = ablation_hds_chaining(scale=0.15)
    for row in result.rows:
        # chaining never fetches more than dropping
        assert row["traffic(chain)"][1] <= row["traffic(drop)"][1]
