"""Tests for exhaustive pattern generation."""

import pytest

from repro.errors import PatternError
from repro.patterns import Pattern, connected_patterns
from repro.patterns.canonical import canonical_code
from repro.patterns.generation import grow_pattern, single_edge_patterns


@pytest.mark.parametrize("k,expected", [(1, 1), (2, 1), (3, 2), (4, 6), (5, 21)])
def test_connected_pattern_counts(k, expected):
    """Known sequence: connected graphs on k vertices up to isomorphism."""
    assert len(connected_patterns(k)) == expected


def test_patterns_are_connected_and_distinct():
    patterns = connected_patterns(4)
    codes = {canonical_code(p) for p in patterns}
    assert len(codes) == len(patterns)
    assert all(p.is_connected() for p in patterns)


def test_motif_set_contains_extremes():
    patterns = connected_patterns(4)
    edge_counts = sorted(p.num_edges for p in patterns)
    assert edge_counts[0] == 3  # trees
    assert edge_counts[-1] == 6  # the 4-clique


def test_generation_cached():
    assert connected_patterns(4) is connected_patterns(4)


def test_invalid_size():
    with pytest.raises(PatternError):
        connected_patterns(0)


def test_single_edge_patterns_count():
    # unordered label pairs with repetition: C(3,2)+3 = 6
    seeds = single_edge_patterns({0, 1, 2})
    assert len(seeds) == 6
    assert all(p.num_edges == 1 and p.labels is not None for p in seeds)


def test_single_edge_patterns_canonical_labels():
    seeds = single_edge_patterns({2, 5})
    label_pairs = {p.labels for p in seeds}
    assert label_pairs == {(2, 2), (2, 5), (5, 5)}


def test_grow_pattern_adds_one_edge():
    seed = Pattern(2, [(0, 1)], labels=(0, 1))
    grown = grow_pattern(seed, {0, 1})
    assert all(p.num_edges == 2 for p in grown)
    assert all(p.is_connected() for p in grown)


def test_grow_pattern_dedups_isomorphic():
    seed = Pattern(2, [(0, 1)], labels=(0, 0))
    grown = grow_pattern(seed, {0})
    codes = [canonical_code(p) for p in grown]
    assert len(codes) == len(set(codes))
    # attaching a 0-labeled vertex to either endpoint is the same pattern
    assert len(grown) == 1


def test_grow_pattern_closes_triangles():
    wedge = Pattern(3, [(0, 1), (1, 2)], labels=(0, 0, 0))
    grown = grow_pattern(wedge, {0})
    shapes = {frozenset(p.edges) for p in grown}
    assert frozenset({(0, 1), (1, 2), (0, 2)}) in shapes
