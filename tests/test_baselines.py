"""Tests for the baseline systems: correctness and failure modes."""

import pytest

from repro.analysis import count_embeddings_brute_force
from repro.baselines import (
    GraphPiReplicated,
    GThinker,
    MovingComputation,
    PangolinLike,
    SingleMachine,
)
from repro.baselines.common import ExploreStats, RecursiveExplorer, khop_ball
from repro.baselines.single_machine import peregrine_like
from repro.cluster import ClusterConfig
from repro.core.extend import ScheduleExtender
from repro.errors import ConfigurationError, OutOfMemoryError
from repro.graph.generators import erdos_renyi, power_law_graph, star_graph
from repro.patterns import chain, clique, cycle
from repro.patterns.schedule import automine_schedule
from repro.systems import KAutomine, triangle_count


ALL_BASELINES = [
    lambda g: SingleMachine(g),
    lambda g: peregrine_like(g),
    lambda g: PangolinLike(g),
    lambda g: GraphPiReplicated(g, num_machines=4),
    lambda g: GThinker(g, num_machines=4),
    lambda g: MovingComputation(g, num_machines=4),
]
BASELINE_IDS = ["automine-ih", "peregrine", "pangolin", "graphpi", "gthinker",
                "adfs"]


@pytest.mark.parametrize("factory", ALL_BASELINES, ids=BASELINE_IDS)
@pytest.mark.parametrize(
    "pattern", [clique(3), clique(4), chain(4)], ids=["tri", "4cc", "chain4"]
)
def test_baseline_counts_match_brute_force(factory, pattern, small_random_graph):
    expected = count_embeddings_brute_force(small_random_graph, pattern)
    system = factory(small_random_graph)
    report = system.count_pattern(pattern)
    assert report.counts == expected


@pytest.mark.parametrize("factory", ALL_BASELINES, ids=BASELINE_IDS)
def test_baseline_induced_motifs(factory, small_random_graph):
    system = factory(small_random_graph)
    expected = count_embeddings_brute_force(
        small_random_graph, cycle(4), induced=True
    )
    report = system.count_patterns([cycle(4)], induced=True)
    assert report.counts == [expected]


@pytest.mark.parametrize("factory", ALL_BASELINES, ids=BASELINE_IDS)
def test_baseline_reports_positive_time(factory, small_random_graph):
    system = factory(small_random_graph)
    report = system.count_pattern(clique(3))
    assert report.simulated_seconds > 0
    assert report.system == system.name


# ----------------------------------------------------------------------
# recursive explorer
# ----------------------------------------------------------------------
def test_explorer_level_widths(small_random_graph):
    schedule = automine_schedule(clique(3))
    explorer = RecursiveExplorer(
        small_random_graph, ScheduleExtender(schedule)
    )
    stats = ExploreStats()
    for root in small_random_graph.vertices():
        explorer.explore_root(root, stats)
    assert stats.level_widths[2] == stats.matches
    assert stats.created == stats.level_widths[1]


def test_khop_ball():
    g = star_graph(5)
    ball0 = khop_ball(g, 1, 0)
    assert list(ball0) == [1]
    ball1 = khop_ball(g, 1, 1)
    assert sorted(ball1) == [0, 1]
    ball2 = khop_ball(g, 1, 2)
    assert sorted(ball2) == [0, 1, 2, 3, 4, 5]


# ----------------------------------------------------------------------
# failure modes (the paper's CRASHED / OUTOFMEM cells)
# ----------------------------------------------------------------------
def test_replicated_oom_when_graph_exceeds_memory(small_random_graph):
    with pytest.raises(OutOfMemoryError):
        GraphPiReplicated(small_random_graph, memory_bytes=128)


def test_single_machine_oom(small_random_graph):
    with pytest.raises(OutOfMemoryError):
        SingleMachine(small_random_graph, memory_bytes=128)


def test_gthinker_crashes_on_skewed_graph_with_tight_memory():
    graph = power_law_graph(300, 2500, exponent=1.9, seed=3)
    system = GThinker(
        graph, num_machines=4, memory_bytes=int(graph.size_bytes() * 1.2)
    )
    with pytest.raises(OutOfMemoryError):
        system.count_pattern(clique(4))


def test_gthinker_survives_with_ample_memory():
    graph = power_law_graph(300, 2500, exponent=1.9, seed=3)
    system = GThinker(
        graph, num_machines=4, memory_bytes=int(graph.size_bytes() * 400)
    )
    expected = count_embeddings_brute_force(graph, clique(3))
    assert system.count_pattern(clique(3)).counts == expected


def test_pangolin_oom_on_wide_levels():
    graph = erdos_renyi(120, 2000, seed=4)
    tight = graph.size_bytes() + 2048
    system = PangolinLike(graph, memory_bytes=tight)
    with pytest.raises(OutOfMemoryError):
        system.count_pattern(clique(4), oriented=False)


def test_orientation_unavailable_where_paper_says_so(small_random_graph):
    with pytest.raises(ConfigurationError):
        GThinker(small_random_graph).count_pattern(clique(3), oriented=True)
    with pytest.raises(ConfigurationError):
        MovingComputation(small_random_graph).count_pattern(
            clique(3), oriented=True
        )


# ----------------------------------------------------------------------
# architectural shape assertions (loose, from the paper's claims)
# ----------------------------------------------------------------------
def test_gthinker_overhead_dominates(skewed_graph):
    system = GThinker(skewed_graph, num_machines=4)
    report = system.count_pattern(clique(3))
    fractions = report.breakdown_fractions()
    assert fractions["cache"] + fractions["scheduler"] > 0.5


def test_khuzdul_beats_gthinker(skewed_graph):
    k = KAutomine(skewed_graph, ClusterConfig(num_machines=4))
    g = GThinker(skewed_graph, num_machines=4)
    assert (
        triangle_count(k).simulated_seconds
        < g.count_pattern(clique(3)).simulated_seconds
    )


def test_replicated_has_no_traffic(small_random_graph):
    report = GraphPiReplicated(small_random_graph, num_machines=4).count_pattern(
        clique(3)
    )
    assert report.network_bytes == 0


def test_adfs_ships_more_than_khuzdul_fetches(skewed_graph):
    adfs = MovingComputation(skewed_graph, num_machines=4).count_pattern(
        clique(4)
    )
    k = KAutomine(skewed_graph, ClusterConfig(num_machines=4)).count_pattern(
        clique(4)
    )
    assert adfs.counts == k.counts
    assert adfs.network_bytes > k.network_bytes


def test_peregrine_slower_than_automine_on_cliques(small_random_graph):
    am = SingleMachine(small_random_graph).count_pattern(clique(4))
    pg = peregrine_like(small_random_graph).count_pattern(clique(4))
    assert pg.counts == am.counts
    assert pg.simulated_seconds >= am.simulated_seconds


def test_pangolin_orientation_speeds_up_cliques(skewed_graph):
    system = PangolinLike(skewed_graph)
    fast = system.count_pattern(clique(3), oriented=True)
    slow = system.count_pattern(clique(3), oriented=False)
    assert fast.counts == slow.counts
    assert fast.simulated_seconds < slow.simulated_seconds
