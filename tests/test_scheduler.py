"""Tests for the BFS-DFS hybrid scheduler mechanics (chunking, states)."""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.core import EngineConfig, KhuzdulEngine
from repro.core.chunk import Chunk
from repro.core.embedding import ExtendableEmbedding
from repro.errors import OutOfMemoryError
from repro.graph.generators import erdos_renyi
from repro.patterns import chain, clique
from repro.patterns.schedule import automine_schedule


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(80, 400, seed=6)


def _run(graph, **config):
    cluster = Cluster(
        graph, ClusterConfig(num_machines=2, memory_bytes=64 << 20)
    )
    engine = KhuzdulEngine(cluster, EngineConfig(**config))
    return engine.run(automine_schedule(clique(4))), cluster


def test_small_chunks_create_more_chunks(graph):
    big, _ = _run(graph, chunk_bytes=1 << 20)
    small, _ = _run(graph, chunk_bytes=2048)
    assert small.counts == big.counts
    assert small.extra["chunks"] > big.extra["chunks"]


def test_chunk_memory_released(graph):
    report, cluster = _run(graph, chunk_bytes=4096)
    for machine in cluster.machines:
        # after the run only the partition remains resident (cache pool
        # is released by the engine)
        assert machine.resident_bytes == cluster.partitioned.partition_bytes(
            machine.machine_id
        )


def test_peak_memory_bounded_by_chunks(graph):
    """DFS-over-chunks bounds live memory to ~levels x chunk size."""
    report_small, cluster_small = _run(graph, chunk_bytes=2048,
                                       cache_fraction=0.0)
    report_big, cluster_big = _run(graph, chunk_bytes=1 << 20,
                                   cache_fraction=0.0)
    assert report_small.peak_memory_bytes <= report_big.peak_memory_bytes


def test_chunk_object_accounting():
    from repro.cluster.machine import MachineState

    machine = MachineState(0, cores=4, memory_bytes=10_000)
    chunk = Chunk(1, capacity_bytes=100, machine=machine)
    emb = ExtendableEmbedding(5, 0, None, False)
    chunk.add(emb)
    assert machine.resident_bytes == emb.stored_bytes
    assert not chunk.full
    chunk.charge_extra(emb, 100)
    assert chunk.full
    chunk.release()
    assert machine.resident_bytes == 0
    assert len(chunk.items) == 0
    chunk.release()  # idempotent
    assert machine.resident_bytes == 0


def test_chunk_overflow_raises():
    from repro.cluster.machine import MachineState

    machine = MachineState(0, cores=4, memory_bytes=30)
    chunk = Chunk(0, capacity_bytes=1000, machine=machine)
    with pytest.raises(OutOfMemoryError):
        for i in range(10):
            chunk.add(ExtendableEmbedding(i, 0, None, False))


def test_network_counts_only_remote(graph):
    """Every recorded fetch must target a remote owner."""
    _, cluster = _run(graph, hds=False, cache_fraction=0.0)
    traffic = cluster.network.traffic_bytes
    assert np.all(np.diag(traffic) == 0)


def test_serve_time_charged_to_owners(graph):
    report, cluster = _run(graph)
    served = [m.serve_seconds for m in cluster.machines]
    assert any(s > 0 for s in served)
    assert report.extra["serve_seconds"] == max(served)


def test_breakdown_buckets_positive(graph):
    report, _ = _run(graph)
    assert report.breakdown["compute"] > 0
    assert report.breakdown["scheduler"] > 0
    assert report.breakdown["cache"] >= 0
    assert report.breakdown["network"] >= 0


def test_two_vertex_pattern_no_level_chunks(graph):
    """Single-edge patterns extend roots directly to matches."""
    cluster = Cluster(graph, ClusterConfig(num_machines=2))
    engine = KhuzdulEngine(cluster, EngineConfig())
    report = engine.run(automine_schedule(chain(2)))
    assert report.counts == graph.num_edges
    assert report.network_bytes == 0  # roots are local; no fetch needed


def test_hds_stats_reported(graph):
    report, _ = _run(graph, hds=True)
    assert report.extra["hds"]["probes"] >= report.extra["hds"]["hits"]


def test_fetch_source_accounting(graph):
    """Every active-list need is satisfied by exactly one source."""
    report, _ = _run(graph, hds=True, cache_fraction=0.2, chunk_bytes=4096)
    sources = report.extra["fetch_sources"]
    assert set(sources) == {"local", "remote", "cache", "shared"}
    assert sources["local"] > 0
    assert sources["remote"] > 0
    assert sum(sources.values()) > 0


def test_cache_source_appears_with_small_chunks(graph):
    report, _ = _run(graph, hds=False, cache_fraction=0.3, chunk_bytes=2048)
    assert report.extra["fetch_sources"]["cache"] > 0


def test_shared_source_appears_with_hds(graph):
    report, _ = _run(graph, hds=True, cache_fraction=0.0)
    assert report.extra["fetch_sources"]["shared"] > 0
