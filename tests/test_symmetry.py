"""Tests for symmetry-breaking restrictions.

The central property: enumerating with restrictions yields exactly
(unrestricted ordered assignments) / |Aut| embeddings — each embedding
counted once.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import count_embeddings_brute_force
from repro.baselines.common import ExploreStats, RecursiveExplorer
from repro.core.extend import ScheduleExtender
from repro.graph.generators import erdos_renyi
from repro.patterns import (
    automorphisms,
    chain,
    clique,
    cycle,
    star,
    symmetry_restrictions,
    tailed_triangle,
)
from repro.patterns.schedule import automine_schedule
from repro.patterns.symmetry import satisfies_restrictions


def _count(graph, pattern, use_restrictions):
    schedule = automine_schedule(pattern, use_restrictions=use_restrictions)
    explorer = RecursiveExplorer(graph, ScheduleExtender(schedule))
    stats = ExploreStats()
    for root in graph.vertices():
        explorer.explore_root(root, stats)
    return stats.matches


@pytest.mark.parametrize(
    "pattern",
    [clique(3), clique(4), chain(3), chain(4), cycle(4), star(3),
     tailed_triangle()],
    ids=lambda p: f"{p.num_vertices}v{p.num_edges}e",
)
def test_restriction_factor_equals_automorphism_count(pattern):
    graph = erdos_renyi(40, 150, seed=8)
    restricted = _count(graph, pattern, True)
    unrestricted = _count(graph, pattern, False)
    assert unrestricted == restricted * len(automorphisms(pattern))


def test_restricted_count_matches_brute_force(small_random_graph):
    for pattern in (clique(3), chain(4), cycle(4)):
        expected = count_embeddings_brute_force(small_random_graph, pattern)
        assert _count(small_random_graph, pattern, True) == expected


def test_asymmetric_pattern_has_no_restrictions():
    assert symmetry_restrictions(tailed_triangle()) != ()
    # a genuinely asymmetric pattern: path with a distinguishing branch
    from repro.patterns import Pattern

    asym = Pattern(5, [(0, 1), (1, 2), (2, 3), (1, 4), (4, 3), (0, 4)])
    if len(automorphisms(asym)) == 1:
        assert symmetry_restrictions(asym) == ()


def test_clique_restrictions_form_total_order():
    restrictions = symmetry_restrictions(clique(4))
    # a 4-clique needs its 4 vertices totally ordered: 3 chained pairs
    # (or more); every vertex pair must be comparable transitively
    assert len(restrictions) >= 3


def test_satisfies_restrictions():
    r = ((0, 1), (1, 2))
    assert satisfies_restrictions((1, 5, 9), r)
    assert not satisfies_restrictions((5, 1, 9), r)
    assert satisfies_restrictions((0,), ())


def test_restriction_pairs_reference_pattern_vertices():
    for pattern in (clique(5), cycle(6), star(4)):
        for a, b in symmetry_restrictions(pattern):
            assert 0 <= a < pattern.num_vertices
            assert 0 <= b < pattern.num_vertices
            assert a != b


def test_exactly_one_representative_per_orbit():
    """For each automorphism orbit of assignments, exactly one survives."""
    pattern = cycle(4)
    restrictions = symmetry_restrictions(pattern)
    autos = automorphisms(pattern)
    assignment = (3, 7, 11, 15)  # distinct data vertices
    survivors = 0
    for sigma in autos:
        permuted = tuple(assignment[sigma[v]] for v in range(4))
        if satisfies_restrictions(permuted, restrictions):
            survivors += 1
    assert survivors == 1


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_restriction_factor_on_random_graphs(seed):
    graph = erdos_renyi(25, 70, seed=seed)
    pattern = clique(3)
    restricted = _count(graph, pattern, True)
    unrestricted = _count(graph, pattern, False)
    assert unrestricted == 6 * restricted
