"""Tests for the Fractal-like pattern-oblivious baseline."""

from itertools import combinations

import pytest

from repro.analysis import count_embeddings_brute_force
from repro.baselines import FractalLike, SingleMachine
from repro.errors import ConfigurationError, SimTimeoutError
from repro.graph import from_edges
from repro.graph.generators import erdos_renyi, random_labels
from repro.patterns import Pattern, chain, clique, star
from repro.patterns.canonical import canonical_code
from repro.systems import run_fsm


def _brute_force_connected_edge_subsets(graph, max_edges):
    """Reference: all connected edge subsets of size <= max_edges."""
    edges = list(graph.edges())
    count = 0
    for k in range(1, max_edges + 1):
        for subset in combinations(edges, k):
            touched = {}
            for u, v in subset:
                touched.setdefault(u, set()).add(v)
                touched.setdefault(v, set()).add(u)
            vertices = list(touched)
            seen = {vertices[0]}
            frontier = [vertices[0]]
            while frontier:
                x = frontier.pop()
                for y in touched[x]:
                    if y not in seen:
                        seen.add(y)
                        frontier.append(y)
            if len(seen) == len(vertices):
                count += 1
    return count


def test_enumeration_counts_every_subset_once():
    graph = erdos_renyi(14, 28, seed=5)
    system = FractalLike(graph, num_machines=2)
    stats, _ = system._enumerate()
    total = sum(entry.count for entry in stats.values())
    assert total == _brute_force_connected_edge_subsets(graph, 3)


@pytest.mark.parametrize(
    "pattern",
    [chain(2), chain(3), clique(3), star(3), chain(4)],
    ids=["edge", "wedge", "triangle", "star3", "path4"],
)
def test_fractal_counts_match_brute_force(pattern, small_random_graph):
    expected = count_embeddings_brute_force(small_random_graph, pattern)
    system = FractalLike(small_random_graph, num_machines=2)
    assert system.count_pattern(pattern).counts == expected


def test_labeled_counts():
    g = from_edges([(0, 1), (1, 2), (0, 2), (2, 3)], labels=[0, 0, 1, 1])
    system = FractalLike(g)
    tri = Pattern(3, [(0, 1), (0, 2), (1, 2)], (0, 0, 1))
    assert system.count_pattern(tri).counts == 1
    edge_01 = Pattern(2, [(0, 1)], (0, 1))
    assert system.count_pattern(edge_01).counts == 2  # (1,2) and (0,2)
    edge_11 = Pattern(2, [(0, 1)], (1, 1))
    assert system.count_pattern(edge_11).counts == 1  # (2,3)
    edge_00 = Pattern(2, [(0, 1)], (0, 0))
    assert system.count_pattern(edge_00).counts == 1  # (0,1)


def test_large_patterns_rejected(small_random_graph):
    system = FractalLike(small_random_graph)
    with pytest.raises(ConfigurationError):
        system.count_pattern(clique(4))  # 6 edges > 3
    with pytest.raises(ConfigurationError):
        system.count_pattern(clique(3), induced=True)


def test_fsm_agrees_with_pattern_aware(labeled_graph):
    aware = run_fsm(SingleMachine(labeled_graph), threshold=6)
    oblivious = FractalLike(labeled_graph).all_frequent(6)
    aware_set = {(canonical_code(p), s) for p, s in aware.frequent}
    oblivious_set = {(canonical_code(p), s) for p, s in oblivious}
    assert aware_set == oblivious_set


def test_mni_supports_interface(labeled_graph):
    patterns = [Pattern(2, [(0, 1)], (0, 0)), Pattern(2, [(0, 1)], (0, 1))]
    fractal_supports, _ = FractalLike(labeled_graph).mni_supports(patterns)
    aware_supports, _ = SingleMachine(labeled_graph).mni_supports(patterns)
    assert fractal_supports == aware_supports


def test_timeout_on_subgraph_explosion():
    graph = erdos_renyi(80, 900, seed=9)
    system = FractalLike(graph, max_subgraphs=1000)
    with pytest.raises(SimTimeoutError):
        system.count_pattern(clique(3))


def test_time_budget_timeout():
    graph = erdos_renyi(60, 500, seed=9)
    system = FractalLike(graph, time_budget=1e-12)
    with pytest.raises(SimTimeoutError):
        system.count_pattern(clique(3))


def test_enumeration_cached():
    graph = erdos_renyi(20, 40, seed=1)
    system = FractalLike(graph)
    first = system._enumerate()
    assert system._enumerate() is first


def test_fsm_report(labeled_graph):
    system = FractalLike(labeled_graph)
    report = system.fsm_report(threshold=6)
    assert report.simulated_seconds > 0
    assert report.counts == len(system.all_frequent(6))


def test_oblivious_slower_than_pattern_aware_per_pattern(labeled_graph):
    """The pattern-oblivious tax: Fractal pays for every subgraph."""
    fractal = FractalLike(labeled_graph)
    aware = SingleMachine(labeled_graph)
    pattern = Pattern(2, [(0, 1)], (0, 1))
    assert (
        fractal.count_pattern(pattern).simulated_seconds
        > aware.count_pattern(pattern).simulated_seconds
    )
