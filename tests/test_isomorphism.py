"""Tests for pattern isomorphism and automorphism computation."""

import math

import pytest

from repro.patterns import (
    Pattern,
    are_isomorphic,
    automorphisms,
    chain,
    clique,
    cycle,
    find_isomorphisms,
    star,
    tailed_triangle,
)


@pytest.mark.parametrize(
    "pattern,expected",
    [
        (clique(3), 6),
        (clique(4), 24),
        (clique(5), 120),
        (chain(2), 2),
        (chain(3), 2),
        (chain(4), 2),
        (cycle(4), 8),
        (cycle(5), 10),
        (star(3), 6),
        (star(4), 24),
        (tailed_triangle(), 2),
    ],
)
def test_automorphism_group_sizes(pattern, expected):
    assert len(automorphisms(pattern)) == expected


def test_identity_always_present():
    for pattern in (clique(3), chain(4), star(3)):
        assert tuple(range(pattern.num_vertices)) in automorphisms(pattern)


def test_automorphisms_are_permutations():
    for perm in automorphisms(cycle(5)):
        assert sorted(perm) == list(range(5))


def test_isomorphic_relabelings():
    p = tailed_triangle()
    q = p.relabel([3, 1, 0, 2])
    assert are_isomorphic(p, q)
    assert len(find_isomorphisms(p, q)) == len(automorphisms(p))


def test_non_isomorphic_same_size():
    # wedge vs triangle: same vertices, different edges
    assert not are_isomorphic(chain(3), clique(3))
    # star(3) vs chain(4): same vertex and edge counts
    assert not are_isomorphic(star(3), chain(4))


def test_different_sizes_not_isomorphic():
    assert not are_isomorphic(clique(3), clique(4))
    assert find_isomorphisms(clique(3), clique(4)) == []


def test_labels_break_symmetry():
    plain = Pattern(2, [(0, 1)])
    labeled = Pattern(2, [(0, 1)], labels=(1, 2))
    same = Pattern(2, [(0, 1)], labels=(1, 1))
    assert len(automorphisms(plain)) == 2
    assert len(automorphisms(labeled)) == 1
    assert len(automorphisms(same)) == 2


def test_labeled_isomorphism_respects_labels():
    a = Pattern(2, [(0, 1)], labels=(1, 2))
    b = Pattern(2, [(0, 1)], labels=(2, 1))
    c = Pattern(2, [(0, 1)], labels=(1, 3))
    assert are_isomorphic(a, b)
    assert not are_isomorphic(a, c)


def test_labeled_vs_unlabeled_never_isomorphic_with_label_mismatch():
    a = Pattern(3, [(0, 1), (1, 2)], labels=(0, 0, 0))
    b = Pattern(3, [(0, 1), (1, 2)])
    # unlabeled patterns have implicit label 0, so these do match
    assert are_isomorphic(a, b)


def test_mapping_preserves_edges():
    p = cycle(5)
    q = p.relabel([2, 4, 0, 1, 3])
    for mapping in find_isomorphisms(p, q):
        for u, v in p.edges:
            assert q.has_edge(mapping[u], mapping[v])


def test_single_vertex():
    p = Pattern(1, [])
    assert len(automorphisms(p)) == 1
    assert are_isomorphic(p, Pattern(1, []))


def test_automorphism_count_divides_factorial():
    for pattern in (clique(4), cycle(4), star(3), tailed_triangle()):
        n = pattern.num_vertices
        assert math.factorial(n) % len(automorphisms(pattern)) == 0
