"""Property-based tests (hypothesis) on cross-cutting invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import count_embeddings_brute_force
from repro.cluster import Cluster, ClusterConfig
from repro.core import EngineConfig, KhuzdulEngine
from repro.core.cache import CachePolicy, EdgeCache
from repro.core.hds import HorizontalShareTable, ProbeOutcome
from repro.core.pipeline import pipeline_time
from repro.cluster.costmodel import CostModel
from repro.graph import HashPartitioner, from_edge_array
from repro.graph.generators import erdos_renyi
from repro.graph.orientation import orient_by_degree
from repro.patterns import chain, clique, cycle
from repro.patterns.schedule import automine_schedule

_slow = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# ----------------------------------------------------------------------
# engine invariance: configuration must never change counts
# ----------------------------------------------------------------------
@st.composite
def _engine_configs(draw):
    return EngineConfig(
        chunk_bytes=draw(st.sampled_from([1024, 4096, 64 << 10, 1 << 20])),
        vcs=draw(st.booleans()),
        hds=draw(st.booleans()),
        hds_slots=draw(st.sampled_from([1, 16, 4096])),
        cache_fraction=draw(st.sampled_from([0.0, 0.05, 0.3])),
        cache_policy=draw(st.sampled_from(list(CachePolicy))),
        numa_aware=draw(st.booleans()),
    )


@given(
    seed=st.integers(min_value=0, max_value=1000),
    machines=st.integers(min_value=1, max_value=6),
    config=_engine_configs(),
)
@_slow
def test_engine_counts_invariant_to_configuration(seed, machines, config):
    graph = erdos_renyi(30, 90, seed=seed)
    expected = count_embeddings_brute_force(graph, clique(3))
    cluster = Cluster(
        graph, ClusterConfig(num_machines=machines, memory_bytes=64 << 20)
    )
    report = KhuzdulEngine(cluster, config).run(automine_schedule(clique(3)))
    assert report.counts == expected


@given(seed=st.integers(min_value=0, max_value=1000))
@_slow
def test_engine_matches_brute_force_on_random_graphs(seed):
    graph = erdos_renyi(25, 60, seed=seed)
    cluster = Cluster(graph, ClusterConfig(num_machines=3))
    engine = KhuzdulEngine(cluster)
    for pattern in (chain(3), cycle(4)):
        expected = count_embeddings_brute_force(graph, pattern)
        assert engine.run(automine_schedule(pattern)).counts == expected


# ----------------------------------------------------------------------
# orientation preserves cliques
# ----------------------------------------------------------------------
@given(seed=st.integers(min_value=0, max_value=1000))
@_slow
def test_orientation_preserves_clique_counts(seed):
    graph = erdos_renyi(25, 90, seed=seed)
    expected = count_embeddings_brute_force(graph, clique(3))
    dag = orient_by_degree(graph)
    cluster = Cluster(dag, ClusterConfig(num_machines=2))
    schedule = automine_schedule(clique(3), use_restrictions=False)
    assert KhuzdulEngine(cluster).run(schedule).counts == expected


# ----------------------------------------------------------------------
# builder normalization
# ----------------------------------------------------------------------
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=60
    )
)
@settings(max_examples=80, deadline=None)
def test_builder_normalization_properties(edges):
    graph = from_edge_array(
        np.array(edges, dtype=np.int64).reshape(len(edges), 2),
        num_vertices=20,
    )
    # adjacency is sorted, unique, loop-free, and symmetric
    for v in graph.vertices():
        nbrs = graph.neighbors(v).tolist()
        assert nbrs == sorted(set(nbrs))
        assert v not in nbrs
        for u in nbrs:
            assert graph.has_edge(u, v)
    assert graph.num_directed_edges == 2 * graph.num_edges


# ----------------------------------------------------------------------
# partitioning
# ----------------------------------------------------------------------
@given(
    machines=st.integers(min_value=1, max_value=12),
    vertices=st.integers(min_value=1, max_value=500),
)
@settings(max_examples=60, deadline=None)
def test_partitioner_total_and_deterministic(machines, vertices):
    p = HashPartitioner(machines)
    owners = p.owners(np.arange(vertices))
    assert owners.min() >= 0 and owners.max() < machines
    assert np.array_equal(owners, p.owners(np.arange(vertices)))


# ----------------------------------------------------------------------
# pipeline bounds
# ----------------------------------------------------------------------
@given(
    comm=st.lists(st.floats(0, 10), min_size=1, max_size=8),
    pad=st.lists(st.floats(0, 10), min_size=8, max_size=8),
)
@settings(max_examples=100, deadline=None)
def test_pipeline_sandwich_bounds(comm, pad):
    compute = pad[: len(comm)]
    total = pipeline_time(comm, compute)
    assert total >= max(sum(comm), sum(compute)) - 1e-9
    assert total <= sum(comm) + sum(compute) + 1e-9


# ----------------------------------------------------------------------
# cache: static policy never evicts; capacity always respected
# ----------------------------------------------------------------------
@given(
    policy=st.sampled_from(list(CachePolicy)),
    ops=st.lists(
        st.tuples(st.integers(0, 30), st.integers(1, 400)), max_size=100
    ),
)
@settings(max_examples=100, deadline=None)
def test_cache_capacity_invariant(policy, ops):
    cache = EdgeCache(1000, 0, policy, CostModel())
    for vertex, size in ops:
        cache.query(vertex)
        cache.admit(vertex, size, degree=10)
        assert cache.used_bytes <= 1000
    if policy is CachePolicy.STATIC:
        assert cache.evictions == 0


# ----------------------------------------------------------------------
# HDS: a vertex never hits before it was inserted
# ----------------------------------------------------------------------
@given(st.lists(st.integers(0, 50), max_size=200))
@settings(max_examples=100, deadline=None)
def test_hds_hit_implies_prior_insert(probes):
    table = HorizontalShareTable(32)
    inserted = set()
    for v in probes:
        outcome = table.probe(v)
        if outcome is ProbeOutcome.HIT:
            assert v in inserted
        elif outcome is ProbeOutcome.INSERTED:
            inserted.add(v)
