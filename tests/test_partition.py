"""Tests for 1-D hash partitioning and NUMA sub-partitions."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph import HashPartitioner, PartitionedGraph
from repro.graph.generators import erdos_renyi


@pytest.fixture(scope="module")
def parts():
    graph = erdos_renyi(200, 600, seed=1)
    partitioner = HashPartitioner(4, sockets_per_machine=2)
    return graph, partitioner, PartitionedGraph(graph, partitioner)


def test_owner_in_range(parts):
    _, partitioner, _ = parts
    for v in range(200):
        assert 0 <= partitioner.owner(v) < 4


def test_partitions_cover_all_vertices(parts):
    graph, _, pg = parts
    seen = np.concatenate([pg.local_vertices(m) for m in pg.machines()])
    assert sorted(seen.tolist()) == list(range(graph.num_vertices))


def test_partitions_disjoint(parts):
    _, _, pg = parts
    for m1 in pg.machines():
        for m2 in pg.machines():
            if m1 < m2:
                overlap = np.intersect1d(
                    pg.local_vertices(m1), pg.local_vertices(m2)
                )
                assert len(overlap) == 0


def test_partition_balance(parts):
    """Multiplicative hashing keeps partitions roughly even."""
    _, _, pg = parts
    sizes = [len(pg.local_vertices(m)) for m in pg.machines()]
    assert max(sizes) < 2 * min(sizes)


def test_vectorized_owners_match_scalar(parts):
    _, partitioner, _ = parts
    ids = np.arange(200)
    vector = partitioner.owners(ids)
    scalar = np.array([partitioner.owner(int(v)) for v in ids])
    assert np.array_equal(vector, scalar)


def test_socket_split_covers_machine_partition(parts):
    _, _, pg = parts
    for m in pg.machines():
        by_socket = np.concatenate(
            [pg.socket_vertices(m, s) for s in range(2)]
        )
        assert sorted(by_socket.tolist()) == sorted(
            pg.local_vertices(m).tolist()
        )


def test_partition_bytes_positive_and_additive(parts):
    graph, _, pg = parts
    total_edge_entries = sum(
        int(graph.degrees()[pg.local_vertices(m)].sum())
        for m in pg.machines()
    )
    # each directed adjacency entry is stored exactly once (at its owner)
    assert total_edge_entries == graph.num_directed_edges


def test_owner_deterministic():
    p1 = HashPartitioner(8)
    p2 = HashPartitioner(8)
    assert all(p1.owner(v) == p2.owner(v) for v in range(100))


def test_single_machine_owns_everything():
    p = HashPartitioner(1)
    assert all(p.owner(v) == 0 for v in range(50))


def test_invalid_configs():
    with pytest.raises(ConfigurationError):
        HashPartitioner(0)
    with pytest.raises(ConfigurationError):
        HashPartitioner(2, sockets_per_machine=0)


def test_socket_in_range(parts):
    _, partitioner, _ = parts
    for v in range(200):
        assert 0 <= partitioner.socket(v) < 2


def test_repr(parts):
    _, _, pg = parts
    assert "machines=4" in repr(pg)
