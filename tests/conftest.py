"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    power_law_graph,
    random_labels,
    star_graph,
)


@pytest.fixture(scope="session")
def small_random_graph():
    """A reusable 60-vertex random graph (dense enough for cliques)."""
    return erdos_renyi(60, 240, seed=3)


@pytest.fixture(scope="session")
def skewed_graph():
    """A power-law graph with pronounced hubs."""
    return power_law_graph(200, 1200, exponent=2.0, seed=7)


@pytest.fixture(scope="session")
def labeled_graph():
    """A small labeled graph for FSM and label-constraint tests."""
    return random_labels(erdos_renyi(50, 160, seed=11), 3, seed=2)


@pytest.fixture
def tiny_cluster(small_random_graph):
    """A 4-machine cluster over the small random graph."""
    return Cluster(
        small_random_graph,
        ClusterConfig(num_machines=4, memory_bytes=32 << 20),
    )


@pytest.fixture(scope="session")
def k5():
    return complete_graph(5)


@pytest.fixture(scope="session")
def c8():
    return cycle_graph(8)


@pytest.fixture(scope="session")
def star10():
    return star_graph(10)
