"""Tests for the simulated cluster substrate."""

import pytest

from repro.cluster import Cluster, ClusterConfig, CostModel
from repro.cluster.machine import ClockBuckets, MachineState
from repro.cluster.network import NetworkModel
from repro.errors import ConfigurationError, OutOfMemoryError
from repro.graph.generators import erdos_renyi


# ----------------------------------------------------------------------
# cost model
# ----------------------------------------------------------------------
def test_cost_model_derive():
    base = CostModel()
    tuned = base.derive(network_bandwidth=1.0)
    assert tuned.network_bandwidth == 1.0
    assert tuned.intersect_per_element == base.intersect_per_element
    assert base.network_bandwidth != 1.0  # original untouched


def test_cost_model_frozen():
    with pytest.raises(Exception):
        CostModel().network_bandwidth = 5.0  # type: ignore[misc]


# ----------------------------------------------------------------------
# clock buckets
# ----------------------------------------------------------------------
def test_clock_bucket_totals_and_fractions():
    clock = ClockBuckets(compute=3.0, scheduler=1.0, cache=0.5, network=0.5)
    assert clock.total() == 5.0
    fractions = clock.fractions()
    assert fractions["compute"] == pytest.approx(0.6)
    assert sum(fractions.values()) == pytest.approx(1.0)


def test_clock_bucket_empty_fractions():
    assert all(v == 0.0 for v in ClockBuckets().fractions().values())


def test_clock_bucket_add():
    a = ClockBuckets(compute=1.0)
    a.add(ClockBuckets(compute=2.0, network=1.0))
    assert a.compute == 3.0
    assert a.network == 1.0


# ----------------------------------------------------------------------
# machine state
# ----------------------------------------------------------------------
def test_machine_thread_split():
    machine = MachineState(0, cores=16, memory_bytes=1 << 20)
    assert machine.comm_threads == 4
    assert machine.compute_threads == 12


def test_machine_thread_split_minimums():
    machine = MachineState(0, cores=2, memory_bytes=1 << 20)
    assert machine.comm_threads >= 1
    assert machine.compute_threads >= 1


def test_parallel_compute_time():
    machine = MachineState(0, cores=16, memory_bytes=1 << 20)
    serial = 10.8
    parallel = machine.parallel_compute_time(serial)
    assert parallel == pytest.approx(serial / (12 * 0.9))
    single = MachineState(0, cores=1, memory_bytes=1 << 20)
    assert single.parallel_compute_time(serial) == serial


def test_machine_memory_accounting():
    machine = MachineState(0, cores=4, memory_bytes=1000)
    machine.allocate(600)
    machine.allocate(300)
    assert machine.resident_bytes == 900
    assert machine.peak_bytes == 900
    machine.release(500)
    assert machine.resident_bytes == 400
    machine.release(10_000)
    assert machine.resident_bytes == 0
    assert machine.peak_bytes == 900  # peak is sticky


def test_machine_oom():
    machine = MachineState(3, cores=4, memory_bytes=100)
    with pytest.raises(OutOfMemoryError) as exc:
        machine.allocate(200)
    assert exc.value.machine_id == 3
    assert exc.value.capacity_bytes == 100


# ----------------------------------------------------------------------
# network model
# ----------------------------------------------------------------------
def test_network_traffic_matrix():
    cost = CostModel()
    net = NetworkModel(3, cost)
    wire = net.record_fetch(0, 1, 100)
    assert wire == 100 + cost.request_header_bytes
    assert net.traffic_bytes[0, 1] == cost.request_header_bytes
    assert net.traffic_bytes[1, 0] == 100
    assert net.total_requests() == 1
    assert net.total_bytes() == wire


def test_network_serve_accounting():
    cost = CostModel()
    net = NetworkModel(2, cost)
    server = MachineState(1, cores=8, memory_bytes=1 << 20)
    net.record_fetch(0, 1, 500, server)
    assert server.served_bytes == 500
    assert server.served_requests == 1


def test_batch_time_zero_requests():
    net = NetworkModel(2, CostModel())
    assert net.batch_time(0, 0) == 0.0


def test_batch_time_latency_plus_wire():
    cost = CostModel()
    net = NetworkModel(2, cost)
    t = net.batch_time(7_000_000, 10)
    wire = (7_000_000 + 10 * cost.request_header_bytes) / cost.network_bandwidth
    assert t == pytest.approx(cost.batch_latency + wire)


def test_utilization_bounds():
    cost = CostModel()
    net = NetworkModel(2, cost)
    net.record_fetch(0, 1, 10_000)
    util = net.utilization(1.0)
    assert 0.0 < util < 1.0
    assert net.utilization(0.0) == 0.0


# ----------------------------------------------------------------------
# cluster assembly
# ----------------------------------------------------------------------
def test_cluster_charges_partition_memory():
    graph = erdos_renyi(100, 300, seed=0)
    cluster = Cluster(graph, ClusterConfig(num_machines=4))
    for machine in cluster.machines:
        assert machine.resident_bytes > 0


def test_cluster_partition_too_big():
    graph = erdos_renyi(100, 300, seed=0)
    with pytest.raises(OutOfMemoryError):
        Cluster(graph, ClusterConfig(num_machines=2, memory_bytes=64))


def test_cluster_runtime_is_max_clock():
    graph = erdos_renyi(50, 100, seed=0)
    cluster = Cluster(graph, ClusterConfig(num_machines=2))
    cluster.machines[0].clock.compute = 1.0
    cluster.machines[1].clock.compute = 3.0
    assert cluster.runtime() == 3.0


def test_cluster_reset_clocks():
    graph = erdos_renyi(50, 100, seed=0)
    cluster = Cluster(graph, ClusterConfig(num_machines=2))
    cluster.machines[0].clock.compute = 1.0
    cluster.network.record_fetch(0, 1, 10)
    cluster.reset_clocks()
    assert cluster.runtime() == 0.0
    assert cluster.network.total_bytes() == 0


def test_cluster_config_validation():
    with pytest.raises(ConfigurationError):
        ClusterConfig(num_machines=0)
    with pytest.raises(ConfigurationError):
        ClusterConfig(cores_per_machine=1)
    with pytest.raises(ConfigurationError):
        ClusterConfig(sockets_per_machine=0)


def test_cluster_owner_consistent_with_partitioner():
    graph = erdos_renyi(60, 120, seed=0)
    cluster = Cluster(graph, ClusterConfig(num_machines=4))
    for v in range(60):
        assert cluster.owner(v) == cluster.partitioner.owner(v)
