"""Out-of-core graph storage (docs/storage.md).

Three invariants under test:

1. **Builder parity** — the streaming external-sort builder produces
   bit-identical CSR arrays to the eager
   :func:`~repro.graph.builder.from_edge_array` path, for any batch
   split, including the edge-label first-occurrence-wins tie-break
   across forward/reverse duplicates; and a store round-trips
   (build → reopen → ``Graph.__eq__``).
2. **Store hygiene** — truncated, corrupt, foreign, or stale store
   files are rejected by name with a structured
   :class:`~repro.errors.GraphFormatError`, never a numpy error deep
   inside a worker (the PR-7 manifest discipline).
3. **Engine transparency** — counts, metrics, and every simulated
   measurement are bit-identical across ``{ram, mmap}`` x
   ``{inline, process}`` x ``{batched, scalar}``: storage is invisible
   to everything except byte accounting (admission baselines and the
   ``storage.*`` metric family).

Run alone via ``make storage-check``.
"""

import json
import pickle
import struct

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.core import EngineConfig
from repro.core.cache import EdgeCache
from repro.errors import ConfigurationError, GraphFormatError
from repro.exec import ProcessBackend
from repro.graph import dataset, load_dataset
from repro.graph.builder import (
    from_edge_array,
    iter_edge_list_batches,
    read_edge_list,
)
from repro.graph.csr import MmapCsrHandle, attach_csr, share_csr
from repro.graph.generators import power_law_edge_batches
from repro.graph.storage import (
    MmapGraph,
    build_store,
    from_edge_batches,
    iter_graph_edge_batches,
    open_store,
    read_header,
    resolve_storage,
    write_store,
)
from repro.obs import Observability, names
from repro.obs.render import render_metrics_json
from repro.patterns import catalog
from repro.service.admission import (
    AdmissionController,
    resident_baseline_bytes,
)
from repro.systems import KAutomine


def _random_edges(m, n, seed, with_labels=False):
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, size=(m, 2))
    if with_labels:
        return edges, rng.integers(0, 7, size=m)
    return edges, None


def _batches(edges, labels=None, batch=509):
    for start in range(0, len(edges), batch):
        chunk = edges[start:start + batch]
        if labels is None:
            yield chunk
        else:
            yield chunk, labels[start:start + batch]


# ======================================================================
# streaming builder parity
# ======================================================================
@pytest.mark.parametrize("directed", [False, True])
@pytest.mark.parametrize("labeled", [False, True])
def test_streaming_builder_matches_eager(directed, labeled):
    edges, elabels = _random_edges(20000, 700, seed=5, with_labels=labeled)
    reference = from_edge_array(
        edges, num_vertices=700, directed=directed, edge_labels=elabels
    )
    # tiny runs/chunks force many spill runs and merge steps
    streamed = from_edge_batches(
        _batches(edges, elabels), num_vertices=700, directed=directed,
        run_entries=2048, merge_chunk=1024,
    )
    assert streamed == reference


def test_streaming_builder_any_batch_split():
    edges, _ = _random_edges(3000, 64, seed=9)
    reference = from_edge_array(edges, num_vertices=64)
    for batch in (1, 7, 501, 3000):
        streamed = from_edge_batches(
            _batches(edges, batch=batch), num_vertices=64,
            run_entries=1024, merge_chunk=1024,
        )
        assert streamed == reference, f"diverged at batch={batch}"


def test_edge_label_tie_break_across_batches():
    """First occurrence wins when duplicates collapse — including a
    forward edge beating its own reversed duplicate — no matter how
    the input is split across builder batches."""
    edges = np.array([[1, 2], [2, 1], [3, 4], [3, 4], [4, 3], [0, 0]])
    elabels = np.array([10, 20, 30, 40, 50, 60])
    reference = from_edge_array(edges, num_vertices=5, edge_labels=elabels)
    for batch in (1, 2, 3, 6):
        streamed = from_edge_batches(
            _batches(edges, elabels, batch=batch), num_vertices=5,
            run_entries=1024, merge_chunk=1024,
        )
        assert streamed == reference, f"diverged at batch={batch}"


def test_builder_rejects_bad_input():
    with pytest.raises(GraphFormatError):
        from_edge_batches([np.array([[1, 2, 3]])])
    with pytest.raises(GraphFormatError):
        from_edge_batches([np.array([[-1, 2]])])
    with pytest.raises(GraphFormatError):
        from_edge_batches([np.array([[0, 9]])], num_vertices=4)


def test_empty_stream_builds_empty_graph():
    graph = from_edge_batches([], num_vertices=3)
    assert graph.num_vertices == 3
    assert graph.num_edges == 0


# ======================================================================
# chunked edge-list parsing
# ======================================================================
def test_read_edge_list_chunked_matches_eager(tmp_path):
    edges, _ = _random_edges(5000, 300, seed=11)
    path = tmp_path / "edges.txt"
    with open(path, "w") as handle:
        handle.write("# comment\n% other comment\n\n")
        for u, v in edges:
            handle.write(f"{u} {v}\n")
    reference = from_edge_array(edges)
    for batch in (17, 1024, 10**6):
        assert read_edge_list(path, batch_edges=batch) == reference
    total = sum(len(b) for b in iter_edge_list_batches(path, 100))
    assert total == len(edges)
    assert all(len(b) <= 100
               for b in iter_edge_list_batches(path, 100))


def test_read_edge_list_errors_name_file_and_line(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("1 2\n3\n")
    with pytest.raises(GraphFormatError, match=r"bad\.txt:2: expected"):
        read_edge_list(path)
    path.write_text("1 2\nx y\n")
    with pytest.raises(GraphFormatError, match=r"bad\.txt:2: non-integer"):
        read_edge_list(path)


# ======================================================================
# store round-trip and rejection
# ======================================================================
def test_store_round_trip(tmp_path):
    edges, elabels = _random_edges(8000, 400, seed=21, with_labels=True)
    reference = from_edge_array(
        edges, num_vertices=400, edge_labels=elabels
    ).with_labels(np.arange(400) % 3)
    path = tmp_path / "g.kcsr"
    stats = build_store(
        _batches(edges, elabels), path, num_vertices=400,
        labels=np.arange(400) % 3, run_entries=2048, merge_chunk=1024,
    )
    assert stats.spill_runs >= 2  # the tiny run size forced spills
    reopened = open_store(path, verify=True)
    assert isinstance(reopened, MmapGraph)
    assert reopened.storage == "mmap"
    assert reopened == reference
    assert reopened.builder_stats["spill_runs"] == stats.spill_runs
    # memmap views are read-only: the store cannot be scribbled on
    assert not reopened.indices.flags.writeable


def test_write_store_round_trip(tmp_path):
    graph = dataset("mico", scale=0.3, labeled=True)
    path = tmp_path / "mico.kcsr"
    write_store(graph, path)
    assert open_store(path, verify=True) == graph


def test_graph_edge_batches_round_trip(tmp_path):
    graph = dataset("mico", scale=0.3)
    rebuilt = from_edge_batches(
        iter_graph_edge_batches(graph, 512),
        num_vertices=graph.num_vertices,
    )
    assert rebuilt == graph


def test_store_rejections(tmp_path):
    graph = dataset("mico", scale=0.2)
    path = tmp_path / "g.kcsr"
    write_store(graph, path)
    raw = path.read_bytes()

    def rejects(name, data, needle):
        target = tmp_path / name
        target.write_bytes(data)
        with pytest.raises(GraphFormatError, match=needle):
            open_store(target, verify=True)

    rejects("trunc.kcsr", raw[:len(raw) // 2], "truncated store")
    rejects("tiny.kcsr", raw[:8], "truncated store")
    rejects("foreign.kcsr", b"XXXX" + raw[4:], "not a Khuzdul CSR store")
    stale = raw[:4] + struct.pack("<I", 99) + raw[8:]
    rejects("stale.kcsr", stale, "stale store version 99")
    flipped_header = bytearray(raw)
    flipped_header[20] ^= 0xFF
    rejects("hdr.kcsr", bytes(flipped_header), "corrupt store header")
    # a flipped byte inside an array section passes the cheap open but
    # fails the opt-in full verify
    offset = read_header(path)["arrays"]["indices"]["offset"]
    flipped_array = bytearray(raw)
    flipped_array[offset] ^= 0xFF
    damaged = tmp_path / "arr.kcsr"
    damaged.write_bytes(bytes(flipped_array))
    open_store(damaged)  # header + size still consistent
    with pytest.raises(GraphFormatError, match="recorded CRC32"):
        open_store(damaged, verify=True)
    with pytest.raises(GraphFormatError):
        open_store(tmp_path / "missing.kcsr")


def test_resolve_storage_policy():
    assert resolve_storage("ram", 10**9, 1) == "ram"
    assert resolve_storage("mmap", 1, 10**9) == "mmap"
    assert resolve_storage("auto", 100, 1000) == "ram"
    assert resolve_storage("auto", 1001, 1000) == "mmap"
    assert resolve_storage("auto", 10**9, None) == "ram"
    with pytest.raises(GraphFormatError):
        resolve_storage("disk", 1, 1)


def test_load_dataset_caches_and_rebuilds(tmp_path):
    ram = dataset("mico", scale=0.3)
    mapped = load_dataset("mico", scale=0.3, storage="mmap",
                          store_dir=tmp_path)
    assert mapped.storage == "mmap"
    assert mapped == ram
    store = tmp_path / "mico-s0.3-plain.kcsr"
    assert store.exists()
    # a corrupted cached store is rebuilt, not trusted
    store.write_bytes(store.read_bytes()[:64])
    again = load_dataset("mico", scale=0.3, storage="mmap",
                         store_dir=tmp_path)
    assert again == ram
    assert load_dataset("mico", scale=0.3, storage="ram").storage == "ram"


# ======================================================================
# worker distribution seam
# ======================================================================
def test_share_csr_mmap_is_pathonly_and_reattachable(tmp_path):
    ram = dataset("mico", scale=0.3)
    mapped = load_dataset("mico", scale=0.3, storage="mmap",
                          store_dir=tmp_path)
    shared = share_csr(mapped)
    try:
        handle = shared.handle
        assert isinstance(handle, MmapCsrHandle)
        # no segments: the durability ledger records nothing to reap
        assert handle.segment_names() == []
        revived = pickle.loads(pickle.dumps(handle))
        attached = attach_csr(revived)
        try:
            assert attached.graph == ram
            assert attached.graph.storage == "mmap"
        finally:
            attached.close()
    finally:
        shared.unlink()  # must be a safe no-op for mmap handles


def test_attach_csr_rejects_swapped_store(tmp_path):
    mapped = load_dataset("mico", scale=0.3, storage="mmap",
                          store_dir=tmp_path)
    handle = share_csr(mapped).handle
    # rebuild the store with a different graph behind the same path
    write_store(dataset("mico", scale=0.2), handle.path)
    with pytest.raises(ConfigurationError, match="fingerprint"):
        attach_csr(handle)


# ======================================================================
# engine transparency: {ram,mmap} x {inline,process} x {batched,scalar}
# ======================================================================
def _run(graph, backend, mode):
    obs = Observability()
    system = KAutomine(
        graph,
        ClusterConfig(num_machines=4),
        EngineConfig(extend_mode=mode),
        graph_name="mico",
        obs=obs,
        backend=backend,
    )
    report = system.count_pattern(catalog.clique(3))
    snapshot = obs.registry.snapshot()
    # two deliberate exclusions: storage.* exists to *describe* the
    # mmap backing, and exec.* is measured wall-clock (it differs
    # between any two process-backend runs, storage aside); everything
    # else — every simulated measurement — must match bit for bit
    trimmed = {
        kind: {
            name: series for name, series in table.items()
            if not name.startswith(("storage.", "exec."))
        }
        for kind, table in snapshot.items()
    }
    return report, trimmed


def test_counts_and_metrics_identical_across_storage(tmp_path):
    ram = dataset("mico", scale=0.3)
    mapped = load_dataset("mico", scale=0.3, storage="mmap",
                          store_dir=tmp_path)
    for mode in ("batched", "scalar"):
        for backend_name in ("inline", "process"):
            backend = (
                ProcessBackend(workers=2) if backend_name == "process"
                else None
            )
            ram_report, ram_counters = _run(ram, backend, mode)
            backend = (
                ProcessBackend(workers=2) if backend_name == "process"
                else None
            )
            mmap_report, mmap_counters = _run(mapped, backend, mode)
            label = f"{backend_name}/{mode}"
            assert mmap_report.counts == ram_report.counts, label
            assert mmap_report.simulated_seconds == \
                ram_report.simulated_seconds, label
            assert mmap_report.network_bytes == \
                ram_report.network_bytes, label
            assert mmap_report.cache_hit_rate == \
                ram_report.cache_hit_rate, label
            assert mmap_report.peak_memory_bytes == \
                ram_report.peak_memory_bytes, label
            assert mmap_report.breakdown == ram_report.breakdown, label
            assert mmap_counters == ram_counters, label


def test_kernels_run_unmodified_on_memmap_arrays(tmp_path):
    """The acceptance criterion stated directly: the graph the kernels
    see is a plain ndarray interface — same dtypes, same values — with
    no storage branch anywhere in core/ (grep-pinned by
    test_no_isinstance_storage_branches_in_core)."""
    mapped = load_dataset("mico", scale=0.3, storage="mmap",
                          store_dir=tmp_path)
    ram = dataset("mico", scale=0.3)
    assert mapped.indptr.dtype == ram.indptr.dtype
    assert mapped.indices.dtype == ram.indices.dtype
    assert np.array_equal(mapped.degrees(), ram.degrees())
    values, offsets = mapped.neighbors_batch(np.array([0, 3, 7]))
    ref_values, ref_offsets = ram.neighbors_batch(np.array([0, 3, 7]))
    assert np.array_equal(values, ref_values)
    assert np.array_equal(offsets, ref_offsets)


def test_no_isinstance_storage_branches_in_core():
    """core/ never dispatches on the graph's storage class: the only
    permitted storage awareness is engine.py reading the duck-typed
    ``graph.storage`` tag when assembling the report."""
    from pathlib import Path

    import repro.core

    for path in Path(repro.core.__file__).parent.glob("*.py"):
        source = path.read_text()
        assert "MmapGraph" not in source, path.name
        assert "memmap" not in source, path.name


# ======================================================================
# storage metrics and NaN hygiene
# ======================================================================
def test_storage_metrics_emitted_for_mmap_only(tmp_path):
    mapped = load_dataset("mico", scale=0.3, storage="mmap",
                          store_dir=tmp_path)
    obs = Observability()
    system = KAutomine(mapped, ClusterConfig(num_machines=4),
                       graph_name="mico", obs=obs)
    report = system.count_pattern(catalog.clique(3))
    stats = report.extra["storage"]
    assert stats["mode"] == "mmap"
    assert stats["mapped_bytes"] == mapped.size_bytes()
    assert stats["page_miss_gathers"] >= 0
    snapshot = obs.registry.snapshot()
    assert snapshot["gauges"][names.STORAGE_MAPPED_BYTES][""] == \
        mapped.size_bytes()
    # a cache hit is a gather the mapping never saw: the two counters
    # partition cache queries (the Section 5.3 pricing argument)
    total_misses = sum(
        snapshot["counters"].get(names.CACHE_MISSES, {}).values()
    )
    assert snapshot["counters"][names.STORAGE_PAGE_MISS_GATHERS][""] \
        == total_misses

    ram_obs = Observability()
    ram_system = KAutomine(dataset("mico", scale=0.3),
                           ClusterConfig(num_machines=4),
                           graph_name="mico", obs=ram_obs)
    ram_report = ram_system.count_pattern(catalog.clique(3))
    assert "storage" not in ram_report.extra
    ram_snapshot = ram_obs.registry.snapshot()
    assert names.STORAGE_MAPPED_BYTES not in ram_snapshot["gauges"]


def test_fresh_cache_hit_rate_is_zero_not_nan():
    from repro.core.cache import CachePolicy

    cache = EdgeCache(1 << 20, 4, CachePolicy.STATIC, None)
    assert cache.hit_rate() == 0.0


def test_metrics_json_never_emits_nan(tmp_path):
    """A run whose caches are never queried (one machine: every fetch
    is local) must render --metrics json with finite numbers only."""
    graph = dataset("mico", scale=0.3)
    obs = Observability()
    system = KAutomine(graph, ClusterConfig(num_machines=1),
                       graph_name="mico", obs=obs)
    report = system.count_pattern(catalog.clique(3))
    assert report.cache_hit_rate == 0.0

    def _reject(token):
        raise AssertionError(f"non-finite JSON token: {token}")

    rendered = render_metrics_json(report, obs)
    parsed = json.loads(rendered, parse_constant=_reject)
    assert parsed["report"]["cache_hit_rate"] == 0.0


# ======================================================================
# admission accounting
# ======================================================================
def test_resident_baseline_charges_working_set_for_mmap():
    graph_bytes = 100 << 20
    assert resident_baseline_bytes(graph_bytes, "ram") == graph_bytes
    mmap_baseline = resident_baseline_bytes(graph_bytes, "mmap")
    assert 0 < mmap_baseline < graph_bytes

    # a cap between the working-set baseline and the full graph:
    # servable out-of-core, impossible fully resident
    cap = (mmap_baseline + graph_bytes) // 2
    assert AdmissionController(
        cap, resident_baseline_bytes(graph_bytes, "ram")
    ).decide(1024) == "reject"
    assert AdmissionController(
        cap, resident_baseline_bytes(graph_bytes, "mmap")
    ).decide(1024) == "admit"


@pytest.mark.service
def test_over_cap_graph_servable_under_mmap_only(tmp_path, monkeypatch):
    """The satellite pinned end to end: a graph bigger than
    --resident-mb starts and serves under --storage mmap, and is
    rejected under ram with a hint naming the fix."""
    from repro.service.protocol import QueryRequest
    from repro.service.server import MiningServer, ServiceConfig

    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
    graph = dataset("wdc", scale=2.0)
    assert graph.size_bytes() > 1 << 20  # the 1 MiB cap is below it

    with pytest.raises(ConfigurationError, match="--storage mmap"):
        MiningServer(ServiceConfig(
            graph="wdc", scale=2.0, machines=1, resident_mb=1,
            storage="ram",
        )).start()

    # a small per-query chunk budget keeps the *query* admissible; the
    # point of the test is the graph baseline, not chunk slack
    server = MiningServer(ServiceConfig(
        graph="wdc", scale=2.0, machines=1, resident_mb=1,
        storage="mmap", chunk_bytes=4096,
    )).start()
    try:
        assert server.graph.storage == "mmap"
        assert server.describe()["storage"] == "mmap"
        handle = server.submit(QueryRequest(id="q1", pattern="chain2"))
        result = handle.result(timeout=120)
        assert result.outcome not in ("REJECTED",), result
    finally:
        server.shutdown()

    # auto resolves the same way: over the cap means out-of-core
    auto = MiningServer(ServiceConfig(
        graph="wdc", scale=2.0, machines=1, resident_mb=1,
        storage="auto",
    )).start()
    try:
        assert auto.graph.storage == "mmap"
    finally:
        auto.shutdown()
