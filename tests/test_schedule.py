"""Tests for extension-schedule compilation and matching orders."""

import pytest

from repro.errors import ScheduleError
from repro.patterns import (
    Pattern,
    automine_schedule,
    chain,
    clique,
    cycle,
    graphpi_schedule,
    star,
)
from repro.patterns.schedule import compile_schedule


def test_connected_prefix_enforced():
    # chain 0-1-2: order (0, 2, 1) places 2 before any neighbor
    with pytest.raises(ScheduleError):
        compile_schedule(chain(3), (0, 2, 1))


def test_order_must_be_permutation():
    with pytest.raises(ScheduleError):
        compile_schedule(chain(3), (0, 1, 1))


def test_disconnected_pattern_rejected():
    with pytest.raises(ScheduleError):
        compile_schedule(Pattern(3, [(0, 1)]), (0, 1, 2))


def test_clique_steps_intersect_all_priors():
    schedule = automine_schedule(clique(4))
    for step in schedule.steps:
        assert step.connected == tuple(range(step.level))


def test_chain_steps_intersect_only_previous():
    schedule = compile_schedule(chain(4), (0, 1, 2, 3))
    for step in schedule.steps:
        assert step.connected == (step.level - 1,)


def test_active_sets_anti_monotone():
    """Once a position goes inactive it never becomes active again."""
    for pattern in (clique(5), cycle(5), star(4), chain(5)):
        schedule = automine_schedule(pattern)
        previous = None
        for step in reversed(schedule.steps):
            active = set(step.active_after)
            if previous is not None:
                # positions active later must be active earlier (among
                # positions that already exist at this step)
                later_restricted = {p for p in previous if p <= step.level}
                assert later_restricted <= active | {step.level + 1} - {step.level + 1} or later_restricted <= active
            previous = active


def test_active_after_matches_future_use():
    schedule = automine_schedule(clique(4))
    # after level 2 of a 4-clique, the final step intersects 0, 1, 2
    assert schedule.steps[1].active_after == (0, 1, 2)
    # after the last step nothing stays active
    assert schedule.steps[-1].active_after == ()


def test_needs_edge_list():
    schedule = compile_schedule(chain(4), (0, 1, 2, 3))
    assert schedule.needs_edge_list(0) is False or schedule.root_active()
    # the last chain position is never intersected
    assert not schedule.needs_edge_list(3)
    # middle positions are intersected by their successor
    assert schedule.needs_edge_list(1)
    assert schedule.needs_edge_list(2)


def test_root_active_for_clique_not_for_chain_tail():
    assert automine_schedule(clique(3)).root_active()
    schedule = compile_schedule(chain(3), (0, 1, 2))
    # chain: level-2 intersects only position 1, so root inactive after
    assert not schedule.needs_edge_list(0) or schedule.root_active()


def test_vcs_reuse_on_cliques():
    """k-clique schedules reuse the previous level's intersection."""
    schedule = automine_schedule(clique(5))
    # steps 3 and 4 (placing positions 3, 4) must reuse earlier results
    assert schedule.steps[2].reuse_level is not None
    assert schedule.steps[3].reuse_level is not None
    # the reused result is extended by exactly one extra list
    assert len(schedule.steps[2].extra_connected) == 1


def test_vcs_store_flags_match_reuse():
    schedule = automine_schedule(clique(5))
    reused = {s.reuse_level for s in schedule.steps if s.reuse_level}
    stored = {s.level for s in schedule.steps if s.store_intermediate}
    assert reused == stored


def test_no_reuse_on_chains():
    schedule = compile_schedule(chain(5), (0, 1, 2, 3, 4))
    assert all(s.reuse_level is None for s in schedule.steps)
    assert all(not s.store_intermediate for s in schedule.steps)


def test_reuse_connected_subset_invariant():
    for pattern in (clique(5), cycle(5), star(4)):
        schedule = automine_schedule(pattern)
        for step in schedule.steps:
            if step.reuse_level is not None:
                source = schedule.steps[step.reuse_level - 1]
                assert set(source.connected) <= set(step.connected)
                assert set(step.extra_connected) == set(step.connected) - set(
                    source.connected
                )


def test_induced_mode_adds_disconnected_sets():
    induced = automine_schedule(chain(3), induced=True)
    plain = automine_schedule(chain(3), induced=False)
    assert any(s.disconnected for s in induced.steps)
    assert all(not s.disconnected for s in plain.steps)


def test_restrictions_mapped_to_levels():
    schedule = automine_schedule(clique(3))
    constrained = [
        s for s in schedule.steps if s.larger_than or s.smaller_than
    ]
    # a triangle has |Aut| = 6; both extension levels carry constraints
    assert len(constrained) == 2


def test_use_restrictions_false_drops_them():
    schedule = automine_schedule(clique(4), use_restrictions=False)
    assert schedule.restrictions == ()
    assert all(
        not s.larger_than and not s.smaller_than for s in schedule.steps
    )


def test_labels_propagate_to_steps():
    pattern = Pattern(3, [(0, 1), (1, 2)], labels=(7, 8, 9))
    schedule = automine_schedule(pattern)
    assert schedule.root_label() in (7, 8, 9)
    step_labels = {schedule.root_label()} | {s.label for s in schedule.steps}
    assert step_labels == {7, 8, 9}


def test_single_vertex_pattern():
    schedule = automine_schedule(Pattern(1, []))
    assert schedule.num_levels == 0
    assert schedule.order == (0,)


def test_automine_starts_at_max_degree():
    schedule = automine_schedule(star(3))
    assert schedule.order[0] == 0  # the hub


def test_graphpi_order_never_costlier_than_automine():
    from repro.patterns.schedule import _order_cost

    for pattern in (chain(4), cycle(4), star(3), clique(4)):
        best = graphpi_schedule(pattern, avg_degree=10, num_vertices=1000)
        greedy = automine_schedule(pattern)
        assert _order_cost(pattern, best.order, 10, 1000) <= _order_cost(
            pattern, greedy.order, 10, 1000
        )


def test_graphpi_and_automine_agree_on_cliques():
    # cliques are fully symmetric: any connected order is equivalent
    a = automine_schedule(clique(4))
    g = graphpi_schedule(clique(4))
    assert [s.connected for s in a.steps] == [s.connected for s in g.steps]


def test_num_levels():
    assert automine_schedule(clique(4)).num_levels == 3
    assert automine_schedule(chain(2)).num_levels == 1
