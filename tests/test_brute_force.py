"""Tests for the brute-force reference counter itself."""

from repro.analysis import count_embeddings_brute_force
from repro.graph import from_edges
from repro.graph.generators import complete_graph, cycle_graph, star_graph
from repro.patterns import Pattern, chain, clique, cycle, star


def test_triangle_in_k4():
    assert count_embeddings_brute_force(complete_graph(4), clique(3)) == 4


def test_cliques_in_kn():
    # C(6, k) k-cliques in K6
    k6 = complete_graph(6)
    assert count_embeddings_brute_force(k6, clique(3)) == 20
    assert count_embeddings_brute_force(k6, clique(4)) == 15
    assert count_embeddings_brute_force(k6, clique(5)) == 6


def test_edges_counted_once():
    g = from_edges([(0, 1), (1, 2)])
    assert count_embeddings_brute_force(g, chain(2)) == 2


def test_wedges_in_star():
    # star with n leaves has C(n,2) wedges centered at the hub
    assert count_embeddings_brute_force(star_graph(5), chain(3)) == 10


def test_chains_in_cycle():
    # a cycle of length n contains n paths of any fixed length < n
    c6 = cycle_graph(6)
    assert count_embeddings_brute_force(c6, chain(3)) == 6
    assert count_embeddings_brute_force(c6, chain(4)) == 6
    assert count_embeddings_brute_force(c6, cycle(6)) == 1


def test_no_triangles_in_cycle():
    assert count_embeddings_brute_force(cycle_graph(8), clique(3)) == 0


def test_induced_vs_non_induced():
    k4 = complete_graph(4)
    # every 3-subset of K4 induces a triangle, so no induced wedges
    assert count_embeddings_brute_force(k4, chain(3)) == 12
    assert count_embeddings_brute_force(k4, chain(3), induced=True) == 0


def test_induced_cycle():
    # K4 has 3 four-cycles, none induced (chords everywhere)
    k4 = complete_graph(4)
    assert count_embeddings_brute_force(k4, cycle(4)) == 3
    assert count_embeddings_brute_force(k4, cycle(4), induced=True) == 0


def test_labeled_matching():
    g = from_edges([(0, 1), (1, 2)], labels=[7, 8, 7])
    hit = Pattern(2, [(0, 1)], labels=(7, 8))
    miss = Pattern(2, [(0, 1)], labels=(9, 8))
    assert count_embeddings_brute_force(g, hit) == 2
    assert count_embeddings_brute_force(g, miss) == 0


def test_labeled_symmetric_pattern():
    g = from_edges([(0, 1)], labels=[5, 5])
    p = Pattern(2, [(0, 1)], labels=(5, 5))
    assert count_embeddings_brute_force(g, p) == 1


def test_star_pattern_counts():
    assert count_embeddings_brute_force(star_graph(4), star(3)) == 4  # C(4,3)


def test_single_vertex_pattern():
    g = from_edges([(0, 1)], num_vertices=5)
    assert count_embeddings_brute_force(g, Pattern(1, [])) == 5
