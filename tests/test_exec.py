"""Execution backends (docs/execution.md).

The headline invariant under test: for any (graph, pattern, seed), the
``process`` backend produces *bit-identical* pattern counts to the
``inline`` path, at any worker count — real multiprocess execution
changes where schedulers run and how fetches travel, never what they
compute. Run alone via ``make exec-check``.
"""

import multiprocessing
import os
import queue
import threading
import time

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.core import EngineConfig
from repro.errors import ConfigurationError, PeerDeadError
from repro.exec import BACKENDS, InlineBackend, ProcessBackend, make_backend
from repro.exec.transport import Endpoints, WorkerTransport
from repro.exec.worker import worker_main
from repro.faults import FaultPlan
from repro.graph import dataset
from repro.graph.generators import erdos_renyi
from repro.graph.csr import attach_csr, share_csr
from repro.obs import Observability
from repro.patterns import catalog
from repro.systems import KAutomine

pytestmark = pytest.mark.exec

_CLUSTER = ClusterConfig(num_machines=4)


def _mico():
    return dataset("mico", scale=0.3)


def _assert_no_stray_children():
    """Every worker process must be reaped when execute() returns."""
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        stray = [p for p in multiprocessing.active_children()
                 if p.name.startswith("repro-exec-")]
        if not stray:
            return
        time.sleep(0.05)
    raise AssertionError(f"worker processes leaked: {stray}")


# ======================================================================
# shared-memory CSR export
# ======================================================================
def test_shared_csr_round_trip():
    graph = erdos_renyi(120, 600, seed=3)
    shared = share_csr(graph)
    try:
        attached = attach_csr(shared.handle)
        try:
            assert np.array_equal(attached.graph.indptr, graph.indptr)
            assert np.array_equal(attached.graph.indices, graph.indices)
            assert attached.graph.directed == graph.directed
            for v in (0, 7, 119):
                assert np.array_equal(
                    attached.graph.neighbors(v), graph.neighbors(v)
                )
        finally:
            attached.close()
            attached.close()  # idempotent
    finally:
        shared.unlink()


def test_shared_csr_carries_labels():
    graph = dataset("mico", scale=0.2, labeled=True)
    shared = share_csr(graph)
    try:
        attached = attach_csr(shared.handle)
        try:
            assert np.array_equal(attached.graph.labels, graph.labels)
        finally:
            attached.close()
    finally:
        shared.unlink()


# ======================================================================
# backend selection
# ======================================================================
def test_make_backend_names():
    assert set(BACKENDS) == {"inline", "process"}
    assert make_backend("inline") is None
    backend = make_backend("process", workers=3)
    assert isinstance(backend, ProcessBackend)
    assert backend.workers == 3
    with pytest.raises(ConfigurationError):
        make_backend("thread")


def test_inline_backend_object_matches_no_backend():
    graph = _mico()
    bare = KAutomine(graph, _CLUSTER, graph_name="mico")
    wrapped = KAutomine(graph, _CLUSTER, graph_name="mico",
                        backend=InlineBackend())
    r1 = bare.count_pattern(catalog.clique(3))
    r2 = wrapped.count_pattern(catalog.clique(3))
    assert r1.counts == r2.counts
    assert r1.simulated_seconds == r2.simulated_seconds


# ======================================================================
# inline/process equivalence — the determinism contract
# ======================================================================
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_triangle_counts_identical(workers):
    graph = _mico()
    inline = KAutomine(graph, _CLUSTER, graph_name="mico")
    expected = inline.count_pattern(catalog.clique(3))
    proc = KAutomine(graph, _CLUSTER, graph_name="mico",
                     backend=ProcessBackend(workers=workers))
    got = proc.count_pattern(catalog.clique(3))
    assert got.counts == expected.counts
    # the simulated cost model is untouched by real execution
    assert got.simulated_seconds == expected.simulated_seconds
    assert got.machine_seconds == expected.machine_seconds
    assert got.network_bytes == expected.network_bytes
    assert got.extra["exec"]["workers"] == min(workers, 4)
    _assert_no_stray_children()


@pytest.mark.parametrize("workers", [2, 4])
def test_motif_census_identical(workers):
    graph = _mico()
    patterns = [catalog.clique(3), catalog.chain(3)]
    inline = KAutomine(graph, _CLUSTER, graph_name="mico")
    expected = inline.count_patterns(patterns)
    proc = KAutomine(graph, _CLUSTER, graph_name="mico",
                     backend=ProcessBackend(workers=workers))
    got = proc.count_patterns(patterns)
    assert got.counts == expected.counts
    assert got.simulated_seconds == expected.simulated_seconds
    _assert_no_stray_children()


def test_collector_udf_merges_across_workers():
    graph = dataset("mico", scale=0.25, labeled=True)
    patterns = [catalog.chain(2), catalog.chain(3)]
    inline = KAutomine(graph, _CLUSTER, graph_name="mico")
    expected, _ = inline.mni_supports(patterns)
    proc = KAutomine(graph, _CLUSTER, graph_name="mico",
                     backend=ProcessBackend(workers=2))
    got, _ = proc.mni_supports(patterns)
    assert got == expected
    _assert_no_stray_children()


def test_worker_count_is_clamped_to_machines():
    graph = _mico()
    proc = KAutomine(graph, ClusterConfig(num_machines=2),
                     graph_name="mico", backend=ProcessBackend(workers=16))
    report = proc.count_pattern(catalog.clique(3))
    assert report.extra["exec"]["workers"] == 2


# ======================================================================
# observability merge
# ======================================================================
def test_metrics_merge_matches_inline():
    graph = _mico()
    obs_inline = Observability()
    inline = KAutomine(graph, _CLUSTER, graph_name="mico", obs=obs_inline)
    inline.count_pattern(catalog.clique(3))
    obs_proc = Observability()
    proc = KAutomine(graph, _CLUSTER, graph_name="mico", obs=obs_proc,
                     backend=ProcessBackend(workers=2))
    report = proc.count_pattern(catalog.clique(3))

    def counters(obs):
        # exec.* and net.peer_timeouts measure wall-clock execution,
        # which only the process backend has
        return {
            (name, labels): value
            for name, labels, value in obs.registry.dump()["counters"]
            if not name.startswith("exec.") and name != "net.peer_timeouts"
        }

    assert counters(obs_proc) == pytest.approx(counters(obs_inline))
    emitted = {name for name, _, _ in obs_proc.registry.dump()["counters"]}
    assert "exec.messages" in emitted
    assert "exec.bytes_shipped" in emitted
    exec_extra = report.extra["exec"]
    assert exec_extra["backend"] == "process"
    assert exec_extra["wall_seconds"] > 0.0
    assert len(exec_extra["worker_busy_seconds"]) == 2
    assert exec_extra["bytes_shipped"] > 0


# ======================================================================
# guard rails
# ======================================================================
def test_faults_require_inline_backend():
    graph = _mico()
    config = EngineConfig(faults=FaultPlan.parse("crash:m1@chunk=2"))
    proc = KAutomine(graph, _CLUSTER, engine_config=config,
                     graph_name="mico", backend=ProcessBackend(workers=2))
    with pytest.raises(ConfigurationError, match="inline backend"):
        proc.count_pattern(catalog.clique(3))


def test_non_mergeable_udf_is_rejected():
    graph = _mico()
    proc = KAutomine(graph, _CLUSTER, graph_name="mico",
                     backend=ProcessBackend(workers=2))
    schedule = proc.build_schedule(catalog.clique(3), induced=False)
    with pytest.raises(ConfigurationError, match="merge"):
        proc.engine.run(schedule, udf=lambda emb: None,
                        system="k-automine", app="t", graph_name="mico")


# ======================================================================
# CLI integration
# ======================================================================
def test_cli_process_backend(capsys):
    from repro.__main__ import main

    assert main([
        "count", "--graph", "mico", "--scale", "0.3", "--machines", "4",
        "--pattern", "clique3", "--backend", "process", "--workers", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "backend=process" in out
    assert "count=" in out
    _assert_no_stray_children()


def test_backend_liveness_configuration():
    backend = make_backend("process", workers=2, heartbeat=0.25,
                           on_worker_death="recover")
    assert backend.heartbeat == 0.25
    assert backend.on_worker_death == "recover"
    with pytest.raises(ConfigurationError, match="heartbeat"):
        ProcessBackend(heartbeat=0.0)
    with pytest.raises(ConfigurationError, match="on_worker_death"):
        ProcessBackend(on_worker_death="shrug")


# ======================================================================
# worker death — liveness detection, fail-fast, lost-worker recovery
# (marked exec_faults so `make exec-faults-check` runs them alone)
# ======================================================================
exec_faults = pytest.mark.exec_faults

_FORK_ONLY = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="killing one specific worker relies on the fork start method "
           "(the child must inherit the monkeypatched entry point)",
)


def _murdered_worker_main(worker_id, *args, **kwargs):
    """Drop-in worker entry point that hard-kills worker 1 on entry —
    ``os._exit`` skips every cleanup path, like a SIGKILL mid-compute."""
    if worker_id == 1:
        os._exit(137)
    return worker_main(worker_id, *args, **kwargs)


@exec_faults
@_FORK_ONLY
def test_worker_death_fails_fast_with_structured_report(monkeypatch):
    monkeypatch.setattr("repro.exec.process.worker_main",
                        _murdered_worker_main)
    graph = _mico()
    backend = ProcessBackend(workers=2, start_method="fork", heartbeat=0.2)
    proc = KAutomine(graph, _CLUSTER, graph_name="mico", backend=backend)
    started = time.monotonic()
    report = proc.count_pattern(catalog.clique(3))
    # bounded detection: nowhere near the backend's 600s message budget
    assert time.monotonic() - started < 60.0
    failure = report.failure
    assert failure is not None
    assert failure.outcome.value == "CRASHED"
    assert failure.partial
    assert "137" in failure.message  # the exit code is surfaced
    deaths = [e for e in failure.events if e["kind"] == "worker_death"]
    assert any(
        e["worker"] == 1 and e["machines"] == [1, 3]
        and not e["reexecuted"] for e in deaths
    )
    exec_extra = report.extra["exec"]
    assert exec_extra["on_worker_death"] == "fail"
    assert exec_extra["worker_deaths"] >= 1
    assert exec_extra["heartbeat_checks"] >= 1
    _assert_no_stray_children()


@exec_faults
@_FORK_ONLY
def test_worker_death_recovery_matches_inline(monkeypatch):
    graph = _mico()
    inline = KAutomine(graph, _CLUSTER, graph_name="mico")
    expected = inline.count_pattern(catalog.clique(3))
    monkeypatch.setattr("repro.exec.process.worker_main",
                        _murdered_worker_main)
    backend = ProcessBackend(workers=2, start_method="fork", heartbeat=0.2,
                             on_worker_death="recover")
    proc = KAutomine(graph, _CLUSTER, graph_name="mico", backend=backend)
    started = time.monotonic()
    report = proc.count_pattern(catalog.clique(3))
    assert time.monotonic() - started < 120.0
    # the lost workers' hosted machines were replayed through the
    # deterministic inline path, so the counts are *complete*
    assert report.counts == expected.counts
    assert report.simulated_seconds == expected.simulated_seconds
    failure = report.failure
    assert failure is not None
    assert failure.outcome.value == "RECOVERED"
    assert not failure.partial
    deaths = [e for e in failure.events if e["kind"] == "worker_death"]
    assert {e["worker"] for e in deaths} >= {1}
    assert all(e["reexecuted"] for e in deaths)
    assert report.extra["exec"]["worker_deaths"] >= 1
    _assert_no_stray_children()


@exec_faults
def test_transport_collect_aborts_on_dead_peer():
    graph = erdos_renyi(30, 120, seed=1)
    endpoints = Endpoints(
        num_workers=2,
        inboxes=[queue.Queue(), queue.Queue()],
        replies={(s, r): queue.Queue()
                 for s in range(2) for r in range(2)},
        deaths=[threading.Event(), threading.Event()],
        stop=threading.Event(),
    )
    transport = WorkerTransport(0, endpoints, graph)
    endpoints.deaths[1].set()  # the parent's watcher: worker 1 is dead
    started = time.monotonic()
    with pytest.raises(PeerDeadError) as excinfo:
        transport.collect(0, 1, [0, 1])
    # one bounded wait, not the 300s reply budget
    assert time.monotonic() - started < 5.0
    assert excinfo.value.peer_worker == 1
    assert excinfo.value.server_machine == 1
    assert transport.liveness_timeouts >= 1


@exec_faults
def test_transport_collect_aborts_on_fleet_stop():
    graph = erdos_renyi(30, 120, seed=1)
    endpoints = Endpoints(
        num_workers=2,
        inboxes=[queue.Queue(), queue.Queue()],
        replies={(s, r): queue.Queue()
                 for s in range(2) for r in range(2)},
        deaths=[threading.Event(), threading.Event()],
        stop=threading.Event(),
    )
    transport = WorkerTransport(0, endpoints, graph)
    endpoints.stop.set()
    with pytest.raises(PeerDeadError):
        transport.collect(0, 1, [0])


@exec_faults
def test_transport_join_unblocks_without_shutdown():
    graph = erdos_renyi(30, 120, seed=1)
    endpoints = Endpoints(
        num_workers=1,
        inboxes=[queue.Queue()],
        replies={(0, 0): queue.Queue()},
        stop=threading.Event(),
    )
    transport = WorkerTransport(0, endpoints, graph)
    transport.start()
    # SHUTDOWN never arrives (its sender "died"); the fleet stop signal
    # alone must end the serve loop, so join() cannot hang
    endpoints.stop.set()
    assert transport.join(timeout=5.0)


@exec_faults
def test_transport_stop_unblocks_without_shutdown():
    graph = erdos_renyi(30, 120, seed=1)
    endpoints = Endpoints(
        num_workers=1,
        inboxes=[queue.Queue()],
        replies={(0, 0): queue.Queue()},
    )
    transport = WorkerTransport(0, endpoints, graph)
    transport.start()
    transport.stop()  # the worker's own finally-block escape hatch
    assert transport.join(timeout=5.0)
