"""Execution backends (docs/execution.md).

The headline invariant under test: for any (graph, pattern, seed), the
``process`` backend produces *bit-identical* pattern counts to the
``inline`` path, at any worker count — real multiprocess execution
changes where schedulers run and how fetches travel, never what they
compute. Run alone via ``make exec-check``.
"""

import multiprocessing
import os
import queue
import threading
import time

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.core import EngineConfig
from repro.errors import ConfigurationError, PeerDeadError
from repro.exec import BACKENDS, InlineBackend, ProcessBackend, make_backend
from repro.exec.messages import SHUTDOWN
from repro.exec.ring import RingAborted, attach_ring, create_ring
from repro.exec.transport import AdaptiveChunker, Endpoints, WorkerTransport
from repro.exec.worker import worker_main
from repro.faults import FaultPlan
from repro.graph import dataset
from repro.graph.generators import erdos_renyi, star_graph
from repro.graph.csr import attach_csr, share_csr
from repro.obs import Observability
from repro.patterns import catalog
from repro.systems import KAutomine

pytestmark = pytest.mark.exec

_CLUSTER = ClusterConfig(num_machines=4)


def _mico():
    return dataset("mico", scale=0.3)


def _assert_no_stray_children():
    """Every worker process must be reaped when execute() returns."""
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        stray = [p for p in multiprocessing.active_children()
                 if p.name.startswith("repro-exec-")]
        if not stray:
            return
        time.sleep(0.05)
    raise AssertionError(f"worker processes leaked: {stray}")


# ======================================================================
# shared-memory CSR export
# ======================================================================
def test_shared_csr_round_trip():
    graph = erdos_renyi(120, 600, seed=3)
    shared = share_csr(graph)
    try:
        attached = attach_csr(shared.handle)
        try:
            assert np.array_equal(attached.graph.indptr, graph.indptr)
            assert np.array_equal(attached.graph.indices, graph.indices)
            assert attached.graph.directed == graph.directed
            for v in (0, 7, 119):
                assert np.array_equal(
                    attached.graph.neighbors(v), graph.neighbors(v)
                )
        finally:
            attached.close()
            attached.close()  # idempotent
    finally:
        shared.unlink()


def test_shared_csr_carries_labels():
    graph = dataset("mico", scale=0.2, labeled=True)
    shared = share_csr(graph)
    try:
        attached = attach_csr(shared.handle)
        try:
            assert np.array_equal(attached.graph.labels, graph.labels)
        finally:
            attached.close()
    finally:
        shared.unlink()


# ======================================================================
# backend selection
# ======================================================================
def test_make_backend_names():
    assert set(BACKENDS) == {"inline", "process"}
    assert make_backend("inline") is None
    backend = make_backend("process", workers=3)
    assert isinstance(backend, ProcessBackend)
    assert backend.workers == 3
    with pytest.raises(ConfigurationError):
        make_backend("thread")


def test_inline_backend_object_matches_no_backend():
    graph = _mico()
    bare = KAutomine(graph, _CLUSTER, graph_name="mico")
    wrapped = KAutomine(graph, _CLUSTER, graph_name="mico",
                        backend=InlineBackend())
    r1 = bare.count_pattern(catalog.clique(3))
    r2 = wrapped.count_pattern(catalog.clique(3))
    assert r1.counts == r2.counts
    assert r1.simulated_seconds == r2.simulated_seconds


# ======================================================================
# inline/process equivalence — the determinism contract
# ======================================================================
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_triangle_counts_identical(workers):
    graph = _mico()
    inline = KAutomine(graph, _CLUSTER, graph_name="mico")
    expected = inline.count_pattern(catalog.clique(3))
    proc = KAutomine(graph, _CLUSTER, graph_name="mico",
                     backend=ProcessBackend(workers=workers))
    got = proc.count_pattern(catalog.clique(3))
    assert got.counts == expected.counts
    # the simulated cost model is untouched by real execution
    assert got.simulated_seconds == expected.simulated_seconds
    assert got.machine_seconds == expected.machine_seconds
    assert got.network_bytes == expected.network_bytes
    assert got.extra["exec"]["workers"] == min(workers, 4)
    _assert_no_stray_children()


@pytest.mark.parametrize("workers", [2, 4])
def test_motif_census_identical(workers):
    graph = _mico()
    patterns = [catalog.clique(3), catalog.chain(3)]
    inline = KAutomine(graph, _CLUSTER, graph_name="mico")
    expected = inline.count_patterns(patterns)
    proc = KAutomine(graph, _CLUSTER, graph_name="mico",
                     backend=ProcessBackend(workers=workers))
    got = proc.count_patterns(patterns)
    assert got.counts == expected.counts
    assert got.simulated_seconds == expected.simulated_seconds
    _assert_no_stray_children()


def test_collector_udf_merges_across_workers():
    graph = dataset("mico", scale=0.25, labeled=True)
    patterns = [catalog.chain(2), catalog.chain(3)]
    inline = KAutomine(graph, _CLUSTER, graph_name="mico")
    expected, _ = inline.mni_supports(patterns)
    proc = KAutomine(graph, _CLUSTER, graph_name="mico",
                     backend=ProcessBackend(workers=2))
    got, _ = proc.mni_supports(patterns)
    assert got == expected
    _assert_no_stray_children()


def test_worker_count_is_clamped_to_machines():
    graph = _mico()
    proc = KAutomine(graph, ClusterConfig(num_machines=2),
                     graph_name="mico", backend=ProcessBackend(workers=16))
    report = proc.count_pattern(catalog.clique(3))
    assert report.extra["exec"]["workers"] == 2


# ======================================================================
# observability merge
# ======================================================================
def test_metrics_merge_matches_inline():
    graph = _mico()
    obs_inline = Observability()
    inline = KAutomine(graph, _CLUSTER, graph_name="mico", obs=obs_inline)
    inline.count_pattern(catalog.clique(3))
    obs_proc = Observability()
    proc = KAutomine(graph, _CLUSTER, graph_name="mico", obs=obs_proc,
                     backend=ProcessBackend(workers=2))
    report = proc.count_pattern(catalog.clique(3))

    def counters(obs):
        # exec.* and the transport-layer net.* names measure wall-clock
        # execution, which only the process backend has
        wallclock_net = {"net.peer_timeouts", "net.coalesced_requests",
                         "net.coalesced_batch_vertices"}
        return {
            (name, labels): value
            for name, labels, value in obs.registry.dump()["counters"]
            if not name.startswith("exec.") and name not in wallclock_net
        }

    assert counters(obs_proc) == pytest.approx(counters(obs_inline))
    emitted = {name for name, _, _ in obs_proc.registry.dump()["counters"]}
    assert "exec.messages" in emitted
    assert "exec.bytes_shipped" in emitted
    exec_extra = report.extra["exec"]
    assert exec_extra["backend"] == "process"
    assert exec_extra["wall_seconds"] > 0.0
    assert len(exec_extra["worker_busy_seconds"]) == 2
    assert exec_extra["bytes_shipped"] > 0


# ======================================================================
# guard rails
# ======================================================================
def test_faults_require_inline_backend():
    graph = _mico()
    config = EngineConfig(faults=FaultPlan.parse("crash:m1@chunk=2"))
    proc = KAutomine(graph, _CLUSTER, engine_config=config,
                     graph_name="mico", backend=ProcessBackend(workers=2))
    with pytest.raises(ConfigurationError, match="inline backend"):
        proc.count_pattern(catalog.clique(3))


def test_non_mergeable_udf_is_rejected():
    graph = _mico()
    proc = KAutomine(graph, _CLUSTER, graph_name="mico",
                     backend=ProcessBackend(workers=2))
    schedule = proc.build_schedule(catalog.clique(3), induced=False)
    with pytest.raises(ConfigurationError, match="merge"):
        proc.engine.run(schedule, udf=lambda emb: None,
                        system="k-automine", app="t", graph_name="mico")


# ======================================================================
# CLI integration
# ======================================================================
def test_cli_process_backend(capsys):
    from repro.__main__ import main

    assert main([
        "count", "--graph", "mico", "--scale", "0.3", "--machines", "4",
        "--pattern", "clique3", "--backend", "process", "--workers", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "backend=process" in out
    assert "count=" in out
    _assert_no_stray_children()


def test_backend_liveness_configuration():
    backend = make_backend("process", workers=2, heartbeat=0.25,
                           on_worker_death="recover")
    assert backend.heartbeat == 0.25
    assert backend.on_worker_death == "recover"
    with pytest.raises(ConfigurationError, match="heartbeat"):
        ProcessBackend(heartbeat=0.0)
    with pytest.raises(ConfigurationError, match="on_worker_death"):
        ProcessBackend(on_worker_death="shrug")


# ======================================================================
# worker death — liveness detection, fail-fast, lost-worker recovery
# (marked exec_faults so `make exec-faults-check` runs them alone)
# ======================================================================
exec_faults = pytest.mark.exec_faults

_FORK_ONLY = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="killing one specific worker relies on the fork start method "
           "(the child must inherit the monkeypatched entry point)",
)


def _murdered_worker_main(worker_id, *args, **kwargs):
    """Drop-in worker entry point that hard-kills worker 1 on entry —
    ``os._exit`` skips every cleanup path, like a SIGKILL mid-compute."""
    if worker_id == 1:
        os._exit(137)
    return worker_main(worker_id, *args, **kwargs)


@exec_faults
@_FORK_ONLY
def test_worker_death_fails_fast_with_structured_report(monkeypatch):
    monkeypatch.setattr("repro.exec.process.worker_main",
                        _murdered_worker_main)
    graph = _mico()
    backend = ProcessBackend(workers=2, start_method="fork", heartbeat=0.2)
    proc = KAutomine(graph, _CLUSTER, graph_name="mico", backend=backend)
    started = time.monotonic()
    report = proc.count_pattern(catalog.clique(3))
    # bounded detection: nowhere near the backend's 600s message budget
    assert time.monotonic() - started < 60.0
    failure = report.failure
    assert failure is not None
    assert failure.outcome.value == "CRASHED"
    assert failure.partial
    assert "137" in failure.message  # the exit code is surfaced
    deaths = [e for e in failure.events if e["kind"] == "worker_death"]
    assert any(
        e["worker"] == 1 and e["machines"] == [1, 3]
        and not e["reexecuted"] for e in deaths
    )
    exec_extra = report.extra["exec"]
    assert exec_extra["on_worker_death"] == "fail"
    assert exec_extra["worker_deaths"] >= 1
    assert exec_extra["heartbeat_checks"] >= 1
    _assert_no_stray_children()


@exec_faults
@_FORK_ONLY
def test_worker_death_recovery_matches_inline(monkeypatch):
    graph = _mico()
    inline = KAutomine(graph, _CLUSTER, graph_name="mico")
    expected = inline.count_pattern(catalog.clique(3))
    monkeypatch.setattr("repro.exec.process.worker_main",
                        _murdered_worker_main)
    backend = ProcessBackend(workers=2, start_method="fork", heartbeat=0.2,
                             on_worker_death="recover")
    proc = KAutomine(graph, _CLUSTER, graph_name="mico", backend=backend)
    started = time.monotonic()
    report = proc.count_pattern(catalog.clique(3))
    assert time.monotonic() - started < 120.0
    # the lost workers' hosted machines were replayed through the
    # deterministic inline path, so the counts are *complete*
    assert report.counts == expected.counts
    assert report.simulated_seconds == expected.simulated_seconds
    failure = report.failure
    assert failure is not None
    assert failure.outcome.value == "RECOVERED"
    assert not failure.partial
    deaths = [e for e in failure.events if e["kind"] == "worker_death"]
    assert {e["worker"] for e in deaths} >= {1}
    assert all(e["reexecuted"] for e in deaths)
    assert report.extra["exec"]["worker_deaths"] >= 1
    _assert_no_stray_children()


def _ring_fabric(num_workers, capacity=1 << 16, liveness=True):
    """An in-process fabric: real shared-memory rings, thread events.

    Returns (endpoints, rings); the caller must unlink the rings (the
    parent-side duty the fixture below automates).
    """
    rings = {
        (s, r): create_ring(capacity)
        for s in range(num_workers)
        for r in range(num_workers)
        if s != r
    }
    endpoints = Endpoints(
        num_workers=num_workers,
        inboxes=[queue.Queue() for _ in range(num_workers)],
        rings={pair: ring.handle for pair, ring in rings.items()},
        fallbacks=[queue.Queue() for _ in range(num_workers)],
        deaths=([threading.Event() for _ in range(num_workers)]
                if liveness else None),
        stop=threading.Event() if liveness else None,
    )
    return endpoints, rings


def _unlink_all(rings, *transports):
    for transport in transports:
        transport.close()
    for ring in rings.values():
        ring.unlink()


@exec_faults
def test_transport_collect_aborts_on_dead_peer():
    # a worker dying while a peer blocks on its reply ring must surface
    # PeerDeadError within a bounded wait — never hang on the ring
    graph = erdos_renyi(30, 120, seed=1)
    endpoints, rings = _ring_fabric(2)
    transport = WorkerTransport(0, endpoints, graph)
    try:
        # the request reaches worker 1's inbox, but no responder ever
        # serves it: its reply frame will never land on the ring
        transport.post_chunk(0, [(1, [0, 1])])
        endpoints.deaths[1].set()  # the parent's watcher: worker 1 died
        started = time.monotonic()
        with pytest.raises(PeerDeadError) as excinfo:
            transport.collect(0, 1, [0, 1])
        # one bounded wait, not the 300s reply budget
        assert time.monotonic() - started < 5.0
        assert excinfo.value.peer_worker == 1
        assert excinfo.value.server_machine == 1
        assert transport.liveness_timeouts >= 1
    finally:
        _unlink_all(rings, transport)


@exec_faults
def test_transport_collect_aborts_on_fleet_stop():
    graph = erdos_renyi(30, 120, seed=1)
    endpoints, rings = _ring_fabric(2)
    transport = WorkerTransport(0, endpoints, graph)
    try:
        transport.post_chunk(0, [(1, [0])])
        endpoints.stop.set()
        with pytest.raises(PeerDeadError):
            transport.collect(0, 1, [0])
    finally:
        _unlink_all(rings, transport)


@exec_faults
def test_transport_join_unblocks_without_shutdown():
    graph = erdos_renyi(30, 120, seed=1)
    endpoints = Endpoints(
        num_workers=1,
        inboxes=[queue.Queue()],
        fallbacks=[queue.Queue()],
        stop=threading.Event(),
    )
    transport = WorkerTransport(0, endpoints, graph)
    transport.start()
    # SHUTDOWN never arrives (its sender "died"); the fleet stop signal
    # alone must end the serve loop, so join() cannot hang
    endpoints.stop.set()
    assert transport.join(timeout=5.0)


@exec_faults
def test_transport_stop_unblocks_without_shutdown():
    graph = erdos_renyi(30, 120, seed=1)
    endpoints = Endpoints(
        num_workers=1,
        inboxes=[queue.Queue()],
        fallbacks=[queue.Queue()],
    )
    transport = WorkerTransport(0, endpoints, graph)
    transport.start()
    transport.stop()  # the worker's own finally-block escape hatch
    assert transport.join(timeout=5.0)


# ======================================================================
# shared-memory reply rings
# ======================================================================
def test_ring_round_trip_and_wraparound():
    ring = create_ring(1024)
    try:
        peer = attach_ring(ring.handle)
        rng = np.random.default_rng(7)
        # frames of ~1/3 capacity force the write cursor across the
        # segment edge repeatedly; every byte must survive the wrap
        for _ in range(50):
            frame = rng.integers(0, 255, size=300, dtype=np.uint8)
            peer.write([frame])
            out = ring.read_exact(len(frame))
            assert np.array_equal(out, frame)
        peer.close()
    finally:
        ring.unlink()


def test_ring_backpressure_blocks_until_drained():
    ring = create_ring(1024)
    try:
        producer = attach_ring(ring.handle)
        first = np.full(700, 1, dtype=np.uint8)
        second = np.full(700, 2, dtype=np.uint8)
        producer.write([first])
        done = threading.Event()

        def blocked_write():
            producer.write([second])  # 700 free < 1024: must wait
            done.set()

        thread = threading.Thread(target=blocked_write, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not done.is_set()  # backpressured, not dropped
        assert np.array_equal(ring.read_exact(700), first)  # drain
        assert done.wait(5.0)  # freed space unblocks the producer
        assert np.array_equal(ring.read_exact(700), second)
        assert producer.waits >= 1
        thread.join(5.0)
        producer.close()
    finally:
        ring.unlink()


def test_ring_rejects_frames_larger_than_capacity():
    ring = create_ring(1024)
    try:
        with pytest.raises(ValueError, match="exceeds ring capacity"):
            ring.write([np.zeros(2048, dtype=np.uint8)])
    finally:
        ring.unlink()


@exec_faults
def test_ring_waits_abort_via_callback():
    # both wait sides must re-check their abort callback: a consumer
    # waiting on a dead producer and a producer waiting on a dead
    # consumer both surface RingAborted instead of hanging
    ring = create_ring(1024)
    try:
        dead = threading.Event()
        dead.set()
        with pytest.raises(RingAborted):
            ring.read_exact(8, abort=dead.is_set)
        ring.write([np.zeros(800, dtype=np.uint8)])
        with pytest.raises(RingAborted):
            ring.write([np.zeros(800, dtype=np.uint8)], abort=dead.is_set)
    finally:
        ring.unlink()


def test_transport_oversized_payload_takes_fallback():
    # the hub's edge list exceeds the ring capacity: the reply must
    # travel pickled on the fallback queue, announced by a marker
    # frame, and still reassemble bit-identically
    graph = star_graph(600)  # hub degree 600 x int32 > 1024-byte ring
    endpoints, rings = _ring_fabric(2, capacity=1024)
    requester = WorkerTransport(0, endpoints, graph)
    responder = WorkerTransport(1, endpoints, graph)
    responder.start()
    try:
        requester.post_chunk(0, [(1, [0, 1, 2])])
        payload = requester.collect(0, 1, [0, 1, 2])
        expected, _ = graph.neighbors_batch(np.array([0, 1, 2]))
        assert np.array_equal(payload, expected)
        assert requester.fallbacks_received >= 1
        assert responder.fallbacks_served >= 1
    finally:
        endpoints.inboxes[1].put(SHUTDOWN)
        responder.join(timeout=5.0)
        _unlink_all(rings, requester, responder)


def test_transport_round_trip_matches_direct_reads():
    # in-budget frames stream through the ring; the reassembled
    # per-machine payloads must match direct graph reads exactly
    graph = erdos_renyi(200, 2000, seed=9)
    endpoints, rings = _ring_fabric(2, capacity=1 << 15)
    requester = WorkerTransport(0, endpoints, graph)
    responder = WorkerTransport(1, endpoints, graph)
    responder.start()
    try:
        batches = [(1, list(range(1, 40))), (3, list(range(40, 90)))]
        requester.post_chunk(0, batches)
        for machine, vertices in batches:
            payload = requester.collect(0, machine, vertices)
            expected, _ = graph.neighbors_batch(
                np.asarray(vertices, dtype=np.int64))
            assert np.array_equal(payload, expected)
        assert requester.fallbacks_received == 0
        assert requester.frames_received >= 1
        # machines 0 and 2 live on worker 0 itself: local fast path
        local = requester.collect(0, 2, [5, 6])
        expected, _ = graph.neighbors_batch(np.array([5, 6]))
        assert np.array_equal(local, expected)
        assert requester.local_requests == 1
    finally:
        endpoints.inboxes[1].put(SHUTDOWN)
        responder.join(timeout=5.0)
        _unlink_all(rings, requester, responder)


# ======================================================================
# frame integrity — magic/sequence validation
# ======================================================================
def test_frame_corruption_raises_structured_error():
    from repro.errors import TransportCorruptionError
    from repro.exec.transport import (
        FRAME_DATA,
        FRAME_HEADER_BYTES,
        FRAME_MAGIC,
    )

    graph = erdos_renyi(30, 120, seed=1)
    endpoints, rings = _ring_fabric(2)
    requester = WorkerTransport(0, endpoints, graph)
    try:
        vertices = [0, 1]
        requester.post_chunk(0, [(1, vertices)])
        expected, _ = graph.neighbors_batch(
            np.asarray(vertices, dtype=np.int64))
        # impersonate worker 1's responder with a frame whose magic
        # word is garbage (payload length is right, so only the header
        # check can catch it)
        writer = attach_ring(endpoints.rings[(1, 0)])
        header = np.array(
            [FRAME_MAGIC ^ 0xFF, 0, FRAME_DATA, len(expected)],
            dtype=np.int64,
        ).view(np.uint8)
        payload = np.zeros(expected.nbytes, dtype=np.uint8)
        writer.write([np.concatenate([header, payload])])
        with pytest.raises(TransportCorruptionError) as excinfo:
            requester.collect(0, 1, vertices)
        assert excinfo.value.worker_id == 0
        assert excinfo.value.peer_worker == 1
        assert "magic" in str(excinfo.value)
        writer.close()
    finally:
        _unlink_all(rings, requester)


def test_frame_sequence_gap_raises_structured_error():
    from repro.errors import TransportCorruptionError

    graph = erdos_renyi(200, 2000, seed=9)
    endpoints, rings = _ring_fabric(2, capacity=1 << 15)
    requester = WorkerTransport(0, endpoints, graph)
    responder = WorkerTransport(1, endpoints, graph)
    responder.start()
    try:
        # the requester missed a frame: its expected per-pair sequence
        # number no longer matches what the responder publishes
        requester._frame_seq_in[1] = 7
        requester.post_chunk(0, [(1, [1, 2, 3])])
        with pytest.raises(TransportCorruptionError, match="sequence"):
            requester.collect(0, 1, [1, 2, 3])
    finally:
        endpoints.inboxes[1].put(SHUTDOWN)
        responder.join(timeout=5.0)
        _unlink_all(rings, requester, responder)


def test_frame_sequence_advances_per_pair():
    graph = erdos_renyi(200, 2000, seed=9)
    endpoints, rings = _ring_fabric(2, capacity=1 << 15)
    requester = WorkerTransport(0, endpoints, graph)
    responder = WorkerTransport(1, endpoints, graph)
    responder.start()
    try:
        for round_no in range(3):
            requester.post_chunk(0, [(1, [1, 2])])
            payload = requester.collect(0, 1, [1, 2])
            expected, _ = graph.neighbors_batch(
                np.asarray([1, 2], dtype=np.int64))
            assert np.array_equal(payload, expected)
        # three validated frames: both sides agree on the next number
        assert requester._frame_seq_in[1] == 3
        assert responder._frame_seq_out[0] == 3
    finally:
        endpoints.inboxes[1].put(SHUTDOWN)
        responder.join(timeout=5.0)
        _unlink_all(rings, requester, responder)


# ======================================================================
# shared-memory segment allocation — collision retry
# ======================================================================
def test_segment_creation_retries_on_collision(monkeypatch):
    from repro.graph import csr

    attempts = []
    real_shm = csr.shared_memory.SharedMemory

    def colliding(name=None, create=False, size=0):
        attempts.append(name)
        if len(attempts) <= 2:
            raise FileExistsError(name)
        return real_shm(name=name, create=create, size=size)

    monkeypatch.setattr(csr.shared_memory, "SharedMemory", colliding)
    monkeypatch.setattr(csr.time, "sleep", lambda _t: None)
    segment = csr.create_segment(64)
    try:
        assert len(attempts) == 3           # two collisions absorbed
        assert len(set(attempts)) == 3      # fresh nonce per attempt
    finally:
        segment.unlink()
        segment.close()


def test_segment_creation_collision_exhaustion(monkeypatch):
    from repro.graph import csr

    def always_taken(name=None, create=False, size=0):
        raise FileExistsError(name)

    monkeypatch.setattr(csr.shared_memory, "SharedMemory", always_taken)
    monkeypatch.setattr(csr.time, "sleep", lambda _t: None)
    with pytest.raises(ConfigurationError, match="name collisions"):
        csr.create_segment(64)


# ======================================================================
# durable checkpoints under real SIGKILL (chaos subprocess scenarios;
# benchmarks/chaos.py runs the full matrix — these pin the contract
# in-suite at the smallest useful scale)
# ======================================================================
import json as _json
import signal as _signal
import subprocess
import sys


def _chaos_cli(extra, chaos=None, check=True):
    """Run ``python -m repro count`` on the tiny chaos job."""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env.pop("REPRO_CHAOS", None)
    if chaos:
        env["REPRO_CHAOS"] = chaos
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "count", "--graph", "mico",
         "--scale", "0.05", "--machines", "4", "--chunk-bytes", "1024",
         "--no-auto-fit", "--pattern", "clique3", "--metrics", "json",
         *extra],
        capture_output=True, text=True, env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        timeout=240,
    )
    if check and proc.returncode != 0:
        raise AssertionError(
            f"chaos CLI run failed ({proc.returncode}):\n"
            f"{proc.stdout}\n{proc.stderr}")
    return proc


def _chaos_report(proc):
    return _json.loads(proc.stdout)["report"]


@exec_faults
def test_resume_after_parent_sigkill_inline(tmp_path):
    oracle = _chaos_report(_chaos_cli([]))
    killed = _chaos_cli(["--checkpoint-dir", str(tmp_path)],
                        chaos="parent-kill:2", check=False)
    assert killed.returncode == -_signal.SIGKILL
    assert (tmp_path / "chunks.log").exists()

    resumed = _chaos_report(_chaos_cli(
        ["--checkpoint-dir", str(tmp_path), "--resume"]))
    # counts are the bit-identical contract; simulated timings are
    # approximate on resume (skipped chunks carry no timing)
    assert resumed["counts"] == oracle["counts"]
    stats = resumed["extra"]["checkpoint"]
    assert stats["resumed"]
    assert stats["resumed_roots"] > 0


@exec_faults
def test_resume_after_parent_sigkill_process_backend(tmp_path):
    oracle = _chaos_report(_chaos_cli([]))
    killed = _chaos_cli(
        ["--checkpoint-dir", str(tmp_path), "--backend", "process",
         "--workers", "2"],
        chaos="parent-kill:2", check=False)
    assert killed.returncode == -_signal.SIGKILL
    # the SIGKILLed parent left its segment ledger behind
    ledger = tmp_path / "shm.json"
    assert ledger.exists()
    leaked = _json.loads(ledger.read_text())["segments"]
    assert leaked

    resumed = _chaos_report(_chaos_cli(
        ["--checkpoint-dir", str(tmp_path), "--backend", "process",
         "--workers", "2", "--resume"]))
    assert resumed["counts"] == oracle["counts"]
    assert resumed["extra"]["checkpoint"]["resumed_roots"] > 0
    # the resumed run reaped the leaked segments and, on its own clean
    # exit, cleared the ledger
    assert not ledger.exists()
    for name in leaked:
        assert not os.path.exists(f"/dev/shm/{name}")


@exec_faults
@pytest.mark.parametrize("workers", [2, 3, 4])
def test_worker_sigkill_redistributes_to_survivors(tmp_path, workers):
    oracle = _chaos_report(_chaos_cli([]))
    # kill after the *first* shipped delta: worker 1 hosts fewer
    # machines at higher worker counts, but always ships at least one
    report = _chaos_report(_chaos_cli(
        ["--backend", "process", "--workers", str(workers),
         "--on-worker-death", "recover", "--heartbeat", "0.2"],
        chaos="worker-kill:1:1"))
    assert report["counts"] == oracle["counts"]
    assert report["failure"]["outcome"] == "RECOVERED"
    redistribution = report["extra"]["exec"]["redistribution"]
    # the acceptance bar: surviving *workers* replayed the lost
    # machines — none fell back to the parent's inline path
    assert redistribution["inline_fallback"] == 0
    assert redistribution["machines"] >= 1
    assert redistribution["workers"]


def test_adaptive_chunker_grows_and_shrinks():
    chunker = AdaptiveChunker(1 << 20, min_bytes=4096)
    start = chunker.target_bytes
    chunker.begin_round()   # no previous round: no adaptation
    chunker.begin_round()   # instant previous round: IPC-dominated
    assert chunker.target_bytes == min(start * 2, chunker.max_bytes)
    assert chunker.grows == 1
    chunker._round_started -= 10.0  # fake a long round
    chunker.begin_round()
    assert chunker.shrinks == 1
    # clamped: never below min_bytes, never above ring capacity
    for _ in range(40):
        chunker._round_started -= 10.0
        chunker.begin_round()
    assert chunker.target_bytes == chunker.min_bytes
    for _ in range(40):
        chunker._round_started = time.perf_counter()
        chunker.begin_round()
    assert chunker.target_bytes == chunker.max_bytes
