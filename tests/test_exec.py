"""Execution backends (docs/execution.md).

The headline invariant under test: for any (graph, pattern, seed), the
``process`` backend produces *bit-identical* pattern counts to the
``inline`` path, at any worker count — real multiprocess execution
changes where schedulers run and how fetches travel, never what they
compute. Run alone via ``make exec-check``.
"""

import multiprocessing
import time

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.core import EngineConfig
from repro.errors import ConfigurationError
from repro.exec import BACKENDS, InlineBackend, ProcessBackend, make_backend
from repro.faults import FaultPlan
from repro.graph import dataset
from repro.graph.generators import erdos_renyi
from repro.graph.csr import attach_csr, share_csr
from repro.obs import Observability
from repro.patterns import catalog
from repro.systems import KAutomine

pytestmark = pytest.mark.exec

_CLUSTER = ClusterConfig(num_machines=4)


def _mico():
    return dataset("mico", scale=0.3)


def _assert_no_stray_children():
    """Every worker process must be reaped when execute() returns."""
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        stray = [p for p in multiprocessing.active_children()
                 if p.name.startswith("repro-exec-")]
        if not stray:
            return
        time.sleep(0.05)
    raise AssertionError(f"worker processes leaked: {stray}")


# ======================================================================
# shared-memory CSR export
# ======================================================================
def test_shared_csr_round_trip():
    graph = erdos_renyi(120, 600, seed=3)
    shared = share_csr(graph)
    try:
        attached = attach_csr(shared.handle)
        try:
            assert np.array_equal(attached.graph.indptr, graph.indptr)
            assert np.array_equal(attached.graph.indices, graph.indices)
            assert attached.graph.directed == graph.directed
            for v in (0, 7, 119):
                assert np.array_equal(
                    attached.graph.neighbors(v), graph.neighbors(v)
                )
        finally:
            attached.close()
            attached.close()  # idempotent
    finally:
        shared.unlink()


def test_shared_csr_carries_labels():
    graph = dataset("mico", scale=0.2, labeled=True)
    shared = share_csr(graph)
    try:
        attached = attach_csr(shared.handle)
        try:
            assert np.array_equal(attached.graph.labels, graph.labels)
        finally:
            attached.close()
    finally:
        shared.unlink()


# ======================================================================
# backend selection
# ======================================================================
def test_make_backend_names():
    assert set(BACKENDS) == {"inline", "process"}
    assert make_backend("inline") is None
    backend = make_backend("process", workers=3)
    assert isinstance(backend, ProcessBackend)
    assert backend.workers == 3
    with pytest.raises(ConfigurationError):
        make_backend("thread")


def test_inline_backend_object_matches_no_backend():
    graph = _mico()
    bare = KAutomine(graph, _CLUSTER, graph_name="mico")
    wrapped = KAutomine(graph, _CLUSTER, graph_name="mico",
                        backend=InlineBackend())
    r1 = bare.count_pattern(catalog.clique(3))
    r2 = wrapped.count_pattern(catalog.clique(3))
    assert r1.counts == r2.counts
    assert r1.simulated_seconds == r2.simulated_seconds


# ======================================================================
# inline/process equivalence — the determinism contract
# ======================================================================
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_triangle_counts_identical(workers):
    graph = _mico()
    inline = KAutomine(graph, _CLUSTER, graph_name="mico")
    expected = inline.count_pattern(catalog.clique(3))
    proc = KAutomine(graph, _CLUSTER, graph_name="mico",
                     backend=ProcessBackend(workers=workers))
    got = proc.count_pattern(catalog.clique(3))
    assert got.counts == expected.counts
    # the simulated cost model is untouched by real execution
    assert got.simulated_seconds == expected.simulated_seconds
    assert got.machine_seconds == expected.machine_seconds
    assert got.network_bytes == expected.network_bytes
    assert got.extra["exec"]["workers"] == min(workers, 4)
    _assert_no_stray_children()


@pytest.mark.parametrize("workers", [2, 4])
def test_motif_census_identical(workers):
    graph = _mico()
    patterns = [catalog.clique(3), catalog.chain(3)]
    inline = KAutomine(graph, _CLUSTER, graph_name="mico")
    expected = inline.count_patterns(patterns)
    proc = KAutomine(graph, _CLUSTER, graph_name="mico",
                     backend=ProcessBackend(workers=workers))
    got = proc.count_patterns(patterns)
    assert got.counts == expected.counts
    assert got.simulated_seconds == expected.simulated_seconds
    _assert_no_stray_children()


def test_collector_udf_merges_across_workers():
    graph = dataset("mico", scale=0.25, labeled=True)
    patterns = [catalog.chain(2), catalog.chain(3)]
    inline = KAutomine(graph, _CLUSTER, graph_name="mico")
    expected, _ = inline.mni_supports(patterns)
    proc = KAutomine(graph, _CLUSTER, graph_name="mico",
                     backend=ProcessBackend(workers=2))
    got, _ = proc.mni_supports(patterns)
    assert got == expected
    _assert_no_stray_children()


def test_worker_count_is_clamped_to_machines():
    graph = _mico()
    proc = KAutomine(graph, ClusterConfig(num_machines=2),
                     graph_name="mico", backend=ProcessBackend(workers=16))
    report = proc.count_pattern(catalog.clique(3))
    assert report.extra["exec"]["workers"] == 2


# ======================================================================
# observability merge
# ======================================================================
def test_metrics_merge_matches_inline():
    graph = _mico()
    obs_inline = Observability()
    inline = KAutomine(graph, _CLUSTER, graph_name="mico", obs=obs_inline)
    inline.count_pattern(catalog.clique(3))
    obs_proc = Observability()
    proc = KAutomine(graph, _CLUSTER, graph_name="mico", obs=obs_proc,
                     backend=ProcessBackend(workers=2))
    report = proc.count_pattern(catalog.clique(3))

    def counters(obs):
        return {
            (name, labels): value
            for name, labels, value in obs.registry.dump()["counters"]
            if not name.startswith("exec.")
        }

    assert counters(obs_proc) == pytest.approx(counters(obs_inline))
    emitted = {name for name, _, _ in obs_proc.registry.dump()["counters"]}
    assert "exec.messages" in emitted
    assert "exec.bytes_shipped" in emitted
    exec_extra = report.extra["exec"]
    assert exec_extra["backend"] == "process"
    assert exec_extra["wall_seconds"] > 0.0
    assert len(exec_extra["worker_busy_seconds"]) == 2
    assert exec_extra["bytes_shipped"] > 0


# ======================================================================
# guard rails
# ======================================================================
def test_faults_require_inline_backend():
    graph = _mico()
    config = EngineConfig(faults=FaultPlan.parse("crash:m1@chunk=2"))
    proc = KAutomine(graph, _CLUSTER, engine_config=config,
                     graph_name="mico", backend=ProcessBackend(workers=2))
    with pytest.raises(ConfigurationError, match="inline backend"):
        proc.count_pattern(catalog.clique(3))


def test_non_mergeable_udf_is_rejected():
    graph = _mico()
    proc = KAutomine(graph, _CLUSTER, graph_name="mico",
                     backend=ProcessBackend(workers=2))
    schedule = proc.build_schedule(catalog.clique(3), induced=False)
    with pytest.raises(ConfigurationError, match="merge"):
        proc.engine.run(schedule, udf=lambda emb: None,
                        system="k-automine", app="t", graph_name="mico")


# ======================================================================
# CLI integration
# ======================================================================
def test_cli_process_backend(capsys):
    from repro.__main__ import main

    assert main([
        "count", "--graph", "mico", "--scale", "0.3", "--machines", "4",
        "--pattern", "clique3", "--backend", "process", "--workers", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "backend=process" in out
    assert "count=" in out
    _assert_no_stray_children()
