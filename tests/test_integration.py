"""Integration tests: whole-pipeline runs and paper-shape assertions.

These exercise multiple subsystems together on small analogues and
assert the *architectural* claims the paper's evaluation rests on —
who wins, and in which direction each optimization moves the metrics.
"""

import pytest

from repro.analysis import count_embeddings_brute_force
from repro.baselines import GraphPiReplicated, GThinker, MovingComputation
from repro.baselines.single_machine import SingleMachine
from repro.cluster import ClusterConfig
from repro.core import EngineConfig
from repro.graph import dataset
from repro.patterns import clique
from repro.systems import KAutomine, KGraphPi, clique_count, triangle_count


@pytest.fixture(scope="module")
def mico():
    return dataset("mico", scale=0.5)


@pytest.fixture(scope="module")
def mico_cfg(mico):
    return ClusterConfig(num_machines=8, cores_per_machine=8,
                         sockets_per_machine=1, memory_bytes=64 << 20)


def test_all_distributed_systems_agree(mico, mico_cfg):
    expected = count_embeddings_brute_force(mico, clique(3))
    reports = {
        "k-automine": triangle_count(KAutomine(mico, mico_cfg)),
        "k-graphpi": triangle_count(KGraphPi(mico, mico_cfg)),
        "graphpi": GraphPiReplicated(mico, num_machines=8).count_pattern(
            clique(3)
        ),
        "g-thinker": GThinker(mico, num_machines=8).count_pattern(clique(3)),
        "adfs": MovingComputation(mico, num_machines=8).count_pattern(
            clique(3)
        ),
    }
    for name, report in reports.items():
        assert report.counts == expected, name


def test_khuzdul_vs_gthinker_speedup_band(mico, mico_cfg):
    """Paper: k-systems beat G-thinker by 3.3-75.5x (avg ~19x)."""
    k = triangle_count(KAutomine(mico, mico_cfg))
    g = GThinker(mico, num_machines=8, cores=8).count_pattern(clique(3))
    speedup = g.simulated_seconds / k.simulated_seconds
    assert 2.0 < speedup < 500.0


def test_khuzdul_traffic_near_gthinker(mico, mico_cfg):
    """Paper: Khuzdul pays ~3x G-thinker's traffic but wins on time."""
    k = clique_count(KAutomine(mico, mico_cfg), 4)
    g = GThinker(mico, num_machines=8, cores=8).count_pattern(clique(4))
    ratio = k.network_bytes / max(1, g.network_bytes)
    assert 0.5 < ratio < 20.0


def test_gthinker_breakdown_overhead_dominated(mico):
    """Paper Figure 15: cache+scheduler ~86% of G-thinker's runtime."""
    report = GThinker(mico, num_machines=8, cores=8).count_pattern(clique(3))
    fractions = report.breakdown_fractions()
    assert fractions["cache"] + fractions["scheduler"] > 0.6
    assert fractions["compute"] < 0.3


def test_khuzdul_compute_dominated_on_lj():
    """Paper Figure 15: k-Automine spends most time computing on lj."""
    graph = dataset("livejournal", scale=0.5)
    system = KAutomine(
        graph,
        ClusterConfig(num_machines=8, cores_per_machine=8,
                      sockets_per_machine=1),
    )
    report = clique_count(system, 4)
    fractions = report.breakdown_fractions()
    assert fractions["compute"] > 0.3


def test_fine_grained_tasks_beat_coarse_on_skew():
    """k-Automine's single-node fine-grained parallelism beats static
    thread binning on skewed graphs (the paper's uk/tw Table 3 rows)."""
    graph = dataset("uk", scale=0.3)
    k = triangle_count(
        KAutomine(graph, ClusterConfig(num_machines=1, cores_per_machine=16))
    )
    single = SingleMachine(graph, cores=16).count_pattern(clique(3))
    assert k.counts == single.counts
    # same hardware: the fine-grained engine should not lose badly, and
    # typically wins because one thread would own the hub's tree
    assert k.simulated_seconds < single.simulated_seconds * 2.0


def test_replicated_loses_on_small_workloads(mico, mico_cfg):
    """Paper Table 2: GraphPi's start-up dominates small workloads."""
    k = triangle_count(KGraphPi(mico, mico_cfg))
    g = GraphPiReplicated(mico, num_machines=8).count_pattern(clique(3))
    assert g.simulated_seconds > k.simulated_seconds


def test_internode_scaling_direction():
    """More machines must not slow the engine down (lj analogue)."""
    graph = dataset("livejournal", scale=0.5)
    times = []
    for machines in (1, 4, 8):
        system = KGraphPi(
            graph, ClusterConfig(num_machines=machines), graph_name="lj"
        )
        times.append(clique_count(system, 4).simulated_seconds)
    assert times[0] > times[1] > times[2]
    assert times[0] / times[2] > 2.0  # meaningful 8-node speedup


def test_more_cores_faster():
    graph = dataset("livejournal", scale=0.5)
    slow = KAutomine(
        graph, ClusterConfig(num_machines=1, cores_per_machine=6)
    )
    fast = KAutomine(
        graph, ClusterConfig(num_machines=1, cores_per_machine=16)
    )
    assert (
        triangle_count(fast).simulated_seconds
        < triangle_count(slow).simulated_seconds
    )


def test_chunk_size_tradeoff():
    """Paper Figure 18: larger chunks are faster (until memory runs out)."""
    graph = dataset("livejournal", scale=0.5)
    config = ClusterConfig(num_machines=8)
    tiny = KGraphPi(graph, config, EngineConfig(chunk_bytes=1024))
    big = KGraphPi(graph, config, EngineConfig(chunk_bytes=1 << 20))
    t_tiny = clique_count(tiny, 4).simulated_seconds
    t_big = clique_count(big, 4).simulated_seconds
    assert t_big < t_tiny


def test_static_cache_policy_fastest():
    """Paper Figure 16: STATIC beats replacement policies on runtime."""
    from repro.core.cache import CachePolicy

    graph = dataset("livejournal", scale=0.5)
    config = ClusterConfig(num_machines=8)
    times = {}
    for policy in (CachePolicy.STATIC, CachePolicy.LRU, CachePolicy.FIFO):
        system = KGraphPi(
            graph, config,
            EngineConfig(cache_policy=policy, chunk_bytes=16 << 10),
        )
        times[policy] = clique_count(system, 4).simulated_seconds
    assert times[CachePolicy.STATIC] < times[CachePolicy.LRU]
    assert times[CachePolicy.STATIC] < times[CachePolicy.FIFO]
