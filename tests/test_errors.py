"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    ConfigurationError,
    GraphFormatError,
    OutOfMemoryError,
    PatternError,
    ReproError,
    ScheduleError,
    TimeoutError,
)


def test_all_errors_are_repro_errors():
    for exc_type in (
        GraphFormatError,
        PatternError,
        ScheduleError,
        OutOfMemoryError,
        TimeoutError,
        ConfigurationError,
    ):
        assert issubclass(exc_type, ReproError)


def test_oom_attributes_and_message():
    exc = OutOfMemoryError(3, 2048, 1024)
    assert exc.machine_id == 3
    assert exc.needed_bytes == 2048
    assert exc.capacity_bytes == 1024
    assert "machine 3" in str(exc)
    assert "2048" in str(exc)


def test_timeout_attributes_and_message():
    exc = TimeoutError(120.5, 60.0)
    assert exc.simulated_seconds == 120.5
    assert exc.budget_seconds == 60.0
    assert "120.5" in str(exc)


def test_errors_catchable_as_base():
    with pytest.raises(ReproError):
        raise OutOfMemoryError(0, 1, 0)
    with pytest.raises(ReproError):
        raise ScheduleError("bad order")
