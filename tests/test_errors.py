"""Tests for the exception hierarchy."""

import pytest

from repro import errors
from repro.errors import (
    ConfigurationError,
    FetchFailedError,
    GraphFormatError,
    MachineCrashError,
    OutOfMemoryError,
    PatternError,
    ReproError,
    ScheduleError,
    SimTimeoutError,
)


def test_all_errors_are_repro_errors():
    for exc_type in (
        GraphFormatError,
        PatternError,
        ScheduleError,
        OutOfMemoryError,
        SimTimeoutError,
        ConfigurationError,
        MachineCrashError,
        FetchFailedError,
    ):
        assert issubclass(exc_type, ReproError)


def test_oom_attributes_and_message():
    exc = OutOfMemoryError(3, 2048, 1024)
    assert exc.machine_id == 3
    assert exc.needed_bytes == 2048
    assert exc.capacity_bytes == 1024
    assert "machine 3" in str(exc)
    assert "2048" in str(exc)


def test_timeout_attributes_and_message():
    exc = SimTimeoutError(120.5, 60.0)
    assert exc.simulated_seconds == 120.5
    assert exc.budget_seconds == 60.0
    assert "120.5" in str(exc)


def test_timeout_deprecated_alias():
    # the old name shadowed the builtin; it stays importable as an alias
    assert errors.TimeoutError is SimTimeoutError


def test_machine_crash_attributes():
    exc = MachineCrashError(2, "chunk=5")
    assert exc.machine_id == 2
    assert exc.trigger == "chunk=5"
    assert "machine 2" in str(exc)


def test_fetch_failed_attributes():
    exc = FetchFailedError(1, 3, attempts=5)
    assert exc.requester == 1
    assert exc.owner == 3
    assert exc.attempts == 5
    assert "5 attempts" in str(exc)


def test_errors_catchable_as_base():
    with pytest.raises(ReproError):
        raise OutOfMemoryError(0, 1, 0)
    with pytest.raises(ReproError):
        raise ScheduleError("bad order")
