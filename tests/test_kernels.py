"""Batched EXTEND kernels (repro.core.kernels, docs/performance.md).

The contract under test: every batched kernel agrees
*element-for-element* with its reference — ``intersect_sorted`` /
``setdiff_sorted`` with ``np.intersect1d`` / ``np.setdiff1d``, and
``extend_chunk`` with the scalar :func:`compute_candidates`, including
the ``merge_elements``/``scanned`` accounting quantities and the stored
VCS intermediates. On top of the per-kernel checks, whole engine runs
must be bit-identical between ``extend_mode="scalar"`` and
``extend_mode="batched"`` — counts, simulated seconds, clock buckets,
and every non-``kernel.*`` metric series — on the pattern catalog and
on both execution backends.
"""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.core import EngineConfig, KhuzdulEngine
from repro.core import kernels
from repro.core.extend import compute_candidates
from repro.errors import ConfigurationError
from repro.graph import from_edges
from repro.graph.generators import erdos_renyi, power_law_graph, random_labels
from repro.obs import Observability
from repro.patterns import Pattern, catalog
from repro.patterns.schedule import automine_schedule, graphpi_schedule


# ======================================================================
# pairwise sorted-set kernels vs numpy
# ======================================================================
def _sorted_unique(rng, size, universe):
    return np.unique(rng.integers(0, universe, size=size).astype(np.int32))


@pytest.mark.parametrize("seed", range(8))
def test_intersect_sorted_matches_numpy(seed):
    rng = np.random.default_rng(seed)
    for _ in range(25):
        a = _sorted_unique(rng, int(rng.integers(0, 60)), 80)
        b = _sorted_unique(rng, int(rng.integers(0, 60)), 80)
        expected = np.intersect1d(a, b, assume_unique=True)
        got = kernels.intersect_sorted(a, b)
        assert np.array_equal(got, expected)


@pytest.mark.parametrize("seed", range(8))
def test_setdiff_sorted_matches_numpy(seed):
    rng = np.random.default_rng(seed)
    for _ in range(25):
        a = _sorted_unique(rng, int(rng.integers(0, 60)), 80)
        b = _sorted_unique(rng, int(rng.integers(0, 60)), 80)
        expected = np.setdiff1d(a, b, assume_unique=True)
        got = kernels.setdiff_sorted(a, b)
        assert np.array_equal(got, expected)


def test_pairwise_kernels_edge_cases():
    empty = np.empty(0, dtype=np.int32)
    a = np.array([1, 5, 9], dtype=np.int32)
    assert len(kernels.intersect_sorted(empty, a)) == 0
    assert len(kernels.intersect_sorted(a, empty)) == 0
    assert np.array_equal(kernels.setdiff_sorted(a, empty), a)
    assert len(kernels.setdiff_sorted(empty, a)) == 0
    # disjoint, identical, and values past the other array's maximum
    b = np.array([2, 6, 10, 99], dtype=np.int32)
    assert len(kernels.intersect_sorted(a, b)) == 0
    assert np.array_equal(kernels.setdiff_sorted(b, a), b)
    assert np.array_equal(kernels.intersect_sorted(a, a), a)
    assert len(kernels.setdiff_sorted(a, a)) == 0


# ======================================================================
# graph batch gathers
# ======================================================================
def test_neighbors_batch_matches_scalar(small_random_graph):
    g = small_random_graph
    rng = np.random.default_rng(0)
    vs = rng.integers(0, g.num_vertices, size=50)
    values, offsets = g.neighbors_batch(vs)
    assert offsets[0] == 0 and offsets[-1] == len(values)
    for i, v in enumerate(vs):
        assert np.array_equal(
            values[offsets[i] : offsets[i + 1]], g.neighbors(int(v))
        )


def test_neighbors_batch_empty_input(small_random_graph):
    values, offsets = small_random_graph.neighbors_batch([])
    assert len(values) == 0
    assert np.array_equal(offsets, [0])


def test_adjacency_member_matches_has_edge(small_random_graph):
    g = small_random_graph
    rng = np.random.default_rng(1)
    sources = rng.integers(0, g.num_vertices, size=200).astype(np.int64)
    cands = rng.integers(0, g.num_vertices, size=200).astype(np.int64)
    member = kernels.adjacency_member(g, sources, cands)
    for s, c, m in zip(sources, cands, member):
        assert bool(m) == g.has_edge(int(s), int(c))


def test_adjacency_position_indexes_csr(small_random_graph):
    g = small_random_graph
    pairs = [(u, int(v)) for u in range(0, g.num_vertices, 7)
             for v in g.neighbors(u)]
    sources = np.array([p[0] for p in pairs], dtype=np.int64)
    cands = np.array([p[1] for p in pairs], dtype=np.int64)
    pos = kernels.adjacency_position(g, sources, cands)
    assert np.array_equal(g.indices[pos], cands)


def test_degrees_memoized(small_random_graph):
    g = small_random_graph
    first = g.degrees()
    assert first is g.degrees()  # same array object: computed once
    assert not first.flags.writeable
    assert np.array_equal(first, np.diff(g.indptr))


def test_adjacency_keys_memoized_and_sorted(small_random_graph):
    g = small_random_graph
    keys = g.adjacency_keys()
    assert keys is g.adjacency_keys()
    assert not keys.flags.writeable
    assert np.all(np.diff(keys) > 0)  # strictly increasing
    assert len(keys) == len(g.indices)


# ======================================================================
# extend_chunk vs the scalar reference, level by level
# ======================================================================
def _levels(graph, schedule, vcs=True):
    """Enumerate the full embedding frontier level by level.

    Yields ``(step, prefixes, intermediates, scalar_results)`` per
    level, where ``scalar_results[i]`` is ``compute_candidates`` run on
    row ``i`` — the ground truth ``extend_chunk`` must reproduce.
    Intermediates are threaded exactly like the scheduler does: a child
    inherits its ancestors' stored raws, keyed by the level whose
    extension produced them.
    """
    frontier = [((v,), {}) for v in range(graph.num_vertices)]
    for level in range(1, schedule.pattern.num_vertices):
        step = schedule.steps[level - 1]
        inters = []
        scalars = []
        for vertices, raws in frontier:
            inter = None
            if vcs and step.reuse_level is not None:
                inter = raws.get(step.reuse_level)
            inters.append(inter)
            scalars.append(
                compute_candidates(graph, step, vertices, inter, vcs)
            )
        prefixes = np.array([v for v, _ in frontier], dtype=np.int64)
        yield step, prefixes, inters, scalars
        new_frontier = []
        for (vertices, raws), res in zip(frontier, scalars):
            child_raws = raws
            if res.raw is not None and vcs:
                child_raws = dict(raws)
                child_raws[level] = res.raw
            for c in res.candidates:
                new_frontier.append((vertices + (int(c),), child_raws))
        frontier = new_frontier


def _check_schedule(graph, schedule, vcs=True):
    checked = 0
    for step, prefixes, inters, scalars in _levels(graph, schedule, vcs):
        use_inters = (
            inters if (vcs and step.reuse_level is not None) else None
        )
        batch = kernels.extend_chunk(
            graph, step, prefixes, use_inters, vcs=vcs
        )
        counts = kernels.extend_chunk(
            graph, step, prefixes, use_inters, vcs=vcs, count_only=True
        )
        assert counts.values is None  # count-only never materializes
        assert len(batch) == len(scalars)
        for i, res in enumerate(scalars):
            assert np.array_equal(batch.candidates_for(i), res.candidates)
            assert int(batch.merge_elements[i]) == res.merge_elements
            assert int(batch.scanned[i]) == res.scanned
            assert int(batch.counts[i]) == len(res.candidates)
            assert int(counts.counts[i]) == len(res.candidates)
            assert int(counts.merge_elements[i]) == res.merge_elements
            assert int(counts.scanned[i]) == res.scanned
            if step.store_intermediate:
                assert np.array_equal(batch.raw_for(i), res.raw)
            else:
                assert batch.raw_for(i) is None
            checked += 1
    assert checked > 0


PATTERNS = {
    "tri": catalog.clique(3),
    "cl4": catalog.clique(4),
    "chain4": catalog.chain(4),
    "cyc4": catalog.cycle(4),
    "star3": catalog.star(3),
    "house": catalog.house(),
    "tailtri": catalog.tailed_triangle(),
}


@pytest.mark.parametrize("name", sorted(PATTERNS))
def test_extend_chunk_matches_scalar(small_random_graph, name):
    _check_schedule(small_random_graph, automine_schedule(PATTERNS[name]))


@pytest.mark.parametrize("name", ["cl4", "cyc4"])
def test_extend_chunk_matches_scalar_induced(small_random_graph, name):
    _check_schedule(
        small_random_graph, automine_schedule(PATTERNS[name], induced=True)
    )


@pytest.mark.parametrize("name", ["cl4", "house"])
def test_extend_chunk_matches_scalar_vcs_off(small_random_graph, name):
    _check_schedule(
        small_random_graph, automine_schedule(PATTERNS[name]), vcs=False
    )


def test_extend_chunk_matches_scalar_graphpi(small_random_graph):
    _check_schedule(small_random_graph, graphpi_schedule(catalog.clique(4)))


def test_extend_chunk_matches_scalar_skewed(skewed_graph):
    _check_schedule(skewed_graph, automine_schedule(catalog.clique(4)))


def test_extend_chunk_vertex_labels(labeled_graph):
    pattern = Pattern(3, [(0, 1), (1, 2)], labels=(0, 1, 2))
    _check_schedule(labeled_graph, automine_schedule(pattern))


def test_extend_chunk_edge_labels():
    rng = np.random.default_rng(3)
    edges = [
        (u, v) for u in range(30) for v in range(u + 1, 30)
        if rng.random() < 0.3
    ]
    labels = [int(rng.integers(0, 2)) for _ in edges]
    graph = from_edges(edges, edge_labels=labels)
    pattern = Pattern(3, [(0, 1), (1, 2)],
                      edge_labels={(0, 1): 1, (1, 2): 0})
    _check_schedule(graph, automine_schedule(pattern))


def test_extend_chunk_mixed_intermediates(small_random_graph):
    """Some embeddings carry a stored intermediate, some don't: the
    batch splits into groups and must stitch results back in order."""
    graph = small_random_graph
    schedule = automine_schedule(catalog.clique(4))
    for step, prefixes, inters, scalars in _levels(graph, schedule):
        if step.reuse_level is None or not any(
            inter is not None for inter in inters
        ):
            continue
        holey = [
            inter if i % 3 else None for i, inter in enumerate(inters)
        ]
        expected = [
            compute_candidates(graph, step, tuple(row), inter, True)
            for row, inter in zip(prefixes.tolist(), holey)
        ]
        batch = kernels.extend_chunk(graph, step, prefixes, holey, vcs=True)
        for i, res in enumerate(expected):
            assert np.array_equal(batch.candidates_for(i), res.candidates)
            assert int(batch.merge_elements[i]) == res.merge_elements
            assert int(batch.scanned[i]) == res.scanned
            if step.store_intermediate:
                assert np.array_equal(batch.raw_for(i), res.raw)


def test_extend_chunk_empty_chunk(small_random_graph):
    schedule = automine_schedule(catalog.clique(3))
    step = schedule.steps[0]
    batch = kernels.extend_chunk(
        small_random_graph, step, np.empty((0, 1), dtype=np.int64)
    )
    assert len(batch) == 0
    assert len(batch.values) == 0


# ======================================================================
# engine-level bit-identity: scalar vs batched
# ======================================================================
def _run(graph, mode, schedule, machines=4, obs=None, **config):
    cluster = Cluster(
        graph, ClusterConfig(num_machines=machines, memory_bytes=64 << 20)
    )
    engine = KhuzdulEngine(
        cluster, EngineConfig(extend_mode=mode, **config), obs=obs
    )
    return engine.run(schedule)


def _assert_reports_identical(scalar, batched):
    assert scalar.counts == batched.counts
    assert scalar.simulated_seconds == batched.simulated_seconds
    assert scalar.breakdown == batched.breakdown
    assert scalar.machine_breakdowns == batched.machine_breakdowns
    assert scalar.machine_seconds == batched.machine_seconds
    assert scalar.network_bytes == batched.network_bytes
    assert scalar.extra["chunks"] == batched.extra["chunks"]
    assert scalar.extra["hds"] == batched.extra["hds"]
    assert scalar.extra["fetch_sources"] == batched.extra["fetch_sources"]


@pytest.mark.parametrize("name", sorted(PATTERNS))
def test_engine_bit_identical_scalar_vs_batched(small_random_graph, name):
    schedule = automine_schedule(PATTERNS[name])
    _assert_reports_identical(
        _run(small_random_graph, "scalar", schedule),
        _run(small_random_graph, "batched", schedule),
    )


@pytest.mark.parametrize("chunk_bytes", [1024, 4096])
def test_engine_bit_identical_small_chunks(small_random_graph, chunk_bytes):
    """Tiny chunks force mid-embedding pauses (resume tuples) and many
    partially-consumed batches."""
    schedule = automine_schedule(catalog.clique(4))
    _assert_reports_identical(
        _run(small_random_graph, "scalar", schedule,
             chunk_bytes=chunk_bytes),
        _run(small_random_graph, "batched", schedule,
             chunk_bytes=chunk_bytes),
    )


def test_engine_metrics_identical_scalar_vs_batched(small_random_graph):
    """Every metric series except the batched-only kernel.* counters
    must match exactly — including the float time.* buckets."""
    schedule = automine_schedule(catalog.clique(4))
    obs_s, obs_b = Observability(), Observability()
    _run(small_random_graph, "scalar", schedule, obs=obs_s)
    _run(small_random_graph, "batched", schedule, obs=obs_b)

    def comparable(dump):
        return {
            kind: [row for row in rows if not row[0].startswith("kernel.")]
            for kind, rows in dump.items()
        }

    dump_s, dump_b = obs_s.registry.dump(), obs_b.registry.dump()
    assert comparable(dump_s) == comparable(dump_b)
    batched_kernel = [
        row for row in dump_b["counters"] if row[0].startswith("kernel.")
    ]
    assert any(value > 0 for _, _, value in batched_kernel)
    scalar_kernel = [
        row for row in dump_s["counters"] if row[0].startswith("kernel.")
    ]
    assert all(value == 0 for _, _, value in scalar_kernel)


def test_engine_timeout_partial_metrics_identical(skewed_graph):
    """A run cut short by the simulated-time budget consumes batches
    partially; deferred per-embedding accounting must keep even the
    truncated totals identical to scalar."""
    schedule = automine_schedule(catalog.clique(4))
    full = _run(skewed_graph, "scalar", schedule)
    budget = full.simulated_seconds * 0.4
    obs_s, obs_b = Observability(), Observability()
    scalar = _run(skewed_graph, "scalar", schedule, obs=obs_s,
                  time_budget=budget)
    batched = _run(skewed_graph, "batched", schedule, obs=obs_b,
                   time_budget=budget)
    assert scalar.failure is not None and batched.failure is not None
    assert scalar.counts == batched.counts
    assert scalar.simulated_seconds == batched.simulated_seconds

    def comparable(dump):
        return {
            kind: [row for row in rows if not row[0].startswith("kernel.")]
            for kind, rows in dump.items()
        }

    assert comparable(obs_s.registry.dump()) == comparable(
        obs_b.registry.dump()
    )


def test_extend_mode_validation():
    with pytest.raises(ConfigurationError):
        EngineConfig(extend_mode="simd")


def test_labeled_engine_bit_identical(labeled_graph):
    pattern = Pattern(3, [(0, 1), (1, 2)], labels=(0, 1, 2))
    schedule = automine_schedule(pattern)
    _assert_reports_identical(
        _run(labeled_graph, "scalar", schedule),
        _run(labeled_graph, "batched", schedule),
    )


# ======================================================================
# process backend: batched path inside real worker processes
# ======================================================================
@pytest.mark.exec
@pytest.mark.parametrize("name", ["tri", "cl4", "cyc4"])
def test_process_backend_bit_identical_scalar_vs_batched(name):
    from repro.exec import ProcessBackend
    from repro.graph import dataset
    from repro.systems import KAutomine

    graph = dataset("mico", scale=0.3)
    cluster = ClusterConfig(num_machines=4)
    reports = {}
    for mode in ("scalar", "batched"):
        inline = KAutomine(graph, cluster, EngineConfig(extend_mode=mode),
                           graph_name="mico")
        proc = KAutomine(graph, cluster, EngineConfig(extend_mode=mode),
                         graph_name="mico",
                         backend=ProcessBackend(workers=2))
        reports[mode, "inline"] = inline.count_pattern(PATTERNS[name])
        reports[mode, "process"] = proc.count_pattern(PATTERNS[name])
    for backend in ("inline", "process"):
        scalar, batched = reports["scalar", backend], reports["batched", backend]
        assert scalar.counts == batched.counts
        assert scalar.simulated_seconds == batched.simulated_seconds
        assert scalar.machine_seconds == batched.machine_seconds
    # and across backends within a mode (the existing exec invariant,
    # now holding for the batched default too)
    for mode in ("scalar", "batched"):
        inline, proc = reports[mode, "inline"], reports[mode, "process"]
        assert inline.counts == proc.counts
        assert inline.simulated_seconds == proc.simulated_seconds
