"""Tests for the EXTEND interface and the candidate kernel."""

import numpy as np
import pytest

from repro.core.extend import ScheduleExtender, compute_candidates
from repro.graph.generators import complete_graph, erdos_renyi
from repro.graph import from_edges
from repro.patterns import chain, clique, cycle
from repro.patterns.schedule import automine_schedule, compile_schedule


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(40, 160, seed=2)


def _naive_candidates(graph, step, vertices):
    """Reference implementation with plain Python sets."""
    base = None
    for position in step.connected:
        nbrs = set(int(x) for x in graph.neighbors(vertices[position]))
        base = nbrs if base is None else base & nbrs
    assert base is not None
    for position in step.disconnected:
        base -= set(int(x) for x in graph.neighbors(vertices[position]))
    base -= set(vertices)
    for position in step.larger_than:
        base = {v for v in base if v > vertices[position]}
    for position in step.smaller_than:
        base = {v for v in base if v < vertices[position]}
    return sorted(base)


def _check_all_levels(graph, schedule):
    """Drive the schedule level by level, comparing with the naive set."""
    extender = ScheduleExtender(schedule)

    def recurse(vertices, level, intermediates):
        if level > extender.final_level:
            return
        step = extender.step_for(level)
        result = compute_candidates(
            graph,
            step,
            vertices,
            intermediates.get(step.reuse_level),
            vcs=True,
        )
        naive = _naive_candidates(graph, step, vertices)
        assert sorted(int(x) for x in result.candidates) == naive
        if result.raw is not None:
            intermediates = dict(intermediates)
            intermediates[level] = result.raw
        for v in result.candidates[:5]:  # bounded fan-out for test speed
            recurse(vertices + (int(v),), level + 1, intermediates)

    for root in range(0, graph.num_vertices, 7):
        recurse((root,), 1, {})


@pytest.mark.parametrize(
    "pattern", [clique(3), clique(4), chain(4), cycle(4)],
    ids=["tri", "4cc", "chain4", "cyc4"],
)
def test_candidates_match_naive_sets(graph, pattern):
    _check_all_levels(graph, automine_schedule(pattern))


def test_induced_candidates_match_naive(graph):
    _check_all_levels(graph, automine_schedule(cycle(4), induced=True))


def test_vcs_and_no_vcs_agree(graph):
    """Reusing the stored intersection must not change candidates."""
    schedule = automine_schedule(clique(4))
    extender = ScheduleExtender(schedule)
    step2, step3 = extender.step_for(2), extender.step_for(3)
    for root in range(0, 40, 5):
        n_root = graph.neighbors(root)
        for v1 in n_root[:3]:
            vertices = (root, int(v1))
            with_raw = compute_candidates(graph, step2, vertices, None, True)
            if with_raw.raw is None or not len(with_raw.candidates):
                continue
            v2 = int(with_raw.candidates[0])
            tri = vertices + (v2,)
            reused = compute_candidates(graph, step3, tri, with_raw.raw, True)
            fresh = compute_candidates(graph, step3, tri, None, False)
            assert np.array_equal(reused.candidates, fresh.candidates)
            # reuse must stream fewer elements through merges
            assert reused.merge_elements <= fresh.merge_elements


def test_label_filtering():
    g = from_edges([(0, 1), (0, 2), (0, 3)], labels=[9, 1, 2, 1])
    from repro.patterns import Pattern

    pattern = Pattern(2, [(0, 1)], labels=(9, 1))
    schedule = automine_schedule(pattern)
    extender = ScheduleExtender(schedule)
    step = extender.step_for(1)
    result = compute_candidates(g, step, (0,), None, True)
    assert sorted(int(x) for x in result.candidates) == [1, 3]


def test_used_vertices_excluded():
    g = complete_graph(4)
    schedule = compile_schedule(chain(3), (0, 1, 2), use_restrictions=False)
    step = schedule.steps[1]
    result = compute_candidates(g, step, (0, 1), None, True)
    assert 0 not in result.candidates
    assert 1 not in result.candidates


def test_merge_elements_counts_streaming(graph):
    schedule = automine_schedule(clique(3))
    extender = ScheduleExtender(schedule)
    step = extender.step_for(2)
    root = int(np.argmax(graph.degrees()))
    v1 = int(graph.neighbors(root)[0])
    result = compute_candidates(graph, step, (root, v1), None, True)
    expected = len(graph.neighbors(root)) + len(graph.neighbors(v1))
    assert result.merge_elements == expected


def test_extender_accessors():
    schedule = automine_schedule(clique(4))
    extender = ScheduleExtender(schedule)
    assert extender.num_levels == 3
    assert extender.final_level == 3
    assert extender.step_for(1).level == 1
    assert extender.needs_edge_list(0) == schedule.needs_edge_list(0)


def test_empty_candidates_are_empty_array():
    g = from_edges([(0, 1)], num_vertices=3)
    schedule = automine_schedule(clique(3))
    step = schedule.steps[1]
    result = compute_candidates(g, step, (0, 1), None, True)
    assert len(result.candidates) == 0
    assert isinstance(result.candidates, np.ndarray)
