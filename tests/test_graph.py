"""Unit tests for the CSR graph type and builders."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import Graph, from_edge_array, from_edges, read_edge_list, write_edge_list
from repro.graph.generators import complete_graph, cycle_graph, star_graph


def test_from_edges_basic():
    g = from_edges([(0, 1), (1, 2), (0, 2)])
    assert g.num_vertices == 3
    assert g.num_edges == 3
    assert g.num_directed_edges == 6


def test_neighbors_sorted_unique():
    g = from_edges([(0, 3), (0, 1), (0, 2), (0, 1)])
    nbrs = g.neighbors(0)
    assert list(nbrs) == [1, 2, 3]


def test_self_loops_removed():
    g = from_edges([(0, 0), (0, 1), (1, 1)])
    assert g.num_edges == 1
    assert not g.has_edge(0, 0)


def test_duplicate_edges_removed():
    g = from_edges([(0, 1), (1, 0), (0, 1)])
    assert g.num_edges == 1
    assert g.degree(0) == 1


def test_has_edge_symmetry():
    g = from_edges([(0, 1), (2, 3)])
    assert g.has_edge(0, 1) and g.has_edge(1, 0)
    assert not g.has_edge(0, 2)


def test_degrees_and_max_degree(star10):
    assert star10.degree(0) == 10
    assert star10.max_degree() == 10
    assert int(star10.degrees().sum()) == 2 * star10.num_edges


def test_isolated_vertices_allowed():
    g = from_edges([(0, 1)], num_vertices=5)
    assert g.num_vertices == 5
    assert g.degree(4) == 0
    assert list(g.neighbors(4)) == []


def test_empty_graph():
    g = from_edges([], num_vertices=3)
    assert g.num_vertices == 3
    assert g.num_edges == 0
    assert g.max_degree() == 0


def test_edges_iteration_each_once():
    g = from_edges([(0, 1), (1, 2), (0, 2)])
    edges = sorted(g.edges())
    assert edges == [(0, 1), (0, 2), (1, 2)]


def test_edge_endpoint_out_of_range():
    with pytest.raises(GraphFormatError):
        from_edges([(0, 5)], num_vertices=3)


def test_negative_vertex_rejected():
    with pytest.raises(GraphFormatError):
        from_edge_array(np.array([[-1, 2]]))


def test_bad_shape_rejected():
    with pytest.raises(GraphFormatError):
        from_edge_array(np.array([1, 2, 3]))


def test_labels_attach_and_lookup():
    g = from_edges([(0, 1), (1, 2)], labels=[5, 6, 7])
    assert g.label(0) == 5
    assert g.label(2) == 7
    assert g.with_labels([1, 1, 1]).label(0) == 1


def test_unlabeled_label_is_zero():
    g = from_edges([(0, 1)])
    assert g.label(0) == 0


def test_labels_length_mismatch_rejected():
    with pytest.raises(GraphFormatError):
        from_edges([(0, 1)], labels=[1, 2, 3])


def test_size_bytes_accounting():
    g = from_edges([(0, 1), (1, 2)])
    expected = 8 * 4 + 4 * 4  # indptr(4 entries) + 4 directed entries
    assert g.size_bytes() == expected


def test_edge_list_bytes():
    g = star_graph(6)
    assert g.edge_list_bytes(0) == 8 + 4 * 6
    assert g.edge_list_bytes(1) == 8 + 4


def test_equality_and_inequality():
    g1 = from_edges([(0, 1), (1, 2)])
    g2 = from_edges([(1, 2), (0, 1)])
    g3 = from_edges([(0, 1), (0, 2)])
    assert g1 == g2
    assert g1 != g3
    assert g1 != g1.with_labels([1, 2, 3])


def test_directed_graph_counts():
    g = from_edges([(0, 1), (1, 2)], directed=True)
    assert g.num_edges == 2
    assert g.has_edge(0, 1)
    assert not g.has_edge(1, 0)


def test_repr_mentions_shape(k5):
    assert "|V|=5" in repr(k5)
    assert "|E|=10" in repr(k5)


def test_edge_list_file_roundtrip(tmp_path, k5):
    path = tmp_path / "g.txt"
    write_edge_list(k5, path)
    loaded = read_edge_list(path)
    assert loaded == k5


def test_read_edge_list_skips_comments(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("# comment\n% other\n0 1\n\n1 2\n")
    g = read_edge_list(path)
    assert g.num_edges == 2


def test_read_edge_list_rejects_garbage(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("0 x\n")
    with pytest.raises(GraphFormatError):
        read_edge_list(path)


def test_read_edge_list_rejects_single_column(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("42\n")
    with pytest.raises(GraphFormatError):
        read_edge_list(path)


def test_cycle_graph_degrees(c8):
    assert all(c8.degree(v) == 2 for v in c8.vertices())
    assert c8.num_edges == 8


def test_complete_graph_edges(k5):
    assert k5.num_edges == 10
    assert all(k5.degree(v) == 4 for v in k5.vertices())
