"""Tests for extendable embeddings and their lifecycle (Figure 6)."""

import numpy as np
import pytest

from repro.core.embedding import (
    EMBEDDING_BASE_BYTES,
    EdgeListSource,
    ExtendableEmbedding,
)
from repro.core.states import EmbeddingState


def _chain(*vertices, needs=True):
    parent = None
    chain = []
    for level, v in enumerate(vertices):
        parent = ExtendableEmbedding(v, level, parent, needs)
        chain.append(parent)
    return chain


def test_vertices_walks_parent_chain():
    chain = _chain(4, 9, 2)
    assert chain[-1].vertices() == (4, 9, 2)
    assert chain[0].vertices() == (4,)


def test_initial_state_depends_on_fetch():
    assert _chain(1)[0].state is EmbeddingState.PENDING
    assert _chain(1, needs=False)[0].state is EmbeddingState.READY


def test_mark_ready_records_source():
    emb = _chain(1)[0]
    emb.mark_ready(EdgeListSource.CACHE)
    assert emb.state is EmbeddingState.READY
    assert emb.source is EdgeListSource.CACHE


def test_zombie_without_children_terminates():
    emb = _chain(1)[0]
    emb.mark_ready(EdgeListSource.LOCAL)
    emb.mark_zombie()
    assert emb.state is EmbeddingState.TERMINATED


def test_zombie_with_children_waits():
    root, child = _chain(1, 2)
    root.mark_zombie()
    assert root.state is EmbeddingState.ZOMBIE
    child.mark_zombie()
    assert child.state is EmbeddingState.TERMINATED
    assert root.state is EmbeddingState.TERMINATED


def test_bottom_up_release_order():
    """Termination cascades from leaves to the root (Section 3.3)."""
    root, mid, leaf = _chain(1, 2, 3)
    root.mark_zombie()
    mid.mark_zombie()
    assert root.state is EmbeddingState.ZOMBIE
    assert mid.state is EmbeddingState.ZOMBIE
    leaf.mark_zombie()
    assert mid.state is EmbeddingState.TERMINATED
    assert root.state is EmbeddingState.TERMINATED


def test_multiple_children_counted():
    root = ExtendableEmbedding(0, 0, None, False)
    kids = [ExtendableEmbedding(i, 1, root, False) for i in (1, 2, 3)]
    root.mark_zombie()
    for kid in kids[:-1]:
        kid.mark_zombie()
        assert root.state is EmbeddingState.ZOMBIE
    kids[-1].mark_zombie()
    assert root.state is EmbeddingState.TERMINATED


def test_ancestor_lookup():
    chain = _chain(5, 6, 7, 8)
    leaf = chain[-1]
    assert leaf.ancestor(0) is chain[0]
    assert leaf.ancestor(2) is chain[2]
    assert leaf.ancestor(3) is leaf
    with pytest.raises(ValueError):
        chain[0].ancestor(2)


def test_intermediate_at_reads_ancestor():
    chain = _chain(5, 6, 7)
    stored = np.array([1, 2, 3])
    chain[1].intermediate = stored
    assert chain[2].intermediate_at(1) is stored
    assert chain[2].intermediate_at(0) is None


def test_base_bytes():
    emb = _chain(1)[0]
    assert emb.stored_bytes == EMBEDDING_BASE_BYTES


def test_repr_shows_vertices():
    emb = _chain(3, 1)[1]
    assert "(3, 1)" in repr(emb)
