"""Tests for canonical pattern codes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.patterns import Pattern, canonical_code, chain, clique, cycle, star
from repro.patterns.canonical import canonical_form
from repro.patterns.generation import connected_patterns
from repro.patterns.isomorphism import are_isomorphic


def test_isomorphic_patterns_same_code():
    p = cycle(4)
    q = p.relabel([3, 0, 2, 1])
    assert canonical_code(p) == canonical_code(q)


def test_distinct_patterns_distinct_codes():
    codes = {canonical_code(p) for p in connected_patterns(4)}
    assert len(codes) == 6  # 6 connected 4-vertex graphs


def test_labels_enter_the_code():
    a = Pattern(2, [(0, 1)], labels=(1, 2))
    b = Pattern(2, [(0, 1)], labels=(2, 1))
    c = Pattern(2, [(0, 1)], labels=(1, 1))
    assert canonical_code(a) == canonical_code(b)
    assert canonical_code(a) != canonical_code(c)


def test_canonical_form_is_isomorphic():
    for pattern in (clique(4), chain(4), star(3), cycle(5)):
        assert are_isomorphic(pattern, canonical_form(pattern))


def test_canonical_form_is_fixed_point():
    for pattern in (clique(3), cycle(4), star(3)):
        form = canonical_form(pattern)
        assert canonical_code(form) == canonical_code(pattern)


def test_labeled_canonical_form_keeps_labels():
    p = Pattern(3, [(0, 1), (1, 2)], labels=(5, 1, 5))
    form = canonical_form(p)
    assert form.labels is not None
    assert sorted(form.labels) == [1, 5, 5]
    assert are_isomorphic(p, form)


@st.composite
def _small_pattern_and_permutation(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    # always include a spanning path so the pattern is connected
    edges = [(i, i + 1) for i in range(n - 1)]
    extra = draw(st.lists(st.sampled_from(possible), max_size=6))
    labels = draw(
        st.one_of(
            st.none(),
            st.lists(
                st.integers(min_value=0, max_value=2), min_size=n, max_size=n
            ),
        )
    )
    pattern = Pattern(n, edges + extra, labels)
    perm = draw(st.permutations(list(range(n))))
    return pattern, list(perm)


@given(_small_pattern_and_permutation())
@settings(max_examples=150, deadline=None)
def test_code_invariant_under_relabeling(case):
    """Property: canonical codes are permutation invariant."""
    pattern, perm = case
    assert canonical_code(pattern) == canonical_code(pattern.relabel(perm))


@given(_small_pattern_and_permutation())
@settings(max_examples=60, deadline=None)
def test_equal_codes_imply_isomorphism(case):
    pattern, perm = case
    relabeled = pattern.relabel(perm)
    assert are_isomorphic(pattern, relabeled)
