"""Tests for the Khuzdul engine: correctness and configuration effects."""

import numpy as np
import pytest

from repro.analysis import count_embeddings_brute_force
from repro.cluster import Cluster, ClusterConfig
from repro.core import EngineConfig, KhuzdulEngine
from repro.core.cache import CachePolicy
from repro.errors import ConfigurationError, OutOfMemoryError, TimeoutError
from repro.graph.generators import erdos_renyi, random_labels, star_graph
from repro.patterns import Pattern, chain, clique, cycle, star
from repro.patterns.schedule import automine_schedule


def _engine(graph, machines=4, **config):
    cluster = Cluster(
        graph, ClusterConfig(num_machines=machines, memory_bytes=64 << 20)
    )
    return KhuzdulEngine(cluster, EngineConfig(**config))


@pytest.mark.parametrize(
    "pattern",
    [clique(3), clique(4), chain(3), chain(4), cycle(4), star(3)],
    ids=["tri", "4cc", "wedge", "chain4", "cyc4", "star3"],
)
def test_counts_match_brute_force(small_random_graph, pattern):
    expected = count_embeddings_brute_force(small_random_graph, pattern)
    report = _engine(small_random_graph).run(automine_schedule(pattern))
    assert report.counts == expected


@pytest.mark.parametrize("pattern", [chain(3), cycle(4)], ids=["wedge", "cyc4"])
def test_induced_counts_match_brute_force(small_random_graph, pattern):
    expected = count_embeddings_brute_force(
        small_random_graph, pattern, induced=True
    )
    report = _engine(small_random_graph).run(
        automine_schedule(pattern, induced=True)
    )
    assert report.counts == expected


def test_count_invariant_to_machine_count(small_random_graph):
    schedule = automine_schedule(clique(3))
    counts = {
        _engine(small_random_graph, machines=m).run(schedule).counts
        for m in (1, 2, 3, 8)
    }
    assert len(counts) == 1


def test_count_invariant_to_chunk_size(small_random_graph):
    schedule = automine_schedule(clique(4))
    counts = {
        _engine(small_random_graph, chunk_bytes=size).run(schedule).counts
        for size in (1024, 4096, 1 << 20)
    }
    assert len(counts) == 1


@pytest.mark.parametrize("vcs", [True, False])
@pytest.mark.parametrize("hds", [True, False])
def test_count_invariant_to_reuse_flags(small_random_graph, vcs, hds):
    expected = count_embeddings_brute_force(small_random_graph, clique(4))
    report = _engine(small_random_graph, vcs=vcs, hds=hds).run(
        automine_schedule(clique(4))
    )
    assert report.counts == expected


@pytest.mark.parametrize("policy", list(CachePolicy))
def test_count_invariant_to_cache_policy(small_random_graph, policy):
    expected = count_embeddings_brute_force(small_random_graph, clique(3))
    report = _engine(small_random_graph, cache_policy=policy).run(
        automine_schedule(clique(3))
    )
    assert report.counts == expected


def test_count_invariant_to_numa(small_random_graph):
    schedule = automine_schedule(clique(3))
    aware = _engine(small_random_graph, numa_aware=True).run(schedule)
    oblivious = _engine(small_random_graph, numa_aware=False).run(schedule)
    assert aware.counts == oblivious.counts
    # NUMA-oblivious execution pays the cross-socket penalty
    assert oblivious.simulated_seconds > aware.simulated_seconds


def test_labeled_pattern_counts(labeled_graph):
    pattern = Pattern(2, [(0, 1)], labels=(0, 1))
    expected = count_embeddings_brute_force(labeled_graph, pattern)
    report = _engine(labeled_graph).run(automine_schedule(pattern))
    assert report.counts == expected


def test_single_vertex_pattern_counts_vertices(small_random_graph):
    report = _engine(small_random_graph).run(
        automine_schedule(Pattern(1, []))
    )
    assert report.counts == small_random_graph.num_vertices


def test_single_edge_pattern(small_random_graph):
    report = _engine(small_random_graph).run(automine_schedule(chain(2)))
    assert report.counts == small_random_graph.num_edges


def test_run_many_counts_align(small_random_graph):
    schedules = [automine_schedule(p) for p in (clique(3), chain(3))]
    report = _engine(small_random_graph).run_many(schedules)
    assert report.counts[0] == count_embeddings_brute_force(
        small_random_graph, clique(3)
    )
    assert report.counts[1] == count_embeddings_brute_force(
        small_random_graph, chain(3)
    )


def test_udf_receives_all_matches(small_random_graph):
    seen = []

    def udf(prefix, candidates):
        seen.extend(prefix + (int(c),) for c in candidates)

    report = _engine(small_random_graph).run(
        automine_schedule(clique(3)), udf=udf
    )
    assert len(seen) == report.counts
    for triple in seen[:50]:
        assert small_random_graph.has_edge(triple[0], triple[1])
        assert small_random_graph.has_edge(triple[0], triple[2])
        assert small_random_graph.has_edge(triple[1], triple[2])


def test_report_fields_populated(small_random_graph):
    report = _engine(small_random_graph).run(automine_schedule(clique(3)))
    assert report.simulated_seconds > 0
    assert report.network_bytes > 0
    assert set(report.breakdown) == {"compute", "scheduler", "cache", "network"}
    assert len(report.machine_seconds) == 4
    assert report.peak_memory_bytes > 0
    assert 0 <= report.network_utilization <= 1
    assert report.extra["chunks"] > 0


def test_single_machine_no_traffic(small_random_graph):
    report = _engine(small_random_graph, machines=1).run(
        automine_schedule(clique(3))
    )
    assert report.network_bytes == 0


def test_hds_reduces_traffic_on_skewed_graph(skewed_graph):
    schedule = automine_schedule(clique(3))
    with_hds = _engine(skewed_graph, hds=True, cache_fraction=0.0).run(schedule)
    without = _engine(skewed_graph, hds=False, cache_fraction=0.0).run(schedule)
    assert with_hds.counts == without.counts
    assert with_hds.network_bytes < without.network_bytes


def test_static_cache_reduces_traffic(skewed_graph):
    # small chunks force many chunk turnovers, which is what the static
    # cache (cross-chunk reuse) accelerates; within-chunk reuse is HDS's
    # job and is disabled here to isolate the cache
    schedule = automine_schedule(clique(3))
    cached = _engine(
        skewed_graph, cache_fraction=0.15, hds=False, chunk_bytes=4096
    ).run(schedule)
    uncached = _engine(
        skewed_graph, cache_fraction=0.0, hds=False, chunk_bytes=4096
    ).run(schedule)
    assert cached.counts == uncached.counts
    assert cached.network_bytes < uncached.network_bytes
    assert cached.cache_hit_rate > 0


def test_vcs_reduces_compute(small_random_graph):
    schedule = automine_schedule(clique(4))
    with_vcs = _engine(small_random_graph, vcs=True).run(schedule)
    without = _engine(small_random_graph, vcs=False).run(schedule)
    assert with_vcs.breakdown["compute"] <= without.breakdown["compute"]


def test_oom_on_tiny_memory():
    graph = star_graph(400)
    cluster = Cluster(
        graph, ClusterConfig(num_machines=2, memory_bytes=6 << 10)
    )
    engine = KhuzdulEngine(cluster, EngineConfig(chunk_bytes=1024))
    # the engine converts the raw OutOfMemoryError into a partial
    # report with a structured failure summary (docs/faults.md)
    report = engine.run(automine_schedule(chain(3)))
    assert report.outcome == "OUTOFMEM"
    assert report.failure is not None and report.failure.partial
    assert report.failure.machine_id is not None


def test_timeout_reported():
    graph = erdos_renyi(60, 240, seed=1)
    engine = _engine(graph, time_budget=1e-12)
    report = engine.run(automine_schedule(clique(4)))
    assert report.outcome == "TIMEOUT"
    assert report.failure is not None and report.failure.partial


def test_config_validation():
    with pytest.raises(ConfigurationError):
        EngineConfig(chunk_bytes=16)
    with pytest.raises(ConfigurationError):
        EngineConfig(cache_fraction=1.5)


def test_labeled_roots_filtered(labeled_graph):
    pattern = Pattern(2, [(0, 1)], labels=(2, 2))
    engine = _engine(labeled_graph)
    report = engine.run(automine_schedule(pattern))
    expected = count_embeddings_brute_force(labeled_graph, pattern)
    assert report.counts == expected


def test_zero_match_pattern(small_random_graph):
    # a 6-clique is (almost surely) absent from this sparse graph
    expected = count_embeddings_brute_force(small_random_graph, clique(6))
    report = _engine(small_random_graph).run(automine_schedule(clique(6)))
    assert report.counts == expected
