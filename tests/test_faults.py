"""Fault injection & chunk-granular recovery (docs/faults.md).

The headline invariant under test: with recovery enabled, recoverable
faults change *runtime* and *traffic* but never change *counts*.
"""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.core import EngineConfig, KhuzdulEngine
from repro.cluster.costmodel import CostModel
from repro.core.cache import CachePolicy, EdgeCache
from repro.core.hds import HorizontalShareTable
from repro.errors import ConfigurationError
from repro.faults import (
    Checkpoint,
    CrashFault,
    FaultPlan,
    Outcome,
    StragglerFault,
)
from repro.faults.recovery import split_roots
from repro.graph.generators import erdos_renyi, star_graph
from repro.patterns import chain, clique
from repro.patterns.schedule import automine_schedule

pytestmark = pytest.mark.faults


# ======================================================================
# spec parsing
# ======================================================================
def test_parse_full_spec_round_trip():
    spec = "crash:m1@chunk=2;flaky:p=0.05;slow:m2@x=3"
    plan = FaultPlan.parse(spec)
    assert plan.crashes == (CrashFault(1, at_chunk=2),)
    assert plan.flaky_p == 0.05
    assert plan.stragglers == (StragglerFault(2, 3.0),)
    assert plan.describe() == "crash:m1@chunk=2;flaky:p=0.05;slow:m2@x=3"


def test_parse_time_trigger_seed_and_retries():
    plan = FaultPlan.parse("crash:m0@t=0.5; seed:7; retries:2; straggler:m3@x=1.5")
    assert plan.crashes[0].at_time == 0.5
    assert plan.seed == 7
    assert plan.max_retries == 2
    assert plan.stragglers[0].factor == 1.5


def test_parse_empty_spec_is_empty_plan():
    assert FaultPlan.parse("").empty
    assert not FaultPlan.parse("flaky:p=0.1").empty


@pytest.mark.parametrize(
    "bad",
    [
        "crash:x1@chunk=2",       # bad machine token
        "crash:m1@chunk=zero",    # non-integer chunk
        "crash:m1@lvl=2",         # unknown trigger
        "flaky:q=0.5",            # wrong key
        "flaky:p=1.5",            # out of range
        "slow:m1@x=0.5",          # speedup, not a straggler
        "explode:m1",             # unknown clause
    ],
)
def test_parse_rejects_bad_clause(bad):
    with pytest.raises(ConfigurationError):
        FaultPlan.parse(bad)


def test_crash_fault_needs_exactly_one_trigger():
    with pytest.raises(ConfigurationError):
        CrashFault(0)
    with pytest.raises(ConfigurationError):
        CrashFault(0, at_chunk=1, at_time=1.0)


# ======================================================================
# reassignment arithmetic
# ======================================================================
def test_split_roots_partitions_without_loss():
    roots = np.arange(13)
    pieces = split_roots(roots, [3, 0, 2])
    took = np.sort(np.concatenate([share for _, share in pieces]))
    assert np.array_equal(took, roots)
    # deterministic: ascending machine order, round-robin shares
    assert [m for m, _ in pieces] == [0, 2, 3]
    assert split_roots(np.array([], dtype=int), [0, 1]) == []


# ======================================================================
# engine-level recovery
# ======================================================================
def _run(graph, pattern, machines=4, **config):
    cluster = Cluster(
        graph, ClusterConfig(num_machines=machines, memory_bytes=64 << 20)
    )
    engine = KhuzdulEngine(cluster, EngineConfig(chunk_bytes=4096, **config))
    return engine.run(automine_schedule(pattern))


@pytest.fixture(scope="module")
def fault_graph():
    return erdos_renyi(60, 240, seed=3)


def test_crash_recovery_preserves_counts(fault_graph):
    clean = _run(fault_graph, clique(3))
    faulty = _run(
        fault_graph, clique(3),
        faults=FaultPlan.parse("crash:m1@chunk=2"),
    )
    assert faulty.counts == clean.counts          # the headline invariant
    assert faulty.outcome == "RECOVERED"
    assert faulty.failure is not None and not faulty.failure.partial
    assert faulty.failure.machine_id == 1
    # recovery is visible in runtime/traffic and the recovery stats
    assert faulty.simulated_seconds != clean.simulated_seconds
    assert faulty.extra["recovery"]["reassigned_roots"] > 0
    assert faulty.extra["recovery"]["checkpoints"] > 0
    assert faulty.extra["faults"]["crashes"] == 1
    assert any(e["kind"] == "crash" for e in faulty.failure.events)


def test_flaky_fetches_preserve_counts(fault_graph):
    clean = _run(fault_graph, clique(3))
    faulty = _run(
        fault_graph, clique(3),
        faults=FaultPlan.parse("flaky:p=0.05;seed:1"),
    )
    assert faulty.counts == clean.counts
    assert faulty.outcome == "RECOVERED"
    assert faulty.extra["faults"]["net_retries"] > 0
    assert faulty.extra["faults"]["retry_backoff_seconds"] > 0
    # retries burn wire bytes and simulated time, never correctness
    assert faulty.network_bytes > clean.network_bytes
    assert faulty.simulated_seconds > clean.simulated_seconds


def test_combined_plan_preserves_counts(fault_graph):
    clean = _run(fault_graph, clique(4))
    faulty = _run(
        fault_graph, clique(4),
        faults=FaultPlan.parse("crash:m1@chunk=2;flaky:p=0.05;slow:m2@x=3"),
    )
    assert faulty.counts == clean.counts
    assert faulty.outcome == "RECOVERED"
    assert faulty.extra["faults"]["stragglers"] == 1


def test_fault_runs_are_deterministic(fault_graph):
    plan = FaultPlan.parse("crash:m1@chunk=2;flaky:p=0.05")
    first = _run(fault_graph, clique(3), faults=plan)
    second = _run(fault_graph, clique(3), faults=plan)
    assert first.counts == second.counts
    assert first.simulated_seconds == second.simulated_seconds
    assert first.network_bytes == second.network_bytes
    assert first.extra["faults"] == second.extra["faults"]
    assert first.extra["recovery"] == second.extra["recovery"]


def test_no_recover_reports_crash_without_raising(fault_graph):
    report = _run(
        fault_graph, clique(3),
        faults=FaultPlan.parse("crash:m1@chunk=2"),
        recover=False,
    )
    assert report.outcome == "CRASHED"
    assert report.failure is not None and report.failure.partial
    assert report.failure.fatal
    assert report.failure.machine_id == 1
    # the partial count is the crash machine's checkpoint plus the
    # other machines' full shares — never more than the true total
    clean = _run(fault_graph, clique(3))
    assert report.counts <= clean.counts


def test_retry_exhaustion_degrades(fault_graph):
    report = _run(
        fault_graph, clique(3),
        faults=FaultPlan.parse("flaky:p=1.0;retries:2"),
    )
    assert report.outcome == "DEGRADED"
    assert report.failure is not None and report.failure.partial


def test_straggler_slows_without_changing_counts(fault_graph):
    clean = _run(fault_graph, clique(3))
    slow = _run(
        fault_graph, clique(3), faults=FaultPlan.parse("slow:m0@x=8")
    )
    assert slow.counts == clean.counts
    assert slow.simulated_seconds > clean.simulated_seconds
    # pure degradation needs no recovery: the run is clean
    assert slow.failure is None and slow.outcome == "OK"
    assert slow.extra["faults"]["stragglers"] == 1


def test_oom_reports_machine_id():
    graph = star_graph(400)
    cluster = Cluster(
        graph, ClusterConfig(num_machines=2, memory_bytes=6 << 10)
    )
    engine = KhuzdulEngine(
        cluster, EngineConfig(chunk_bytes=1024, auto_fit_chunks=False)
    )
    report = engine.run(automine_schedule(chain(3)))
    assert report.outcome == "OUTOFMEM"
    assert report.failure is not None and report.failure.partial
    assert report.failure.machine_id is not None


def test_time_budget_enforced_across_machines(fault_graph):
    report = _run(fault_graph, clique(3), time_budget=1e-12)
    assert report.outcome == "TIMEOUT"
    assert report.failure is not None and report.failure.fatal


def test_run_many_recovers_later_patterns(fault_graph):
    cluster = Cluster(
        fault_graph, ClusterConfig(num_machines=4, memory_bytes=64 << 20)
    )
    schedules = [automine_schedule(clique(3)), automine_schedule(chain(3))]
    clean = KhuzdulEngine(
        cluster, EngineConfig(chunk_bytes=4096)
    ).run_many(schedules)
    faulty = KhuzdulEngine(
        cluster,
        EngineConfig(chunk_bytes=4096,
                     faults=FaultPlan.parse("crash:m1@chunk=2")),
    ).run_many(schedules)
    # the machine dies during pattern 0; pattern 1's shard for the dead
    # machine is bounced to survivors and both counts stay exact
    assert faulty.counts == clean.counts
    assert faulty.outcome == "RECOVERED"


# ======================================================================
# invalidation primitives
# ======================================================================
def test_cache_invalidate_by_predicate():
    cache = EdgeCache(1 << 20, 0, CachePolicy.STATIC, CostModel())
    for v in range(10):
        assert cache.admit(v, num_bytes=64, degree=32)
    used_before = cache.used_bytes
    removed = cache.invalidate(lambda v: v % 2 == 0)
    assert removed == 5
    assert cache.used_bytes == used_before - 5 * 64
    assert all(v not in cache for v in (0, 2, 4, 6, 8))
    assert all(v in cache for v in (1, 3, 5, 7, 9))


def test_hds_invalidate():
    hds = HorizontalShareTable(num_slots=64)
    for v in (3, 17, 42):
        hds.probe(v)  # empty slots: every probe inserts
    assert hds.invalidate(lambda v: v == 17) == 1
    assert hds.invalidate() == 2  # drop-all path removes the rest


def test_outcome_enum_strings():
    assert str(Outcome.RECOVERED) == "RECOVERED"
    assert Outcome.CRASHED.value == "CRASHED"
    assert Checkpoint().roots_completed == 0


# ======================================================================
# CLI surface
# ======================================================================
def _cli(argv, capsys):
    from repro.__main__ import main

    code = main(argv)
    return code, capsys.readouterr().out


def test_cli_triangle_recovers(capsys):
    code, out = _cli(
        ["triangle", "--graph", "mico", "--scale", "0.2", "--machines", "4",
         "--faults", "crash:m1@chunk=2;flaky:p=0.05"],
        capsys,
    )
    assert code == 0
    assert "[RECOVERED]" in out
    assert "outcome: RECOVERED" in out


def test_cli_no_recover_exits_nonzero(capsys):
    code, out = _cli(
        ["triangle", "--graph", "mico", "--scale", "0.2", "--machines", "4",
         "--faults", "crash:m1@chunk=2", "--no-recover"],
        capsys,
    )
    assert code == 1
    assert "outcome: CRASHED" in out


def test_cli_counts_match_fault_free(capsys):
    base = ["triangle", "--graph", "mico", "--scale", "0.2",
            "--machines", "4"]
    _, clean = _cli(base, capsys)
    _, faulty = _cli(base + ["--faults", "crash:m1@chunk=2"], capsys)

    def count_of(out):
        token = [t for t in out.split() if t.startswith("count=")][0]
        return int(token.split("=")[1])

    assert count_of(faulty) == count_of(clean)


def test_cli_oom_exits_nonzero_without_traceback(capsys):
    code, out = _cli(
        ["count", "--graph", "mico", "--scale", "0.3", "--machines", "2",
         "--memory-kb", "48", "--no-auto-fit", "--pattern", "chain3"],
        capsys,
    )
    assert code == 1
    assert "outcome: OUTOFMEM" in out
    assert "machine" in out


def test_cli_rejects_bad_fault_spec(capsys):
    with pytest.raises(SystemExit):
        _cli(["triangle", "--graph", "mico", "--scale", "0.2",
              "--faults", "explode:m1"], capsys)
