"""Using the low-level API: custom patterns, schedules, and UDFs.

Demonstrates what a GPM-system developer touches when porting onto
Khuzdul: define a pattern, compile a matching-order schedule (the
EXTEND function, Section 3.2), inspect its extension steps, and run it
with a user-defined function that receives every matched embedding.

The pattern here is the "house" (a 4-cycle with a roof) plus a custom
labeled pattern on a labeled graph.

Run:  python examples/custom_pattern.py
"""

import numpy as np

from repro.cluster import Cluster, ClusterConfig
from repro.core import KhuzdulEngine
from repro.graph import dataset
from repro.patterns import Pattern, house
from repro.patterns.schedule import automine_schedule, graphpi_schedule


def inspect_schedule(schedule) -> None:
    print(f"  matching order: {schedule.order}")
    print(f"  restrictions (a<b on pattern vertices): {schedule.restrictions}")
    for step in schedule.steps:
        reuse = (
            f", reuses level {step.reuse_level}'s intersection"
            if step.reuse_level is not None
            else ""
        )
        print(
            f"  level {step.level}: intersect N(pos {list(step.connected)})"
            f"{reuse}; active afterwards: {list(step.active_after)}"
        )


def main() -> None:
    graph = dataset("mico", scale=0.5, labeled=True)
    cluster = Cluster(graph, ClusterConfig(num_machines=4))
    engine = KhuzdulEngine(cluster)

    print("-- the 'house' pattern (5 vertices, 6 edges) --")
    schedule = graphpi_schedule(house())
    inspect_schedule(schedule)

    # a UDF that samples the first few matched embeddings
    samples: list[tuple[int, ...]] = []

    def sample_udf(prefix: tuple[int, ...], candidates: np.ndarray) -> None:
        if len(samples) < 5:
            for v in candidates[: 5 - len(samples)]:
                samples.append(prefix + (int(v),))

    report = engine.run(schedule, udf=sample_udf, app="house")
    print(f"\n  {report.counts} house embeddings found "
          f"({report.simulated_seconds * 1e3:.2f}ms simulated)")
    for embedding in samples:
        print(f"  sample embedding: {embedding}")

    print("\n-- a custom labeled pattern --")
    # a triangle whose three vertices carry labels 0, 0, 1
    labeled = Pattern(3, [(0, 1), (0, 2), (1, 2)], labels=(0, 0, 1))
    schedule = automine_schedule(labeled)
    inspect_schedule(schedule)
    report = engine.run(schedule, app="labeled-triangle")
    print(f"\n  {report.counts} labeled triangles "
          f"(root label filter: {schedule.root_label()})")


if __name__ == "__main__":
    main()
