"""Per-vertex analytics through UDFs: local clustering coefficients.

GPM applications often need more than a global count. This example
computes each vertex's triangle participation — and from it the local
clustering coefficient — by attaching a user-defined function to the
engine's match callback, exactly how the paper's applications consume
embeddings ("the EXTEND function will ... call the user-defined
function (UDF) to pass the identified embedding to the GPM
application").

Run:  python examples/local_clustering.py
"""

import numpy as np

from repro.cluster import Cluster, ClusterConfig
from repro.core import KhuzdulEngine
from repro.graph import dataset
from repro.patterns import clique
from repro.patterns.schedule import automine_schedule


def main() -> None:
    graph = dataset("mico", scale=0.5)
    print(f"input graph: {graph}\n")
    cluster = Cluster(graph, ClusterConfig(num_machines=4))
    engine = KhuzdulEngine(cluster)

    per_vertex = np.zeros(graph.num_vertices, dtype=np.int64)

    def count_per_vertex(prefix: tuple[int, ...], candidates: np.ndarray):
        # every match (v0, v1, c) is one triangle for each participant
        for v in prefix:
            per_vertex[v] += len(candidates)
        np.add.at(per_vertex, candidates, 1)

    report = engine.run(
        automine_schedule(clique(3)), udf=count_per_vertex, app="local-TC"
    )
    # each triangle has three corners
    assert per_vertex.sum() == 3 * report.counts

    degrees = graph.degrees()
    with np.errstate(divide="ignore", invalid="ignore"):
        wedge_counts = degrees * (degrees - 1) / 2
        coefficients = np.where(
            wedge_counts > 0, per_vertex / wedge_counts, 0.0
        )

    print(f"{report.counts} triangles "
          f"({report.simulated_seconds * 1e3:.2f}ms simulated)")
    print(f"average clustering coefficient: {coefficients.mean():.4f}")
    top = np.argsort(-per_vertex)[:5]
    print("\nmost clustered vertices:")
    for v in top:
        print(
            f"  vertex {int(v):>4}: degree={int(degrees[v]):>3} "
            f"triangles={int(per_vertex[v]):>5} "
            f"coefficient={coefficients[v]:.3f}"
        )


if __name__ == "__main__":
    main()
