"""Tuning study: how Khuzdul's knobs move traffic and runtime.

A miniature version of the paper's Section 7.3/7.6 analyses on one
workload (4-clique counting on a LiveJournal-like graph): toggles
vertical computation sharing, horizontal data sharing, the static
cache (and its replacement-policy alternatives), and NUMA awareness,
and prints the effect of each.

Run:  python examples/tuning_study.py
"""

from repro.cluster import ClusterConfig
from repro.core import EngineConfig
from repro.core.cache import CachePolicy
from repro.graph import dataset
from repro.systems import KGraphPi, clique_count

GRAPH = "livejournal"
CHUNK = 16 << 10  # small chunks so cross-chunk cache effects are visible


def run(engine_config: EngineConfig, machines: int = 8):
    graph = dataset(GRAPH, scale=0.5)
    system = KGraphPi(
        graph,
        ClusterConfig(num_machines=machines, sockets_per_machine=2),
        engine_config,
        graph_name=GRAPH,
    )
    return clique_count(system, 4)


def show(label: str, report, baseline=None) -> None:
    line = (
        f"{label:<28} time={report.simulated_seconds * 1e3:8.3f}ms "
        f"traffic={report.network_bytes / 1024:9.1f}KB"
    )
    if baseline is not None:
        line += (
            f"  ({baseline.simulated_seconds / report.simulated_seconds:.2f}x"
            f" vs baseline)"
        )
    print(line)


def main() -> None:
    baseline = run(EngineConfig(chunk_bytes=CHUNK))
    show("all optimizations on", baseline)
    assert baseline.counts is not None

    for label, config in [
        ("no vertical comp. sharing", EngineConfig(chunk_bytes=CHUNK, vcs=False)),
        ("no horizontal sharing", EngineConfig(chunk_bytes=CHUNK, hds=False)),
        ("no static cache", EngineConfig(chunk_bytes=CHUNK, cache_fraction=0.0)),
        ("LRU cache instead", EngineConfig(chunk_bytes=CHUNK,
                                           cache_policy=CachePolicy.LRU)),
        ("NUMA-oblivious", EngineConfig(chunk_bytes=CHUNK, numa_aware=False)),
        ("tiny chunks (2KB)", EngineConfig(chunk_bytes=2048)),
    ]:
        report = run(config)
        assert report.counts == baseline.counts, "ablations must not change counts"
        show(label, report, baseline)

    print("\n-- node scaling (same workload) --")
    for machines in (1, 2, 4, 8):
        report = run(EngineConfig(chunk_bytes=CHUNK), machines=machines)
        show(f"{machines} node(s)", report)


if __name__ == "__main__":
    main()
