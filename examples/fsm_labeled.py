"""Frequent subgraph mining on a labeled graph (paper Section 7.2).

Mines all labeled patterns with at most three edges whose MNI support
clears a threshold — the Table 4 workload — on a labeled MiCo-like
graph, distributed over 8 simulated nodes. Cross-checks the result
against the pattern-oblivious Fractal-like baseline, which reaches the
same answer by enumerating every subgraph and classifying it.

Run:  python examples/fsm_labeled.py
"""

from repro.baselines import FractalLike
from repro.cluster import ClusterConfig
from repro.graph import dataset
from repro.patterns.canonical import canonical_code
from repro.systems import KAutomine, run_fsm

THRESHOLD = 32


def describe(pattern) -> str:
    labels = ",".join(str(l) for l in (pattern.labels or ()))
    return (
        f"{pattern.num_vertices} vertices / {pattern.num_edges} edges, "
        f"labels [{labels}]"
    )


def main() -> None:
    graph = dataset("mico", scale=0.4, labeled=True)
    print(f"input graph: {graph} "
          f"({len(set(int(x) for x in graph.labels))} label classes)\n")

    system = KAutomine(
        graph, ClusterConfig(num_machines=8), graph_name="mico-analogue"
    )
    result = run_fsm(system, threshold=THRESHOLD)
    print(
        f"FSM(threshold={THRESHOLD}): {len(result.frequent)} frequent "
        f"patterns in {result.rounds} growth rounds "
        f"({result.candidates_evaluated} candidates evaluated, "
        f"{result.report.simulated_seconds * 1e3:.2f}ms simulated)\n"
    )
    top = sorted(result.frequent, key=lambda ps: -ps[1])[:10]
    for pattern, support in top:
        print(f"  support={support:>4}  {describe(pattern)}")

    # cross-check with the pattern-oblivious baseline
    oblivious = FractalLike(graph).all_frequent(THRESHOLD)
    aware = {(canonical_code(p), s) for p, s in result.frequent}
    assert aware == {(canonical_code(p), s) for p, s in oblivious}
    print("\ncross-checked against the pattern-oblivious Fractal baseline")


if __name__ == "__main__":
    main()
