"""Motif census: the network-analysis workload from the paper's intro.

Counts every 3-vertex and 4-vertex motif (vertex-induced) on a
Twitter-like graph — the kind of census used for network fingerprinting
and attack detection. Runs both client systems (k-Automine and
k-GraphPi) to show that their different matching-order compilers yield
identical counts with different schedules.

Run:  python examples/motif_census.py
"""

from repro.cluster import ClusterConfig
from repro.graph import dataset
from repro.patterns import motifs
from repro.patterns.canonical import canonical_code
from repro.systems import KAutomine, KGraphPi, motif_count

MOTIF_NAMES_3 = {
    2: "wedge (path)",
    3: "triangle",
}
MOTIF_NAMES_4 = {
    3: "tree",
    4: "cycle-ish",
    5: "diamond",
    6: "4-clique",
}


def main() -> None:
    graph = dataset("friendster", scale=0.2)
    print(f"input graph: {graph}\n")
    cluster = ClusterConfig(num_machines=8)
    automine = KAutomine(graph, cluster, graph_name="fr-analogue")
    graphpi = KGraphPi(graph, cluster, graph_name="fr-analogue")

    for k in (3, 4):
        print(f"-- size-{k} motif census --")
        report_a = motif_count(automine, k)
        report_g = motif_count(graphpi, k)
        assert report_a.counts == report_g.counts, "systems disagree!"
        for pattern in motifs(k):
            code = canonical_code(pattern)
            count = report_a.counts[code]
            shape = f"{pattern.num_vertices}v/{pattern.num_edges}e"
            print(f"  motif {shape:7} count={count:>10}")
        total = sum(report_a.counts.values())
        print(f"  total connected {k}-vertex subgraphs: {total}")
        print(
            f"  k-automine {report_a.simulated_seconds * 1e3:.2f}ms vs "
            f"k-graphpi {report_g.simulated_seconds * 1e3:.2f}ms "
            f"(simulated)\n"
        )


if __name__ == "__main__":
    main()
