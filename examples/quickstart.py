"""Quickstart: distributed triangle and clique counting with Khuzdul.

Builds a scaled LiveJournal-like graph, spins up a simulated 8-node
cluster, runs k-Automine (Automine ported onto the Khuzdul engine), and
validates the counts against an independent brute-force reference.

Run:  python examples/quickstart.py
"""

from repro.analysis import count_embeddings_brute_force
from repro.cluster import ClusterConfig
from repro.graph import dataset
from repro.patterns import clique
from repro.systems import KAutomine, clique_count, triangle_count


def main() -> None:
    # a power-law analogue of LiveJournal, small enough to verify
    graph = dataset("livejournal", scale=0.25)
    print(f"input graph: {graph}")

    # the paper's main testbed: 8 nodes, two 8-core sockets each
    cluster = ClusterConfig(num_machines=8, cores_per_machine=16,
                            sockets_per_machine=2)
    system = KAutomine(graph, cluster, graph_name="lj-analogue")

    print("\n-- triangle counting (TC) --")
    report = triangle_count(system)
    print(report.describe())
    expected = count_embeddings_brute_force(graph, clique(3))
    assert report.counts == expected, "engine disagrees with brute force!"
    print(f"verified against brute force: {expected} triangles")
    print(f"breakdown: "
          + ", ".join(f"{k}={v:.0%}"
                      for k, v in report.breakdown_fractions().items()))

    print("\n-- 4-clique counting (4-CC) --")
    report = clique_count(system, 4)
    print(report.describe())

    print("\n-- 4-CC with orientation preprocessing --")
    oriented = clique_count(system, 4, oriented=True)
    print(oriented.describe())
    assert oriented.counts == report.counts
    print(
        f"orientation cut traffic "
        f"{report.network_bytes / max(1, oriented.network_bytes):.1f}x"
    )


if __name__ == "__main__":
    main()
