"""Engine-wide observability: metrics registry + structured tracer.

``repro.obs`` is the instrumentation layer of the reproduction. Every
mechanism the paper measures — fetch resolution, HDS probes, cache
admissions, circulant batches, intersection work, per-phase simulated
time — emits through this package, attributed by machine (and, for
spans, by level/chunk/batch). The surface is documented in
``docs/metrics.md`` and closed: an enabled registry refuses metric
names missing from :mod:`repro.obs.names`.

The default everywhere is the shared no-op :data:`NULL_OBS`, whose
instruments are null singletons — instrumentation then costs one
no-op method call per event, keeping tier-1 behaviour and timings
identical to an uninstrumented build. Enable it per run:

    from repro.obs import Observability
    obs = Observability()
    system = KAutomine(graph, config, obs=obs)
    report = triangle_count(system)
    report.extra["obs"]["phase_seconds"]   # Fig 15 per-machine phases
    obs.registry.snapshot()                # every counter/histogram
    obs.tracer.export()                    # raw spans
"""

from __future__ import annotations

from typing import Any, Optional

from repro.obs import names
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsScope,
    NullRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    NULL_SCOPE,
    null_scope,
    scope_or_null,
)
from repro.obs.tracer import NullTracer, NULL_TRACER, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsScope",
    "NullRegistry",
    "NullTracer",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_OBS",
    "NULL_REGISTRY",
    "NULL_SCOPE",
    "NULL_TRACER",
    "Observability",
    "Span",
    "Tracer",
    "names",
    "null_scope",
    "scope_or_null",
]


class Observability:
    """Bundle of one run's registry and tracer.

    ``Observability()`` builds an enabled pair; :data:`NULL_OBS` is the
    shared disabled pair that every engine component defaults to.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()

    @property
    def enabled(self) -> bool:
        return self.registry.enabled or self.tracer.enabled

    def reset(self) -> None:
        """Clear both halves (the engine resets at the start of a run)."""
        self.registry.reset()
        self.tracer.reset()

    def summary(self) -> dict[str, Any]:
        """The ``RunReport.extra['obs']`` payload: trace aggregates."""
        summary = self.tracer.summary()
        summary["emitted_metrics"] = sorted(self.registry.emitted_names())
        return summary


#: The shared disabled observability bundle (the default everywhere).
NULL_OBS = Observability(NULL_REGISTRY, NULL_TRACER)
