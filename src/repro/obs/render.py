"""Rendering of the observability surface for the CLI.

``python -m repro <app> --metrics table`` prints
:func:`render_metrics_table` — the per-machine compute/communication/
cache breakdown (Figure 15's bars, one row per machine) followed by
the run's counter summary. ``--metrics json`` prints
:func:`render_metrics_json` — the full report, metric snapshot, and
trace summary as one JSON document (shape pinned by the golden-file
test ``tests/test_obs.py::test_metrics_json_golden_shape``).
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.core.runtime import RunReport, format_bytes, format_seconds

_PHASES = ("compute", "scheduler", "cache", "network", "serve")


def render_metrics_table(report: RunReport, obs: Optional[Any] = None) -> str:
    """Human-readable per-machine breakdown plus counter summary."""
    lines = []
    lines.append("per-machine breakdown (simulated seconds):")
    header = f"{'machine':>7}" + "".join(f"{p:>12}" for p in _PHASES) \
        + f"{'total':>12}"
    lines.append(header)
    for machine, buckets in enumerate(report.machine_breakdowns):
        total = sum(buckets.get(p, 0.0) for p in _PHASES if p != "serve")
        total = max(total, buckets.get("serve", 0.0))
        row = f"{machine:>7}" + "".join(
            f"{buckets.get(p, 0.0):>12.3e}" for p in _PHASES
        )
        lines.append(row + f"{total:>12.3e}")
    if not report.machine_breakdowns:
        lines.append("  (no per-machine data: system is not engine-based)")

    extra = report.extra or {}
    fetch = extra.get("fetch_sources")
    if fetch:
        lines.append(
            "fetch sources: "
            + "  ".join(f"{k}={v}" for k, v in fetch.items())
        )
    hds = extra.get("hds")
    if hds:
        lines.append(
            "hds: " + "  ".join(f"{k}={v}" for k, v in hds.items())
        )
    lines.append(
        f"cache: hit-rate={report.cache_hit_rate:.1%}  "
        f"entries={report.cache_entries}"
    )
    lines.append(
        f"network: traffic={format_bytes(report.network_bytes)}  "
        f"requests={extra.get('requests', 0)}  "
        f"peak-util={report.network_utilization:.1%}"
    )
    lines.append(
        f"simulated runtime: {format_seconds(report.simulated_seconds)} "
        f"across {report.num_machines} machine(s)"
    )

    obs_summary = extra.get("obs")
    if obs_summary:
        lines.append(
            f"trace: {obs_summary['num_spans']} spans "
            f"({obs_summary.get('dropped_spans', 0)} dropped) — "
            + "  ".join(
                f"{name}={count}"
                for name, count in obs_summary["spans_by_name"].items()
            )
        )
    if obs is not None and getattr(obs.registry, "enabled", False):
        snapshot = obs.registry.snapshot()
        lines.append("counters (summed over machines):")
        for name, series in snapshot["counters"].items():
            total = sum(series.values())
            if isinstance(total, float):
                lines.append(f"  {name:<28}{total:.6g}")
            else:
                lines.append(f"  {name:<28}{total}")
    return "\n".join(lines)


def render_metrics_json(report: RunReport, obs: Optional[Any] = None) -> str:
    """One JSON document: report + metric snapshot + trace summary."""
    document: dict[str, Any] = {"report": report.to_dict()}
    if obs is not None and getattr(obs, "enabled", False):
        document["metrics"] = obs.registry.snapshot()
        document["trace"] = obs.tracer.summary()
    return json.dumps(document, indent=2, sort_keys=True, default=str)
