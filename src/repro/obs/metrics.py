"""Metrics registry: counters, gauges, and histograms with a no-op mode.

Two design constraints shape this module:

1. **Zero cost when disabled.** Every component of the engine is
   instrumented unconditionally, so the disabled path must be free
   enough to leave tier-1 timings untouched. Components *pre-bind*
   their instruments once at construction time; in no-op mode the
   bound objects are shared null singletons whose methods do nothing,
   so the per-event cost is one attribute load and an empty call —
   there is no label hashing, no dict lookup, no branching in the hot
   loops.
2. **A closed, documented surface.** An enabled registry only accepts
   names listed in :data:`repro.obs.names.SPECS`; creating anything
   else raises. Together with the docs-contract test this guarantees
   every metric the engine can emit is documented in
   ``docs/metrics.md``.

Instruments are keyed by ``(name, labels)`` where labels is a sorted
tuple of ``(key, value)`` pairs — the usual dimensional-metrics model
(machine id, component, ...). :meth:`MetricsRegistry.scope` returns a
view with labels pre-applied so call sites stay terse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.obs.names import SPECS

LabelKey = tuple[tuple[str, Any], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


# ---------------------------------------------------------------------
# instruments
# ---------------------------------------------------------------------
class Counter:
    """A monotonically increasing count of events (or units)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (e.g. resident cache bytes)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: int | float) -> None:
        self.value = value


class Histogram:
    """Streaming summary of observed values: count/sum/min/max.

    The simulation is deterministic, so the summary statistics are
    exact; full per-observation retention belongs to the tracer.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: int | float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge_summary(
        self, count: int, total: float, mn: float, mx: float
    ) -> None:
        """Fold another histogram's summary statistics into this one.

        Exact for count/total/min/max, which is all this histogram
        stores — used when merging worker-process registries
        (:meth:`MetricsRegistry.absorb`).
        """
        if not count:
            return
        self.count += count
        self.total += total
        if mn < self.min:
            self.min = mn
        if mx > self.max:
            self.max = mx

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:  # pragma: no cover
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: int | float) -> None:  # pragma: no cover
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: int | float) -> None:  # pragma: no cover
        pass

    def merge_summary(self, count, total, mn, mx) -> None:  # pragma: no cover
        pass


#: Shared no-op instruments handed out by the null registry. All
#: callers bind these once, so disabled instrumentation costs one
#: no-op call per event.
NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


# ---------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------
class MetricsRegistry:
    """Holds every instrument of one run, keyed by (name, labels)."""

    enabled: bool = True

    def __init__(self, strict: bool = True):
        #: reject names missing from the documented surface
        self.strict = strict
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}

    # -- creation ------------------------------------------------------
    def _check(self, name: str, kind: str) -> None:
        if not self.strict:
            return
        spec = SPECS.get(name)
        if spec is None:
            raise KeyError(
                f"metric {name!r} is not declared in repro.obs.names.SPECS; "
                "declare it there and document it in docs/metrics.md"
            )
        if spec.kind != kind:
            raise TypeError(
                f"metric {name!r} is declared as a {spec.kind}, "
                f"not a {kind}"
            )

    def counter(self, name: str, **labels: Any) -> Counter:
        self._check(name, "counter")
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        self._check(name, "gauge")
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str, **labels: Any) -> Histogram:
        self._check(name, "histogram")
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram()
        return instrument

    def scope(self, **labels: Any) -> "MetricsScope":
        """A registry view with ``labels`` pre-applied to every name."""
        return MetricsScope(self, labels)

    # -- reading -------------------------------------------------------
    def counter_value(self, name: str, **labels: Any) -> int | float:
        """Current value of one counter series (0 if never emitted)."""
        instrument = self._counters.get((name, _label_key(labels)))
        return instrument.value if instrument is not None else 0

    def total(self, name: str) -> int | float:
        """Sum of a counter across all label series."""
        return sum(
            c.value for (n, _), c in self._counters.items() if n == name
        )

    def series(self, name: str) -> Iterator[tuple[LabelKey, Counter]]:
        for (n, labels), counter in self._counters.items():
            if n == name:
                yield labels, counter

    def emitted_names(self) -> set[str]:
        """Every metric name that has at least one series."""
        return (
            {n for n, _ in self._counters}
            | {n for n, _ in self._gauges}
            | {n for n, _ in self._histograms}
        )

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """JSON-friendly dump: ``{kind: {name: {labelstr: value}}}``.

        Label strings are ``key=value`` pairs joined by commas, with
        ``""`` for the unlabeled series, so the shape is stable across
        runs of the same configuration (the golden-file test relies on
        this).
        """

        def fmt(labels: LabelKey) -> str:
            return ",".join(f"{k}={v}" for k, v in labels)

        return {
            "counters": {
                name: {
                    fmt(labels): counter.value
                    for (n, labels), counter in sorted(
                        self._counters.items(), key=lambda kv: kv[0]
                    )
                    if n == name
                }
                for name in sorted({n for n, _ in self._counters})
            },
            "gauges": {
                name: {
                    fmt(labels): gauge.value
                    for (n, labels), gauge in sorted(
                        self._gauges.items(), key=lambda kv: kv[0]
                    )
                    if n == name
                }
                for name in sorted({n for n, _ in self._gauges})
            },
            "histograms": {
                name: {
                    fmt(labels): histogram.summary()
                    for (n, labels), histogram in sorted(
                        self._histograms.items(), key=lambda kv: kv[0]
                    )
                    if n == name
                }
                for name in sorted({n for n, _ in self._histograms})
            },
        }

    # -- cross-process merging (repro.exec) ----------------------------
    def dump(self) -> dict[str, list]:
        """Picklable snapshot of every series, for worker → parent
        shipping. The inverse is :meth:`absorb`."""
        return {
            "counters": [
                (name, labels, counter.value)
                for (name, labels), counter in self._counters.items()
            ],
            "gauges": [
                (name, labels, gauge.value)
                for (name, labels), gauge in self._gauges.items()
            ],
            "histograms": [
                (name, labels,
                 (hist.count, hist.total, hist.min, hist.max))
                for (name, labels), hist in self._histograms.items()
            ],
        }

    def absorb(self, dump: dict[str, list]) -> None:
        """Merge a worker registry dump (:meth:`dump`) into this one.

        Counters and gauges are *summed* — per-machine gauge series
        (e.g. ``cache.used_bytes{machine=N}``) have exactly one worker
        with a nonzero contribution (the machine's host), so summing
        reconstructs the inline value while staying order-independent.
        Histograms merge their exact count/total/min/max summaries.
        """
        for name, labels, value in dump["counters"]:
            self.counter(name, **dict(labels)).inc(value)
        for name, labels, value in dump["gauges"]:
            gauge = self.gauge(name, **dict(labels))
            gauge.set(gauge.value + value)
        for name, labels, summary in dump["histograms"]:
            self.histogram(name, **dict(labels)).merge_summary(*summary)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


class NullRegistry(MetricsRegistry):
    """Registry whose instruments do nothing (the default everywhere)."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(strict=False)

    def counter(self, name: str, **labels: Any) -> Counter:
        return NULL_COUNTER

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return NULL_GAUGE

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return NULL_HISTOGRAM


@dataclass
class MetricsScope:
    """A label-bound view of a registry (e.g. one machine's metrics)."""

    registry: MetricsRegistry
    labels: dict[str, Any] = field(default_factory=dict)

    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    def counter(self, name: str, **labels: Any) -> Counter:
        return self.registry.counter(name, **{**self.labels, **labels})

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self.registry.gauge(name, **{**self.labels, **labels})

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self.registry.histogram(name, **{**self.labels, **labels})

    def scope(self, **labels: Any) -> "MetricsScope":
        return MetricsScope(self.registry, {**self.labels, **labels})


#: The shared do-nothing registry; components default to scopes of it.
NULL_REGISTRY = NullRegistry()
#: A shared label-less scope of the null registry.
NULL_SCOPE = MetricsScope(NULL_REGISTRY)


def null_scope() -> MetricsScope:
    """The shared no-op scope (use as the default ``metrics=`` value)."""
    return NULL_SCOPE


def scope_or_null(metrics: Optional[MetricsScope]) -> MetricsScope:
    """Normalize an optional scope argument."""
    return metrics if metrics is not None else NULL_SCOPE
