"""Structured span tracer keyed by (machine, level, chunk, batch).

The scheduler emits one span per chunk (carrying that chunk's
compute/scheduler/cache/exposed-network seconds — the Figure 15
categories — plus overlap accounting) and one span per circulant
communication batch (payload bytes, request count, wire seconds —
Figure 19's raw material). Start times are simulated seconds on the
owning machine's clock, so spans order correctly within a machine.

Spans exist for *attribution*: aggregating a machine's chunk spans by
their time attributes reproduces its clock buckets exactly, which is
what lets ``fig15``/``fig19`` compute breakdowns from real trace data
instead of from the single pre-aggregated clock. The tracer keeps the
per-machine phase aggregation (:meth:`Tracer.phase_seconds`) exact
even when the raw span list is capped (``max_spans``), so memory stays
bounded on large runs without losing the breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

#: Span attribute keys that carry simulated seconds and feed the
#: per-machine phase aggregation (Figure 15 categories).
PHASE_ATTRS = ("compute", "scheduler", "cache", "network")


@dataclass
class Span:
    """One traced unit of engine work.

    ``level``/``chunk``/``batch`` are -1 when the dimension does not
    apply (e.g. an engine-startup span has no chunk).
    """

    name: str
    machine: int
    level: int = -1
    chunk: int = -1
    batch: int = -1
    #: simulated seconds on the machine clock when the span began
    start: float = 0.0
    #: measurements attached to the span (seconds, bytes, counts)
    attrs: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "machine": self.machine,
            "level": self.level,
            "chunk": self.chunk,
            "batch": self.batch,
            "start": self.start,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Collects spans and maintains exact per-machine phase totals."""

    enabled: bool = True

    def __init__(self, max_spans: int = 200_000):
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.dropped = 0
        #: machine -> phase -> simulated seconds (exact, never capped)
        self._phase: dict[int, dict[str, float]] = {}

    def record(self, span: Span) -> Span:
        """Record one finished span (aggregation happens here)."""
        phases = self._phase.get(span.machine)
        if phases is None:
            phases = self._phase[span.machine] = {
                key: 0.0 for key in PHASE_ATTRS
            }
        attrs = span.attrs
        for key in PHASE_ATTRS:
            value = attrs.get(key)
            if value:
                phases[key] += value
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.dropped += 1
        return span

    def absorb(self, spans: list[Span], dropped: int = 0) -> None:
        """Replay spans recorded by a worker-process tracer
        (``repro.exec``). Going through :meth:`record` keeps the exact
        per-machine phase aggregation; ``dropped`` carries over spans
        the worker's own cap already shed."""
        for span in spans:
            self.record(span)
        self.dropped += dropped

    # -- reading -------------------------------------------------------
    def phase_seconds(self) -> dict[int, dict[str, float]]:
        """Per-machine simulated seconds by Figure 15 phase."""
        return {
            machine: dict(phases)
            for machine, phases in sorted(self._phase.items())
        }

    def spans_named(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def machine_spans(self, machine: int) -> list[Span]:
        return [s for s in self.spans if s.machine == machine]

    def summary(self) -> dict[str, Any]:
        """Aggregate view used by ``RunReport.extra['obs']``."""
        by_name: dict[str, int] = {}
        for span in self.spans:
            by_name[span.name] = by_name.get(span.name, 0) + 1
        return {
            "num_spans": len(self.spans),
            "dropped_spans": self.dropped,
            "spans_by_name": dict(sorted(by_name.items())),
            "phase_seconds": {
                str(machine): phases
                for machine, phases in self.phase_seconds().items()
            },
        }

    def export(self) -> list[dict[str, Any]]:
        """Full span dump (JSON-friendly), in record order."""
        return [span.as_dict() for span in self.spans]

    def reset(self) -> None:
        self.spans.clear()
        self.dropped = 0
        self._phase.clear()


class NullTracer(Tracer):
    """Tracer that drops everything (the default)."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(max_spans=0)

    def record(self, span: Span) -> Span:
        return span


#: Shared do-nothing tracer.
NULL_TRACER = NullTracer()


def tracer_or_null(tracer: Optional[Tracer]) -> Tracer:
    return tracer if tracer is not None else NULL_TRACER
