"""Canonical names of every metric the engine emits.

This module is the single source of truth for the observability
surface: a metric may only be created through a
:class:`~repro.obs.metrics.MetricsRegistry` if its name appears in
:data:`SPECS`, and ``docs/metrics.md`` must document every name listed
here (``make docs-check`` / ``tests/test_docs_contract.py`` enforce
both directions). Adding a metric therefore means adding a
:class:`MetricSpec` here *and* a row to the docs table — the test
suite fails otherwise.

Naming convention: ``<component>.<event>`` in snake_case, with the
component matching the module that emits it (``fetch``, ``hds``,
``cache``, ``net``, ``extend``, ``kernel``, ``chunk``, ``time``).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MetricSpec:
    """What one metric means: kind, unit, and the figure it feeds."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    unit: str
    figure: str  # the paper table/figure this metric reproduces
    description: str


# ---------------------------------------------------------------------
# fetch resolution (scheduler, Section 4.3 / Figure 19)
# ---------------------------------------------------------------------
FETCH_LOCAL = "fetch.local"
FETCH_REMOTE = "fetch.remote"
FETCH_CACHE = "fetch.cache"
FETCH_SHARED = "fetch.shared"

# ---------------------------------------------------------------------
# horizontal data sharing (Section 5.2 / Figure 12)
# ---------------------------------------------------------------------
HDS_PROBES = "hds.probes"
HDS_HITS = "hds.hits"
HDS_INSERTS = "hds.inserts"
HDS_DROPS = "hds.drops"
HDS_CHAIN_STEPS = "hds.chain_steps"

# ---------------------------------------------------------------------
# static cache (Section 5.3 / Figures 16-17, Table 6)
# ---------------------------------------------------------------------
CACHE_HITS = "cache.hits"
CACHE_MISSES = "cache.misses"
CACHE_INSERTS = "cache.inserts"
CACHE_EVICTIONS = "cache.evictions"
CACHE_USED_BYTES = "cache.used_bytes"

# ---------------------------------------------------------------------
# chunked exploration (Section 4.2 / Figure 18)
# ---------------------------------------------------------------------
CHUNKS_CREATED = "chunk.created"
CHUNK_ITEMS = "chunk.items"
CHUNK_OVERLAP = "chunk.overlap_hidden_seconds"

# ---------------------------------------------------------------------
# EXTEND kernel (Section 3.2 / Figure 11)
# ---------------------------------------------------------------------
EXTEND_CALLS = "extend.calls"
EXTEND_MERGE_ELEMENTS = "extend.merge_elements"
EXTEND_CANDIDATES = "extend.candidates"
MATCHES_EMITTED = "extend.matches_emitted"

# ---------------------------------------------------------------------
# batched EXTEND kernels (docs/performance.md) — batched path only;
# the scalar reference path never emits these
# ---------------------------------------------------------------------
KERNEL_BATCHES = "kernel.batches"
KERNEL_BATCHED_EMBEDDINGS = "kernel.batched_embeddings"
KERNEL_PROBE_ELEMENTS = "kernel.probe_elements"
KERNEL_COUNT_ONLY_BATCHES = "kernel.count_only_batches"
KERNEL_IEP_BATCHES = "kernel.iep.batches"
KERNEL_IEP_EMBEDDINGS = "kernel.iep.embeddings"
KERNEL_IEP_TERMS = "kernel.iep.terms"
KERNEL_IEP_PROBE_ELEMENTS = "kernel.iep.probe_elements"

# ---------------------------------------------------------------------
# network (Section 4.3 / Figure 19)
# ---------------------------------------------------------------------
NET_REQUESTS = "net.requests"
NET_PAYLOAD_BYTES = "net.payload_bytes"
NET_WIRE_BYTES = "net.wire_bytes"
NET_BATCHES = "net.batches"
NET_BATCH_BYTES = "net.batch_bytes"
NET_BATCH_REQUESTS = "net.batch_requests"
NET_RETRIES = "net.retries"
NET_RETRY_BACKOFF_SECONDS = "net.retry_backoff_seconds"

# ---------------------------------------------------------------------
# fault injection & recovery (docs/faults.md)
# ---------------------------------------------------------------------
FAULT_CRASHES = "fault.crashes"
FAULT_FETCH_FAILURES = "fault.fetch_failures"
FAULT_STRAGGLERS = "fault.stragglers"
RECOVERY_CHECKPOINTS = "recovery.checkpoints"
RECOVERY_REASSIGNED_ROOTS = "recovery.reassigned_roots"
RECOVERY_REASSIGNED_CHUNKS = "recovery.reassigned_chunks"
RECOVERY_INVALIDATED_ENTRIES = "recovery.invalidated_entries"
RECOVERY_REDISTRIBUTED_MACHINES = "recovery.redistributed_machines"

# ---------------------------------------------------------------------
# durable checkpoints (docs/faults.md, "Durability")
# ---------------------------------------------------------------------
CHECKPOINT_RECORDS = "checkpoint.records"
CHECKPOINT_FLUSHES = "checkpoint.flushes"
CHECKPOINT_RESUMED_ROOTS = "checkpoint.resumed_roots"

# ---------------------------------------------------------------------
# execution backends (docs/execution.md) — wall-clock, not simulated
# ---------------------------------------------------------------------
EXEC_WORKERS = "exec.workers"
EXEC_WALL_SECONDS = "exec.wall_seconds"
EXEC_WORKER_BUSY_SECONDS = "exec.worker_busy_seconds"
EXEC_WORKER_WAIT_SECONDS = "exec.worker_wait_seconds"
EXEC_MESSAGES = "exec.messages"
EXEC_BYTES_SHIPPED = "exec.bytes_shipped"
EXEC_QUEUE_DEPTH = "exec.queue_depth"
EXEC_HEARTBEAT_CHECKS = "exec.heartbeat.checks"
EXEC_HEARTBEAT_INTERVAL = "exec.heartbeat.interval_seconds"
EXEC_WORKER_DEATHS = "exec.worker_deaths"
NET_PEER_TIMEOUTS = "net.peer_timeouts"
EXEC_RING_CAPACITY = "exec.ring.capacity_bytes"
EXEC_RING_OCCUPANCY = "exec.ring.occupancy_bytes"
EXEC_RING_FALLBACKS = "exec.ring.fallbacks"
EXEC_LOCAL_FAST_REQUESTS = "exec.local_fast_requests"
EXEC_ADAPTIVE_CHUNK_BYTES = "exec.adaptive_chunk_bytes"
NET_COALESCED_REQUESTS = "net.coalesced_requests"
NET_COALESCED_BATCH_VERTICES = "net.coalesced_batch_vertices"

# ---------------------------------------------------------------------
# mining service (docs/service.md) — server-lifetime registry only;
# wall-clock, not simulated
# ---------------------------------------------------------------------
SERVICE_QUERIES = "service.queries"
SERVICE_REJECTED = "service.rejected"
SERVICE_FAILED = "service.failed"
SERVICE_LATENCY_SECONDS = "service.latency_seconds"
SERVICE_QUEUE_WAIT_SECONDS = "service.queue_wait_seconds"
SERVICE_ACTIVE_QUERIES = "service.active_queries"
SERVICE_ADMITTED_BYTES = "service.admitted_bytes"
SERVICE_WORKERS = "service.workers"
SERVICE_WORKER_DEATHS = "service.worker_deaths"

# ---------------------------------------------------------------------
# graph storage (docs/storage.md) — emitted only for mmap-backed runs
# ---------------------------------------------------------------------
STORAGE_MAPPED_BYTES = "storage.mapped_bytes"
STORAGE_SPILL_RUNS = "storage.spill_runs"
STORAGE_MERGE_BATCHES = "storage.merge_batches"
STORAGE_PAGE_MISS_GATHERS = "storage.page_miss_gathers"

# ---------------------------------------------------------------------
# simulated-time attribution (Figure 15 categories)
# ---------------------------------------------------------------------
TIME_COMPUTE = "time.compute_seconds"
TIME_SCHEDULER = "time.scheduler_seconds"
TIME_CACHE = "time.cache_seconds"
TIME_NETWORK = "time.network_seconds"
TIME_SERVE = "time.serve_seconds"


def _spec(name, kind, unit, figure, description) -> tuple[str, MetricSpec]:
    return name, MetricSpec(name, kind, unit, figure, description)


#: Every metric the engine may emit, keyed by name. The registry
#: rejects names missing from this table, and the docs-contract test
#: requires each name to appear in docs/metrics.md.
SPECS: dict[str, MetricSpec] = dict(
    [
        _spec(FETCH_LOCAL, "counter", "edge lists", "Fig 19",
              "active edge lists satisfied by the local partition"),
        _spec(FETCH_REMOTE, "counter", "edge lists", "Fig 19",
              "edge lists fetched over the network"),
        _spec(FETCH_CACHE, "counter", "edge lists", "Table 6",
              "edge lists served by the static cache"),
        _spec(FETCH_SHARED, "counter", "edge lists", "Fig 12",
              "edge lists shared through the HDS table"),
        _spec(HDS_PROBES, "counter", "probes", "Fig 12",
              "probes of the per-chunk horizontal-share table"),
        _spec(HDS_HITS, "counter", "probes", "Fig 12",
              "HDS probes that found the same vertex (fetch deduped)"),
        _spec(HDS_INSERTS, "counter", "probes", "Fig 12",
              "HDS probes that claimed an empty slot"),
        _spec(HDS_DROPS, "counter", "probes", "Fig 12",
              "HDS probes dropped on collision (fetched anyway)"),
        _spec(HDS_CHAIN_STEPS, "counter", "key comparisons", "Ablation A",
              "chain-walk steps of the chained HDS variant"),
        _spec(CACHE_HITS, "counter", "queries", "Fig 17",
              "static/replacement cache queries that hit"),
        _spec(CACHE_MISSES, "counter", "queries", "Fig 17",
              "cache queries that missed"),
        _spec(CACHE_INSERTS, "counter", "edge lists", "Table 6",
              "edge lists admitted into the cache"),
        _spec(CACHE_EVICTIONS, "counter", "edge lists", "Fig 16",
              "evictions performed by replacement policies"),
        _spec(CACHE_USED_BYTES, "gauge", "bytes", "Fig 17",
              "bytes resident in the cache after the run"),
        _spec(CHUNKS_CREATED, "counter", "chunks", "Fig 18",
              "chunks allocated across all levels"),
        _spec(CHUNK_ITEMS, "histogram", "embeddings", "Fig 18",
              "extendable embeddings per resolved chunk"),
        _spec(CHUNK_OVERLAP, "histogram", "seconds", "Ablation B",
              "communication hidden behind computation per chunk"),
        _spec(EXTEND_CALLS, "counter", "calls", "Fig 15",
              "invocations of the EXTEND kernel"),
        _spec(EXTEND_MERGE_ELEMENTS, "counter", "elements", "Fig 11",
              "elements streamed through set intersections/differences"),
        _spec(EXTEND_CANDIDATES, "counter", "vertices", "Fig 11",
              "candidate vertices surviving all EXTEND filters"),
        _spec(MATCHES_EMITTED, "counter", "embeddings", "Tables 2-5",
              "completed embeddings handed to the UDF"),
        _spec(KERNEL_BATCHES, "counter", "chunks",
              "docs/performance.md",
              "chunks extended through the vectorized kernel path"),
        _spec(KERNEL_BATCHED_EMBEDDINGS, "counter", "embeddings",
              "docs/performance.md",
              "embeddings extended inside batched kernel calls"),
        _spec(KERNEL_PROBE_ELEMENTS, "counter", "elements",
              "docs/performance.md",
              "candidate elements pushed through bulk adjacency probes"),
        _spec(KERNEL_COUNT_ONLY_BATCHES, "counter", "chunks",
              "docs/performance.md",
              "final-level batches that took the count-only fast path"),
        _spec(KERNEL_IEP_BATCHES, "counter", "chunks",
              "docs/performance.md",
              "prefix chunks evaluated by the IEP terminal kernel"),
        _spec(KERNEL_IEP_EMBEDDINGS, "counter", "embeddings",
              "docs/performance.md",
              "prefix embeddings counted via inclusion-exclusion"),
        _spec(KERNEL_IEP_TERMS, "counter", "terms",
              "docs/performance.md",
              "IEP formula terms evaluated across batched embeddings"),
        _spec(KERNEL_IEP_PROBE_ELEMENTS, "counter", "elements",
              "docs/performance.md",
              "elements pushed through bulk adjacency probes while "
              "intersecting IEP signature sets"),
        _spec(NET_REQUESTS, "counter", "requests", "Fig 19",
              "edge-list fetch requests that crossed machines"),
        _spec(NET_PAYLOAD_BYTES, "counter", "bytes", "Fig 19",
              "payload bytes returned by remote fetches"),
        _spec(NET_WIRE_BYTES, "counter", "bytes", "Fig 19",
              "payload plus request-header bytes on the wire"),
        _spec(NET_BATCHES, "counter", "batches", "Fig 19",
              "circulant communication batches priced"),
        _spec(NET_BATCH_BYTES, "histogram", "bytes", "Fig 19",
              "wire bytes per communication batch"),
        _spec(NET_BATCH_REQUESTS, "histogram", "requests", "Fig 19",
              "fetch requests per communication batch"),
        _spec(NET_RETRIES, "counter", "requests", "docs/faults.md",
              "fetch attempts repeated after an injected transient failure"),
        _spec(NET_RETRY_BACKOFF_SECONDS, "counter", "seconds",
              "docs/faults.md",
              "simulated seconds spent in retry exponential backoff"),
        _spec(FAULT_CRASHES, "counter", "crashes", "docs/faults.md",
              "machine-crash triggers fired by the fault injector"),
        _spec(FAULT_FETCH_FAILURES, "counter", "failures", "docs/faults.md",
              "transient remote-fetch failures injected"),
        _spec(FAULT_STRAGGLERS, "counter", "machines", "docs/faults.md",
              "machines degraded by a straggler fault"),
        _spec(RECOVERY_CHECKPOINTS, "counter", "checkpoints",
              "docs/faults.md",
              "root-chunk-boundary checkpoints taken by schedulers"),
        _spec(RECOVERY_REASSIGNED_ROOTS, "counter", "roots",
              "docs/faults.md",
              "orphaned root vertices reassigned to surviving machines"),
        _spec(RECOVERY_REASSIGNED_CHUNKS, "counter", "chunks",
              "docs/faults.md",
              "chunks created by survivors while replaying reassigned work"),
        _spec(RECOVERY_INVALIDATED_ENTRIES, "counter", "edge lists",
              "docs/faults.md",
              "cache/HDS entries invalidated after a machine loss"),
        _spec(RECOVERY_REDISTRIBUTED_MACHINES, "counter", "machines",
              "docs/execution.md",
              "lost workers' hosted machines redistributed across "
              "surviving worker processes"),
        _spec(CHECKPOINT_RECORDS, "counter", "chunks",
              "docs/faults.md",
              "completed-root-chunk records appended to the durable "
              "checkpoint log"),
        _spec(CHECKPOINT_FLUSHES, "counter", "flushes",
              "docs/faults.md",
              "durable checkpoint flushes (log fsync + aggregates "
              "snapshot rewrite)"),
        _spec(CHECKPOINT_RESUMED_ROOTS, "counter", "roots",
              "docs/faults.md",
              "root vertices skipped by a resumed run because the "
              "checkpoint log already covered them"),
        _spec(EXEC_WORKERS, "gauge", "processes", "docs/execution.md",
              "worker processes spawned by the process backend"),
        _spec(EXEC_WALL_SECONDS, "gauge", "seconds", "docs/execution.md",
              "wall-clock duration of the whole backend execution"),
        _spec(EXEC_WORKER_BUSY_SECONDS, "counter", "seconds",
              "docs/execution.md",
              "wall-clock seconds a worker spent computing (per worker)"),
        _spec(EXEC_WORKER_WAIT_SECONDS, "counter", "seconds",
              "docs/execution.md",
              "wall-clock seconds a worker blocked awaiting fetch replies"),
        _spec(EXEC_MESSAGES, "counter", "messages", "docs/execution.md",
              "fetch requests plus replies moved over worker queues"),
        _spec(EXEC_BYTES_SHIPPED, "counter", "bytes", "docs/execution.md",
              "edge-list payload bytes shipped between worker processes"),
        _spec(EXEC_QUEUE_DEPTH, "histogram", "messages",
              "docs/execution.md",
              "request-inbox depth sampled at each served fetch"),
        _spec(EXEC_HEARTBEAT_CHECKS, "counter", "sweeps",
              "docs/execution.md",
              "liveness sweeps the parent ran over worker sentinels"),
        _spec(EXEC_HEARTBEAT_INTERVAL, "gauge", "seconds",
              "docs/execution.md",
              "configured parent liveness-check interval"),
        _spec(EXEC_WORKER_DEATHS, "counter", "processes",
              "docs/execution.md",
              "worker processes that died before finishing their job"),
        _spec(NET_PEER_TIMEOUTS, "counter", "timeouts",
              "docs/execution.md",
              "bounded transport waits that expired and re-checked "
              "peer liveness before a reply arrived"),
        _spec(EXEC_RING_CAPACITY, "gauge", "bytes",
              "docs/execution.md",
              "configured data capacity of each per-pair reply ring"),
        _spec(EXEC_RING_OCCUPANCY, "histogram", "bytes",
              "docs/execution.md",
              "ring bytes in flight sampled after each published frame"),
        _spec(EXEC_RING_FALLBACKS, "counter", "replies",
              "docs/execution.md",
              "oversized reply payloads routed over the pickled "
              "fallback queue instead of their ring"),
        _spec(EXEC_LOCAL_FAST_REQUESTS, "counter", "requests",
              "docs/execution.md",
              "fetch batches served synchronously from the shared "
              "graph because the server machine was hosted locally"),
        _spec(EXEC_ADAPTIVE_CHUNK_BYTES, "gauge", "bytes",
              "docs/execution.md",
              "final adaptive reply-size budget per worker (per-worker "
              "label; tuned from measured chunk wall-clock)"),
        _spec(NET_COALESCED_REQUESTS, "counter", "requests",
              "docs/execution.md",
              "coalesced per-server-worker fetch requests posted to "
              "worker inboxes"),
        _spec(NET_COALESCED_BATCH_VERTICES, "histogram", "vertices",
              "docs/execution.md",
              "vertices carried per coalesced fetch request"),
        _spec(SERVICE_QUERIES, "counter", "queries", "docs/service.md",
              "queries the mining service finished (any terminal "
              "outcome, REJECTED included)"),
        _spec(SERVICE_REJECTED, "counter", "queries", "docs/service.md",
              "queries the admission controller or shutdown drain "
              "declined to run"),
        _spec(SERVICE_FAILED, "counter", "queries", "docs/service.md",
              "queries that ran but ended with a fatal outcome "
              "(CRASHED/OUTOFMEM/TIMEOUT/DEGRADED)"),
        _spec(SERVICE_LATENCY_SECONDS, "histogram", "seconds",
              "docs/service.md",
              "wall-clock submit-to-report latency per query"),
        _spec(SERVICE_QUEUE_WAIT_SECONDS, "histogram", "seconds",
              "docs/service.md",
              "wall-clock seconds a query waited in the priority "
              "queue before dispatch"),
        _spec(SERVICE_ACTIVE_QUERIES, "gauge", "queries",
              "docs/service.md",
              "queries dispatched to a serving lane and not yet "
              "reported"),
        _spec(SERVICE_ADMITTED_BYTES, "gauge", "bytes",
              "docs/service.md",
              "estimated resident bytes of the in-flight queries the "
              "admission controller has admitted"),
        _spec(SERVICE_WORKERS, "gauge", "processes", "docs/service.md",
              "serving worker processes attached to the resident "
              "graph (0 = in-process serial lane)"),
        _spec(SERVICE_WORKER_DEATHS, "counter", "processes",
              "docs/service.md",
              "serving workers that died mid-query and were respawned "
              "(the query degrades to CRASHED, the server survives)"),
        _spec(STORAGE_MAPPED_BYTES, "gauge", "bytes", "docs/storage.md",
              "bytes of CSR arrays served from a read-only file "
              "mapping instead of resident memory"),
        _spec(STORAGE_SPILL_RUNS, "counter", "runs", "docs/storage.md",
              "sorted runs the streaming builder spilled while "
              "building the store backing this graph"),
        _spec(STORAGE_MERGE_BATCHES, "counter", "batches",
              "docs/storage.md",
              "bounded merge steps the builder's k-way merge took "
              "while writing the store backing this graph"),
        _spec(STORAGE_PAGE_MISS_GATHERS, "counter", "queries",
              "docs/storage.md",
              "edge-list gathers that bypassed the static cache and "
              "so priced a potential page fault on the mapping "
              "(cache misses while mmap-backed; compare cache.hits)"),
        _spec(TIME_COMPUTE, "counter", "seconds", "Fig 15",
              "simulated seconds charged to computation"),
        _spec(TIME_SCHEDULER, "counter", "seconds", "Fig 15",
              "simulated seconds charged to fine-grained scheduling"),
        _spec(TIME_CACHE, "counter", "seconds", "Fig 15",
              "simulated seconds charged to HDS/cache bookkeeping"),
        _spec(TIME_NETWORK, "counter", "seconds", "Fig 15",
              "simulated seconds of communication not hidden by overlap"),
        _spec(TIME_SERVE, "counter", "seconds", "Fig 19",
              "responder-side seconds serving remote fetches"),
    ]
)

#: Names of the Figure 15 phase buckets, in display order.
PHASE_METRICS: tuple[str, ...] = (
    TIME_COMPUTE, TIME_SCHEDULER, TIME_CACHE, TIME_NETWORK,
)
