"""G-thinker: distributed GPM with partitioned graph and coarse tasks.

Reimplements G-thinker's execution model (paper Sections 1-2.3): one
task per embedding-tree root; before computing, the task prefetches the
k-hop subgraph containing every edge list the tree may touch; a general
software cache shared by all tasks dedups those fetches, maintaining a
task<->data map updated on *every* request; a scheduler periodically
polls each task for data readiness; the cache is periodically scanned
for garbage-collectable entries. The map updates and polls are the
overhead the paper's Figure 15 shows devouring ~86% of G-thinker's
runtime, and the per-task k-hop memory footprint is what limits its
concurrency and crashes it on skewed graphs (Table 2's CRASHED cells).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

import numpy as np

from repro.baselines.common import ExploreStats, RecursiveExplorer
from repro.cluster.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.core.extend import ScheduleExtender
from repro.core.runtime import RunReport
from repro.errors import ConfigurationError, OutOfMemoryError
from repro.graph.graph import Graph
from repro.graph.partition import HashPartitioner, PartitionedGraph
from repro.patterns.isomorphism import automorphisms
from repro.patterns.pattern import Pattern
from repro.patterns.schedule import Schedule, automine_schedule
from repro.systems.base import GPMSystem, MniDomainCollector


class _GeneralCache:
    """G-thinker's general software cache: LRU with task<->data map.

    Every request — hit or miss — updates the map between tasks and the
    edge lists they depend on; that bookkeeping cost is the point.
    """

    def __init__(self, capacity_bytes: int, cost: CostModel):
        self.capacity_bytes = capacity_bytes
        self.cost = cost
        self._entries: OrderedDict[int, int] = OrderedDict()
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.map_cost = 0.0

    def request(self, vertex: int, num_bytes: int) -> bool:
        """Request one edge list for a task; returns cache hit."""
        self.map_cost += self.cost.gthinker_map_update
        if vertex in self._entries:
            self._entries.move_to_end(vertex)
            self.hits += 1
            return True
        self.misses += 1
        if num_bytes <= self.capacity_bytes:
            while self.used_bytes + num_bytes > self.capacity_bytes:
                _, evicted = self._entries.popitem(last=False)
                self.used_bytes -= evicted
            self._entries[vertex] = num_bytes
            self.used_bytes += num_bytes
        return False

    def __len__(self) -> int:
        return len(self._entries)


class GThinker(GPMSystem):
    """G-thinker execution model over the simulated cluster."""

    name = "g-thinker"

    def __init__(
        self,
        graph: Graph,
        num_machines: int = 8,
        cores: int = 8,
        memory_bytes: int = 64 << 20,
        cache_fraction: float = 0.35,
        cost: CostModel = DEFAULT_COST_MODEL,
        graph_name: str = "graph",
    ):
        self.graph = graph
        self.num_machines = num_machines
        self.cores = cores
        self.memory_bytes = memory_bytes
        self.cache_fraction = cache_fraction
        self.cost = cost
        self.graph_name = graph_name
        self.partitioner = HashPartitioner(num_machines)
        self.partitioned = PartitionedGraph(graph, self.partitioner)

    # ------------------------------------------------------------------
    def _run_schedule(
        self, schedule: Schedule, on_match=None
    ) -> tuple[int, float, dict[str, float], int]:
        """Run all machines; returns (matches, runtime, breakdown, bytes)."""
        graph = self.graph
        cost = self.cost
        # G-thinker has no intermediate-result reuse across levels.
        extender = ScheduleExtender(schedule, vcs=False)
        cache_capacity = int(self.cache_fraction * graph.size_bytes())

        matches = 0
        traffic_bytes = 0
        worst_runtime = 0.0
        worst_breakdown: dict[str, float] = {}
        for machine in range(self.num_machines):
            roots = self.partitioned.local_vertices(machine)
            root_label = schedule.root_label()
            if root_label is not None and graph.labels is not None:
                roots = roots[graph.labels[roots] == root_label]
            cache = _GeneralCache(cache_capacity, cost)

            # the task's prefetch set: every vertex whose edge list the
            # tree exploration reads ("a k-hop subgraph containing all
            # necessary data for the tree exploration")
            accessed: set[int] = set()

            def on_child(level: int, vertex: int, needs_fetch: bool) -> None:
                if needs_fetch:
                    accessed.add(vertex)

            explorer = RecursiveExplorer(
                graph, extender, on_child=on_child, on_match=on_match
            )
            partition_bytes = self.partitioned.partition_bytes(machine)
            task_budget = self.memory_bytes - partition_bytes - cache_capacity
            if task_budget <= 0:
                raise OutOfMemoryError(machine, partition_bytes + cache_capacity,
                                       self.memory_bytes)

            compute_serial = 0.0
            scheduler_serial = 0.0
            fetch_bytes = 0
            fetch_requests = 0
            ball_bytes_max = 0
            root_active = schedule.root_active()
            for root in roots:
                accessed.clear()
                if root_active:
                    accessed.add(int(root))
                stats = ExploreStats()
                explorer.explore_root(int(root), stats)
                matches += stats.matches
                ball_bytes = 0
                for v in accessed:
                    num_bytes = graph.edge_list_bytes(v)
                    ball_bytes += num_bytes
                    hit = cache.request(v, num_bytes)
                    if not hit and self.partitioned.owner(v) != machine:
                        fetch_bytes += num_bytes
                        fetch_requests += 1
                ball_bytes_max = max(ball_bytes_max, ball_bytes)
                # the per-task k-hop subgraph must fit alongside the
                # minimum task concurrency G-thinker needs to pipeline
                if ball_bytes * cost.gthinker_min_concurrency > task_budget:
                    raise OutOfMemoryError(
                        machine,
                        ball_bytes * cost.gthinker_min_concurrency,
                        task_budget,
                    )
                compute_serial += (
                    stats.compute_seconds(cost)
                    * cost.gthinker_compute_multiplier
                )
                scheduler_serial += (
                    cost.gthinker_poll_rounds * cost.gthinker_task_poll
                    + len(accessed) * cost.gthinker_readiness_check
                )

            concurrency = min(
                cost.gthinker_max_concurrency,
                max(1, int(task_budget / max(1, ball_bytes_max))),
            )
            # periodic cache GC: one full scan per scheduling round, with
            # rounds proportional to task waves (tasks / concurrency)
            gc_serial = (
                (len(roots) / max(1, concurrency))
                * cost.gthinker_poll_rounds
                * len(cache)
                * cost.gthinker_gc_per_entry
            )
            # communication wall time; overlap improves with concurrency
            network_time = (
                fetch_bytes / cost.network_bandwidth
                + fetch_requests * cost.batch_latency / 16  # batched requests
            )
            compute_threads = max(1, self.cores - 1)
            compute_time = compute_serial / (
                compute_threads * cost.thread_efficiency
            )
            overlap = min(1.0, concurrency / 128.0)
            hidden = min(network_time, compute_time) * overlap
            cache_time = cache.map_cost + gc_serial  # serialized on the map
            runtime = (
                compute_time + scheduler_serial + cache_time
                + network_time - hidden
            )
            traffic_bytes += fetch_bytes
            if runtime > worst_runtime:
                worst_runtime = runtime
                worst_breakdown = {
                    "compute": compute_time,
                    "scheduler": scheduler_serial,
                    "cache": cache_time,
                    "network": network_time - hidden,
                }
        return matches, worst_runtime, worst_breakdown, traffic_bytes

    def _report(
        self, app: str, counts, runtime: float, breakdown, traffic: int
    ) -> RunReport:
        return RunReport(
            system=self.name,
            app=app,
            graph_name=self.graph_name,
            counts=counts,
            simulated_seconds=runtime,
            network_bytes=traffic,
            breakdown=breakdown,
            machine_seconds=[],
            peak_memory_bytes=self.memory_bytes,
            num_machines=self.num_machines,
        )

    # ------------------------------------------------------------------
    def count_pattern(
        self,
        pattern: Pattern,
        induced: bool = False,
        oriented: bool = False,
        app: str = "pattern",
    ) -> RunReport:
        if oriented:
            raise ConfigurationError(
                "G-thinker has no orientation preprocessing"
            )
        schedule = automine_schedule(pattern, induced)
        matches, runtime, breakdown, traffic = self._run_schedule(schedule)
        return self._report(app, matches, runtime, breakdown, traffic)

    def count_patterns(
        self,
        patterns: Sequence[Pattern],
        induced: bool = True,
        app: str = "patterns",
    ) -> RunReport:
        counts = []
        runtime, traffic = 0.0, 0
        breakdown: dict[str, float] = {}
        for pattern in patterns:
            schedule = automine_schedule(pattern, induced)
            matches, seconds, machine_breakdown, fetched = self._run_schedule(
                schedule
            )
            counts.append(matches)
            runtime += seconds
            traffic += fetched
            for key, value in machine_breakdown.items():
                breakdown[key] = breakdown.get(key, 0.0) + value
        return self._report(app, counts, runtime, breakdown, traffic)

    def mni_supports(
        self, patterns: Sequence[Pattern]
    ) -> tuple[list[int], RunReport]:
        schedules = [automine_schedule(p, induced=False) for p in patterns]
        collector = MniDomainCollector(
            patterns,
            [s.order for s in schedules],
            [automorphisms(p) for p in patterns],
        )
        runtime, traffic = 0.0, 0
        for index, schedule in enumerate(schedules):
            def on_match(prefix, candidates, _index=index):
                collector(_index, prefix, candidates)

            _, seconds, _, fetched = self._run_schedule(schedule, on_match)
            runtime += seconds
            traffic += fetched
        report = self._report("fsm-round", None, runtime, {}, traffic)
        return collector.supports(), report
