"""GraphPi's distributed mode: replicated graph, coarse parallelism.

GraphPi distributes work by replicating the input graph on every node
and splitting the outermost enumeration loop across nodes and threads.
That avoids all communication but (paper Section 7.2) pays a
task-partitioning start-up cost and parallelizes only coarsely, so one
hub's embedding tree leaves its thread the straggler — both effects are
modelled here and produce Table 2's small-workload losses and Figure
13's sub-linear scaling. Replication also caps the graph size at one
machine's memory (Table 5: massive graphs "cannot be processed by graph
replication based systems").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.common import ExploreStats, RecursiveExplorer
from repro.cluster.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.core.extend import ScheduleExtender
from repro.core.runtime import RunReport
from repro.errors import ConfigurationError, OutOfMemoryError
from repro.graph.graph import Graph
from repro.graph.orientation import orient_by_degree
from repro.graph.partition import HashPartitioner
from repro.patterns.catalog import clique
from repro.patterns.isomorphism import are_isomorphic, automorphisms
from repro.patterns.pattern import Pattern
from repro.patterns.schedule import Schedule, graphpi_schedule
from repro.systems.base import GPMSystem, MniDomainCollector


class GraphPiReplicated(GPMSystem):
    """GraphPi running distributed with a replicated graph."""

    name = "graphpi"

    def __init__(
        self,
        graph: Graph,
        num_machines: int = 8,
        cores: int = 16,
        memory_bytes: int = 64 << 20,
        cost: CostModel = DEFAULT_COST_MODEL,
        graph_name: str = "graph",
    ):
        # every machine must hold the whole graph
        if graph.size_bytes() > memory_bytes:
            raise OutOfMemoryError(0, graph.size_bytes(), memory_bytes)
        self.graph = graph
        self.num_machines = num_machines
        self.cores = cores
        self.memory_bytes = memory_bytes
        self.cost = cost
        self.graph_name = graph_name
        self.partitioner = HashPartitioner(num_machines)
        self._oriented_graph: Graph | None = None

    # ------------------------------------------------------------------
    def _schedule(
        self, pattern: Pattern, induced: bool, use_restrictions: bool = True
    ) -> Schedule:
        avg_degree = max(
            1.0, self.graph.num_directed_edges / max(1, self.graph.num_vertices)
        )
        return graphpi_schedule(
            pattern,
            induced,
            avg_degree=avg_degree,
            num_vertices=max(2.0, float(self.graph.num_vertices)),
            use_restrictions=use_restrictions,
        )

    def _startup(self) -> float:
        return (
            self.cost.graphpi_startup
            + self.cost.graphpi_startup_per_node * self.num_machines
        )

    def _run_schedule(
        self, graph: Graph, schedule: Schedule, on_match=None
    ) -> tuple[int, float]:
        """Roots hashed to machines; level-1 subtrees binned to threads.

        GraphPi "parallelizes the first or first few loops ... in a
        coarse-grained fashion" (paper Section 7.2): the outermost loop
        is split across machines and the first two loop levels across a
        machine's threads, so whole level-1 subtrees are the indivisible
        work units — finer than one-tree-per-thread, still far coarser
        than Khuzdul's per-extension tasks.
        """
        from repro.core.extend import compute_candidates

        extender = ScheduleExtender(schedule, vcs=True)
        explorer = RecursiveExplorer(graph, extender, on_match=on_match)
        roots = np.arange(graph.num_vertices)
        root_label = schedule.root_label()
        if root_label is not None and graph.labels is not None:
            roots = roots[graph.labels[roots] == root_label]
        bins = np.zeros((self.num_machines, max(1, self.cores)))
        thread_cursor = np.zeros(self.num_machines, dtype=np.int64)
        matches = 0
        final_level = extender.final_level

        def bin_cost(machine: int, seconds: float) -> None:
            thread = thread_cursor[machine] % self.cores
            thread_cursor[machine] += 1
            bins[machine, thread] += seconds

        for root in roots:
            machine = self.partitioner.owner(int(root))
            if final_level == 0:  # single-vertex pattern
                matches += 1
                continue
            step = extender.step_for(1)
            first = compute_candidates(graph, step, (int(root),), None, True)
            first_cost = (
                first.merge_elements * self.cost.intersect_per_element
                + first.scanned * self.cost.emit_per_candidate
            )
            bin_cost(machine, first_cost)
            if final_level == 1:
                matches += len(first.candidates)
                if on_match is not None and len(first.candidates):
                    on_match((int(root),), first.candidates)
                continue
            for v1 in first.candidates:
                explorer._intermediates[1] = (
                    first.raw if extender.vcs else None
                )
                stats = ExploreStats()
                stats.created += 1
                explorer._descend((int(root), int(v1)), 2, stats, None)
                bin_cost(machine, stats.compute_seconds(self.cost))
                matches += stats.matches
        # static binning has no work stealing; threads also pay the same
        # parallel-efficiency loss the Khuzdul engine's workers do
        runtime = float(bins.max(axis=1).max()) / self.cost.thread_efficiency
        return matches, runtime

    def _report(self, app: str, counts, runtime: float) -> RunReport:
        return RunReport(
            system=self.name,
            app=app,
            graph_name=self.graph_name,
            counts=counts,
            simulated_seconds=runtime,
            network_bytes=0,  # replication: no enumeration-time traffic
            breakdown={"compute": runtime - self._startup(),
                       "scheduler": self._startup()},
            machine_seconds=[runtime] * self.num_machines,
            peak_memory_bytes=self.graph.size_bytes(),
            num_machines=self.num_machines,
        )

    # ------------------------------------------------------------------
    def count_pattern(
        self,
        pattern: Pattern,
        induced: bool = False,
        oriented: bool = False,
        app: str = "pattern",
    ) -> RunReport:
        if oriented:
            if induced or not are_isomorphic(pattern, clique(pattern.num_vertices)):
                raise ConfigurationError("orientation is for non-induced cliques")
            if self._oriented_graph is None:
                self._oriented_graph = orient_by_degree(self.graph)
            schedule = self._schedule(pattern, False, use_restrictions=False)
            matches, runtime = self._run_schedule(self._oriented_graph, schedule)
        else:
            schedule = self._schedule(pattern, induced)
            matches, runtime = self._run_schedule(self.graph, schedule)
        return self._report(app, matches, runtime + self._startup())

    def count_patterns(
        self,
        patterns: Sequence[Pattern],
        induced: bool = True,
        app: str = "patterns",
    ) -> RunReport:
        counts, runtime = [], 0.0
        for pattern in patterns:
            schedule = self._schedule(pattern, induced)
            matches, seconds = self._run_schedule(self.graph, schedule)
            counts.append(matches)
            runtime += seconds + self._startup()
        return self._report(app, counts, runtime)

    def mni_supports(
        self, patterns: Sequence[Pattern]
    ) -> tuple[list[int], RunReport]:
        schedules = [self._schedule(p, induced=False) for p in patterns]
        collector = MniDomainCollector(
            patterns,
            [s.order for s in schedules],
            [automorphisms(p) for p in patterns],
        )
        runtime = 0.0
        for index, schedule in enumerate(schedules):
            def on_match(prefix, candidates, _index=index):
                collector(_index, prefix, candidates)

            _, seconds = self._run_schedule(self.graph, schedule, on_match)
            runtime += seconds + self._startup()
        return collector.supports(), self._report("fsm-round", None, runtime)
