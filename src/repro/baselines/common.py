"""Shared recursive tree exploration for the baseline systems.

The baselines explore whole embedding trees per root (the coarse task
granularity of G-thinker, GraphPi, and the single-machine systems)
instead of Khuzdul's fine-grained chunked tasks. This module provides
that depth-first exploration on top of the same candidate kernel the
engine uses, with hooks for each baseline's cost accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.core.extend import ScheduleExtender
from repro.graph.graph import Graph

#: Hook called for every created child: (level, new_vertex, needs_fetch).
ChildHook = Callable[[int, int, bool], None]
#: State-threading hook for baselines that track per-path state (e.g.
#: the task's current machine in moving-computation systems):
#: (level, new_vertex, needs_fetch, prefix, parent_state) -> child_state.
ChildStateHook = Callable[[int, int, bool, tuple[int, ...], object], object]
#: Hook called for every completed embedding batch: (prefix, candidates).
MatchHook = Callable[[tuple[int, ...], np.ndarray], None]


@dataclass
class ExploreStats:
    """Work performed while exploring one (or more) embedding trees."""

    matches: int = 0
    merge_elements: int = 0
    scanned: int = 0
    created: int = 0
    #: number of embeddings alive per level at the widest point; used by
    #: BFS-materializing baselines (Pangolin) for memory estimates
    level_widths: dict[int, int] = field(default_factory=dict)

    def compute_seconds(self, cost) -> float:
        """Pure enumeration compute time under a cost model."""
        return (
            self.merge_elements * cost.intersect_per_element
            + self.scanned * cost.emit_per_candidate
            + self.created * cost.embedding_create
        )


class RecursiveExplorer:
    """Depth-first whole-tree exploration from a root vertex."""

    def __init__(
        self,
        graph: Graph,
        extender: ScheduleExtender,
        on_child: Optional[ChildHook] = None,
        on_match: Optional[MatchHook] = None,
        on_child_state: Optional[ChildStateHook] = None,
    ):
        self.graph = graph
        self.extender = extender
        self.on_child = on_child
        self.on_match = on_match
        self.on_child_state = on_child_state
        self._intermediates: list[Optional[np.ndarray]] = [None] * (
            extender.final_level + 1
        )

    def explore_root(
        self, root: int, stats: ExploreStats, state: object = None
    ) -> None:
        """Explore the entire embedding tree rooted at ``root``."""
        if self.extender.final_level == 0:
            stats.matches += 1
            return
        self._descend((int(root),), 1, stats, state)

    # ------------------------------------------------------------------
    def _descend(
        self,
        vertices: tuple[int, ...],
        level: int,
        stats: ExploreStats,
        state: object,
    ) -> None:
        result = self.extender.extend_level(
            self.graph, vertices, level, self._lookup_intermediate
        )
        stats.merge_elements += result.merge_elements
        stats.scanned += result.scanned
        width = len(result.candidates)
        stats.level_widths[level] = stats.level_widths.get(level, 0) + width
        if level == self.extender.final_level:
            stats.matches += width
            if self.on_match is not None and width:
                self.on_match(vertices, result.candidates)
            return
        needs_fetch = self.extender.needs_edge_list(level)
        previous = self._intermediates[level]
        self._intermediates[level] = result.raw if self.extender.vcs else None
        for v in result.candidates:
            stats.created += 1
            child_state = state
            if self.on_child is not None:
                self.on_child(level, int(v), needs_fetch)
            if self.on_child_state is not None:
                child_state = self.on_child_state(
                    level, int(v), needs_fetch, vertices, state
                )
            self._descend(vertices + (int(v),), level + 1, stats, child_state)
        self._intermediates[level] = previous

    def _lookup_intermediate(self, level: int) -> Optional[np.ndarray]:
        return self._intermediates[level]


def khop_ball(graph: Graph, root: int, hops: int) -> np.ndarray:
    """Vertices within ``hops`` of ``root`` (G-thinker's prefetch set).

    The returned set is exactly the vertices whose edge lists a k-hop
    subgraph fetch materializes before the tree exploration starts.
    """
    ball = np.array([root], dtype=np.int64)
    frontier = ball
    for _ in range(hops):
        if not len(frontier):
            break
        neighbor_lists = [graph.neighbors(int(v)) for v in frontier]
        if not neighbor_lists:
            break
        expanded = np.unique(np.concatenate(neighbor_lists))
        frontier = np.setdiff1d(expanded, ball, assume_unique=True)
        ball = np.union1d(ball, frontier)
    return ball
