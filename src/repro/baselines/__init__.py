"""Baseline systems the paper evaluates against.

Every baseline reimplements the *execution model* of its namesake over
the same simulated substrate and the same enumeration kernel as the
Khuzdul engine (so all systems agree on counts), while charging costs
the way its architecture would:

- :class:`~repro.baselines.gthinker.GThinker` — distributed, partitioned
  graph, coarse per-tree tasks that prefetch k-hop balls, general
  software cache with a task<->data map;
- :class:`~repro.baselines.replicated.GraphPiReplicated` — distributed
  with a fully replicated graph and coarse first-loop parallelism;
- :class:`~repro.baselines.single_machine.SingleMachine` — AutomineIH /
  Peregrine-style single-machine systems;
- :class:`~repro.baselines.pangolin.PangolinLike` — single machine with
  orientation for cliques and BFS-level materialization;
- :class:`~repro.baselines.moving_computation.MovingComputation` —
  aDFS-style "move computation to data";
- :class:`~repro.baselines.fractal.FractalLike` — pattern-oblivious
  distributed enumeration (FSM comparison).
"""

from repro.baselines.single_machine import SingleMachine
from repro.baselines.replicated import GraphPiReplicated
from repro.baselines.gthinker import GThinker
from repro.baselines.pangolin import PangolinLike
from repro.baselines.moving_computation import MovingComputation
from repro.baselines.fractal import FractalLike

__all__ = [
    "SingleMachine",
    "GraphPiReplicated",
    "GThinker",
    "PangolinLike",
    "MovingComputation",
    "FractalLike",
]
