"""Pangolin-like single-machine system.

Pangolin's signature strengths and weaknesses (paper Table 3):

- For triangle/clique counting it applies *orientation* — the input
  graph is converted to a degree-ordered DAG so each clique is found
  once — which makes TC on skewed graphs extremely fast.
- It materializes embeddings level by level (BFS expansion), so wide
  intermediate levels exhaust memory (the OUTOFMEM cells for 4-CC/5-CC
  on Friendster).
- For general patterns (motif counting) its extension+filter model pays
  an isomorphism-classification cost per enumerated embedding, which is
  why 3-MC on large graphs times out.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.common import ExploreStats, RecursiveExplorer
from repro.cluster.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.core.extend import ScheduleExtender
from repro.core.runtime import RunReport
from repro.errors import OutOfMemoryError
from repro.graph.graph import Graph
from repro.graph.orientation import orient_by_degree
from repro.patterns.catalog import clique
from repro.patterns.isomorphism import are_isomorphic, automorphisms
from repro.patterns.pattern import Pattern
from repro.patterns.schedule import Schedule, automine_schedule
from repro.systems.base import GPMSystem, MniDomainCollector

#: Pangolin's per-embedding isomorphism-classification cost for general
#: (non-clique) patterns.
_ISO_CLASSIFY_COST = 6.0e-8
#: Bytes per materialized embedding in the BFS level storage.
_EMBEDDING_BYTES = 16


class PangolinLike(GPMSystem):
    """Single-machine BFS-expansion system with orientation."""

    name = "pangolin"

    def __init__(
        self,
        graph: Graph,
        cores: int = 16,
        memory_bytes: int = 64 << 20,
        cost: CostModel = DEFAULT_COST_MODEL,
        graph_name: str = "graph",
    ):
        if graph.size_bytes() > memory_bytes:
            raise OutOfMemoryError(0, graph.size_bytes(), memory_bytes)
        self.graph = graph
        self.cores = cores
        self.memory_bytes = memory_bytes
        self.cost = cost
        self.graph_name = graph_name
        self._oriented: Graph | None = None

    # ------------------------------------------------------------------
    def _oriented_graph(self) -> Graph:
        if self._oriented is None:
            self._oriented = orient_by_degree(self.graph)
        return self._oriented

    def _run(
        self, graph: Graph, schedule: Schedule, iso_cost: float, on_match=None
    ) -> tuple[int, float]:
        extender = ScheduleExtender(schedule, vcs=True)
        explorer = RecursiveExplorer(graph, extender, on_match=on_match)
        stats = ExploreStats()
        for root in range(graph.num_vertices):
            if (
                schedule.root_label() is not None
                and graph.labels is not None
                and graph.label(root) != schedule.root_label()
            ):
                continue
            explorer.explore_root(root, stats)
        # BFS materialization: two consecutive embedding levels are live
        # at once (parents + children). The final level is not stored for
        # counting apps — matches go straight to the reducer.
        final = extender.final_level
        live_widths = [
            width for level, width in stats.level_widths.items()
            if level < final
        ]
        widest_pair = 0
        for level in range(1, final):
            pair = stats.level_widths.get(level, 0)
            if level + 1 < final:
                pair += stats.level_widths.get(level + 1, 0)
            widest_pair = max(widest_pair, pair)
        if not live_widths:
            widest_pair = 0
        level_bytes = widest_pair * _EMBEDDING_BYTES
        if graph.size_bytes() + level_bytes > self.memory_bytes:
            raise OutOfMemoryError(
                0, graph.size_bytes() + level_bytes, self.memory_bytes
            )
        serial = stats.compute_seconds(self.cost)
        serial += (stats.created + stats.matches) * iso_cost
        runtime = serial / (self.cores * self.cost.thread_efficiency)
        return stats.matches, runtime

    def _report(self, app: str, counts, runtime: float) -> RunReport:
        return RunReport(
            system=self.name,
            app=app,
            graph_name=self.graph_name,
            counts=counts,
            simulated_seconds=runtime,
            breakdown={"compute": runtime},
            machine_seconds=[runtime],
            peak_memory_bytes=self.graph.size_bytes(),
            num_machines=1,
        )

    # ------------------------------------------------------------------
    def count_pattern(
        self,
        pattern: Pattern,
        induced: bool = False,
        oriented: bool = True,
        app: str = "pattern",
    ) -> RunReport:
        is_clique = not induced and are_isomorphic(
            pattern, clique(pattern.num_vertices)
        )
        if oriented and is_clique:
            schedule = automine_schedule(pattern, False, use_restrictions=False)
            matches, runtime = self._run(self._oriented_graph(), schedule, 0.0)
        else:
            schedule = automine_schedule(pattern, induced)
            matches, runtime = self._run(
                self.graph, schedule, _ISO_CLASSIFY_COST
            )
        return self._report(app, matches, runtime)

    def count_patterns(
        self,
        patterns: Sequence[Pattern],
        induced: bool = True,
        app: str = "patterns",
    ) -> RunReport:
        counts, runtime = [], 0.0
        for pattern in patterns:
            schedule = automine_schedule(pattern, induced)
            matches, seconds = self._run(
                self.graph, schedule, _ISO_CLASSIFY_COST
            )
            counts.append(matches)
            runtime += seconds
        return self._report(app, counts, runtime)

    def mni_supports(
        self, patterns: Sequence[Pattern]
    ) -> tuple[list[int], RunReport]:
        schedules = [automine_schedule(p, induced=False) for p in patterns]
        collector = MniDomainCollector(
            patterns,
            [s.order for s in schedules],
            [automorphisms(p) for p in patterns],
        )
        runtime = 0.0
        for index, schedule in enumerate(schedules):
            def on_match(prefix, candidates, _index=index):
                collector(_index, prefix, candidates)

            _, seconds = self._run(
                self.graph, schedule, _ISO_CLASSIFY_COST, on_match
            )
            runtime += seconds
        return collector.supports(), self._report("fsm-round", None, runtime)
