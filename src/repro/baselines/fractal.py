"""Fractal-like pattern-oblivious distributed GPM (paper Table 4).

Fractal (and Arabesque before it) enumerate *all* connected subgraphs
up to the target size and classify each one — isomorphism checks
included — instead of enumerating per pattern. This implementation does
exactly that for subgraphs with up to three edges (the paper's FSM
setting): connected edge subsets are enumerated exactly once via ESU on
the line graph, every subset pays an extension plus a
canonicalization cost, and subsets are classified into labeled shape
keys from which counts and MNI domains (FSM supports) fall out.

The execution model is Fractal's: replicated graph across machines,
subgraphs partitioned by their root edge, coarse per-machine
parallelism. The pattern-oblivious cost per subgraph is why it loses to
every pattern-aware system, and the hub-vertex subset explosion is why
it times out on LiveJournal (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.cluster.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.core.runtime import RunReport
from repro.errors import ConfigurationError, OutOfMemoryError, SimTimeoutError
from repro.graph.graph import Graph
from repro.graph.partition import HashPartitioner
from repro.patterns.canonical import canonical_code
from repro.patterns.pattern import Pattern
from repro.systems.base import GPMSystem

#: Per-subgraph isomorphism/canonicalization cost (the pattern-oblivious
#: tax the paper's Section 1 attributes to Arabesque-style systems).
_CANONICAL_COST = 2.0e-7
#: Per-subgraph extension bookkeeping cost.
_EXTEND_COST = 5.0e-8


@dataclass
class _ShapeStats:
    """Counts and MNI domains accumulated for one labeled shape key."""

    count: int = 0
    domains: list[set[int]] = field(default_factory=list)


def _pattern_for_key(key: tuple) -> Pattern:
    """Reconstruct the labeled pattern a shape key denotes."""
    shape = key[0]
    if shape == "e":
        return Pattern(2, [(0, 1)], (key[1], key[2]))
    if shape == "p3":
        return Pattern(3, [(0, 1), (0, 2)], (key[1], key[2], key[3]))
    if shape == "t":
        return Pattern(3, [(0, 1), (0, 2), (1, 2)], key[1])
    if shape == "s3":
        return Pattern(4, [(0, 1), (0, 2), (0, 3)], (key[1],) + key[2])
    if shape == "p4":
        return Pattern(4, [(0, 1), (1, 2), (2, 3)], key[1])
    raise AssertionError(f"unknown shape key {key!r}")


class FractalLike(GPMSystem):
    """Pattern-oblivious enumerate-then-classify system (<= 3 edges)."""

    name = "fractal"

    def __init__(
        self,
        graph: Graph,
        num_machines: int = 8,
        cores: int = 16,
        memory_bytes: int = 64 << 20,
        cost: CostModel = DEFAULT_COST_MODEL,
        time_budget: Optional[float] = None,
        max_subgraphs: int = 2_000_000,
        graph_name: str = "graph",
    ):
        if graph.size_bytes() > memory_bytes:  # replicated graph
            raise OutOfMemoryError(0, graph.size_bytes(), memory_bytes)
        self.graph = graph
        self.num_machines = num_machines
        self.cores = cores
        self.cost = cost
        self.time_budget = time_budget
        self.max_subgraphs = max_subgraphs
        self.graph_name = graph_name
        self.partitioner = HashPartitioner(num_machines)
        self._result: Optional[tuple[dict, float]] = None

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------
    def _enumerate(self) -> tuple[dict[tuple, _ShapeStats], float]:
        """All connected <= 3-edge subgraphs; returns (stats, runtime)."""
        if self._result is not None:
            return self._result
        graph = self.graph
        edges = [(u, v) for u, v in graph.edges()]
        num_edges = len(edges)
        # line-graph adjacency: edges sharing an endpoint
        incident: list[list[int]] = [[] for _ in range(graph.num_vertices)]
        for eid, (u, v) in enumerate(edges):
            incident[u].append(eid)
            incident[v].append(eid)
        stats: dict[tuple, _ShapeStats] = {}
        machine_serial = np.zeros(self.num_machines, dtype=np.float64)
        subgraphs = 0
        threads = max(1, self.cores) * self.cost.thread_efficiency
        budget = self.time_budget

        def charge(machine: int, seconds: float) -> None:
            machine_serial[machine] += seconds

        def record(edge_ids: tuple[int, ...], machine: int) -> None:
            nonlocal subgraphs
            subgraphs += 1
            charge(machine, _EXTEND_COST + _CANONICAL_COST)
            self._classify([edges[e] for e in edge_ids], stats)
            if subgraphs > self.max_subgraphs:
                raise SimTimeoutError(float(machine_serial.max() / threads),
                                   budget or 0.0)
            if budget is not None and machine_serial.max() / threads > budget:
                raise SimTimeoutError(machine_serial.max() / threads, budget)

        # ESU over the line graph, bounded at 3 line-graph vertices
        for root in range(num_edges):
            machine = self.partitioner.owner(root)
            record((root,), machine)
            u, v = edges[root]
            neighbors_root = sorted(
                e for e in set(incident[u]) | set(incident[v])
                if e > root
            )
            for i, second in enumerate(neighbors_root):
                record((root, second), machine)
                su, sv = edges[second]
                exclusive = sorted(
                    e
                    for e in set(incident[su]) | set(incident[sv])
                    if e > root and e != second and e not in neighbors_root
                )
                # extension = remaining root-neighbors after `second`,
                # plus the exclusive neighborhood of `second`
                for third in neighbors_root[i + 1 :]:
                    record((root, second, third), machine)
                for third in exclusive:
                    record((root, second, third), machine)
        runtime = float(machine_serial.max()) / threads
        runtime += (
            self.cost.graphpi_startup
            + self.cost.graphpi_startup_per_node * self.num_machines
        )
        self._result = (stats, runtime)
        return self._result

    # ------------------------------------------------------------------
    def _classify(
        self, edge_list: list[tuple[int, int]], stats: dict[tuple, _ShapeStats]
    ) -> None:
        """Classify a connected edge subset and update counts/domains."""
        graph = self.graph
        label = graph.label
        if len(edge_list) == 1:
            (u, v) = edge_list[0]
            la, lb = label(u), label(v)
            if la > lb:
                u, v, la, lb = v, u, lb, la
            entry = self._entry(stats, ("e", la, lb), 2)
            entry.count += 1
            if la == lb:
                entry.domains[0].update((u, v))
                entry.domains[1].update((u, v))
            else:
                entry.domains[0].add(u)
                entry.domains[1].add(v)
            return
        if len(edge_list) == 2:
            (a, b), (c, d) = edge_list
            center = a if a in (c, d) else b
            x = b if center == a else a
            y = d if center == c else c
            lx, ly = label(x), label(y)
            if lx > ly:
                x, y, lx, ly = y, x, ly, lx
            entry = self._entry(stats, ("p3", label(center), lx, ly), 3)
            entry.count += 1
            entry.domains[0].add(center)
            if lx == ly:
                entry.domains[1].update((x, y))
                entry.domains[2].update((x, y))
            else:
                entry.domains[1].add(x)
                entry.domains[2].add(y)
            return
        self._classify_three(edge_list, stats)

    def _classify_three(
        self, edge_list: list[tuple[int, int]], stats: dict[tuple, _ShapeStats]
    ) -> None:
        label = self.graph.label
        degree: dict[int, int] = {}
        for u, v in edge_list:
            degree[u] = degree.get(u, 0) + 1
            degree[v] = degree.get(v, 0) + 1
        vertices = list(degree)
        if len(vertices) == 3:  # triangle
            labels = tuple(sorted(label(v) for v in vertices))
            entry = self._entry(stats, ("t", labels), 3)
            entry.count += 1
            for v in vertices:
                for pos, pos_label in enumerate(labels):
                    if label(v) == pos_label:
                        entry.domains[pos].add(v)
            return
        if max(degree.values()) == 3:  # star with 3 leaves
            center = next(v for v, d in degree.items() if d == 3)
            leaves = [v for v in vertices if v != center]
            leaf_labels = tuple(sorted(label(v) for v in leaves))
            entry = self._entry(stats, ("s3", label(center), leaf_labels), 4)
            entry.count += 1
            entry.domains[0].add(center)
            for v in leaves:
                for pos, pos_label in enumerate(leaf_labels):
                    if label(v) == pos_label:
                        entry.domains[1 + pos].add(v)
            return
        # path on 4 vertices: order the chain, canonicalize orientation
        ends = [v for v, d in degree.items() if d == 1]
        adjacency: dict[int, list[int]] = {v: [] for v in vertices}
        for u, v in edge_list:
            adjacency[u].append(v)
            adjacency[v].append(u)
        a = min(ends)
        chain = [a]
        while len(chain) < 4:
            nxt = [w for w in adjacency[chain[-1]] if w not in chain]
            chain.append(nxt[0])
        forward = tuple(label(v) for v in chain)
        backward = forward[::-1]
        if backward < forward:
            chain = chain[::-1]
            forward = backward
        entry = self._entry(stats, ("p4", forward), 4)
        entry.count += 1
        palindrome = forward == forward[::-1]
        for pos, v in enumerate(chain):
            entry.domains[pos].add(v)
            if palindrome:
                entry.domains[3 - pos].add(v)

    @staticmethod
    def _entry(
        stats: dict[tuple, _ShapeStats], key: tuple, positions: int
    ) -> _ShapeStats:
        entry = stats.get(key)
        if entry is None:
            entry = _ShapeStats(domains=[set() for _ in range(positions)])
            stats[key] = entry
        return entry

    # ------------------------------------------------------------------
    # GPMSystem interface
    # ------------------------------------------------------------------
    def count_pattern(
        self,
        pattern: Pattern,
        induced: bool = False,
        oriented: bool = False,
        app: str = "pattern",
    ) -> RunReport:
        if induced or oriented:
            raise ConfigurationError(
                "fractal baseline counts non-induced, unoriented patterns"
            )
        if pattern.num_edges > 3:
            raise ConfigurationError(
                "fractal baseline enumerates subgraphs with <= 3 edges"
            )
        stats, runtime = self._enumerate()
        target = canonical_code(pattern)
        count = 0
        for key, entry in stats.items():
            candidate = _pattern_for_key(key)
            if pattern.labels is None:
                candidate = candidate.unlabeled()
            if canonical_code(candidate) == target:
                count += entry.count
        return self._report(app, count, runtime)

    def count_patterns(
        self,
        patterns: Sequence[Pattern],
        induced: bool = True,
        app: str = "patterns",
    ) -> RunReport:
        reports = [
            self.count_pattern(p, induced=False, app=app) for p in patterns
        ]
        merged = self._report(
            app, [r.counts for r in reports], reports[-1].simulated_seconds
        )
        return merged

    def mni_supports(
        self, patterns: Sequence[Pattern]
    ) -> tuple[list[int], RunReport]:
        stats, runtime = self._enumerate()
        by_code: dict[tuple, int] = {}
        for key, entry in stats.items():
            support = min((len(d) for d in entry.domains), default=0)
            by_code[canonical_code(_pattern_for_key(key))] = support
        supports = [
            by_code.get(canonical_code(p), 0) for p in patterns
        ]
        return supports, self._report("fsm-round", None, runtime)

    def all_frequent(self, threshold: int) -> list[tuple[Pattern, int]]:
        """All labeled <= 3-edge patterns with MNI support >= threshold.

        This is Fractal's natural FSM output: the oblivious enumeration
        already touched every subgraph, so frequent patterns are a
        single filter over the classified shapes.
        """
        stats, _ = self._enumerate()
        result = []
        for key, entry in stats.items():
            support = min((len(d) for d in entry.domains), default=0)
            if support >= threshold:
                result.append((_pattern_for_key(key), support))
        return result

    def fsm_report(self, threshold: int) -> RunReport:
        """FSM runtime report (enumeration dominates; filter is free)."""
        _, runtime = self._enumerate()
        frequent = self.all_frequent(threshold)
        return self._report(f"FSM(t={threshold})", len(frequent), runtime)

    def _report(self, app: str, counts, runtime: float) -> RunReport:
        return RunReport(
            system=self.name,
            app=app,
            graph_name=self.graph_name,
            counts=counts,
            simulated_seconds=runtime,
            network_bytes=0,
            breakdown={"compute": runtime},
            num_machines=self.num_machines,
            peak_memory_bytes=self.graph.size_bytes(),
        )
