"""Single-machine pattern-aware GPM systems (AutomineIH, Peregrine-like).

These run the same enumeration as the Khuzdul ports but with the
execution model of a compiled single-machine system: the whole graph in
one machine's memory, no communication, no per-task engine overhead,
and coarse root-level parallelism — threads take embedding-tree roots
round-robin, so skewed graphs leave the thread holding a hub's tree as
the straggler (the effect that lets k-Automine's fine-grained tasks win
on uk/tw in Table 3).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.cluster.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.core.extend import ScheduleExtender
from repro.core.runtime import RunReport
from repro.errors import ConfigurationError, OutOfMemoryError
from repro.graph.graph import Graph
from repro.graph.orientation import orient_by_degree
from repro.patterns.catalog import clique
from repro.patterns.isomorphism import are_isomorphic, automorphisms
from repro.patterns.pattern import Pattern
from repro.patterns.schedule import Schedule, automine_schedule, graphpi_schedule
from repro.baselines.common import ExploreStats, RecursiveExplorer
from repro.systems.base import GPMSystem, MniDomainCollector, merge_reports

ScheduleFn = Callable[..., Schedule]


class SingleMachine(GPMSystem):
    """AutomineIH-style single-machine GPM system.

    Parameters
    ----------
    graph:
        Input graph (must fit in ``memory_bytes``).
    cores:
        Worker threads; all cores compute (no communication threads).
    memory_bytes:
        Machine memory; exceeded capacity raises
        :class:`~repro.errors.OutOfMemoryError` (Table 3's OUTOFMEM).
    schedule_fn:
        Matching-order compiler; AutomineIH uses the Automine heuristic,
        the Peregrine-like variant the GraphPi-style search.
    per_match_cost:
        Extra seconds charged per completed embedding (Peregrine's
        match-callback overhead; zero for compiled AutomineIH loops).
    """

    name = "automine-ih"

    def __init__(
        self,
        graph: Graph,
        cores: int = 16,
        memory_bytes: int = 64 << 20,
        cost: CostModel = DEFAULT_COST_MODEL,
        schedule_fn: ScheduleFn = automine_schedule,
        per_match_cost: float = 0.0,
        graph_name: str = "graph",
    ):
        if graph.size_bytes() > memory_bytes:
            raise OutOfMemoryError(0, graph.size_bytes(), memory_bytes)
        self.graph = graph
        self.cores = cores
        self.memory_bytes = memory_bytes
        self.cost = cost
        self.schedule_fn = schedule_fn
        self.per_match_cost = per_match_cost
        self.graph_name = graph_name
        self._oriented_graph: Optional[Graph] = None

    # ------------------------------------------------------------------
    def _schedule(
        self, pattern: Pattern, induced: bool, use_restrictions: bool = True
    ) -> Schedule:
        return self.schedule_fn(
            pattern, induced, use_restrictions=use_restrictions
        )

    def _run_schedule(
        self,
        graph: Graph,
        schedule: Schedule,
        on_match=None,
    ) -> tuple[int, float, ExploreStats]:
        """Explore all roots; returns (matches, runtime, stats).

        Roots are assigned to threads round-robin (static coarse
        partitioning); the runtime is the slowest thread's bin.
        """
        extender = ScheduleExtender(schedule, vcs=True)
        explorer = RecursiveExplorer(graph, extender, on_match=on_match)
        roots = self._roots(graph, schedule)
        thread_bins = np.zeros(max(1, self.cores), dtype=np.float64)
        total = ExploreStats()
        for index, root in enumerate(roots):
            stats = ExploreStats()
            explorer.explore_root(int(root), stats)
            seconds = stats.compute_seconds(self.cost)
            seconds += stats.matches * self.per_match_cost
            thread_bins[index % len(thread_bins)] += seconds
            total.matches += stats.matches
            total.merge_elements += stats.merge_elements
            total.scanned += stats.scanned
            total.created += stats.created
        return total.matches, float(thread_bins.max()), total

    def _roots(self, graph: Graph, schedule: Schedule) -> np.ndarray:
        roots = np.arange(graph.num_vertices)
        root_label = schedule.root_label()
        if root_label is not None and graph.labels is not None:
            roots = roots[graph.labels[roots] == root_label]
        return roots

    def _report(
        self, app: str, counts, runtime: float
    ) -> RunReport:
        return RunReport(
            system=self.name,
            app=app,
            graph_name=self.graph_name,
            counts=counts,
            simulated_seconds=runtime,
            breakdown={"compute": runtime},
            machine_seconds=[runtime],
            peak_memory_bytes=self.graph.size_bytes(),
            num_machines=1,
        )

    # ------------------------------------------------------------------
    def count_pattern(
        self,
        pattern: Pattern,
        induced: bool = False,
        oriented: bool = False,
        app: str = "pattern",
    ) -> RunReport:
        if oriented:
            if induced or not are_isomorphic(pattern, clique(pattern.num_vertices)):
                raise ConfigurationError("orientation is for non-induced cliques")
            if self._oriented_graph is None:
                self._oriented_graph = orient_by_degree(self.graph)
            schedule = self._schedule(pattern, False, use_restrictions=False)
            matches, runtime, _ = self._run_schedule(
                self._oriented_graph, schedule
            )
        else:
            schedule = self._schedule(pattern, induced)
            matches, runtime, _ = self._run_schedule(self.graph, schedule)
        return self._report(app, matches, runtime)

    def count_patterns(
        self,
        patterns: Sequence[Pattern],
        induced: bool = True,
        app: str = "patterns",
    ) -> RunReport:
        counts, runtime = [], 0.0
        for pattern in patterns:
            schedule = self._schedule(pattern, induced)
            matches, seconds, _ = self._run_schedule(self.graph, schedule)
            counts.append(matches)
            runtime += seconds
        return self._report(app, counts, runtime)

    def mni_supports(
        self, patterns: Sequence[Pattern]
    ) -> tuple[list[int], RunReport]:
        schedules = [self._schedule(p, induced=False) for p in patterns]
        collector = MniDomainCollector(
            patterns,
            [s.order for s in schedules],
            [automorphisms(p) for p in patterns],
        )
        runtime = 0.0
        for index, schedule in enumerate(schedules):
            def on_match(prefix, candidates, _index=index):
                collector(_index, prefix, candidates)

            _, seconds, _ = self._run_schedule(self.graph, schedule, on_match)
            runtime += seconds
        report = self._report("fsm-round", None, runtime)
        return collector.supports(), report


def peregrine_like(
    graph: Graph,
    cores: int = 16,
    memory_bytes: int = 64 << 20,
    cost: CostModel = DEFAULT_COST_MODEL,
    graph_name: str = "graph",
) -> SingleMachine:
    """Peregrine-style system: pattern-aware with cost-model orders.

    Peregrine explores with good (GraphPi-like) matching orders but
    dispatches every completed embedding through a match callback, which
    its paper and Table 3 show as overhead on clique-heavy workloads.
    """
    system = SingleMachine(
        graph,
        cores=cores,
        memory_bytes=memory_bytes,
        cost=cost,
        schedule_fn=graphpi_schedule,
        per_match_cost=6.0e-9,
        graph_name=graph_name,
    )
    system.name = "peregrine"
    return system
