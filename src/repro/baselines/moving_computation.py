"""aDFS-like baseline: "moving computation to data" (paper Section 2.3).

Instead of fetching remote edge lists, this execution model ships the
partially-constructed embedding to the machine owning the data needed
for its next extension — together with the active edge lists the
destination does not hold (the paper's example ships N(v0) alongside
(v0, v2)). That forecloses every data-reuse optimization: each tree
edge whose next extension is remote costs a shipment, so communication
volume scales with the number of partial embeddings rather than with
the number of distinct edge lists. Figure 10's order-of-magnitude gap
on triangle counting follows directly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.common import ExploreStats, RecursiveExplorer
from repro.cluster.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.core.extend import ScheduleExtender
from repro.core.runtime import RunReport
from repro.errors import ConfigurationError
from repro.graph.graph import Graph
from repro.graph.partition import HashPartitioner, PartitionedGraph
from repro.patterns.isomorphism import automorphisms
from repro.patterns.pattern import Pattern
from repro.patterns.schedule import Schedule, graphpi_schedule
from repro.systems.base import GPMSystem, MniDomainCollector

#: fraction of shipping time hidden behind computation (aDFS pipelines
#: its sends, but cannot batch per-destination like circulant chunks)
_OVERLAP = 0.5


class MovingComputation(GPMSystem):
    """Distributed GPM that migrates tasks to where the data lives."""

    name = "adfs"

    def __init__(
        self,
        graph: Graph,
        num_machines: int = 8,
        cores: int = 16,
        cost: CostModel = DEFAULT_COST_MODEL,
        graph_name: str = "graph",
    ):
        self.graph = graph
        self.num_machines = num_machines
        self.cores = cores
        self.cost = cost
        self.graph_name = graph_name
        self.partitioner = HashPartitioner(num_machines)
        self.partitioned = PartitionedGraph(graph, self.partitioner)

    # ------------------------------------------------------------------
    def _run_schedule(
        self, schedule: Schedule, on_match=None
    ) -> tuple[int, float, int]:
        graph = self.graph
        cost = self.cost
        extender = ScheduleExtender(schedule, vcs=False)  # no reuse
        ship_bytes_by_machine = np.zeros(self.num_machines, dtype=np.int64)
        shipments = 0

        def on_child_state(level, vertex, needs_fetch, prefix, location):
            nonlocal shipments
            if not needs_fetch:
                return location
            destination = self.partitioned.owner(vertex)
            if destination == location:
                return location
            # ship the partial embedding plus the active edge lists the
            # destination machine does not hold
            step = extender.step_for(level)
            payload = 4 * (level + 1)
            for position in step.active_after:
                if position < len(prefix):
                    carried = prefix[position]
                else:
                    carried = vertex
                if self.partitioned.owner(int(carried)) != destination:
                    payload += graph.edge_list_bytes(int(carried))
            ship_bytes_by_machine[location] += payload
            shipments += 1
            return destination

        explorer = RecursiveExplorer(
            graph, extender, on_match=on_match, on_child_state=on_child_state
        )
        stats = ExploreStats()
        for root in range(graph.num_vertices):
            if (
                schedule.root_label() is not None
                and graph.labels is not None
                and graph.label(root) != schedule.root_label()
            ):
                continue
            explorer.explore_root(
                root, stats, state=self.partitioned.owner(root)
            )

        total_ship = int(ship_bytes_by_machine.sum())
        compute_threads = max(1, int(self.cores * 0.75))
        compute = stats.compute_seconds(cost) / (
            self.num_machines * compute_threads * cost.thread_efficiency
        )
        serialization = total_ship * cost.ship_per_byte / self.num_machines
        busiest = float(ship_bytes_by_machine.max())
        network = busiest / cost.network_bandwidth + shipments / max(
            1, self.num_machines
        ) * cost.batch_latency / 64.0  # sends are batched 64 at a time
        hidden = min(network, compute) * _OVERLAP
        runtime = compute + serialization + network - hidden
        return stats.matches, runtime, total_ship

    def _report(self, app: str, counts, runtime: float, traffic: int) -> RunReport:
        return RunReport(
            system=self.name,
            app=app,
            graph_name=self.graph_name,
            counts=counts,
            simulated_seconds=runtime,
            network_bytes=traffic,
            breakdown={},
            num_machines=self.num_machines,
        )

    # ------------------------------------------------------------------
    def count_pattern(
        self,
        pattern: Pattern,
        induced: bool = False,
        oriented: bool = False,
        app: str = "pattern",
    ) -> RunReport:
        if oriented:
            raise ConfigurationError("aDFS has no orientation preprocessing")
        schedule = graphpi_schedule(pattern, induced)
        matches, runtime, traffic = self._run_schedule(schedule)
        return self._report(app, matches, runtime, traffic)

    def count_patterns(
        self,
        patterns: Sequence[Pattern],
        induced: bool = True,
        app: str = "patterns",
    ) -> RunReport:
        counts, runtime, traffic = [], 0.0, 0
        for pattern in patterns:
            schedule = graphpi_schedule(pattern, induced)
            matches, seconds, shipped = self._run_schedule(schedule)
            counts.append(matches)
            runtime += seconds
            traffic += shipped
        return self._report(app, counts, runtime, traffic)

    def mni_supports(
        self, patterns: Sequence[Pattern]
    ) -> tuple[list[int], RunReport]:
        schedules = [graphpi_schedule(p, induced=False) for p in patterns]
        collector = MniDomainCollector(
            patterns,
            [s.order for s in schedules],
            [automorphisms(p) for p in patterns],
        )
        runtime, traffic = 0.0, 0
        for index, schedule in enumerate(schedules):
            def on_match(prefix, candidates, _index=index):
                collector(_index, prefix, candidates)

            _, seconds, shipped = self._run_schedule(schedule, on_match)
            runtime += seconds
            traffic += shipped
        return collector.supports(), self._report(
            "fsm-round", None, runtime, traffic
        )
