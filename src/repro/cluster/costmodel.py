"""Cost-model constants for the simulated cluster.

All times are simulated seconds. The defaults describe a machine in the
paper's evaluation cluster (two 8-core Xeon sockets, 56Gbps InfiniBand)
at the granularity the engines need: per-element intersection cost,
per-task bookkeeping, per-message network cost, and the cache
bookkeeping costs that differentiate Khuzdul's static cache from the
replacement policies of Figure 16 and from G-thinker's general cache.

The absolute values are plausible for commodity hardware (~1e9 simple
memory-streaming ops per core-second), but what the reproduction relies
on is their *ratios*: fine-grained task overhead vs. intersection work,
map-maintenance cost vs. network transfer, and so on, which produce the
paper's breakdowns and speedup shapes.

Two groups encode paper design arguments directly:

* **Section 5.2 (horizontal data sharing).** ``hds_probe`` is the cost
  of one probe of the collision-dropping hash table. Collision dropping
  is what keeps this constant tiny: a colliding entry is simply
  overwritten instead of chained or resized, so a probe is one hash +
  one compare with no locking, and sharing remote edge lists between
  concurrently-extended embeddings stays cheaper than refetching them.
* **Section 5.3 (static cache).** ``cache_insert_static`` prices the
  "first accessed, first cached" policy: an insert into a fixed-size
  pool with no eviction metadata. The ``cache_policy_update`` /
  ``cache_dynamic_alloc`` / ``cache_fragmentation_rate`` constants are
  the extra costs a *replacement* cache pays (Figure 16's LRU/MRU/FIFO
  ablation). The degree threshold that decides which vertices are
  cache-admissible lives in :mod:`repro.core.cache`; here it only
  manifests as fewer, larger insertions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Constants used to charge simulated time. See module docstring."""

    # ---------------- computation -------------------------------------
    #: Seconds per element streamed through a merge intersection.
    intersect_per_element: float = 1.2e-9
    #: Seconds per candidate emitted (filtering, bounds checks).
    emit_per_candidate: float = 4.0e-9
    #: Seconds to materialize one new extendable embedding.
    embedding_create: float = 1.5e-8

    # ---------------- Khuzdul scheduling -------------------------------
    #: Per-fine-grained-task scheduling cost (queue push/pop, state flip).
    task_schedule: float = 1.0e-8
    #: Per-mini-batch distribution cost (64 embeddings per mini-batch).
    mini_batch_dispatch: float = 2.0e-8
    #: Embeddings per mini-batch (Section 6).
    mini_batch_size: int = 64
    #: Fixed per-chunk cost (allocate chunk memory, shuffle into batches).
    chunk_setup: float = 2.0e-7
    #: Per-pattern engine start-up cost (chunk allocators, schedules);
    #: the reason k-Automine loses to AutomineIH on FSM (Table 4).
    engine_startup: float = 5.0e-6

    # ---------------- network ------------------------------------------
    #: Bytes per second on the wire (56 Gbps InfiniBand ~ 7 GB/s).
    network_bandwidth: float = 7.0e9
    #: One-way latency charged per communication batch.
    batch_latency: float = 1.0e-7
    #: Per-request header bytes (vertex id + bookkeeping).
    request_header_bytes: int = 16
    #: Responder-side cost per byte copied into the send buffer; this is
    #: what makes Patents' many tiny requests network-inefficient (Fig 19).
    serve_per_byte: float = 2.5e-10
    #: Responder-side fixed cost per served request.
    serve_per_request: float = 1.0e-7

    # ---------------- static cache (Section 5.3) -----------------------
    #: Cost of one cache query (hash probe).
    cache_query: float = 1.5e-8
    #: Cost of one insert into the static (no-replacement) cache.
    cache_insert_static: float = 8.0e-8
    #: Extra per-access policy maintenance for replacement policies
    #: (LRU/MRU list surgery, FIFO/LIFO queue updates).
    cache_policy_update: float = 1.2e-7
    #: Dynamic allocation cost per insert/evict for replacement policies
    #: (general-purpose malloc/free instead of a fixed-size pool).
    cache_dynamic_alloc: float = 9.0e-7
    #: Fragmentation growth: each evict/insert pair inflates subsequent
    #: allocation costs by this fraction, capped at 4x (Section 7.6).
    cache_fragmentation_rate: float = 2.0e-6
    #: Query slows down once the cache spills out of the CPU L3 slice
    #: (the 6-8% regression at 50% cache size in Figure 17).
    l3_bytes: int = 64 << 10
    cache_l3_spill_penalty: float = 0.6

    # ---------------- horizontal data sharing (Section 5.2) ------------
    #: Cost of one probe/insert in the collision-dropping hash table.
    hds_probe: float = 1.0e-8

    # ---------------- NUMA (Section 5.4) --------------------------------
    #: Fraction of memory traffic that crosses sockets when the engine is
    #: NUMA-oblivious on a 2-socket node.
    numa_cross_fraction: float = 0.5
    #: Slowdown of a cross-socket memory access relative to local.
    numa_remote_penalty: float = 0.6

    # ---------------- threading (Section 6) -----------------------------
    #: Parallel efficiency of dividing chunk work over computation threads.
    thread_efficiency: float = 0.90
    #: Communication threads per node are 1/4 of cores (1:3 ratio).
    comm_thread_ratio: float = 0.25

    # ---------------- G-thinker baseline --------------------------------
    #: Task<->data map maintenance per requested edge list (Section 1:
    #: "when a task requests an edge list ... the map needs to be
    #: updated").
    gthinker_map_update: float = 4.0e-7
    #: Scheduler poll per task per scheduling round ("periodically checks
    #: whether the edge lists needed by each task are ready").
    gthinker_task_poll: float = 8.0e-7
    #: Per-request data-readiness check by the scheduler ("periodically
    #: checks whether the edge lists needed by each task is ready").
    gthinker_readiness_check: float = 4.5e-7
    #: G-thinker explores trees through generic task/UDF plumbing rather
    #: than compiled loops; its per-unit enumeration work costs more.
    gthinker_compute_multiplier: float = 3.0
    #: Cache GC scan cost per cached entry per round.
    gthinker_gc_per_entry: float = 1.0e-7
    #: Number of scheduler/GC rounds a task lives through on average.
    gthinker_poll_rounds: int = 4
    #: Maximum concurrently active tasks (embedding trees).
    gthinker_max_concurrency: int = 300
    #: Minimum concurrency below which G-thinker cannot make progress
    #: (its prefetch pipeline deadlocks / the run is reported CRASHED).
    gthinker_min_concurrency: int = 64

    # ---------------- replicated-graph GraphPi baseline -----------------
    #: Fixed start-up of GraphPi's task partitioning/distribution phase.
    graphpi_startup: float = 8.0e-5
    #: Additional start-up per node (distribution handshakes).
    graphpi_startup_per_node: float = 5.0e-6

    # ---------------- moving-computation (aDFS) baseline ----------------
    #: Serialization cost per byte of shipped partial embedding state.
    ship_per_byte: float = 4.0e-10

    def derive(self, **overrides) -> "CostModel":
        """A copy with some constants replaced (ablation benches)."""
        return replace(self, **overrides)


#: Cost model used by default everywhere.
DEFAULT_COST_MODEL = CostModel()
