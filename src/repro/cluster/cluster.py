"""Cluster assembly: machines + partitioned graph + network."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.costmodel import CostModel
from repro.cluster.machine import MachineState
from repro.cluster.network import NetworkModel
from repro.errors import ConfigurationError
from repro.graph.graph import Graph
from repro.graph.partition import HashPartitioner, PartitionedGraph


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of the simulated cluster.

    Defaults model the paper's main testbed (8 nodes, two 8-core sockets
    per node) with memory scaled to the synthetic-analogue world: the
    default 64 MiB per node plays the role of the paper's 64 GB against
    graphs that are ~1000x smaller.
    """

    num_machines: int = 8
    cores_per_machine: int = 16
    sockets_per_machine: int = 2
    memory_bytes: int = 64 << 20
    cost: CostModel = field(default_factory=CostModel)

    def __post_init__(self):
        if self.num_machines < 1:
            raise ConfigurationError("need at least one machine")
        if self.cores_per_machine < 2:
            raise ConfigurationError("need at least two cores per machine")
        if self.sockets_per_machine < 1:
            raise ConfigurationError("need at least one socket")


class Cluster:
    """A partitioned graph living on a set of simulated machines.

    Creating the cluster charges each machine's memory with its graph
    partition, so configurations that cannot hold the graph fail the
    same way the paper's do (e.g. replicating a >memory graph).
    """

    def __init__(self, graph: Graph, config: ClusterConfig):
        self.graph = graph
        self.config = config
        self.cost = config.cost
        self.partitioner = HashPartitioner(
            config.num_machines, config.sockets_per_machine
        )
        self.partitioned = PartitionedGraph(graph, self.partitioner)
        self.machines = [
            MachineState(
                machine_id=m,
                cores=config.cores_per_machine,
                memory_bytes=config.memory_bytes,
                sockets=config.sockets_per_machine,
                cost=config.cost,
            )
            for m in range(config.num_machines)
        ]
        self.network = NetworkModel(config.num_machines, config.cost)
        #: machines lost to injected crashes during the current run
        self.dead: set[int] = set()
        for machine in self.machines:
            machine.allocate(self.partitioned.partition_bytes(machine.machine_id))

    # ------------------------------------------------------------------
    @property
    def num_machines(self) -> int:
        return self.config.num_machines

    def machine(self, m: int) -> MachineState:
        return self.machines[m]

    def owner(self, v: int) -> int:
        """Machine owning vertex ``v``."""
        return self.partitioned.owner(v)

    # -- failure state --------------------------------------------------
    def mark_dead(self, machine_id: int) -> None:
        """Record a machine loss; its partition fails over (replicated
        storage assumption) to the next live machine in id order."""
        self.dead.add(machine_id)
        self.machines[machine_id].alive = False

    def live_ids(self) -> list[int]:
        return [m.machine_id for m in self.machines if m.machine_id not in self.dead]

    def failover_owner(self, machine_id: int) -> int:
        """The live machine serving a dead machine's partition: the next
        live id cyclically after it (deterministic replica placement)."""
        for step in range(1, self.num_machines):
            candidate = (machine_id + step) % self.num_machines
            if candidate not in self.dead:
                return candidate
        raise ConfigurationError("no live machine left to serve partition")

    def serving_owner(self, v: int) -> int:
        """Machine currently able to serve ``v``'s edge list."""
        owner = self.partitioned.owner(v)
        if not self.dead or owner not in self.dead:
            return owner
        return self.failover_owner(owner)

    def runtime(self) -> float:
        """Simulated job runtime: the slowest machine's finish time."""
        return max(m.busy_seconds() for m in self.machines)

    def reset_clocks(self) -> None:
        for machine in self.machines:
            machine.reset_clock()
        self.dead.clear()
        self.network = NetworkModel(self.num_machines, self.cost)
