"""Simulated network: traffic accounting and batch timing.

Tracks every byte that crosses machine boundaries in an N x N traffic
matrix (and request counts), and prices communication batches with a
latency + bandwidth model. Responder-side serve cost (copying edge
lists into send buffers — the effect that leaves Patents' network
underutilized in Figure 19) is charged to the serving machine.

Observability: :meth:`NetworkModel.bind_metrics` attaches a
:class:`~repro.obs.metrics.MetricsScope`, after which fetches and
batches also emit the ``net.*`` counters/histograms of
``docs/metrics.md``. The traffic matrix itself stays the byte-exact
source of truth (per-machine utilization for Figure 19 is derived
from it via :meth:`per_machine_utilization`).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.costmodel import CostModel
from repro.cluster.machine import MachineState
from repro.obs import names
from repro.obs.metrics import (
    MetricsScope,
    NULL_COUNTER,
    NULL_HISTOGRAM,
)


class NetworkModel:
    """Byte-accurate traffic accounting plus a simple timing model."""

    def __init__(self, num_machines: int, cost: CostModel):
        self.num_machines = num_machines
        self.cost = cost
        #: traffic_bytes[src, dst] = payload bytes sent src -> dst
        self.traffic_bytes = np.zeros(
            (num_machines, num_machines), dtype=np.int64
        )
        self.request_counts = np.zeros(
            (num_machines, num_machines), dtype=np.int64
        )
        self.num_batches = 0
        #: attached fault injector (None = fault-free run)
        self.injector = None
        #: retried fetch attempts and their cumulative backoff seconds
        self.retries = 0
        self.retry_seconds = 0.0
        #: backoff accrued since the scheduler last drained it into a
        #: communication batch's wire time
        self._pending_retry_seconds = 0.0
        self._m_requests = NULL_COUNTER
        self._m_payload = NULL_COUNTER
        self._m_wire = NULL_COUNTER
        self._m_batches = NULL_COUNTER
        self._m_batch_bytes = NULL_HISTOGRAM
        self._m_batch_requests = NULL_HISTOGRAM
        self._m_retries = NULL_COUNTER
        self._m_retry_backoff = NULL_COUNTER

    def bind_metrics(self, metrics: MetricsScope) -> None:
        """Emit ``net.*`` metrics through ``metrics`` from now on."""
        self._m_requests = metrics.counter(names.NET_REQUESTS)
        self._m_payload = metrics.counter(names.NET_PAYLOAD_BYTES)
        self._m_wire = metrics.counter(names.NET_WIRE_BYTES)
        self._m_batches = metrics.counter(names.NET_BATCHES)
        self._m_batch_bytes = metrics.histogram(names.NET_BATCH_BYTES)
        self._m_batch_requests = metrics.histogram(names.NET_BATCH_REQUESTS)
        self._m_retries = metrics.counter(names.NET_RETRIES)
        self._m_retry_backoff = metrics.counter(
            names.NET_RETRY_BACKOFF_SECONDS
        )

    def attach_injector(self, injector) -> None:
        """Route every fetch through ``injector`` (transient failures)."""
        self.injector = injector

    # ------------------------------------------------------------------
    def record_fetch(
        self,
        requester: int,
        owner: int,
        payload_bytes: int,
        server: MachineState | None = None,
    ) -> int:
        """Account one edge-list fetch; returns total wire bytes.

        The request header travels requester -> owner and the payload
        comes back; both directions are recorded. If ``server`` is given
        the responder's copy cost is charged to its compute clock's
        scheduler bucket (it occupies a communication core).

        With a fault injector attached, the fetch may transiently fail:
        each failed attempt re-sends the request header (extra wire
        traffic) and accrues exponential backoff, which the scheduler
        drains into the batch's communication time. Exhausted retries
        raise :class:`~repro.errors.FetchFailedError`.
        """
        header = self.cost.request_header_bytes
        if self.injector is not None:
            failures, backoff = self.injector.fetch_failures_for(
                requester, owner
            )
            if failures:
                # each failed attempt still burned a request header
                self.traffic_bytes[requester, owner] += header * failures
                self.retries += failures
                self.retry_seconds += backoff
                self._pending_retry_seconds += backoff
                self._m_retries.inc(failures)
                self._m_retry_backoff.inc(backoff)
                self._m_wire.inc(header * failures)
        self.traffic_bytes[requester, owner] += header
        self.traffic_bytes[owner, requester] += payload_bytes
        self.request_counts[requester, owner] += 1
        self._m_requests.inc()
        self._m_payload.inc(payload_bytes)
        self._m_wire.inc(header + payload_bytes)
        if server is not None:
            server.served_bytes += payload_bytes
            server.served_requests += 1
        return header + payload_bytes

    def record_fetch_batch(
        self,
        requester: int,
        owner: int,
        payloads: list[int],
        server: MachineState | None = None,
    ) -> int:
        """Integer-exact fold of :meth:`record_fetch` over one owner
        batch; returns the summed payload bytes.

        Only valid without a fault injector attached — injected
        transient failures are per-attempt state, and their partial
        effects must interleave with the caller's per-fetch bookkeeping
        exactly as the one-at-a-time path does.
        """
        assert self.injector is None, "bulk recording skips retry state"
        header = self.cost.request_header_bytes
        n = len(payloads)
        payload_total = sum(payloads)
        self.traffic_bytes[requester, owner] += header * n
        self.traffic_bytes[owner, requester] += payload_total
        self.request_counts[requester, owner] += n
        self._m_requests.inc(n)
        self._m_payload.inc(payload_total)
        self._m_wire.inc(header * n + payload_total)
        if server is not None:
            server.served_bytes += payload_total
            server.served_requests += n
        return payload_total

    def batch_time(self, payload_bytes: int, num_requests: int) -> float:
        """Wire time of one communication batch (Section 4.3).

        One latency per batch (requests to the same machine are batched,
        amortizing the network round trip), plus serialization time of
        headers and payloads at line rate.
        """
        if num_requests == 0:
            return 0.0
        self.num_batches += 1
        wire_bytes = payload_bytes + num_requests * self.cost.request_header_bytes
        self._m_batches.inc()
        self._m_batch_bytes.observe(wire_bytes)
        self._m_batch_requests.observe(num_requests)
        return self.cost.batch_latency + wire_bytes / self.cost.network_bandwidth

    def drain_retry_seconds(self) -> float:
        """Backoff seconds accrued since the last drain (charged by the
        scheduler to the batch that suffered the retries)."""
        seconds, self._pending_retry_seconds = self._pending_retry_seconds, 0.0
        return seconds

    def serve_time(self, payload_bytes: int, num_requests: int) -> float:
        """Responder-side cost of copying payloads into send buffers."""
        return (
            num_requests * self.cost.serve_per_request
            + payload_bytes * self.cost.serve_per_byte
        )

    # ------------------------------------------------------------------
    def total_bytes(self) -> int:
        """All bytes that crossed machine boundaries."""
        return int(self.traffic_bytes.sum())

    def total_requests(self) -> int:
        return int(self.request_counts.sum())

    def bytes_sent_by(self, machine: int) -> int:
        return int(self.traffic_bytes[machine].sum())

    def utilization(self, runtime_seconds: float) -> float:
        """Peak per-link utilization over the run (Figure 19).

        The busiest machine's outgoing bytes divided by what the NIC
        could have moved in ``runtime_seconds``.
        """
        if runtime_seconds <= 0.0 or self.num_machines == 0:
            return 0.0
        per_machine = self.traffic_bytes.sum(axis=1)
        busiest = float(per_machine.max())
        return busiest / (self.cost.network_bandwidth * runtime_seconds)

    def per_machine_utilization(self, runtime_seconds: float) -> list[float]:
        """Each machine's outgoing-link utilization (Figure 19 detail)."""
        if runtime_seconds <= 0.0 or self.num_machines == 0:
            return [0.0] * self.num_machines
        per_machine = self.traffic_bytes.sum(axis=1)
        denom = self.cost.network_bandwidth * runtime_seconds
        return [float(b) / denom for b in per_machine]
