"""Simulated machine: clock buckets, thread model, memory accounting."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.costmodel import CostModel
from repro.errors import OutOfMemoryError


@dataclass
class ClockBuckets:
    """Per-machine simulated time, split by the paper's breakdown
    categories (Figure 15): computation, scheduling, cache maintenance,
    and time exposed to the network (not hidden by overlap)."""

    compute: float = 0.0
    scheduler: float = 0.0
    cache: float = 0.0
    network: float = 0.0

    def total(self) -> float:
        return self.compute + self.scheduler + self.cache + self.network

    def add(self, other: "ClockBuckets") -> None:
        self.compute += other.compute
        self.scheduler += other.scheduler
        self.cache += other.cache
        self.network += other.network

    def as_dict(self) -> dict[str, float]:
        return {
            "compute": self.compute,
            "scheduler": self.scheduler,
            "cache": self.cache,
            "network": self.network,
        }

    def fractions(self) -> dict[str, float]:
        """Bucket shares of the machine's total time (Figure 15 bars)."""
        total = self.total()
        if total <= 0.0:
            return {k: 0.0 for k in self.as_dict()}
        return {k: v / total for k, v in self.as_dict().items()}


@dataclass
class MachineState:
    """One simulated cluster node.

    ``cores`` is the node's core count; the paper reserves communication
    threads at a 1:3 ratio (Section 6), so ``compute_threads`` is what
    the chunk extension work divides across.

    Memory accounting tracks the resident partition plus the engine's
    live structures; exceeding ``memory_bytes`` raises
    :class:`~repro.errors.OutOfMemoryError`, which benches report the way
    the paper reports CRASHED/OOM cells.
    """

    machine_id: int
    cores: int
    memory_bytes: int
    sockets: int = 1
    cost: CostModel = field(default_factory=CostModel)
    clock: ClockBuckets = field(default_factory=ClockBuckets)
    resident_bytes: int = 0
    peak_bytes: int = 0
    #: bytes served to other machines (responder load, Figure 19)
    served_bytes: int = 0
    served_requests: int = 0
    #: time the communication threads spend serving remote requests;
    #: concurrent with the machine's own pipeline (Section 6), so it
    #: bounds the machine's finish time via max(), not a sum
    serve_seconds: float = 0.0
    #: cleared when an injected fault kills the machine mid-run
    alive: bool = True

    # ------------------------------------------------------------------
    @property
    def comm_threads(self) -> int:
        """Cores dedicated to communication (at least 1)."""
        return max(1, int(round(self.cores * self.cost.comm_thread_ratio)))

    @property
    def compute_threads(self) -> int:
        """Cores left for computation (at least 1)."""
        return max(1, self.cores - self.comm_threads)

    def parallel_compute_time(self, serial_seconds: float) -> float:
        """Wall time of ``serial_seconds`` of work over the compute pool."""
        threads = self.compute_threads
        if threads == 1:
            return serial_seconds
        return serial_seconds / (threads * self.cost.thread_efficiency)

    # ------------------------------------------------------------------
    def allocate(self, num_bytes: int) -> None:
        """Reserve memory, raising OutOfMemoryError if over capacity."""
        self.resident_bytes += num_bytes
        if self.resident_bytes > self.memory_bytes:
            raise OutOfMemoryError(
                self.machine_id, self.resident_bytes, self.memory_bytes
            )
        self.peak_bytes = max(self.peak_bytes, self.resident_bytes)

    def release(self, num_bytes: int) -> None:
        """Return memory to the pool (never below zero)."""
        self.resident_bytes = max(0, self.resident_bytes - num_bytes)

    def busy_seconds(self) -> float:
        """Finish time: own pipeline and responder duties run in
        parallel on disjoint thread pools, so the later one wins."""
        return max(self.clock.total(), self.serve_seconds)

    def reset_clock(self) -> None:
        self.clock = ClockBuckets()
        self.served_bytes = 0
        self.served_requests = 0
        self.serve_seconds = 0.0
        self.alive = True
