"""Simulated distributed cluster substrate.

The paper runs on an 8-node InfiniBand cluster; this package replaces
that hardware with a deterministic simulation. A :class:`Cluster` owns a
set of :class:`MachineState` objects (per-machine clock buckets, memory
accounting, NUMA sockets) and a :class:`NetworkModel` (latency +
bandwidth + per-message cost, full traffic accounting). Engines charge
every mechanism they execute — intersections, task scheduling, cache
bookkeeping, edge-list fetches — to these clocks, and a run's simulated
time is the maximum machine clock, so architectural comparisons (the
paper's tables and figures) are reproduced by the same cost events the
real engine pays for.
"""

from repro.cluster.costmodel import CostModel
from repro.cluster.network import NetworkModel
from repro.cluster.machine import ClockBuckets, MachineState
from repro.cluster.cluster import Cluster, ClusterConfig

__all__ = [
    "CostModel",
    "NetworkModel",
    "ClockBuckets",
    "MachineState",
    "Cluster",
    "ClusterConfig",
]
