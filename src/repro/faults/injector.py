"""The fault injector: interprets a plan at the engine's seams.

One injector serves one engine run. It is attached to the network
model (flaky fetches) and passed to every scheduler the engine builds
(crash triggers, straggler factors). All randomness comes from one
``random.Random(plan.seed)`` consumed in fetch order — the simulation
is sequential and deterministic, so the same plan against the same
run yields byte-identical fault sequences.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional

from repro.errors import FetchFailedError, MachineCrashError
from repro.faults.plan import FaultPlan
from repro.obs import names
from repro.obs.metrics import MetricsScope, scope_or_null

import random


class FaultInjector:
    """Stateful interpreter of one :class:`FaultPlan` for one run."""

    def __init__(
        self, plan: FaultPlan, metrics: Optional[MetricsScope] = None
    ):
        self.plan = plan
        self._rng = random.Random(plan.seed)
        #: chunk creations per machine (crash-trigger clock)
        self._chunk_counts: dict[int, int] = defaultdict(int)
        self._fired: set[int] = set()
        self._noted_stragglers: set[int] = set()
        #: plain-int mirrors, reported via RunReport.extra["faults"]
        self.crashes = 0
        self.fetch_failures = 0
        self.stragglers_noted = 0
        scope = scope_or_null(metrics)
        self._m_crashes = scope.counter(names.FAULT_CRASHES)
        self._m_fetch_failures = scope.counter(names.FAULT_FETCH_FAILURES)
        self._m_stragglers = scope.counter(names.FAULT_STRAGGLERS)

    # ------------------------------------------------------------------
    # crash triggers (scheduler chunk-loop seam)
    # ------------------------------------------------------------------
    def on_chunk_created(self, machine_id: int, now: float) -> None:
        """Advance the machine's chunk clock; raise if a trigger fires."""
        self._chunk_counts[machine_id] += 1
        count = self._chunk_counts[machine_id]
        for index, crash in enumerate(self.plan.crashes):
            if crash.machine != machine_id or index in self._fired:
                continue
            chunk_hit = crash.at_chunk is not None and count >= crash.at_chunk
            time_hit = crash.at_time is not None and now >= crash.at_time
            if chunk_hit or time_hit:
                self._fired.add(index)
                self.crashes += 1
                self._m_crashes.inc()
                raise MachineCrashError(machine_id, crash.describe())

    # ------------------------------------------------------------------
    # transient fetch failures (network seam)
    # ------------------------------------------------------------------
    def fetch_failures_for(
        self, requester: int, owner: int
    ) -> tuple[int, float]:
        """Decide how often one fetch fails before succeeding.

        Returns ``(failures, backoff_seconds)``; raises
        :class:`FetchFailedError` once the retry budget is exhausted.
        Each failed attempt waits ``backoff_base * factor**i`` simulated
        seconds before the next try (exponential backoff).
        """
        p = self.plan.flaky_p
        if p <= 0.0:
            return 0, 0.0
        failures = 0
        backoff = 0.0
        while self._rng.random() < p:
            failures += 1
            self.fetch_failures += 1
            self._m_fetch_failures.inc()
            if failures > self.plan.max_retries:
                raise FetchFailedError(requester, owner, failures)
            backoff += (
                self.plan.backoff_base
                * self.plan.backoff_factor ** (failures - 1)
            )
        return failures, backoff

    # ------------------------------------------------------------------
    # straggler degradation (scheduler timing seam)
    # ------------------------------------------------------------------
    def slowdown(self, machine_id: int) -> float:
        """Compute/link stretch factor for ``machine_id`` (1.0 = healthy)."""
        factor = 1.0
        for straggler in self.plan.stragglers:
            if straggler.machine == machine_id:
                factor = max(factor, straggler.factor)
        if factor > 1.0 and machine_id not in self._noted_stragglers:
            self._noted_stragglers.add(machine_id)
            self.stragglers_noted += 1
            self._m_stragglers.inc()
        return factor

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        return {
            "crashes": self.crashes,
            "fetch_failures": self.fetch_failures,
            "stragglers": self.stragglers_noted,
        }
