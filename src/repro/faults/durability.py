"""Durable chunk-granular checkpoints: kill the process, keep the work.

The in-memory recovery layer (:mod:`repro.faults.recovery`) survives
*simulated* machine crashes and (via the process backend) real worker
deaths — but a dead parent process still lost every completed chunk.
This module persists the recovery cursor to disk so a killed run can
restart with ``--resume`` and skip everything it already finished,
producing bit-identical final counts to an uninterrupted run
(docs/faults.md, "Durability").

On-disk layout under ``--checkpoint-dir``:

``manifest.json``
    Versioned fingerprint of the run: graph content (CRC32 of the CSR
    arrays), every schedule (pattern edges/labels, matching order,
    restrictions), the count-relevant engine and cluster configuration,
    and the job identity. Written atomically (tmp + rename) when a
    checkpointed run starts; ``--resume`` refuses a directory whose
    manifest does not match the current run exactly — a stale
    checkpoint (changed graph seed/scale, different pattern, different
    partitioning) must never be silently replayed into wrong counts.

``chunks.log``
    Append-only completed-root-chunk records, one JSON object per line
    prefixed with its own CRC32. Each record carries the *absolute*
    per-(pattern, machine) cursor — roots completed and matches found —
    so replaying the log is idempotent and a resumed run can itself be
    checkpointed and resumed again. Loading tolerates truncation: a
    torn or corrupt tail line (the one a SIGKILL interrupted) ends the
    replay at the last intact record instead of failing the resume.

``aggregates.json``
    Partial aggregates snapshot, rewritten atomically at every flush:
    per-pattern counts derived from the progress map, the pickled
    mergeable UDF state (inline backend only), and a metrics dump when
    observability is enabled.

Cadence: ``--checkpoint-every N`` makes every N-th completed root
chunk durable (log append + fsync + snapshot rewrite). Records between
flushes are buffered in memory — work since the last flush is the only
work a kill can lose, and the resumed run simply redoes it.

Chaos hook: when ``REPRO_CHAOS=parent-kill:<n>`` is set in the
environment, the process SIGKILLs itself right after its ``n``-th
durable flush. This is how ``benchmarks/chaos.py`` kills real runs at
a deterministic checkpoint without timing races.
"""

from __future__ import annotations

import base64
import json
import os
import signal
import zlib
from typing import Callable, Optional

from repro.errors import ConfigurationError

#: bump when the on-disk layout changes; mismatches reject the resume
FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"
LOG_NAME = "chunks.log"
SNAPSHOT_NAME = "aggregates.json"
#: shared-memory segment names of an in-flight process-backend run;
#: lets a resumed run unlink segments a SIGKILLed parent leaked
SHM_NAME = "shm.json"

#: environment variable the chaos harness uses for deterministic kills
CHAOS_ENV = "REPRO_CHAOS"


# ---------------------------------------------------------------------
# manifest fingerprinting
# ---------------------------------------------------------------------
def _crc_bytes(data) -> int:
    return zlib.crc32(bytes(data)) & 0xFFFFFFFF


def _graph_fingerprint(graph) -> dict:
    return {
        "num_vertices": int(graph.num_vertices),
        "num_edges": int(graph.num_edges),
        "indptr_crc": _crc_bytes(graph.indptr.tobytes()),
        "indices_crc": _crc_bytes(graph.indices.tobytes()),
        "labels_crc": (
            _crc_bytes(graph.labels.tobytes())
            if graph.labels is not None else None
        ),
    }


def _schedule_fingerprint(schedule) -> dict:
    pattern = schedule.pattern
    return {
        "pattern_vertices": pattern.num_vertices,
        "pattern_edges": sorted(map(list, pattern.edges)),
        "pattern_labels": (
            list(map(int, pattern.labels))
            if pattern.labels is not None else None
        ),
        "order": list(schedule.order),
        "induced": schedule.induced,
        "restrictions": sorted(map(list, schedule.restrictions)),
    }


def run_manifest(cluster, schedules, config, system: str, app: str,
                 graph_name: str) -> dict:
    """The identity of one checkpointed run, backend-independent.

    Everything that could change which chunks exist or what they count
    is fingerprinted; the execution backend is deliberately *not* — a
    run checkpointed inline may resume under the process backend and
    vice versa (both walk the same deterministic chunk sequence).
    """
    return {
        "format": FORMAT_VERSION,
        "system": system,
        "app": app,
        "graph_name": graph_name,
        "graph": _graph_fingerprint(cluster.graph),
        "schedules": [_schedule_fingerprint(s) for s in schedules],
        "cluster": {
            "num_machines": cluster.config.num_machines,
            "cores_per_machine": cluster.config.cores_per_machine,
            "sockets_per_machine": cluster.config.sockets_per_machine,
            "memory_bytes": cluster.config.memory_bytes,
        },
        "engine": {
            "chunk_bytes": config.chunk_bytes,
            "vcs": config.vcs,
            "hds": config.hds,
            "hds_slots": config.hds_slots,
            "hds_chaining": config.hds_chaining,
            "circulant": config.circulant,
            "auto_fit_chunks": config.auto_fit_chunks,
            "cache_fraction": config.cache_fraction,
            "cache_policy": str(config.cache_policy.value),
            "cache_degree_threshold": config.cache_degree_threshold,
            "numa_aware": config.numa_aware,
            "extend_mode": config.extend_mode,
            "time_budget": config.time_budget,
        },
    }


def _diff_keys(expected: dict, found: dict, prefix: str = "") -> list[str]:
    """Dotted paths where two manifest trees disagree."""
    diffs = []
    for key in sorted(set(expected) | set(found)):
        path = f"{prefix}{key}"
        left, right = expected.get(key), found.get(key)
        if isinstance(left, dict) and isinstance(right, dict):
            diffs.extend(_diff_keys(left, right, prefix=f"{path}."))
        elif left != right:
            diffs.append(path)
    return diffs


# ---------------------------------------------------------------------
# atomic file helpers
# ---------------------------------------------------------------------
def _write_atomic(path: str, payload: str) -> None:
    """tmp + fsync + rename: readers see the old file or the new one,
    never a torn write — the property the parent-kill chaos scenario
    exercises."""
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _chaos_parent_kill_threshold() -> Optional[int]:
    spec = os.environ.get(CHAOS_ENV, "")
    if spec.startswith("parent-kill:"):
        try:
            return int(spec.split(":", 1)[1])
        except ValueError:
            return None
    return None


# ---------------------------------------------------------------------
# shared-memory leak ledger (process backend)
# ---------------------------------------------------------------------
def write_shm_names(directory: str, names: list[str]) -> None:
    """Record the live segment names of a checkpointed process run."""
    _write_atomic(os.path.join(directory, SHM_NAME),
                  json.dumps({"segments": names}))


def clear_shm_names(directory: str) -> None:
    try:
        os.remove(os.path.join(directory, SHM_NAME))
    except OSError:
        pass


def reap_stale_segments(directory: str) -> int:
    """Unlink segments a previous (killed) run recorded; returns how
    many were actually reclaimed. Best effort: a name that no longer
    exists is the common case after a clean exit."""
    path = os.path.join(directory, SHM_NAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            names = json.load(handle).get("segments", [])
    except (OSError, ValueError):
        return 0
    from multiprocessing import shared_memory

    reaped = 0
    for name in names:
        try:
            segment = shared_memory.SharedMemory(name=name)
        except (FileNotFoundError, OSError):
            continue
        try:
            segment.unlink()
            reaped += 1
        except (FileNotFoundError, OSError):
            pass
        finally:
            try:
                segment.close()
            except (OSError, BufferError):
                pass
    clear_shm_names(directory)
    return reaped


# ---------------------------------------------------------------------
# the checkpoint session
# ---------------------------------------------------------------------
class CheckpointSession:
    """One run's durable checkpoint state under ``--checkpoint-dir``.

    The caller owns the cadence contract: ``record`` once per completed
    root chunk (absolute per-(pattern, machine) cursor), and the
    session makes every ``every``-th record durable. ``finalize`` at
    the end of the run flushes whatever is still buffered.

    ``snapshot_extra`` may be set to a zero-argument callable returning
    ``{"udf": bytes | None, "metrics": dict | None}``; it is invoked at
    each flush so the aggregates snapshot stays consistent with the
    progress map (the inline engine is single-threaded, so UDF state at
    a root-chunk boundary is exactly the completed work).
    """

    def __init__(self, directory: str, manifest: dict, num_patterns: int,
                 every: int = 1, resume: bool = False):
        if every < 1:
            raise ConfigurationError("checkpoint_every must be >= 1")
        self.directory = directory
        self.manifest = manifest
        self.num_patterns = num_patterns
        self.every = every
        self.resumed = resume
        #: absolute cursor per (pattern, machine): (roots, matches)
        self.progress: dict[tuple[int, int], tuple[int, int]] = {}
        #: the progress map as of the last durable snapshot — the state
        #: a UDF resume must cap at (UDF bytes and skipped work must
        #: describe exactly the same prefix)
        self.snapshot_progress: dict[tuple[int, int], tuple[int, int]] = {}
        self.snapshot_udf: Optional[bytes] = None
        self.snapshot_extra: Optional[Callable[[], dict]] = None
        self.records_written = 0
        self.records_resumed = 0
        self.flushes = 0
        self.truncated = False
        self._buffer: list[tuple[int, int, int, int]] = []
        self._since_flush = 0
        self._chaos_kill_after = _chaos_parent_kill_threshold()

        os.makedirs(directory, exist_ok=True)
        if resume:
            self._load()
        else:
            self._initialize()

    # -- startup -------------------------------------------------------
    def _initialize(self) -> None:
        _write_atomic(self._path(MANIFEST_NAME),
                      json.dumps(self.manifest, sort_keys=True, indent=1))
        for stale in (LOG_NAME, SNAPSHOT_NAME):
            try:
                os.remove(self._path(stale))
            except OSError:
                pass

    def _load(self) -> None:
        manifest_path = self._path(MANIFEST_NAME)
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                found = json.load(handle)
        except OSError:
            raise ConfigurationError(
                f"--resume: no checkpoint manifest under "
                f"{self.directory!r} (nothing to resume)"
            ) from None
        except ValueError as exc:
            raise ConfigurationError(
                f"--resume: unreadable checkpoint manifest: {exc}"
            ) from None
        if found.get("format") != FORMAT_VERSION:
            raise ConfigurationError(
                f"--resume: checkpoint format "
                f"{found.get('format')!r} does not match this build's "
                f"format {FORMAT_VERSION}"
            )
        diffs = _diff_keys(self.manifest, found)
        if diffs:
            raise ConfigurationError(
                "--resume: stale checkpoint rejected — the saved run "
                "differs from this one at: " + ", ".join(diffs) +
                " (same graph/pattern/config required; start fresh "
                "without --resume to discard it)"
            )
        self._load_log()
        self._load_snapshot()
        self.records_resumed = len(self.progress)

    def _load_log(self) -> None:
        try:
            with open(self._path(LOG_NAME), "rb") as handle:
                raw = handle.read()
        except OSError:
            return
        for line in raw.split(b"\n"):
            if not line:
                continue
            record = _parse_log_line(line)
            if record is None:
                # torn tail from a mid-append kill: everything before
                # it is intact, everything after it is untrusted
                self.truncated = True
                break
            pattern, machine, roots, matches = record
            self._advance(pattern, machine, roots, matches)

    def _load_snapshot(self) -> None:
        try:
            with open(self._path(SNAPSHOT_NAME), "r",
                      encoding="utf-8") as handle:
                snapshot = json.load(handle)
        except (OSError, ValueError):
            return  # killed before the first snapshot: log-only resume
        for key, value in snapshot.get("progress", {}).items():
            pattern_s, machine_s = key.split(":")
            self.snapshot_progress[(int(pattern_s), int(machine_s))] = (
                int(value[0]), int(value[1])
            )
        udf_b64 = snapshot.get("udf")
        if udf_b64 is not None:
            self.snapshot_udf = base64.b64decode(udf_b64)

    # -- recording -----------------------------------------------------
    def _advance(self, pattern: int, machine: int, roots: int,
                 matches: int) -> None:
        key = (pattern, machine)
        current = self.progress.get(key)
        if current is None or roots > current[0]:
            self.progress[key] = (roots, matches)

    def record(self, pattern: int, machine: int, roots_completed: int,
               matches: int) -> None:
        """One completed root chunk (absolute cursor); flushes on cadence."""
        self._advance(pattern, machine, roots_completed, matches)
        self._buffer.append((pattern, machine, roots_completed, matches))
        self._since_flush += 1
        if self._since_flush >= self.every:
            self.flush()

    def flush(self) -> None:
        """Make buffered records durable: log append + snapshot rewrite."""
        if not self._buffer:
            return
        with open(self._path(LOG_NAME), "ab") as handle:
            for record in self._buffer:
                handle.write(_format_log_line(*record))
            handle.flush()
            os.fsync(handle.fileno())
        self.records_written += len(self._buffer)
        self._buffer.clear()
        self._since_flush = 0
        self._write_snapshot()
        self.flushes += 1
        if (self._chaos_kill_after is not None
                and self.flushes >= self._chaos_kill_after):
            os.kill(os.getpid(), signal.SIGKILL)

    def _write_snapshot(self) -> None:
        extra = self.snapshot_extra() if self.snapshot_extra else {}
        udf_bytes = extra.get("udf")
        snapshot = {
            "format": FORMAT_VERSION,
            "progress": {
                f"{pattern}:{machine}": [roots, matches]
                for (pattern, machine), (roots, matches)
                in sorted(self.progress.items())
            },
            "counts": self.counts(),
            "udf": (base64.b64encode(udf_bytes).decode("ascii")
                    if udf_bytes is not None else None),
            "metrics": extra.get("metrics"),
        }
        _write_atomic(self._path(SNAPSHOT_NAME), json.dumps(snapshot))
        self.snapshot_progress = dict(self.progress)

    def finalize(self) -> None:
        self.flush()

    # -- resume --------------------------------------------------------
    def resume_state(self, with_udf: bool = False) -> dict:
        """The per-(pattern, machine) cursor a resumed run starts from.

        Count-only runs trust the full log (counts are additive, every
        intact record is usable). A UDF resume is capped at the last
        snapshot: the restored UDF bytes describe exactly the
        snapshot's progress, so skipping any further chunk would drop
        its UDF calls.
        """
        source = self.snapshot_progress if with_udf else self.progress
        return dict(source)

    def counts(self) -> list[int]:
        """Per-pattern match totals implied by the progress map."""
        totals = [0] * self.num_patterns
        for (pattern, _machine), (_roots, matches) in self.progress.items():
            if 0 <= pattern < self.num_patterns:
                totals[pattern] += matches
        return totals

    def stats(self) -> dict:
        return {
            "dir": self.directory,
            "every": self.every,
            "records": self.records_written,
            "flushes": self.flushes,
            "resumed": self.resumed,
            "resumed_entries": self.records_resumed,
            "resumed_roots": sum(
                roots for roots, _ in self.progress.values()
            ) if self.resumed else 0,
            "log_truncated": self.truncated,
        }

    def _path(self, name: str) -> str:
        return os.path.join(self.directory, name)


# ---------------------------------------------------------------------
# log line codec: "<crc32 hex> <json>\n"
# ---------------------------------------------------------------------
def _format_log_line(pattern: int, machine: int, roots: int,
                     matches: int) -> bytes:
    body = json.dumps(
        {"p": pattern, "m": machine, "r": roots, "c": matches},
        separators=(",", ":"),
    ).encode("utf-8")
    return b"%08x %s\n" % (zlib.crc32(body) & 0xFFFFFFFF, body)


def _parse_log_line(line: bytes):
    """(pattern, machine, roots, matches), or None for a corrupt line."""
    parts = line.split(b" ", 1)
    if len(parts) != 2 or len(parts[0]) != 8:
        return None
    crc_text, body = parts
    try:
        expected = int(crc_text, 16)
    except ValueError:
        return None
    if zlib.crc32(body) & 0xFFFFFFFF != expected:
        return None
    try:
        record = json.loads(body)
        return (int(record["p"]), int(record["m"]),
                int(record["r"]), int(record["c"]))
    except (ValueError, KeyError, TypeError):
        return None
