"""Fault plans: a declarative, hashable description of what goes wrong.

A plan is data, not behaviour — the :class:`~repro.faults.FaultInjector`
interprets it at run time. Plans parse from the compact spec strings the
CLI accepts (``--faults "crash:m1@chunk=2;flaky:p=0.05"``); see
:meth:`FaultPlan.parse` for the grammar.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError

_MACHINE = re.compile(r"^m(\d+)$")


@dataclass(frozen=True)
class CrashFault:
    """Kill one machine at a chunk index or a simulated time.

    ``at_chunk`` counts the machine's chunk *creations* within one
    scheduler run (1-based: ``at_chunk=2`` fires as the machine starts
    its second chunk); ``at_time`` compares against the machine's
    simulated clock. Exactly one of the two must be set.
    """

    machine: int
    at_chunk: Optional[int] = None
    at_time: Optional[float] = None

    def __post_init__(self):
        if (self.at_chunk is None) == (self.at_time is None):
            raise ConfigurationError(
                "crash fault needs exactly one of chunk=N or t=SECONDS"
            )
        if self.at_chunk is not None and self.at_chunk < 1:
            raise ConfigurationError("crash chunk index is 1-based")

    def describe(self) -> str:
        if self.at_chunk is not None:
            return f"crash:m{self.machine}@chunk={self.at_chunk}"
        return f"crash:m{self.machine}@t={self.at_time:g}"


@dataclass(frozen=True)
class StragglerFault:
    """Degrade one machine: its compute and link time stretch by ``factor``."""

    machine: int
    factor: float

    def __post_init__(self):
        if self.factor < 1.0:
            raise ConfigurationError("straggler factor must be >= 1.0")

    def describe(self) -> str:
        return f"slow:m{self.machine}@x={self.factor:g}"


@dataclass(frozen=True)
class FaultPlan:
    """Everything the injector needs, in one immutable value.

    ``flaky_p`` is the per-fetch probability that a remote edge-list
    request fails transiently and must be retried; ``seed`` drives the
    RNG behind those coin flips, so the same plan against the same run
    produces the same faults. ``max_retries`` bounds retries per fetch
    before the run degrades; backoff for the i-th retry is
    ``backoff_base * backoff_factor**(i-1)`` simulated seconds.
    """

    crashes: tuple[CrashFault, ...] = ()
    flaky_p: float = 0.0
    stragglers: tuple[StragglerFault, ...] = ()
    seed: int = 0
    max_retries: int = 4
    backoff_base: float = 1e-4
    backoff_factor: float = 2.0

    def __post_init__(self):
        if not 0.0 <= self.flaky_p <= 1.0:
            raise ConfigurationError("flaky probability must be in [0, 1]")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.backoff_base < 0.0 or self.backoff_factor < 1.0:
            raise ConfigurationError("backoff must be non-negative/growing")

    @property
    def empty(self) -> bool:
        return not (self.crashes or self.stragglers or self.flaky_p > 0.0)

    def describe(self) -> str:
        parts = [c.describe() for c in self.crashes]
        if self.flaky_p > 0.0:
            parts.append(f"flaky:p={self.flaky_p:g}")
        parts.extend(s.describe() for s in self.stragglers)
        return ";".join(parts) or "(no faults)"

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a CLI fault spec.

        Grammar (clauses joined by ``;``, whitespace ignored)::

            crash:mID@chunk=N      kill machine ID at its N-th chunk
            crash:mID@t=SECONDS    kill machine ID at simulated time
            flaky:p=P              each remote fetch fails with prob. P
            slow:mID@x=FACTOR      machine ID runs FACTOR times slower
            seed:N                 RNG seed for the flaky coin flips
            retries:N              max retries before a fetch gives up

        Example: ``crash:m1@chunk=2;flaky:p=0.05;slow:m2@x=3``.
        """
        crashes: list[CrashFault] = []
        stragglers: list[StragglerFault] = []
        flaky_p = 0.0
        seed = 0
        max_retries = 4
        for raw in spec.split(";"):
            clause = raw.strip()
            if not clause:
                continue
            kind, _, body = clause.partition(":")
            kind = kind.strip().lower()
            body = body.strip()
            try:
                if kind == "crash":
                    crashes.append(_parse_crash(body))
                elif kind == "flaky":
                    flaky_p = _parse_kv(body, "p", float)
                elif kind in ("slow", "straggler"):
                    stragglers.append(_parse_straggler(body))
                elif kind == "seed":
                    seed = int(body)
                elif kind == "retries":
                    max_retries = int(body)
                else:
                    raise ConfigurationError(
                        f"unknown fault clause {kind!r}"
                    )
            except (ValueError, ConfigurationError) as exc:
                raise ConfigurationError(
                    f"bad fault clause {clause!r}: {exc}"
                ) from None
        return cls(
            crashes=tuple(crashes),
            flaky_p=flaky_p,
            stragglers=tuple(stragglers),
            seed=seed,
            max_retries=max_retries,
        )


def _parse_machine(token: str) -> int:
    match = _MACHINE.match(token.strip())
    if match is None:
        raise ConfigurationError(f"expected mID, got {token!r}")
    return int(match.group(1))


def _parse_kv(body: str, key: str, cast):
    name, _, value = body.partition("=")
    if name.strip() != key or not value:
        raise ConfigurationError(f"expected {key}=VALUE, got {body!r}")
    return cast(value.strip())


def _parse_crash(body: str) -> CrashFault:
    machine_token, _, trigger = body.partition("@")
    machine = _parse_machine(machine_token)
    key, _, value = trigger.partition("=")
    key = key.strip()
    if key == "chunk":
        return CrashFault(machine, at_chunk=int(value))
    if key == "t":
        return CrashFault(machine, at_time=float(value))
    raise ConfigurationError(f"crash trigger must be chunk=N or t=S, got {trigger!r}")


def _parse_straggler(body: str) -> StragglerFault:
    machine_token, _, trigger = body.partition("@")
    machine = _parse_machine(machine_token)
    return StragglerFault(machine, _parse_kv(trigger, "x", float))
