"""Recovery primitives: outcomes, failure summaries, checkpoints.

These are the data types the engine uses to *survive* what the
injector does. They live in the leaf ``repro.faults`` package so that
``core.runtime`` (the :class:`RunReport`) can carry a
:class:`FailureSummary` without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

import numpy as np


class Outcome(str, Enum):
    """How a run that met a fault ended (Table 2/3's cell vocabulary,
    extended with the recovery outcomes this engine adds)."""

    #: a machine died and recovery was off (or no survivors remained)
    CRASHED = "CRASHED"
    #: a simulated machine exceeded its memory capacity
    OUTOFMEM = "OUTOFMEM"
    #: the simulated-time budget was exceeded
    TIMEOUT = "TIMEOUT"
    #: a remote fetch exhausted its retries; counts are partial
    DEGRADED = "DEGRADED"
    #: the mining service declined to run the query at all (admission
    #: cap exceeded, malformed request, or shutdown drain); no partial
    #: work exists (docs/service.md)
    REJECTED = "REJECTED"
    #: faults were injected, work was reassigned, counts are complete
    RECOVERED = "RECOVERED"

    def __str__(self) -> str:  # json/format friendliness
        return self.value


@dataclass
class FailureSummary:
    """Structured account of what went wrong (and what survived).

    Attached to :class:`~repro.core.runtime.RunReport` instead of
    raising, so callers always get the partial measurements. ``partial``
    is ``False`` only for :data:`Outcome.RECOVERED`, whose counts are
    provably complete (the determinism tests pin this).
    """

    outcome: Outcome
    machine_id: Optional[int] = None
    message: str = ""
    simulated_seconds: float = 0.0
    partial: bool = True
    #: one dict per fault event ({"kind", "machine", "trigger", ...})
    events: list[dict[str, Any]] = field(default_factory=list)

    @property
    def fatal(self) -> bool:
        return self.outcome is not Outcome.RECOVERED

    def to_dict(self) -> dict[str, Any]:
        return {
            "outcome": self.outcome.value,
            "machine_id": self.machine_id,
            "message": self.message,
            "simulated_seconds": self.simulated_seconds,
            "partial": self.partial,
            "events": list(self.events),
        }


@dataclass
class Checkpoint:
    """A machine's enumeration cursor at the last completed root chunk.

    Khuzdul's DFS-between-chunks discipline empties the whole stack
    every time a root chunk's subtree is exhausted, so the root-chunk
    boundary is the natural recovery point: nothing below it is live.
    ``roots_completed`` counts fully-explored roots (a prefix of the
    scheduler's root array), ``matches`` is the match total *at that
    boundary* — work past the checkpoint is discarded on a crash and
    replayed by the survivors, which is what keeps recovered counts
    exact.
    """

    machine_id: int = 0
    roots_completed: int = 0
    matches: int = 0
    #: cumulative chunks the scheduler had created at the boundary
    chunk_index: int = 0
    simulated_seconds: float = 0.0


def worker_death_event(
    worker: int, machines: list[int], reason: str, reexecuted: bool
) -> dict[str, Any]:
    """Event-log entry for one real worker-process death.

    Same vocabulary as the simulated ``crash`` events: a dict on
    ``FailureSummary.events``. ``machines`` are the simulated machines
    the worker hosted; ``reexecuted`` records whether their work was
    replayed (the process backend's ``on_worker_death=recover`` path)
    or lost with the run (``fail``).
    """
    return {
        "kind": "worker_death",
        "worker": int(worker),
        "machines": [int(m) for m in machines],
        "reason": reason,
        "reexecuted": bool(reexecuted),
    }


def worker_loss_summary(
    events: list[dict[str, Any]], recovered: bool
) -> FailureSummary:
    """The :class:`FailureSummary` for real worker-process deaths.

    ``recovered=True`` (the ``on_worker_death=recover`` policy
    re-executed every lost worker's hosted machines through the
    deterministic inline path) yields :data:`Outcome.RECOVERED` with
    ``partial=False`` — the counts are provably complete, exactly like
    simulated crash recovery. ``recovered=False`` yields a partial
    :data:`Outcome.CRASHED` report.
    """
    lost = sorted({e["worker"] for e in events})
    machine_id = None
    for event in events:
        if event["machines"]:
            machine_id = event["machines"][0]
            break
    if recovered:
        return FailureSummary(
            Outcome.RECOVERED,
            machine_id=machine_id,
            message=(
                f"recovered: worker process(es) {lost} died; their "
                f"hosted machines were re-executed deterministically; "
                f"counts are complete"
            ),
            partial=False,
            events=list(events),
        )
    reasons = "; ".join(
        f"worker {e['worker']}: {e['reason']}" for e in events
    )
    return FailureSummary(
        Outcome.CRASHED,
        machine_id=machine_id,
        message=f"worker process(es) {lost} died ({reasons})",
        partial=True,
        events=list(events),
    )


def split_roots(
    roots: np.ndarray, survivors: list[int]
) -> list[tuple[int, np.ndarray]]:
    """Deterministic round-robin reassignment of orphaned roots.

    Survivor ``survivors[i]`` receives ``roots[i::len(survivors)]``;
    the list order (ascending machine id) makes the decision a pure
    function of (roots, survivor set), which the determinism test
    relies on.
    """
    if len(roots) == 0:
        return []
    ordered = sorted(survivors)
    return [
        (machine, roots[i::len(ordered)])
        for i, machine in enumerate(ordered)
        if len(roots[i::len(ordered)])
    ]
