"""Deterministic fault injection and chunk-granular recovery.

The fault subsystem exercises the engine's failure paths the same way
the cost model exercises its timing: everything is seeded and
simulated, so a fault run is exactly as reproducible as a fault-free
one. A :class:`FaultPlan` (parsed from the CLI's ``--faults`` spec or
built directly) describes *what* goes wrong; a :class:`FaultInjector`
decides *when*, at the two seams where the engine touches shared
state — ``NetworkModel.record_fetch`` (transient fetch failures,
retried with exponential backoff) and the ``MachineScheduler`` chunk
loop (machine crashes, straggler slowdown).

Recovery is chunk-granular: the scheduler checkpoints its enumeration
cursor at every completed root chunk, so when a machine dies the
engine replays only the dead machine's unfinished roots on the
survivors. See ``docs/faults.md`` for the fault model, the spec
grammar, and the recovery semantics.

This package is a leaf layer: it imports only ``repro.errors`` and
``repro.obs`` so that both ``cluster`` and ``core`` may depend on it.
"""

from repro.faults.durability import CheckpointSession, run_manifest
from repro.faults.injector import FaultInjector
from repro.faults.plan import CrashFault, FaultPlan, StragglerFault
from repro.faults.recovery import (
    Checkpoint,
    FailureSummary,
    Outcome,
    worker_death_event,
    worker_loss_summary,
)

__all__ = [
    "Checkpoint",
    "CheckpointSession",
    "CrashFault",
    "FailureSummary",
    "FaultInjector",
    "FaultPlan",
    "Outcome",
    "StragglerFault",
    "run_manifest",
    "worker_death_event",
    "worker_loss_summary",
]
