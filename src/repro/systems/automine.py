"""k-Automine: Automine ported onto the Khuzdul engine.

Automine compiles a pattern into nested loops following a greedy
connectivity heuristic; the port reuses that compiler to emit EXTEND
schedules (paper Section 6: "k-Automine is modified from our own
Automine implementation AutomineIH").
"""

from __future__ import annotations

from repro.patterns.pattern import Pattern
from repro.patterns.schedule import Schedule, automine_schedule
from repro.systems.ported import PortedSystem


class KAutomine(PortedSystem):
    """Distributed Automine on Khuzdul."""

    name = "k-automine"

    def build_schedule(
        self, pattern: Pattern, induced: bool, use_restrictions: bool = True
    ) -> Schedule:
        return automine_schedule(pattern, induced, use_restrictions)
