"""Frequent subgraph mining with MNI support (paper Section 7.2).

FSM discovers all labeled patterns whose support is at least a
user-given threshold, where support is the minimum-node-image (MNI)
measure [Bringmann & Nijssen]: the smallest, over pattern vertices, of
the number of distinct data vertices that vertex maps to. MNI is
anti-monotone, so the classic level-wise search applies: start from
frequent single-edge patterns, grow one edge at a time (following the
paper/Peregrine setup, only patterns with at most three edges), prune
by downward closure, and count supports of the survivors with the
underlying GPM system.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.runtime import RunReport
from repro.errors import ConfigurationError
from repro.patterns.canonical import canonical_code
from repro.patterns.generation import grow_pattern, single_edge_patterns
from repro.patterns.pattern import Pattern
from repro.systems.base import GPMSystem, merge_reports


@dataclass
class FsmResult:
    """Outcome of one FSM run."""

    frequent: list[tuple[Pattern, int]]
    report: RunReport
    rounds: int
    candidates_evaluated: int = 0
    #: supports of every evaluated candidate, keyed by canonical code
    all_supports: dict = field(default_factory=dict)


def _shrink_codes(pattern: Pattern) -> list[tuple]:
    """Canonical codes of connected one-edge-removed subpatterns."""
    codes = []
    for edge in pattern.edges:
        remaining = [e for e in pattern.edges if e != edge]
        touched = {v for e in remaining for v in e}
        if len(touched) < pattern.num_vertices:
            # removing the edge isolated a vertex: drop it and relabel
            keep = sorted(touched)
            if not keep:
                continue
            index = {v: i for i, v in enumerate(keep)}
            edges = [(index[u], index[v]) for u, v in remaining]
            labels = None
            if pattern.labels is not None:
                labels = [pattern.labels[v] for v in keep]
            sub = Pattern(len(keep), edges, labels)
        else:
            sub = Pattern(pattern.num_vertices, remaining, pattern.labels)
        if sub.is_connected():
            codes.append(canonical_code(sub))
    return codes


def run_fsm(
    system: GPMSystem,
    threshold: int,
    max_edges: int = 3,
) -> FsmResult:
    """Mine all frequent labeled patterns with at most ``max_edges`` edges."""
    graph = getattr(system, "graph", None)
    if graph is None or graph.labels is None:
        raise ConfigurationError("FSM requires a system over a labeled graph")
    label_set = set(int(x) for x in graph.labels)

    reports: list[RunReport] = []
    frequent: list[tuple[Pattern, int]] = []
    frequent_codes: set[tuple] = set()
    evaluated: dict[tuple, int] = {}

    def count_batch(patterns: list[Pattern]) -> list[int]:
        supports, report = system.mni_supports(patterns)
        reports.append(report)
        for pattern, support in zip(patterns, supports):
            evaluated[canonical_code(pattern)] = support
        return supports

    # round 1: single-edge seeds
    seeds = single_edge_patterns(label_set)
    supports = count_batch(seeds)
    frontier: list[Pattern] = []
    for pattern, support in zip(seeds, supports):
        if support >= threshold:
            frequent.append((pattern, support))
            frequent_codes.add(canonical_code(pattern))
            frontier.append(pattern)
    rounds = 1

    # grow one edge per round, up to max_edges
    while frontier:
        candidates: dict[tuple, Pattern] = {}
        for pattern in frontier:
            if pattern.num_edges >= max_edges:
                continue
            for grown in grow_pattern(pattern, label_set):
                code = canonical_code(grown)
                if code in evaluated or code in candidates:
                    continue
                # downward closure: every frequent subpattern must be known
                # frequent, otherwise the candidate cannot be frequent.
                if any(
                    sub_code in evaluated and sub_code not in frequent_codes
                    for sub_code in _shrink_codes(grown)
                ):
                    continue
                candidates[code] = grown
        if not candidates:
            break
        batch = list(candidates.values())
        supports = count_batch(batch)
        frontier = []
        for pattern, support in zip(batch, supports):
            if support >= threshold:
                frequent.append((pattern, support))
                frequent_codes.add(canonical_code(pattern))
                frontier.append(pattern)
        rounds += 1

    merged = merge_reports(
        reports,
        system=system.name,
        app=f"FSM(t={threshold})",
        graph_name=system.graph_name,
        counts=len(frequent),
    )
    return FsmResult(
        frequent=frequent,
        report=merged,
        rounds=rounds,
        candidates_evaluated=len(evaluated),
        all_supports=dict(evaluated),
    )
