"""The paper's application families, uniform over any GPM system.

Triangle Counting (TC), k-Clique Counting (k-CC), and k-Motif Counting
(k-MC) from Section 7.1. FSM lives in :mod:`repro.systems.fsm`.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import permutations

from repro.core.runtime import RunReport
from repro.patterns.canonical import canonical_code
from repro.patterns.catalog import clique, motifs, triangle
from repro.patterns.isomorphism import automorphisms
from repro.patterns.pattern import Pattern
from repro.systems.base import GPMSystem


def triangle_count(system: GPMSystem, oriented: bool = False) -> RunReport:
    """TC: count size-3 complete subgraphs."""
    return system.count_pattern(triangle(), oriented=oriented, app="TC")


def clique_count(system: GPMSystem, k: int, oriented: bool = False) -> RunReport:
    """k-CC: count embeddings of the k-clique pattern."""
    return system.count_pattern(clique(k), oriented=oriented, app=f"{k}-CC")


def motif_count(system: GPMSystem, k: int) -> RunReport:
    """k-MC: count embeddings of every size-k pattern (vertex-induced).

    The report's ``counts`` is a dict keyed by each motif's canonical
    code, so results are comparable across systems regardless of their
    matching orders.
    """
    patterns = motifs(k)
    counting = getattr(
        getattr(system, "engine_config", None), "counting", "enumerate"
    )
    if counting == "iep":
        # IEP plans require non-induced matching (the formula counts
        # over neighbor-list cardinalities, which cannot express
        # forbidden edges). Count every motif non-induced — where the
        # IEP terminal kernel applies — and convert the census to
        # vertex-induced counts with the exact integer overcount
        # matrix. Bit-identical to the induced=True route.
        report = system.count_patterns(patterns, induced=False,
                                       app=f"{k}-MC")
        counts = _induced_motif_counts(tuple(patterns),
                                       tuple(report.counts))
    else:
        report = system.count_patterns(patterns, induced=True,
                                       app=f"{k}-MC")
        counts = report.counts
    report.counts = {
        canonical_code(p): c for p, c in zip(patterns, counts)
    }
    return report


@lru_cache(maxsize=4096)
def _spanning_copies(sub: Pattern, sup: Pattern) -> int:
    """How many spanning subgraphs of ``sup`` are isomorphic to ``sub``.

    Injective edge-preserving bijections divided by ``|Aut(sub)|`` —
    exact: the orbit-stabilizer theorem guarantees the division has no
    remainder. Pattern sizes are tiny (``k! <= 120`` for the motif
    tiers), so brute force over permutations is fine.
    """
    k = sub.num_vertices
    if k != sup.num_vertices:
        return 0
    embeddings = sum(
        1
        for perm in permutations(range(k))
        if all(sup.has_edge(perm[u], perm[v]) for u, v in sub.edges)
    )
    return embeddings // len(automorphisms(sub))


def _induced_motif_counts(
    patterns: tuple[Pattern, ...], noninduced: tuple[int, ...]
) -> list[int]:
    """Solve the census conversion ``noninduced = C @ induced`` exactly.

    Every non-induced occurrence of motif ``H`` lives on a vertex set
    whose induced graph is some denser motif ``H'``, so
    ``noninduced(H) = sum_{H'} spanning_copies(H, H') * induced(H')``.
    The system is triangular in descending edge count
    (``spanning_copies(H, H) == 1``; distinct same-size motifs
    contribute zero), so back-substitution in Python ints is exact.
    """
    order = sorted(
        range(len(patterns)),
        key=lambda i: patterns[i].num_edges,
        reverse=True,
    )
    induced = [0] * len(patterns)
    for i in order:
        total = noninduced[i]
        for j in order:
            if patterns[j].num_edges > patterns[i].num_edges:
                total -= _spanning_copies(patterns[i], patterns[j]) * induced[j]
        induced[i] = total
    return induced
