"""The paper's application families, uniform over any GPM system.

Triangle Counting (TC), k-Clique Counting (k-CC), and k-Motif Counting
(k-MC) from Section 7.1. FSM lives in :mod:`repro.systems.fsm`.
"""

from __future__ import annotations

from repro.core.runtime import RunReport
from repro.patterns.canonical import canonical_code
from repro.patterns.catalog import clique, motifs, triangle
from repro.systems.base import GPMSystem


def triangle_count(system: GPMSystem, oriented: bool = False) -> RunReport:
    """TC: count size-3 complete subgraphs."""
    return system.count_pattern(triangle(), oriented=oriented, app="TC")


def clique_count(system: GPMSystem, k: int, oriented: bool = False) -> RunReport:
    """k-CC: count embeddings of the k-clique pattern."""
    return system.count_pattern(clique(k), oriented=oriented, app=f"{k}-CC")


def motif_count(system: GPMSystem, k: int) -> RunReport:
    """k-MC: count embeddings of every size-k pattern (vertex-induced).

    The report's ``counts`` is a dict keyed by each motif's canonical
    code, so results are comparable across systems regardless of their
    matching orders.
    """
    patterns = motifs(k)
    report = system.count_patterns(patterns, induced=True, app=f"{k}-MC")
    report.counts = {
        canonical_code(p): c for p, c in zip(patterns, report.counts)
    }
    return report
