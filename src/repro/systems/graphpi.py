"""k-GraphPi: GraphPi (single-node mode) ported onto the Khuzdul engine.

GraphPi's contribution is its cost-model-driven search over matching
orders and restriction sets; the port feeds that search with the input
graph's degree statistics and hands the winning order to Khuzdul as an
EXTEND schedule. Its better orders are why k-GraphPi beats k-Automine
on 3-motif counting in Table 2.
"""

from __future__ import annotations

from repro.patterns.pattern import Pattern
from repro.patterns.schedule import Schedule, graphpi_schedule
from repro.systems.ported import PortedSystem


class KGraphPi(PortedSystem):
    """Distributed GraphPi on Khuzdul."""

    name = "k-graphpi"

    def build_schedule(
        self, pattern: Pattern, induced: bool, use_restrictions: bool = True
    ) -> Schedule:
        graph = self.graph
        avg_degree = (
            graph.num_directed_edges / graph.num_vertices
            if graph.num_vertices
            else 1.0
        )
        return graphpi_schedule(
            pattern,
            induced,
            avg_degree=max(avg_degree, 1.0),
            num_vertices=max(float(graph.num_vertices), 2.0),
            use_restrictions=use_restrictions,
            counting=getattr(self.engine_config, "counting", "enumerate"),
        )
