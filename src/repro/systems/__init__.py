"""Client GPM systems built on the Khuzdul engine.

k-Automine and k-GraphPi are the paper's two ports of single-machine
systems onto Khuzdul: each contributes only its matching-order compiler
(the EXTEND-function generator); everything distributed comes from the
engine. :mod:`repro.systems.apps` wraps the four evaluated application
families (TC, k-CC, k-MC, FSM) uniformly over any system, and
:mod:`repro.systems.fsm` implements frequent subgraph mining with MNI
support on top of the per-system ``mni_supports`` primitive.
"""

from repro.systems.base import GPMSystem
from repro.systems.automine import KAutomine
from repro.systems.graphpi import KGraphPi
from repro.systems.apps import (
    clique_count,
    motif_count,
    triangle_count,
)
from repro.systems.fsm import FsmResult, run_fsm

__all__ = [
    "GPMSystem",
    "KAutomine",
    "KGraphPi",
    "triangle_count",
    "clique_count",
    "motif_count",
    "run_fsm",
    "FsmResult",
]
