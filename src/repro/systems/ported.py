"""Shared machinery of systems ported onto Khuzdul.

Porting a compilation-based single-machine GPM system onto Khuzdul
(paper Section 3.2) means teaching its compiler to emit EXTEND functions
instead of nested loops. Here a port therefore only supplies
``build_schedule`` — the matching-order compiler — and inherits the
whole distributed execution from :class:`PortedSystem`, mirroring the
~500-line porting effort the paper reports.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.core.engine import EngineConfig, KhuzdulEngine
from repro.core.runtime import RunReport
from repro.errors import ConfigurationError
from repro.graph.graph import Graph
from repro.graph.orientation import orient_by_degree
from repro.obs import NULL_OBS, Observability
from repro.patterns.catalog import clique
from repro.patterns.isomorphism import automorphisms, are_isomorphic
from repro.patterns.pattern import Pattern
from repro.patterns.schedule import Schedule
from repro.systems.base import GPMSystem, MniDomainCollector


class PortedSystem(GPMSystem):
    """A single-machine GPM system running distributed via Khuzdul."""

    name = "khuzdul-port"

    def __init__(
        self,
        graph: Graph,
        cluster_config: Optional[ClusterConfig] = None,
        engine_config: Optional[EngineConfig] = None,
        graph_name: str = "graph",
        obs: Optional[Observability] = None,
        backend=None,
    ):
        self.graph = graph
        self.graph_name = graph_name
        self.cluster_config = cluster_config or ClusterConfig()
        self.engine_config = engine_config or EngineConfig()
        #: observability bundle shared by every engine this system builds
        self.obs = obs
        #: execution backend shared by every engine this system builds
        #: (duck-typed — see repro.exec; None = the inline path)
        self.backend = backend
        self.cluster = Cluster(graph, self.cluster_config)
        self.engine = KhuzdulEngine(
            self.cluster, self.engine_config, obs=obs, backend=backend
        )
        self._oriented: Optional[tuple[Cluster, KhuzdulEngine]] = None

    def reconfigure(
        self,
        engine_config: Optional[EngineConfig] = None,
        obs: Optional[Observability] = None,
    ) -> "PortedSystem":
        """Rebind the per-run tunables of a *resident* system.

        The mining service (docs/service.md) keeps one system instance
        alive across queries so the expensive state — the partitioned
        cluster, and the lazily built oriented-DAG cluster — is paid
        once; what differs between two served queries is exactly the
        engine config (time budget, chunk size, extend mode) and the
        observability bundle (a fresh registry per query, for tenant
        isolation). ``obs=None`` disables observability, mirroring the
        constructor.
        """
        if engine_config is not None:
            self.engine_config = engine_config
            self.engine.config = engine_config
            if self._oriented is not None:
                self._oriented[1].config = engine_config
        self.obs = obs
        bound = obs if obs is not None else NULL_OBS
        self.engine.obs = bound
        if self._oriented is not None:
            self._oriented[1].obs = bound
        return self

    # -- the port-specific part -----------------------------------------
    def build_schedule(
        self, pattern: Pattern, induced: bool, use_restrictions: bool = True
    ) -> Schedule:
        """The matching-order compiler of the ported system."""
        raise NotImplementedError

    # --------------------------------------------------------------------
    def _oriented_engine(self) -> KhuzdulEngine:
        """Engine over the degree-oriented DAG (built lazily, cached)."""
        if self._oriented is None:
            dag = orient_by_degree(self.graph)
            cluster = Cluster(dag, self.cluster_config)
            self._oriented = (
                cluster,
                KhuzdulEngine(
                    cluster, self.engine_config,
                    obs=self.obs, backend=self.backend,
                ),
            )
        return self._oriented[1]

    def count_pattern(
        self,
        pattern: Pattern,
        induced: bool = False,
        oriented: bool = False,
        app: str = "pattern",
    ) -> RunReport:
        if oriented:
            if induced:
                raise ConfigurationError(
                    "orientation only applies to non-induced clique counting"
                )
            if not are_isomorphic(pattern, clique(pattern.num_vertices)):
                raise ConfigurationError(
                    "orientation preprocessing is only valid for cliques"
                )
            schedule = self.build_schedule(pattern, False, use_restrictions=False)
            engine = self._oriented_engine()
            return engine.run(
                schedule, system=self.name, app=app, graph_name=self.graph_name
            )
        schedule = self.build_schedule(pattern, induced)
        return self.engine.run(
            schedule, system=self.name, app=app, graph_name=self.graph_name
        )

    def count_patterns(
        self,
        patterns: Sequence[Pattern],
        induced: bool = True,
        app: str = "patterns",
    ) -> RunReport:
        schedules = [self.build_schedule(p, induced) for p in patterns]
        return self.engine.run_many(
            schedules, system=self.name, app=app, graph_name=self.graph_name
        )

    def mni_supports(
        self, patterns: Sequence[Pattern]
    ) -> tuple[list[int], RunReport]:
        schedules = [self.build_schedule(p, induced=False) for p in patterns]
        collector = MniDomainCollector(
            patterns,
            [s.order for s in schedules],
            [automorphisms(p) for p in patterns],
        )
        report = self.engine.run_many(
            schedules,
            udf=collector,
            system=self.name,
            app="fsm-round",
            graph_name=self.graph_name,
        )
        return collector.supports(), report
