"""Common interface of every GPM system in this repository.

All systems — the two Khuzdul-based ones and every baseline — implement
this small surface, so the applications in :mod:`repro.systems.apps`
and the benchmark harness treat them interchangeably.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

from repro.core.runtime import RunReport
from repro.patterns.pattern import Pattern


class GPMSystem(abc.ABC):
    """A system that can count patterns and compute MNI supports."""

    #: human-readable system name used in reports
    name: str = "gpm-system"
    #: name of the input graph used in reports
    graph_name: str = "graph"

    @abc.abstractmethod
    def count_pattern(
        self,
        pattern: Pattern,
        induced: bool = False,
        oriented: bool = False,
        app: str = "pattern",
    ) -> RunReport:
        """Count embeddings of one pattern.

        ``oriented=True`` applies the degree-orientation preprocessing
        (valid for cliques only — each clique then appears exactly once
        on the DAG without symmetry restrictions).
        """

    @abc.abstractmethod
    def count_patterns(
        self,
        patterns: Sequence[Pattern],
        induced: bool = True,
        app: str = "patterns",
    ) -> RunReport:
        """Count several patterns in one job; ``counts`` is a list."""

    @abc.abstractmethod
    def mni_supports(
        self, patterns: Sequence[Pattern]
    ) -> tuple[list[int], RunReport]:
        """MNI supports of labeled patterns (for FSM)."""


class MniDomainCollector:
    """Accumulates MNI domains from engine match callbacks.

    The engine reports matches in matching-order positions under
    symmetry restrictions, so the raw per-position domains must be
    closed under the pattern's automorphism group before taking the
    minimum (see DESIGN.md, Semantics decisions).
    """

    def __init__(self, patterns: Sequence[Pattern], orders, automorphism_sets):
        self.patterns = list(patterns)
        self.orders = list(orders)
        self.automorphisms = list(automorphism_sets)
        self.domains: list[list[set[int]]] = [
            [set() for _ in range(p.num_vertices)] for p in self.patterns
        ]

    def __call__(
        self, index: int, prefix: tuple[int, ...], candidates: np.ndarray
    ) -> None:
        order = self.orders[index]
        domains = self.domains[index]
        for pos, data_vertex in enumerate(prefix):
            domains[order[pos]].add(int(data_vertex))
        domains[order[len(prefix)]].update(int(c) for c in candidates)

    def merge(self, other: "MniDomainCollector") -> "MniDomainCollector":
        """Union another collector's domains into this one.

        Domains are per-position vertex sets, so merging worker-process
        copies (``repro.exec``) is a plain set union — supports computed
        from the merged collector equal the single-process result.
        """
        for mine, theirs in zip(self.domains, other.domains):
            for position, domain in enumerate(theirs):
                mine[position] |= domain
        return self

    def supports(self) -> list[int]:
        """Automorphism-closed minimum-image supports per pattern."""
        result = []
        for pattern, domains, autos in zip(
            self.patterns, self.domains, self.automorphisms
        ):
            closed: list[set[int]] = [set() for _ in range(pattern.num_vertices)]
            for sigma in autos:
                for v in range(pattern.num_vertices):
                    closed[sigma[v]].update(domains[v])
            result.append(min(len(s) for s in closed) if closed else 0)
        return result


def merge_reports(
    reports: Sequence[RunReport],
    system: str,
    app: str,
    graph_name: str,
    counts=None,
    parallel: bool = False,
) -> RunReport:
    """Aggregate several reports into one.

    ``parallel=False`` (the default) merges *sequential* phases (e.g.
    FSM rounds): simulated times add up. ``parallel=True`` merges
    reports of workers that ran *concurrently* (the ``repro.exec``
    process backend): the job takes as long as the slowest worker, so
    ``simulated_seconds`` is the max; per-machine breakdowns still
    zip-sum, because each worker contributes disjoint clock charges
    (its hosted machines' buckets, plus the serve seconds it charged to
    every replica).
    """
    if not reports:
        return RunReport(system, app, graph_name, counts, 0.0)
    failures = [r.failure for r in reports if r.failure is not None]
    total_breakdown: dict[str, float] = {}
    for report in reports:
        for key, value in report.breakdown.items():
            total_breakdown[key] = total_breakdown.get(key, 0.0) + value
    machine_breakdowns: list[dict[str, float]] = []
    if all(r.machine_breakdowns for r in reports):
        for buckets in zip(*(r.machine_breakdowns for r in reports)):
            merged: dict[str, float] = {}
            for bucket in buckets:
                for key, value in bucket.items():
                    merged[key] = merged.get(key, 0.0) + value
            machine_breakdowns.append(merged)
    return RunReport(
        system=system,
        app=app,
        graph_name=graph_name,
        counts=counts,
        simulated_seconds=(
            max(r.simulated_seconds for r in reports)
            if parallel
            else sum(r.simulated_seconds for r in reports)
        ),
        network_bytes=sum(r.network_bytes for r in reports),
        breakdown=total_breakdown,
        machine_breakdowns=machine_breakdowns,
        machine_seconds=[
            sum(values)
            for values in zip(*(r.machine_seconds for r in reports))
        ]
        if all(r.machine_seconds for r in reports)
        else [],
        cache_hit_rate=reports[-1].cache_hit_rate,
        peak_memory_bytes=max(r.peak_memory_bytes for r in reports),
        num_machines=reports[0].num_machines,
        extra={"phases": len(reports)},
        # fatal phases abort the job, so the last failure dominates;
        # all-RECOVERED phases merge into one RECOVERED summary
        failure=failures[-1] if failures else None,
    )
