"""Graph-data caches: the static cache and the replacement policies.

Khuzdul's static cache (paper Section 5.3) admits a fetched edge list
only while it has free space and only for vertices above a degree
threshold, and never evicts. That makes every operation a plain hash
probe — no recency lists, no refcounts, no dynamic allocation.

Figure 16's study compares it against FIFO/LIFO/LRU/MRU replacement
policies, which (per Section 7.6) pay for continuous policy
maintenance *and* for general-purpose dynamic memory management whose
fragmentation grows over the run. Both cost channels are modelled here
and charged through :meth:`EdgeCache.drain_cost`.
"""

from __future__ import annotations

from collections import OrderedDict
from enum import Enum

from repro.cluster.costmodel import CostModel


class CachePolicy(Enum):
    STATIC = "static"
    FIFO = "fifo"
    LIFO = "lifo"
    LRU = "lru"
    MRU = "mru"


class EdgeCache:
    """A per-machine (or per-socket) cache of remote edge lists.

    Parameters
    ----------
    capacity_bytes:
        Cache budget; the paper uses 5-15% of the graph size per node.
    degree_threshold:
        Minimum degree for admission under the STATIC policy ("first
        accessed first cached with threshold"); replacement policies
        admit everything, as general caches do.
    policy:
        One of :class:`CachePolicy`.
    cost:
        Cost model supplying the bookkeeping constants.
    """

    def __init__(
        self,
        capacity_bytes: int,
        degree_threshold: int,
        policy: CachePolicy,
        cost: CostModel,
    ):
        self.capacity_bytes = capacity_bytes
        self.degree_threshold = degree_threshold
        self.policy = policy
        self.cost = cost
        self._entries: OrderedDict[int, int] = OrderedDict()  # vertex -> bytes
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        self.evictions = 0
        self._pending_cost = 0.0
        self._fragmentation = 0.0  # grows with churn, capped at 3x extra

    # ------------------------------------------------------------------
    def _query_cost(self) -> float:
        """Hash-probe cost, inflated once the cache spills out of L3."""
        spill = min(1.0, self.used_bytes / max(1, self.cost.l3_bytes))
        return self.cost.cache_query * (
            1.0 + self.cost.cache_l3_spill_penalty * spill
        )

    def _alloc_cost(self) -> float:
        """Dynamic-allocation cost for replacement policies (Section 7.6)."""
        return self.cost.cache_dynamic_alloc * (1.0 + self._fragmentation)

    # ------------------------------------------------------------------
    def query(self, vertex: int) -> bool:
        """Probe for ``vertex``; returns hit/miss and charges query cost."""
        self._pending_cost += self._query_cost()
        if vertex in self._entries:
            self.hits += 1
            if self.policy in (CachePolicy.LRU, CachePolicy.MRU):
                # recency maintenance on every touch
                self._entries.move_to_end(vertex)
                self._pending_cost += self.cost.cache_policy_update
            return True
        self.misses += 1
        return False

    def admit(self, vertex: int, num_bytes: int, degree: int) -> bool:
        """Offer a just-fetched edge list to the cache.

        Returns ``True`` if the list was inserted (it then stays resident
        and does not occupy chunk memory).
        """
        if vertex in self._entries:
            return True
        if self.policy is CachePolicy.STATIC:
            if degree < self.degree_threshold:
                return False
            if self.used_bytes + num_bytes > self.capacity_bytes:
                return False  # full: never insert again, never evict
            self._entries[vertex] = num_bytes
            self.used_bytes += num_bytes
            self.inserts += 1
            self._pending_cost += self.cost.cache_insert_static
            return True

        # Replacement policies admit everything that can fit at all.
        if num_bytes > self.capacity_bytes:
            return False
        while self.used_bytes + num_bytes > self.capacity_bytes:
            self._evict_one()
        self._entries[vertex] = num_bytes
        self.used_bytes += num_bytes
        self.inserts += 1
        self._pending_cost += self.cost.cache_policy_update + self._alloc_cost()
        self._fragmentation = min(
            3.0, self._fragmentation + self.cost.cache_fragmentation_rate
        )
        return True

    def _evict_one(self) -> None:
        if self.policy is CachePolicy.FIFO:
            victim = next(iter(self._entries))
        elif self.policy is CachePolicy.LIFO:
            victim = next(reversed(self._entries))
        elif self.policy is CachePolicy.LRU:
            victim = next(iter(self._entries))  # least recently touched
        elif self.policy is CachePolicy.MRU:
            victim = next(reversed(self._entries))  # most recently touched
        else:  # pragma: no cover - STATIC never evicts
            raise AssertionError("static cache must not evict")
        self.used_bytes -= self._entries.pop(victim)
        self.evictions += 1
        self._pending_cost += self._alloc_cost()
        self._fragmentation = min(
            3.0, self._fragmentation + self.cost.cache_fragmentation_rate
        )

    # ------------------------------------------------------------------
    def drain_cost(self) -> float:
        """Accumulated bookkeeping seconds since the last drain."""
        cost, self._pending_cost = self._pending_cost, 0.0
        return cost

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._entries

    def __len__(self) -> int:
        return len(self._entries)
