"""Graph-data caches: the static cache and the replacement policies.

Khuzdul's static cache (paper Section 5.3) follows a **"first
accessed, first cached" policy with a degree threshold**: a fetched
edge list is admitted only while the cache has free space and only if
its vertex's degree clears the threshold; once full, the cache's
contents never change — there is no eviction, ever. The rationale is
GPM-specific. First, access skew: GPM workloads touch high-degree
(hub) vertices orders of magnitude more often than low-degree ones,
and that skew is *stable over the run*, so whatever hot set is seen
first is about as good as any replacement policy would converge to —
the degree threshold keeps one early burst of cold, low-degree lists
from squatting in the budget (the paper fixes it at 64; Ablation C
sweeps it). Second, cost: never evicting makes every operation a
plain hash probe with a fixed-size pool allocator — no recency lists,
no refcounts, no dynamic allocation, no fragmentation.

Figure 16's study compares it against FIFO/LIFO/LRU/MRU replacement
policies, which (per Section 7.6) pay for continuous policy
maintenance *and* for general-purpose dynamic memory management whose
fragmentation grows over the run. Both cost channels are modelled here
and charged through :meth:`EdgeCache.drain_cost`.

Observability: an :class:`EdgeCache` built with a
:class:`~repro.obs.metrics.MetricsScope` emits the ``cache.*``
counters/gauge of ``docs/metrics.md`` alongside its plain integer
attributes; the plain attributes stay authoritative and cost-free.
"""

from __future__ import annotations

from collections import OrderedDict
from enum import Enum
from typing import Optional

from repro.cluster.costmodel import CostModel
from repro.obs import names
from repro.obs.metrics import MetricsScope, scope_or_null


class CachePolicy(Enum):
    STATIC = "static"
    FIFO = "fifo"
    LIFO = "lifo"
    LRU = "lru"
    MRU = "mru"


class EdgeCache:
    """A per-machine (or per-socket) cache of remote edge lists.

    Parameters
    ----------
    capacity_bytes:
        Cache budget; the paper uses 5-15% of the graph size per node.
    degree_threshold:
        Minimum degree for admission under the STATIC policy ("first
        accessed first cached with threshold"); replacement policies
        admit everything, as general caches do.
    policy:
        One of :class:`CachePolicy`.
    cost:
        Cost model supplying the bookkeeping constants.
    """

    def __init__(
        self,
        capacity_bytes: int,
        degree_threshold: int,
        policy: CachePolicy,
        cost: CostModel,
        metrics: Optional[MetricsScope] = None,
    ):
        self.capacity_bytes = capacity_bytes
        self.degree_threshold = degree_threshold
        self.policy = policy
        self.cost = cost
        self._entries: OrderedDict[int, int] = OrderedDict()  # vertex -> bytes
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        self.evictions = 0
        self._pending_cost = 0.0
        self._fragmentation = 0.0  # grows with churn, capped at 3x extra
        metrics = scope_or_null(metrics)
        self._m_hits = metrics.counter(names.CACHE_HITS)
        self._m_misses = metrics.counter(names.CACHE_MISSES)
        self._m_inserts = metrics.counter(names.CACHE_INSERTS)
        self._m_evictions = metrics.counter(names.CACHE_EVICTIONS)
        self._m_used_bytes = metrics.gauge(names.CACHE_USED_BYTES)

    # ------------------------------------------------------------------
    def _query_cost(self) -> float:
        """Hash-probe cost, inflated once the cache spills out of L3."""
        spill = min(1.0, self.used_bytes / max(1, self.cost.l3_bytes))
        return self.cost.cache_query * (
            1.0 + self.cost.cache_l3_spill_penalty * spill
        )

    def _alloc_cost(self) -> float:
        """Dynamic-allocation cost for replacement policies (Section 7.6)."""
        return self.cost.cache_dynamic_alloc * (1.0 + self._fragmentation)

    # ------------------------------------------------------------------
    def query(self, vertex: int) -> bool:
        """Probe for ``vertex``; returns hit/miss and charges query cost."""
        self._pending_cost += self._query_cost()
        if vertex in self._entries:
            self.hits += 1
            self._m_hits.inc()
            if self.policy in (CachePolicy.LRU, CachePolicy.MRU):
                # recency maintenance on every touch
                self._entries.move_to_end(vertex)
                self._pending_cost += self.cost.cache_policy_update
            return True
        self.misses += 1
        self._m_misses.inc()
        return False

    def admit(self, vertex: int, num_bytes: int, degree: int) -> bool:
        """Offer a just-fetched edge list to the cache.

        Returns ``True`` if the list was inserted (it then stays resident
        and does not occupy chunk memory).
        """
        if vertex in self._entries:
            # a re-admission is a touch: recency policies must move the
            # entry and pay the bookkeeping, or re-admitted vertices
            # stay invisible to the replacement order (LRU would evict
            # a hot entry it just re-admitted)
            if self.policy in (CachePolicy.LRU, CachePolicy.MRU):
                self._entries.move_to_end(vertex)
                self._pending_cost += self.cost.cache_policy_update
            return True
        if self.policy is CachePolicy.STATIC:
            if degree < self.degree_threshold:
                return False
            if self.used_bytes + num_bytes > self.capacity_bytes:
                return False  # full: never insert again, never evict
            self._entries[vertex] = num_bytes
            self.used_bytes += num_bytes
            self.inserts += 1
            self._m_inserts.inc()
            self._m_used_bytes.set(self.used_bytes)
            self._pending_cost += self.cost.cache_insert_static
            return True

        # Replacement policies admit everything that can fit at all.
        if num_bytes > self.capacity_bytes:
            return False
        while self.used_bytes + num_bytes > self.capacity_bytes:
            self._evict_one()
        self._entries[vertex] = num_bytes
        self.used_bytes += num_bytes
        self.inserts += 1
        self._m_inserts.inc()
        self._m_used_bytes.set(self.used_bytes)
        self._pending_cost += self.cost.cache_policy_update + self._alloc_cost()
        self._fragmentation = min(
            3.0, self._fragmentation + self.cost.cache_fragmentation_rate
        )
        return True

    def _evict_one(self) -> None:
        if self.policy is CachePolicy.FIFO:
            victim = next(iter(self._entries))
        elif self.policy is CachePolicy.LIFO:
            victim = next(reversed(self._entries))
        elif self.policy is CachePolicy.LRU:
            victim = next(iter(self._entries))  # least recently touched
        elif self.policy is CachePolicy.MRU:
            victim = next(reversed(self._entries))  # most recently touched
        else:  # pragma: no cover - STATIC never evicts
            raise AssertionError("static cache must not evict")
        self.used_bytes -= self._entries.pop(victim)
        self.evictions += 1
        self._m_evictions.inc()
        self._m_used_bytes.set(self.used_bytes)
        self._pending_cost += self._alloc_cost()
        self._fragmentation = min(
            3.0, self._fragmentation + self.cost.cache_fragmentation_rate
        )

    # ------------------------------------------------------------------
    def invalidate(self, predicate) -> int:
        """Drop every entry whose vertex satisfies ``predicate``.

        The static cache normally never changes once full — the one
        exception is machine loss: entries whose edge lists were served
        by a now-dead partition must be refetched from the failover
        owner, so recovery purges them. Returns the number of entries
        removed; each removal charges one policy-update's bookkeeping.
        """
        victims = [v for v in self._entries if predicate(v)]
        for vertex in victims:
            self.used_bytes -= self._entries.pop(vertex)
            self._pending_cost += self.cost.cache_policy_update
        if victims:
            self._m_used_bytes.set(self.used_bytes)
        return len(victims)

    # ------------------------------------------------------------------
    def drain_cost(self) -> float:
        """Accumulated bookkeeping seconds since the last drain."""
        cost, self._pending_cost = self._pending_cost, 0.0
        return cost

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._entries

    def __len__(self) -> int:
        return len(self._entries)
