"""Circulant-schedule pipeline timing (paper Section 4.3).

When a chunk becomes current, its embeddings are shuffled into N
batches by the machine owning their pending edge list, starting with
the local machine and proceeding in circulant order. The engine then
pipelines the batches: computation of batch *i* overlaps with the data
fetch of batch *i+1*. The standard two-stage pipeline bound gives the
wall time; whatever communication it fails to hide is the chunk's
exposed network time.
"""

from __future__ import annotations

from typing import Sequence


def pipeline_time(
    comm_times: Sequence[float], compute_times: Sequence[float]
) -> float:
    """Wall time of a pipelined (fetch | extend) chunk execution.

    ``comm_times[i]`` is the fetch time of batch ``i`` and
    ``compute_times[i]`` its extension time. The fetch of batch 0 must
    finish before its computation starts; afterwards the fetch of batch
    ``i+1`` proceeds concurrently with the computation of batch ``i``
    (and is *not* stalled by computation — Section 4.3's non-strict
    pipelining, which the max() accounts for).
    """
    if len(comm_times) != len(compute_times):
        raise ValueError("batch lists must have equal length")
    if not comm_times:
        return 0.0
    total = comm_times[0]
    for i in range(len(compute_times)):
        next_comm = comm_times[i + 1] if i + 1 < len(comm_times) else 0.0
        total += max(compute_times[i], next_comm)
    return total


def exposed_network_time(
    comm_times: Sequence[float], compute_times: Sequence[float]
) -> float:
    """Communication time *not* hidden behind computation for a chunk."""
    return pipeline_time(comm_times, compute_times) - sum(compute_times)
