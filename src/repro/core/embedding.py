"""Extendable embeddings (paper Section 3).

An extendable embedding is a partially-constructed embedding plus the
active edge lists needed for its next extension. Vertical data sharing
(Section 5.1) is realized exactly as in the paper: a child stores only
its *new* vertex (and, when the schedule says so, a reusable
intermediate intersection result) and reaches everything else through
its parent pointer.

The edge-list *arrays* themselves are CSR slices of the shared graph —
in the simulation a "fetch" moves accounting state (traffic, cache,
chunk memory), never data — so the embedding records *where* each list
came from rather than a copy of it.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

import numpy as np

from repro.core.states import EmbeddingState

#: Bookkeeping bytes per embedding: new vertex id, parent pointer,
#: state/level fields (paper Section 5.1's hierarchical representation).
EMBEDDING_BASE_BYTES = 24


class EdgeListSource(Enum):
    """Where an embedding's active edge list came from (accounting)."""

    NONE = "none"  # the new vertex's list is not active
    LOCAL = "local"  # resident in the machine's own partition
    REMOTE = "remote"  # fetched over the network (stored in the chunk)
    CACHE = "cache"  # hit in the static data cache
    SHARED = "shared"  # pointer into another chunk member (HDS hit)


class ExtendableEmbedding:
    """One node of an embedding tree, plus its extension bookkeeping.

    Parameters
    ----------
    vertex:
        The data vertex added by this extension (the embedding's last
        matching-order position).
    level:
        Matching-order position of ``vertex`` (root = 0).
    parent:
        The embedding this one extends; ``None`` for roots.
    needs_fetch:
        Whether ``vertex``'s edge list is active (some later step
        intersects it) and therefore must be available before this
        embedding can be extended.
    """

    __slots__ = (
        "vertex",
        "level",
        "parent",
        "needs_fetch",
        "source",
        "intermediate",
        "stored_bytes",
        "state",
        "open_children",
    )

    def __init__(
        self,
        vertex: int,
        level: int,
        parent: Optional["ExtendableEmbedding"],
        needs_fetch: bool,
    ):
        self.vertex = int(vertex)
        self.level = level
        self.parent = parent
        self.needs_fetch = needs_fetch
        self.source = EdgeListSource.NONE
        #: raw intersection result stored for descendants (VCS, Section 5.1)
        self.intermediate: Optional[np.ndarray] = None
        #: bytes this embedding pins in its chunk (accounting)
        self.stored_bytes = EMBEDDING_BASE_BYTES
        self.state = (
            EmbeddingState.PENDING if needs_fetch else EmbeddingState.READY
        )
        self.open_children = 0
        if parent is not None:
            parent.open_children += 1

    # ------------------------------------------------------------------
    def vertices(self) -> tuple[int, ...]:
        """The embedding's data vertices in matching order (walks parents)."""
        chain: list[int] = []
        node: Optional[ExtendableEmbedding] = self
        while node is not None:
            chain.append(node.vertex)
            node = node.parent
        chain.reverse()
        return tuple(chain)

    def ancestor(self, level: int) -> "ExtendableEmbedding":
        """The ancestor at matching-order position ``level`` (may be self)."""
        node: ExtendableEmbedding = self
        while node.level > level:
            assert node.parent is not None, "broken parent chain"
            node = node.parent
        if node.level != level:
            raise ValueError(f"no ancestor at level {level}")
        return node

    def intermediate_at(self, level: int) -> Optional[np.ndarray]:
        """The reusable intersection stored at ancestor ``level`` (VCS)."""
        return self.ancestor(level).intermediate

    # ------------------------------------------------------------------
    def mark_ready(self, source: EdgeListSource) -> None:
        """Active edge list is now available; PENDING -> READY."""
        self.source = source
        self.state = EmbeddingState.READY

    def mark_zombie(self) -> None:
        """Extension performed; memory still shared with children."""
        self.state = EmbeddingState.ZOMBIE
        if self.open_children == 0:
            self._terminate()

    def child_terminated(self) -> None:
        """A child released; terminate when the last one does (Figure 6)."""
        self.open_children -= 1
        if self.open_children == 0 and self.state is EmbeddingState.ZOMBIE:
            self._terminate()

    def _terminate(self) -> None:
        self.state = EmbeddingState.TERMINATED
        if self.parent is not None:
            self.parent.child_terminated()

    def __repr__(self) -> str:
        return (
            f"ExtendableEmbedding({self.vertices()}, state={self.state.value})"
        )
