"""Batched sorted-set kernels for the EXTEND hot path.

The scheduler already groups same-level extendable embeddings into
chunks (paper Section 4) precisely to create batch concurrency, but the
original extension path still walked the chunk one embedding at a time
through :func:`repro.core.extend.compute_candidates`, paying full
interpreter overhead per embedding plus ``np.intersect1d`` calls that
re-sort already-sorted CSR slices. This module is the vectorized
replacement: GPU GPM engines (G2Miner, DuMato) get their throughput
from batched pattern-aware set intersections over sorted adjacency
lists, and the same transformation applies to numpy — fuse a whole
chunk's extensions into a handful of array passes.

Three layers:

- :func:`intersect_sorted` / :func:`setdiff_sorted` — pairwise kernels
  over sorted unique arrays built on ``np.searchsorted`` merge probes.
  No internal re-sort: where ``np.intersect1d`` concatenates and sorts
  (ignoring that its inputs already are sorted), these probe the
  smaller array into the larger one.
- :func:`adjacency_member` / :func:`adjacency_position` — bulk
  membership/position probes of ``(source, candidate)`` pairs against
  a graph's globally sorted composite-key view
  (:meth:`repro.graph.graph.Graph.adjacency_keys`), which is how one
  ``searchsorted`` call answers per-embedding intersections whose
  windows all differ.
- :func:`extend_chunk` — the fused entry point: one schedule step
  across an entire chunk of embeddings in vectorized passes (shared
  connected-position gathers, batched distinct-vertex / ordering /
  label filters), with a count-only fast path that sums candidate
  lengths without materializing filtered copies.

Contract: for every embedding the batched results — candidate values,
``merge_elements``, ``scanned`` — are element-for-element identical to
the scalar reference :func:`~repro.core.extend.compute_candidates`,
which is what lets the scheduler keep all simulated accounting
bit-identical while switching the wall-clock implementation
(``tests/test_kernels.py`` pins the equivalence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.graph.graph import Graph
from repro.patterns.schedule import CountingPlan, ExtensionStep

__all__ = [
    "ChunkExtendResult",
    "ChunkIepResult",
    "adjacency_member",
    "adjacency_position",
    "extend_chunk",
    "iep_chunk",
    "intersect_sorted",
    "setdiff_sorted",
]


# ---------------------------------------------------------------------
# pairwise kernels
# ---------------------------------------------------------------------
def intersect_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersection of two sorted unique 1-D arrays.

    Equivalent to ``np.intersect1d(a, b, assume_unique=True)`` but
    honors the sortedness for real: the smaller array is binary-probed
    into the larger one (``O(min log max)``), no concatenate-and-sort.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if len(a) > len(b):
        a, b = b, a
    if not len(a) or not len(b):
        return a[:0]
    pos = np.searchsorted(b, a)
    # pos == len(b) means a-value > b[-1]; clamping to the last slot is
    # safe because that value cannot equal b[-1] either (side='left')
    np.minimum(pos, len(b) - 1, out=pos)
    return a[b[pos] == a]


def setdiff_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elements of sorted unique ``a`` not present in sorted unique ``b``.

    Equivalent to ``np.setdiff1d(a, b, assume_unique=True)`` without
    the internal hash/sort machinery — one binary probe of ``a`` into
    ``b``.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if not len(a) or not len(b):
        return a
    pos = np.searchsorted(b, a)
    np.minimum(pos, len(b) - 1, out=pos)
    return a[b[pos] != a]


# ---------------------------------------------------------------------
# bulk adjacency probes
# ---------------------------------------------------------------------
def adjacency_position(
    graph: Graph, sources: np.ndarray, candidates: np.ndarray
) -> np.ndarray:
    """CSR entry positions of ``(sources[i], candidates[i])`` pairs.

    Callers must guarantee every pair is an edge (candidates produced
    by intersecting ``N(source)`` satisfy this); the returned indices
    address ``graph.indices`` / ``graph.edge_labels`` directly.
    """
    keys = sources.astype(np.int64) * np.int64(graph.num_vertices)
    keys += candidates
    return np.searchsorted(graph.adjacency_keys(), keys)


def adjacency_member(
    graph: Graph, sources: np.ndarray, candidates: np.ndarray
) -> np.ndarray:
    """Boolean mask: is ``candidates[i]`` a neighbor of ``sources[i]``?

    Small graphs answer each pair with one load from the dense
    adjacency bitmap (:meth:`Graph.adjacency_matrix`); larger graphs
    fall back to a global binary search against the composite-key
    adjacency view — the batched analogue of probing each candidate
    into its own CSR slice, without per-embedding windowing.
    """
    matrix = graph.adjacency_matrix()
    if matrix is not None:
        return matrix[sources, candidates]
    adj_keys = graph.adjacency_keys()
    if not len(adj_keys):
        return np.zeros(len(candidates), dtype=bool)
    keys = sources * np.int64(graph.num_vertices)
    keys = keys.astype(np.int64, copy=False)
    keys += candidates
    pos = np.searchsorted(adj_keys, keys)
    np.minimum(pos, len(adj_keys) - 1, out=pos)
    return adj_keys[pos] == keys


# ---------------------------------------------------------------------
# the fused chunk kernel
# ---------------------------------------------------------------------
@dataclass
class ChunkExtendResult:
    """Vectorized extension of one chunk: per-embedding slices + counts.

    ``values[offsets[i]:offsets[i + 1]]`` are embedding ``i``'s
    filtered candidates; ``merge_elements`` / ``scanned`` / ``counts``
    are the per-embedding accounting quantities, exactly equal to what
    the scalar path would have produced. In count-only mode the
    filtered values are never materialized (``values is None``) and
    only the integer arrays are valid. ``raw_values``/``raw_offsets``
    hold the unfiltered intersections when the step stores an
    intermediate for vertical computation sharing.
    """

    step: ExtensionStep
    counts: np.ndarray  # (n,) candidates surviving all filters
    merge_elements: np.ndarray  # (n,) elements streamed through set ops
    scanned: np.ndarray  # (n,) candidates scanned by the filters
    values: Optional[np.ndarray]  # flattened filtered candidates
    offsets: Optional[np.ndarray]  # (n + 1,)
    raw_values: Optional[np.ndarray]  # flattened stored intersections
    raw_offsets: Optional[np.ndarray]
    count_only: bool
    probe_elements: int  # elements pushed through membership probes

    def __len__(self) -> int:
        return len(self.counts)

    def candidates_for(self, i: int) -> np.ndarray:
        """Embedding ``i``'s filtered candidate array (a flat-view slice)."""
        return self.values[self.offsets[i] : self.offsets[i + 1]]

    def raw_for(self, i: int) -> Optional[np.ndarray]:
        """Embedding ``i``'s stored raw intersection (VCS), or None."""
        if self.raw_values is None:
            return None
        return self.raw_values[self.raw_offsets[i] : self.raw_offsets[i + 1]]


def _offsets_from_counts(counts: np.ndarray) -> np.ndarray:
    offsets = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets


def _compress(
    values: np.ndarray,
    emb_of: np.ndarray,
    mask: np.ndarray,
    num_embeddings: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Apply a keep-mask to a flattened batch; returns the new layout."""
    kept_emb = emb_of[mask]
    counts = np.bincount(kept_emb, minlength=num_embeddings).astype(np.int64)
    return values[mask], _offsets_from_counts(counts), counts, kept_emb


def extend_chunk(
    graph: Graph,
    step: ExtensionStep,
    prefixes: np.ndarray,
    intermediates: Optional[Sequence[Optional[np.ndarray]]] = None,
    vcs: bool = True,
    count_only: bool = False,
) -> ChunkExtendResult:
    """Run one schedule step across a whole chunk of embeddings.

    Parameters
    ----------
    graph:
        The input graph (sorted/unique CSR neighbor lists).
    step:
        The schedule step placing position ``step.level``.
    prefixes:
        ``(n, step.level)`` int array; row ``i`` holds embedding
        ``i``'s data vertices at matching-order positions
        ``0..level-1``.
    intermediates:
        Per-embedding stored raw intersections for ``step.reuse_level``
        (vertical computation sharing), aligned with ``prefixes`` rows;
        ``None`` entries fall back to recomputing from the edge lists,
        exactly like the scalar path.
    vcs:
        Whether vertical computation sharing is enabled.
    count_only:
        Skip materializing the filtered candidate arrays; only the
        per-embedding counts/accounting are produced (the final-level
        fast path for counting UDFs).
    """
    prefixes = np.asarray(prefixes, dtype=np.int64)
    if prefixes.ndim != 2:
        raise ValueError("prefixes must be a 2-D (embeddings, level) array")
    n = prefixes.shape[0]
    if n == 0:
        empty = np.zeros(0, dtype=np.int64)
        return ChunkExtendResult(
            step, empty, empty.copy(), empty.copy(),
            None if count_only else graph.indices[:0],
            None if count_only else np.zeros(1, dtype=np.int64),
            None, None, count_only, 0,
        )
    use_reuse = vcs and step.reuse_level is not None and intermediates is not None
    if use_reuse:
        have = np.fromiter(
            (inter is not None for inter in intermediates), dtype=bool, count=n
        )
        if bool(have.all()):
            return _extend_group(
                graph, step, prefixes, list(intermediates), count_only
            )
        if not bool(have.any()):
            return _extend_group(graph, step, prefixes, None, count_only)
        # mixed availability: split, extend each group, stitch back in
        # the original embedding order (rare — defensive parity with
        # the scalar per-embedding fallback)
        with_idx = np.flatnonzero(have)
        without_idx = np.flatnonzero(~have)
        with_res = _extend_group(
            graph, step, prefixes[with_idx],
            [intermediates[i] for i in with_idx], count_only,
        )
        without_res = _extend_group(
            graph, step, prefixes[without_idx], None, count_only
        )
        return _stitch(
            graph, step, n,
            ((with_idx, with_res), (without_idx, without_res)), count_only,
        )
    return _extend_group(graph, step, prefixes, None, count_only)


def _extend_group(
    graph: Graph,
    step: ExtensionStep,
    prefixes: np.ndarray,
    intermediates: Optional[list],
    count_only: bool,
) -> ChunkExtendResult:
    """Extend a group of embeddings that share one base source."""
    n = prefixes.shape[0]
    indptr = graph.indptr
    merge_elements = np.zeros(n, dtype=np.int64)
    probe_elements = 0

    if intermediates is not None:
        counts = np.fromiter(
            (len(inter) for inter in intermediates), dtype=np.int64, count=n
        )
        offsets = _offsets_from_counts(counts)
        values = (
            np.concatenate(intermediates)
            if int(offsets[-1]) else graph.indices[:0]
        )
        remaining = step.extra_connected
        emb_of = np.repeat(np.arange(n, dtype=np.int64), counts)
    else:
        base_col = step.connected[0]
        remaining = step.connected[1:]
        degs = graph.degrees()
        base_deg = degs[prefixes[:, base_col]]
        if remaining:
            # Intersection is symmetric: gather whichever of the first
            # two connected columns has the smaller total neighbor
            # volume and probe it against the other's adjacency. On
            # skewed graphs with ordering restrictions the asymmetry is
            # enormous (wdc triangles: 13x), and the per-embedding
            # accounting below is direction-independent — the first
            # stage's merge term is deg(base) + deg(other) either way.
            other_col = remaining[0]
            other_deg = degs[prefixes[:, other_col]]
            if int(other_deg.sum()) < int(base_deg.sum()):
                values, offsets = graph.neighbors_batch(
                    prefixes[:, other_col]
                )
                counts = np.diff(offsets)
                emb_of = np.repeat(np.arange(n, dtype=np.int64), counts)
                merge_elements += base_deg + other_deg
                probe_elements += len(values)
                member = adjacency_member(
                    graph, np.repeat(prefixes[:, base_col], counts), values
                )
                values, offsets, counts, emb_of = _compress(
                    values, emb_of, member, n
                )
                remaining = remaining[1:]
            else:
                values, offsets = graph.neighbors_batch(
                    prefixes[:, base_col]
                )
                counts = np.diff(offsets)
                emb_of = np.repeat(np.arange(n, dtype=np.int64), counts)
        else:
            values, offsets = graph.neighbors_batch(prefixes[:, base_col])
            counts = np.diff(offsets)
            emb_of = np.repeat(np.arange(n, dtype=np.int64), counts)

    # connected positions: batched intersections via membership probes
    for position in remaining:
        sources = prefixes[:, position]
        merge_elements += counts + (indptr[sources + 1] - indptr[sources])
        probe_elements += len(values)
        member = adjacency_member(graph, np.repeat(sources, counts), values)
        values, offsets, counts, emb_of = _compress(values, emb_of, member, n)

    scanned = counts.copy()
    raw_values = raw_offsets = None
    if step.store_intermediate and not count_only:
        # the pre-filter intersection is what VCS descendants reuse;
        # filters below always build fresh arrays, never mutate these
        raw_values = values
        raw_offsets = offsets

    # disconnected positions (induced mode): batched set differences
    for position in step.disconnected:
        sources = prefixes[:, position]
        merge_elements += counts + (indptr[sources + 1] - indptr[sources])
        probe_elements += len(values)
        member = adjacency_member(graph, np.repeat(sources, counts), values)
        values, offsets, counts, emb_of = _compress(values, emb_of, ~member, n)

    # post-set-op filters, fused into one keep-mask over the batch
    mask = np.ones(len(values), dtype=bool)
    for column in range(prefixes.shape[1]):
        # distinct-vertex constraint as a small-tuple comparison loop:
        # pattern sizes are tiny, so a few != passes beat any hash path
        mask &= values != prefixes[emb_of, column]
    if step.larger_than:
        bound = prefixes[:, list(step.larger_than)].max(axis=1)
        mask &= values > bound[emb_of]
    if step.smaller_than:
        bound = prefixes[:, list(step.smaller_than)].min(axis=1)
        mask &= values < bound[emb_of]
    if step.label is not None and graph.labels is not None:
        mask &= graph.labels[values] == step.label
    if step.edge_labels is not None:
        if graph.edge_labels is None:
            if any(required != 0 for required in step.edge_labels):
                mask[:] = False
        else:
            for position, required in zip(step.connected, step.edge_labels):
                sources = prefixes[emb_of, position]
                entry = adjacency_position(graph, sources, values)
                mask &= graph.edge_labels[entry] == required

    if count_only:
        final_counts = np.bincount(emb_of[mask], minlength=n).astype(np.int64)
        return ChunkExtendResult(
            step, final_counts, merge_elements, scanned,
            None, None, None, None, True, probe_elements,
        )
    values, offsets, final_counts, _ = _compress(values, emb_of, mask, n)
    return ChunkExtendResult(
        step, final_counts, merge_elements, scanned,
        values, offsets, raw_values, raw_offsets, False, probe_elements,
    )


# ---------------------------------------------------------------------
# the inclusion-exclusion terminal kernel (docs/performance.md)
# ---------------------------------------------------------------------
@dataclass
class ChunkIepResult:
    """Per-embedding IEP evaluation of one chunk of complete prefixes.

    ``counts`` are the ordered distinct suffix tuples per prefix
    embedding (plan numerators — the caller divides the global sum by
    ``plan.divisor``); ``merge_elements``/``scanned`` are the simulated
    accounting quantities, element-identical to the scalar reference
    :func:`~repro.core.extend.iep_count`.
    """

    counts: np.ndarray  # (n,) int64 suffix tuples (numerator units)
    merge_elements: np.ndarray  # (n,) elements streamed through set ops
    scanned: np.ndarray  # (n,) intersection elements handed to the terms
    probe_elements: int  # elements pushed through membership probes


def iep_chunk(
    graph: Graph, plan: CountingPlan, prefixes: np.ndarray
) -> ChunkIepResult:
    """Evaluate a counting plan over a whole chunk of prefix embeddings.

    For each distinct intersection signature ``D`` the kernel computes
    ``card(D) = |N(v_{D[0]}) ∩ ... ∩ N(v_{D[-1]})|`` minus the prefix
    vertices inside the intersection, for every row of ``prefixes`` at
    once — ``neighbors_batch`` gathers the first column's lists, each
    further column is one bulk :func:`adjacency_member` probe, and no
    candidate array is ever materialized per term. The plan's merged
    inclusion-exclusion terms then combine the cardinalities into the
    per-embedding suffix-tuple counts.

    Accounting mirrors the enumeration kernels: every membership-probe
    stage charges ``running + degree`` merge elements per embedding
    (the same direction-independent expression as the scalar
    ``np.intersect1d`` reference, with no probe-side flip), and each
    multi-column signature's pre-subtraction cardinality lands in
    ``scanned``. Cardinalities are exact in int64; the products are
    bounded by ``max_degree ** suffix_size``, far inside int64 for
    every graph this engine hosts.
    """
    prefixes = np.asarray(prefixes, dtype=np.int64)
    if prefixes.ndim != 2:
        raise ValueError("prefixes must be a 2-D (embeddings, prefix) array")
    n = prefixes.shape[0]
    if n == 0:
        empty = np.zeros(0, dtype=np.int64)
        return ChunkIepResult(empty, empty.copy(), empty.copy(), 0)
    prefix_size = prefixes.shape[1]
    degrees = graph.degrees()
    merge_elements = np.zeros(n, dtype=np.int64)
    scanned = np.zeros(n, dtype=np.int64)
    probe_elements = 0
    cards: dict[tuple[int, ...], np.ndarray] = {}
    for signature in plan.signatures:
        if len(signature) == 1:
            card = degrees[prefixes[:, signature[0]]].astype(np.int64)
        else:
            values, offsets = graph.neighbors_batch(
                prefixes[:, signature[0]]
            )
            counts = np.diff(offsets).astype(np.int64)
            emb_of = np.repeat(np.arange(n, dtype=np.int64), counts)
            for column in signature[1:]:
                sources = prefixes[:, column]
                merge_elements += counts + degrees[sources]
                probe_elements += len(values)
                member = adjacency_member(
                    graph, np.repeat(sources, counts), values
                )
                values, _, counts, emb_of = _compress(
                    values, emb_of, member, n
                )
            card = counts
            scanned += card
        # distinct-vertex correction: prefix vertices that fall inside
        # the intersection are not valid suffix candidates
        for column in range(prefix_size):
            inside = np.ones(n, dtype=bool)
            for source_column in signature:
                inside &= adjacency_member(
                    graph,
                    prefixes[:, source_column],
                    prefixes[:, column],
                )
            card = card - inside
        cards[signature] = card
    totals = np.zeros(n, dtype=np.int64)
    for term in plan.terms:
        value = np.full(n, term.coefficient, dtype=np.int64)
        for block in term.blocks:
            value *= cards[block]
        totals += value
    return ChunkIepResult(totals, merge_elements, scanned, probe_elements)


def _stitch(
    graph: Graph,
    step: ExtensionStep,
    n: int,
    groups,
    count_only: bool,
) -> ChunkExtendResult:
    """Merge group results back into the original embedding order."""
    counts = np.zeros(n, dtype=np.int64)
    merge_elements = np.zeros(n, dtype=np.int64)
    scanned = np.zeros(n, dtype=np.int64)
    probe_elements = 0
    for idx, res in groups:
        counts[idx] = res.counts
        merge_elements[idx] = res.merge_elements
        scanned[idx] = res.scanned
        probe_elements += res.probe_elements
    if count_only:
        return ChunkExtendResult(
            step, counts, merge_elements, scanned,
            None, None, None, None, True, probe_elements,
        )
    offsets = _offsets_from_counts(counts)
    values = np.empty(int(offsets[-1]), dtype=graph.indices.dtype)
    for idx, res in groups:
        for local, i in enumerate(idx):
            values[offsets[i] : offsets[i + 1]] = res.candidates_for(local)
    raw_values = raw_offsets = None
    if step.store_intermediate:
        raw_counts = np.zeros(n, dtype=np.int64)
        for idx, res in groups:
            raw_counts[idx] = np.diff(res.raw_offsets)
        raw_offsets = _offsets_from_counts(raw_counts)
        raw_values = np.empty(int(raw_offsets[-1]), dtype=graph.indices.dtype)
        for idx, res in groups:
            for local, i in enumerate(idx):
                raw_values[raw_offsets[i] : raw_offsets[i + 1]] = (
                    res.raw_for(local)
                )
    return ChunkExtendResult(
        step, counts, merge_elements, scanned,
        values, offsets, raw_values, raw_offsets, False, probe_elements,
    )
