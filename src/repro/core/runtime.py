"""Run reports: what one engine execution measured.

Every engine and baseline returns a :class:`RunReport`; the benchmark
harness turns collections of them into the paper's tables and figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.faults.recovery import FailureSummary


def format_seconds(seconds: float) -> str:
    """Human-readable simulated time (the paper mixes ms/s/h units)."""
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 3600.0:
        return f"{seconds:.2f}s"
    return f"{seconds / 3600.0:.2f}h"


def format_bytes(num_bytes: float) -> str:
    """Human-readable data volume."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024.0 or unit == "TB":
            return f"{value:.1f}{unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


@dataclass
class RunReport:
    """Everything measured during one simulated GPM run."""

    system: str
    app: str
    graph_name: str
    #: embedding count, or per-pattern counts for motif/FSM workloads
    counts: Any
    simulated_seconds: float
    #: total bytes crossing machine boundaries
    network_bytes: int = 0
    #: breakdown of the *slowest* machine's time (Figure 15 categories)
    breakdown: dict[str, float] = field(default_factory=dict)
    #: every machine's clock buckets plus responder-side serve seconds
    #: (``--metrics table`` and Figure 15's per-machine bars read this)
    machine_breakdowns: list[dict[str, float]] = field(default_factory=list)
    #: per-machine total clocks
    machine_seconds: list[float] = field(default_factory=list)
    cache_hit_rate: float = 0.0
    cache_entries: int = 0
    #: peak network link utilization (Figure 19)
    network_utilization: float = 0.0
    peak_memory_bytes: int = 0
    num_machines: int = 1
    #: free-form extras (hds stats, chunk counts, ...)
    extra: dict[str, Any] = field(default_factory=dict)
    #: structured account of faults met during the run; None = clean.
    #: ``RECOVERED`` failures carry complete counts, every other
    #: outcome means the counts are partial.
    failure: Optional[FailureSummary] = None

    # ------------------------------------------------------------------
    @property
    def outcome(self) -> str:
        """``OK``, ``RECOVERED``, or a failure outcome (Table 2 cells)."""
        return self.failure.outcome.value if self.failure else "OK"

    # ------------------------------------------------------------------
    def breakdown_fractions(self) -> dict[str, float]:
        """Bucket shares of the critical-path machine's time."""
        total = sum(self.breakdown.values())
        if total <= 0:
            return {k: 0.0 for k in self.breakdown}
        return {k: v / total for k, v in self.breakdown.items()}

    def speedup_over(self, other: "RunReport") -> float:
        """How much faster this run is than ``other``."""
        if self.simulated_seconds <= 0:
            return float("inf")
        return other.simulated_seconds / self.simulated_seconds

    def describe(self) -> str:
        """One-line summary used by the examples."""
        line = (
            f"{self.system:<14} {self.app:<8} {self.graph_name:<12} "
            f"time={format_seconds(self.simulated_seconds):>9} "
            f"traffic={format_bytes(self.network_bytes):>9} "
            f"count={self.counts}"
        )
        if self.failure is not None:
            line += f" [{self.outcome}]"
        return line

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly dump of every field (``--metrics json``)."""
        counts = self.counts
        if isinstance(counts, dict):
            # motif censuses key counts by (labels, edges) tuples
            counts = {str(k): v for k, v in counts.items()}
        document = {
            "system": self.system,
            "app": self.app,
            "graph_name": self.graph_name,
            "counts": counts,
            "simulated_seconds": self.simulated_seconds,
            "network_bytes": int(self.network_bytes),
            "breakdown": dict(self.breakdown),
            "machine_breakdowns": [dict(b) for b in self.machine_breakdowns],
            "machine_seconds": list(self.machine_seconds),
            "cache_hit_rate": self.cache_hit_rate,
            "cache_entries": self.cache_entries,
            "network_utilization": self.network_utilization,
            "peak_memory_bytes": int(self.peak_memory_bytes),
            "num_machines": self.num_machines,
            "extra": self.extra,
        }
        if self.failure is not None:
            # fault-free documents keep their pre-fault shape (pinned
            # by the golden-file test); failed runs add the summary
            document["outcome"] = self.outcome
            document["failure"] = self.failure.to_dict()
        return document
