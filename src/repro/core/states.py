"""Execution states of an extendable embedding (paper Figure 6)."""

from __future__ import annotations

from enum import Enum


class EmbeddingState(Enum):
    """Lifecycle of one extendable embedding.

    ``PENDING``: created, active edge lists not yet fetched.
    ``READY``: all active edge lists available; extension can run.
    ``ZOMBIE``: extension done, but memory still shared with children.
    ``TERMINATED``: all children terminated; memory can be released.
    """

    PENDING = "pending"
    READY = "ready"
    ZOMBIE = "zombie"
    TERMINATED = "terminated"
