"""Khuzdul core: the paper's primary contribution.

The extendable-embedding abstraction (Section 3), the EXTEND interface,
the BFS-DFS hybrid chunked exploration with circulant scheduling
(Section 4), the three GPM-specific data-reuse mechanisms (Section 5 —
vertical data/computation sharing, horizontal data sharing, static data
cache), and the distributed execution engine that ties them to the
simulated cluster.
"""

from repro.core.states import EmbeddingState
from repro.core.embedding import ExtendableEmbedding
from repro.core.extend import ExtendResult, ScheduleExtender, compute_candidates
from repro.core.chunk import Chunk
from repro.core.hds import HorizontalShareTable
from repro.core.cache import EdgeCache, CachePolicy
from repro.core.pipeline import pipeline_time
from repro.core.runtime import RunReport
from repro.core.engine import EngineConfig, KhuzdulEngine

__all__ = [
    "EmbeddingState",
    "ExtendableEmbedding",
    "ExtendResult",
    "ScheduleExtender",
    "compute_candidates",
    "Chunk",
    "HorizontalShareTable",
    "EdgeCache",
    "CachePolicy",
    "pipeline_time",
    "RunReport",
    "EngineConfig",
    "KhuzdulEngine",
]
