"""Chunks: fixed-size groups of same-level extendable embeddings.

A chunk (paper Section 4.2) is the unit of the BFS-DFS hybrid: BFS
within a chunk provides concurrency for batched communication, DFS
between chunks bounds memory to one chunk per tree level. Chunk memory
is allocated and released as a whole, which is the fragmentation-free
allocation story of Section 4.1.
"""

from __future__ import annotations

from repro.cluster.machine import MachineState
from repro.core.embedding import ExtendableEmbedding


class Chunk:
    """A bounded buffer of extendable embeddings at one tree level.

    With ``preallocate=True`` (what the scheduler uses for level chunks)
    the chunk reserves its whole fixed memory up front, exactly as
    Section 4.2 describes ("a fixed amount of memory is pre-allocated").
    That is what makes oversized chunks exhaust a machine's memory at
    chunk-creation time — the OOM of Figure 18. Contents that overflow
    the reservation (fetched edge lists larger than expected) are
    charged incrementally on top.
    """

    def __init__(
        self,
        level: int,
        capacity_bytes: int,
        machine: MachineState,
        preallocate: bool = False,
    ):
        self.level = level
        self.capacity_bytes = capacity_bytes
        self.machine = machine
        self.items: list[ExtendableEmbedding] = []
        self.used_bytes = 0
        self._reserved = capacity_bytes if preallocate else 0
        self._released = False
        if self._reserved:
            machine.allocate(self._reserved)

    def __len__(self) -> int:
        return len(self.items)

    @property
    def full(self) -> bool:
        """Whether the chunk's pre-allocated memory is exhausted."""
        return self.used_bytes >= self.capacity_bytes

    def _grow(self, extra: int) -> None:
        new_used = self.used_bytes + extra
        if new_used > self._reserved:
            self.machine.allocate(new_used - self._reserved)
            self._reserved = new_used
        self.used_bytes = new_used

    def add(self, embedding: ExtendableEmbedding) -> None:
        """Append one embedding, charging its bytes to the machine."""
        self.items.append(embedding)
        self._grow(embedding.stored_bytes)

    def charge_extra(self, embedding: ExtendableEmbedding, extra: int) -> None:
        """Grow an already-added embedding (fetched list, intermediate)."""
        embedding.stored_bytes += extra
        self._grow(extra)

    def refund(self, embedding: ExtendableEmbedding, amount: int) -> None:
        """Return reserved bytes (a fetch was satisfied without storage:
        local pointer, HDS share, or cache residence)."""
        amount = min(amount, embedding.stored_bytes)
        embedding.stored_bytes -= amount
        self.used_bytes -= amount
        if self._reserved > max(self.capacity_bytes, self.used_bytes):
            give_back = self._reserved - max(self.capacity_bytes,
                                             self.used_bytes)
            self.machine.release(give_back)
            self._reserved -= give_back

    def release(self) -> None:
        """Free the whole chunk at once (DFS backtrack, Section 4.2)."""
        if not self._released:
            self.machine.release(self._reserved)
            self.items.clear()
            self._released = True
