"""Per-machine BFS-DFS hybrid exploration (paper Section 4).

Each machine explores the embedding trees rooted at its local partition
vertices. Same-level extendable embeddings are grouped into fixed-size
chunks; the scheduler descends (DFS) as soon as the next level's chunk
fills and backtracks when a level is exhausted, releasing whole chunks
at once. Before a chunk is extended, its pending edge-list fetches are
resolved with circulant scheduling — shuffled into per-owner batches
whose communication is pipelined against the chunk's computation.

The scheduler charges every mechanism to the machine's clock buckets:
intersections and embedding creation to ``compute``, fine-grained task
bookkeeping to ``scheduler``, HDS/static-cache bookkeeping to ``cache``,
and unhidden fetch time to ``network`` — the categories of Figure 15.

When built with an enabled :class:`~repro.obs.Observability`, the same
charges are additionally attributed at span granularity: one ``chunk``
span per resolved chunk (its compute/scheduler/cache/network seconds,
item count, and how much communication the circulant pipeline hid) and
one ``batch`` span per circulant communication batch (payload bytes,
request count, wire/serve seconds), each keyed by
(machine, level, chunk, batch). Summing a machine's span times
reproduces its clock buckets exactly — that identity is what lets the
Figure 15/19 benches read real trace data, and it is asserted in
``tests/test_obs.py``.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.machine import MachineState
from repro.core.cache import EdgeCache
from repro.core.chunk import Chunk
from repro.core.embedding import EdgeListSource, ExtendableEmbedding
from repro.core.extend import ScheduleExtender
from repro.core.hds import HorizontalShareTable, ProbeOutcome
from repro.core.pipeline import pipeline_time
from repro.errors import MachineCrashError, SimTimeoutError
from repro.faults.injector import FaultInjector
from repro.faults.recovery import Checkpoint
from repro.obs import NULL_OBS, Observability, Span, names
from repro.patterns.schedule import CountingPlan

#: UDF signature: (prefix vertices, completing candidates array).
Udf = Callable[[tuple[int, ...], np.ndarray], None]


def NULL_UDF(prefix: tuple[int, ...], candidates: np.ndarray) -> None:
    """Counting-only UDF: match totals are tallied by the scheduler.

    A sentinel, not just a no-op — the scheduler recognizes it by
    identity and drains final-level chunks through the count-only
    kernel fast path (candidate counts without materialized arrays,
    docs/performance.md), which is only sound when nobody consumes the
    candidate values.
    """


class _LevelState:
    """One level of the DFS stack: a resolved chunk plus its accounting."""

    __slots__ = (
        "chunk",
        "chunk_id",
        "cursor",
        "resume",
        "batch",
        "comm_times",
        "batch_sizes",
        "compute_serial",
        "scheduler_serial",
        "cache_seconds",
        "start",
    )

    def __init__(self, chunk: Chunk, chunk_id: int = 0, start: float = 0.0):
        self.chunk = chunk
        #: per-scheduler chunk sequence number (span attribution key)
        self.chunk_id = chunk_id
        self.cursor = 0
        #: mid-embedding continuation:
        #: (parent, ExtendResult, candidate list, next index).
        #: The paper pauses a level as soon as the next level's memory is
        #: full — possibly in the middle of one embedding's extension.
        self.resume = None
        #: lazily-computed ChunkExtendResult of the batched kernel path
        #: (None until the first extension touches this chunk)
        self.batch = None
        self.comm_times: list[float] = [0.0]  # batch 0 = local/no-fetch
        self.batch_sizes: list[int] = [0]
        self.compute_serial = 0.0
        self.scheduler_serial = 0.0
        #: HDS/cache bookkeeping wall seconds charged at resolve time
        self.cache_seconds = 0.0
        #: machine clock when the chunk became current (span start)
        self.start = start

    @property
    def exhausted(self) -> bool:
        return self.resume is None and self.cursor >= len(self.chunk.items)


class MachineScheduler:
    """Runs one machine's share of a pattern's enumeration."""

    def __init__(
        self,
        cluster: Cluster,
        machine: MachineState,
        extender: ScheduleExtender,
        cache: EdgeCache,
        udf: Udf,
        chunk_bytes: int,
        hds_enabled: bool,
        hds_slots: int,
        vcs_enabled: bool,
        numa_aware: bool,
        hds_chaining: bool = False,
        circulant: bool = True,
        time_budget: Optional[float] = None,
        obs: Optional[Observability] = None,
        faults: Optional[FaultInjector] = None,
        transport=None,
        batched_extend: bool = True,
        checkpoint_sink: Optional[Callable] = None,
        iep_plan: Optional[CountingPlan] = None,
    ):
        self.cluster = cluster
        self.machine = machine
        self.graph = cluster.graph
        #: plain-int views of per-vertex accounting quantities; the hot
        #: loops below touch them once per child/fetch, where a method
        #: call plus numpy scalar boxing per lookup is measurable
        self._edge_bytes: list[int] = (
            self.graph.edge_list_bytes_all().tolist()
        )
        self._vertex_degrees: list[int] = self.graph.degrees().tolist()
        self._vertex_owner: list[int] = (
            cluster.partitioned.owners_all().tolist()
        )
        self.extender = extender
        self.cache = cache
        self.udf = udf
        #: vectorized chunk-at-a-time EXTEND (repro.core.kernels) vs the
        #: scalar per-embedding reference path; counts and all simulated
        #: measurements are bit-identical either way (tests/test_kernels.py)
        self.batched_extend = batched_extend
        self.chunk_bytes = chunk_bytes
        self.hds_enabled = hds_enabled
        self.vcs_enabled = vcs_enabled
        self.numa_aware = numa_aware
        self.circulant = circulant
        self.time_budget = time_budget
        self.cost = cluster.cost
        self.faults = faults
        #: real inter-process fetch channel of the ``process`` backend
        #: (repro.exec). None in simulated-only runs; when set, each
        #: chunk's circulant batches additionally travel as coalesced
        #: requests whose replies stream back over shared-memory rings,
        #: posted ahead of the batches that await them so communication
        #: genuinely overlaps computation. The simulated accounting
        #: below is unchanged either way.
        self.transport = transport
        #: straggler degradation: >1 stretches compute and link time
        self._slow_factor = (
            faults.slowdown(machine.machine_id) if faults is not None else 1.0
        )
        #: enumeration cursor at the last completed root chunk — what a
        #: crashed machine's recovery restarts from (docs/faults.md)
        self.checkpoint = Checkpoint(machine_id=machine.machine_id)
        #: durability hook (docs/faults.md): called with the updated
        #: Checkpoint at every completed root chunk, so the engine can
        #: persist the cursor (or a process-backend worker can ship it
        #: to the parent). Observation only — simulated accounting and
        #: counts are identical with or without a sink.
        self.checkpoint_sink = checkpoint_sink
        #: inclusion-exclusion counting plan (docs/performance.md).
        #: When set, ``extender`` was compiled from
        #: ``iep_plan.prefix_schedule`` and the final drain evaluates the
        #: IEP formula instead of enumerating suffix candidates. The
        #: tallied ``matches`` are the restriction-free *numerator*; the
        #: engine divides by ``iep_plan.divisor`` once per query.
        self.iep_plan = iep_plan
        self.checkpoints_taken = 0
        self.matches = 0
        self.chunks_created = 0
        #: how each embedding's active edge list was satisfied
        self.fetch_sources = {
            EdgeListSource.LOCAL: 0,
            EdgeListSource.REMOTE: 0,
            EdgeListSource.CACHE: 0,
            EdgeListSource.SHARED: 0,
        }
        obs = obs if obs is not None else NULL_OBS
        self.obs = obs
        self._tracer = obs.tracer
        self._trace = obs.tracer.enabled
        scope = obs.registry.scope(machine=machine.machine_id)
        self.hds = HorizontalShareTable(
            hds_slots, chaining=hds_chaining, metrics=scope
        )
        self._m_fetch = {
            EdgeListSource.LOCAL: scope.counter(names.FETCH_LOCAL),
            EdgeListSource.REMOTE: scope.counter(names.FETCH_REMOTE),
            EdgeListSource.CACHE: scope.counter(names.FETCH_CACHE),
            EdgeListSource.SHARED: scope.counter(names.FETCH_SHARED),
        }
        self._m_chunks = scope.counter(names.CHUNKS_CREATED)
        self._m_checkpoints = scope.counter(names.RECOVERY_CHECKPOINTS)
        self._m_chunk_items = scope.histogram(names.CHUNK_ITEMS)
        self._m_overlap = scope.histogram(names.CHUNK_OVERLAP)
        self._m_matches = scope.counter(names.MATCHES_EMITTED)
        self._m_t_compute = scope.counter(names.TIME_COMPUTE)
        self._m_t_scheduler = scope.counter(names.TIME_SCHEDULER)
        self._m_t_cache = scope.counter(names.TIME_CACHE)
        self._m_t_network = scope.counter(names.TIME_NETWORK)

    # ------------------------------------------------------------------
    # cost helpers
    # ------------------------------------------------------------------
    def _compute_penalty(self) -> float:
        """NUMA-oblivious runs pay cross-socket memory latency (S5.4)."""
        if self.machine.sockets <= 1 or self.numa_aware:
            return 1.0
        return (
            1.0 + self.cost.numa_cross_fraction * self.cost.numa_remote_penalty
        )

    def _parallel(self, serial_seconds: float) -> float:
        return (
            self.machine.parallel_compute_time(serial_seconds)
            * self._slow_factor
        )

    def _check_budget(self) -> None:
        if (
            self.time_budget is not None
            and self.machine.clock.total() > self.time_budget
        ):
            raise SimTimeoutError(self.machine.clock.total(), self.time_budget)

    def _register_chunk(self) -> None:
        """Count a chunk creation; the injector's crash triggers fire
        here (chunk creation is the scheduler's heartbeat)."""
        self.chunks_created += 1
        self._m_chunks.inc()
        if self.faults is not None:
            self.faults.on_chunk_created(
                self.machine.machine_id, self.machine.clock.total()
            )

    def _take_checkpoint(self, consumed_roots: int) -> None:
        """Advance the recovery cursor past a completed root chunk.

        The cursor itself is metadata the scheduler already maintains;
        persisting it is charged (one task-schedule quantum) only when a
        fault plan is active, so fault-free runs stay byte-identical.
        """
        ckpt = self.checkpoint
        ckpt.roots_completed += consumed_roots
        ckpt.matches = self.matches
        ckpt.chunk_index = self.chunks_created
        ckpt.simulated_seconds = self.machine.clock.total()
        self.checkpoints_taken += 1
        self._m_checkpoints.inc()
        if self.faults is not None:
            seconds = self.cost.task_schedule
            self.machine.clock.scheduler += seconds
            self._m_t_scheduler.inc(seconds)
        if self.checkpoint_sink is not None:
            self.checkpoint_sink(ckpt)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, roots: np.ndarray) -> int:
        """Explore all embedding trees rooted at ``roots``; returns matches."""
        pattern_size = self.extender.schedule.pattern.num_vertices
        if pattern_size == 1 and self.iep_plan is None:
            self.matches += len(roots)
            self._m_matches.inc(len(roots))
            seconds = len(roots) * self.cost.emit_per_candidate
            self.machine.clock.compute += seconds
            self._m_t_compute.inc(seconds)
            if self._trace:
                self._tracer.record(Span(
                    "roots", self.machine.machine_id, level=0,
                    attrs={"compute": seconds, "items": len(roots)},
                ))
            self._take_checkpoint(len(roots))
            return self.matches

        root_needs_fetch = self.extender.schedule.root_active() or (
            self.iep_plan is not None
            and 0 in self.iep_plan.fetch_positions
        )
        root_iter = iter(roots)
        try:
            while True:
                root_chunk = self._fill_root_chunk(root_iter, root_needs_fetch)
                if root_chunk is None:
                    break
                consumed = len(root_chunk.items)
                self._explore_from(root_chunk)
                self._take_checkpoint(consumed)
                self._check_budget()
        except MachineCrashError:
            # this machine's HDS entries alias fetch buffers that died
            # with it; drop them so nothing dangles past the crash
            self.hds.invalidate()
            self.machine.alive = False
            raise
        return self.matches

    def _fill_root_chunk(
        self, root_iter, root_needs_fetch: bool
    ) -> Optional[Chunk]:
        """Level-0 chunk: single-vertex embeddings, all data local."""
        self._register_chunk()
        chunk = Chunk(0, self.chunk_bytes, self.machine)
        for root in root_iter:
            emb = ExtendableEmbedding(int(root), 0, None, root_needs_fetch)
            emb.mark_ready(EdgeListSource.LOCAL)  # roots are owned locally
            chunk.add(emb)
            if chunk.full:
                break
        if not chunk.items:
            chunk.release()
            return None
        return chunk

    def _explore_from(self, root_chunk: Chunk) -> None:
        if self.iep_plan is not None:
            # the extender only builds the plan's prefix embeddings;
            # chunks of *complete* prefixes (level == final_level) drain
            # through the IEP terminal kernel instead of extending
            final_extend_level = self.extender.final_level
        else:
            final_extend_level = self.extender.final_level - 1
        stack = [_LevelState(root_chunk, self.chunks_created,
                             self.machine.clock.total())]
        self._charge_chunk_setup(stack[-1], len(root_chunk.items))
        self._m_chunk_items.observe(len(root_chunk.items))
        while stack:
            state = stack[-1]
            if state.exhausted:
                self._finalize_state(state)
                stack.pop()
                self._check_budget()
                continue
            if state.chunk.level >= final_extend_level:
                if self.iep_plan is not None:
                    self._drain_final_iep(state)
                else:
                    self._drain_final(state)
                continue
            next_chunk = self._fill_next_chunk(state)
            if next_chunk is None:
                continue
            next_state = _LevelState(next_chunk, self.chunks_created,
                                     self.machine.clock.total())
            self._resolve_chunk(next_chunk, next_state)
            self._charge_chunk_setup(next_state, len(next_chunk.items))
            self._m_chunk_items.observe(len(next_chunk.items))
            stack.append(next_state)

    # ------------------------------------------------------------------
    # extension
    # ------------------------------------------------------------------
    def _needs_edge_list(self, position: int) -> bool:
        """Whether position ``position``'s edge list must be resolved.

        Under an IEP plan, prefix positions whose neighbor lists feed an
        intersection signature need their edge lists even when the
        prefix schedule's own extension steps never read them — the
        terminal kernel does.
        """
        if (
            self.iep_plan is not None
            and position in self.iep_plan.fetch_positions
        ):
            return True
        return self.extender.needs_edge_list(position)

    def _ensure_batch(
        self, state: _LevelState, level: int, count_only: bool
    ):
        """The chunk's vectorized extension, computed on first touch.

        Lazy on purpose: a chunk that is registered but never consumed
        (crash trigger, timeout) must not pay — or meter — any
        extension work, exactly like the scalar path.
        """
        if state.batch is None:
            state.batch = self.extender.extend_chunk(
                self.graph, state.chunk.items, level, count_only=count_only
            )
        return state.batch

    def _extend_one(
        self, state: _LevelState, emb: ExtendableEmbedding, level: int
    ):
        if self.batched_extend:
            batch = self._ensure_batch(state, level, count_only=False)
            result = self.extender.take_batch_result(batch, state.cursor - 1)
        else:
            result = self.extender.extend_level(
                self.graph, emb.vertices(), level, emb.intermediate_at
            )
        state.compute_serial += (
            result.merge_elements * self.cost.intersect_per_element
            + result.scanned * self.cost.emit_per_candidate
        )
        return result

    def _fill_next_chunk(self, state: _LevelState) -> Optional[Chunk]:
        """Extend parents from ``state`` until the child chunk fills."""
        level = state.chunk.level
        child_level = level + 1
        needs_fetch = self._needs_edge_list(child_level)
        self._register_chunk()
        chunk = Chunk(child_level, self.chunk_bytes, self.machine,
                      preallocate=True)
        items = state.chunk.items
        ebytes = self._edge_bytes
        embedding_create = self.cost.embedding_create
        task_schedule = self.cost.task_schedule
        chunk_add = chunk.add
        while not chunk.full:
            if state.resume is None:
                if state.cursor >= len(items):
                    break
                emb = items[state.cursor]
                state.cursor += 1
                result = self._extend_one(state, emb, child_level)
                state.resume = (emb, result, result.candidates.tolist(), 0)
            emb, result, candidates, index = state.resume
            raw = result.raw if self.vcs_enabled else None
            raw_bytes = 4 * len(raw) if raw is not None else 0
            num_candidates = len(candidates)
            while index < num_candidates and not chunk.full:
                v = candidates[index]
                index += 1
                child = ExtendableEmbedding(v, child_level, emb, needs_fetch)
                if needs_fetch:
                    # reserve space for the (possibly) fetched edge list
                    # up front so the chunk's fixed memory budget covers
                    # its contents (Section 4.2); refunded at resolve
                    # time if the list is shared, cached, or local
                    child.stored_bytes += ebytes[v]
                if raw is not None:
                    child.intermediate = raw
                    child.stored_bytes += raw_bytes
                chunk_add(child)
                state.compute_serial += embedding_create
                state.scheduler_serial += task_schedule
            if index < num_candidates:
                # next-level memory is full mid-embedding: pause here and
                # resume after the subtree below this chunk is explored
                state.resume = (emb, result, candidates, index)
            else:
                emb.mark_zombie()
                state.resume = None
        if not chunk.items:
            chunk.release()
            return None
        return chunk

    def _drain_final(self, state: _LevelState) -> None:
        """Last extension level: completed embeddings go to the UDF."""
        final_level = self.extender.final_level
        if self.batched_extend and self.udf is NULL_UDF:
            self._drain_final_counts(state, final_level)
            return
        items = state.chunk.items
        while state.cursor < len(items):
            emb = items[state.cursor]
            state.cursor += 1
            result = self._extend_one(state, emb, final_level)
            if len(result.candidates):
                self.matches += len(result.candidates)
                self._m_matches.inc(len(result.candidates))
                self.udf(emb.vertices(), result.candidates)
                state.compute_serial += (
                    len(result.candidates) * self.cost.emit_per_candidate
                )
            emb.mark_zombie()

    def _drain_final_counts(self, state: _LevelState, level: int) -> None:
        """Count-only final drain: nobody reads the candidate values
        (the UDF is the counting sentinel), so the kernel only produces
        per-embedding candidate *counts* — no filtered arrays are ever
        materialized. The accounting below repeats the scalar drain
        term for term (same expressions, same order, Python ints), so
        every simulated measurement stays bit-identical."""
        batch = self._ensure_batch(state, level, count_only=True)
        items = state.chunk.items
        intersect = self.cost.intersect_per_element
        emit = self.cost.emit_per_candidate
        merges = batch.merge_elements.tolist()
        scans = batch.scanned.tolist()
        counts = batch.counts.tolist()
        compute_serial = state.compute_serial
        processed = total_merge = total_count = 0
        while state.cursor < len(items):
            index = state.cursor
            state.cursor += 1
            merge = merges[index]
            count = counts[index]
            processed += 1
            total_merge += merge
            compute_serial += merge * intersect + scans[index] * emit
            if count:
                total_count += count
                compute_serial += count * emit
            items[index].mark_zombie()
        state.compute_serial = compute_serial
        # integer tallies fold exactly, so the counters can be bumped
        # once for the whole drained chunk
        self.extender.account_count_only(processed, total_merge, total_count)
        if total_count:
            self.matches += total_count
            self._m_matches.inc(total_count)

    def _ensure_iep_batch(self, state: _LevelState, level: int):
        """The chunk's batched IEP evaluation, computed on first touch
        (lazy for the same crash/timeout reasons as :meth:`_ensure_batch`)."""
        if state.batch is None:
            state.batch = self.extender.iep_chunk(
                self.graph, self.iep_plan, state.chunk.items, level
            )
        return state.batch

    def _drain_final_iep(self, state: _LevelState) -> None:
        """IEP terminal drain: each complete prefix embedding's suffix
        count comes from the inclusion-exclusion formula over
        intersection cardinalities — no suffix candidates are ever
        materialized. The batched and scalar paths charge identical
        per-embedding terms (same expressions, same order, Python
        ints), so every simulated measurement stays bit-identical
        across ``--extend-mode``. Tallied counts are plan numerators;
        the engine applies ``plan.divisor`` once per query."""
        level = state.chunk.level
        items = state.chunk.items
        intersect = self.cost.intersect_per_element
        emit = self.cost.emit_per_candidate
        compute_serial = state.compute_serial
        processed = total_merge = total_count = 0
        if self.batched_extend:
            batch = self._ensure_iep_batch(state, level)
            merges = batch.merge_elements.tolist()
            scans = batch.scanned.tolist()
            counts = batch.counts.tolist()
            while state.cursor < len(items):
                index = state.cursor
                state.cursor += 1
                merge = merges[index]
                processed += 1
                total_merge += merge
                total_count += counts[index]
                compute_serial += merge * intersect + scans[index] * emit
                items[index].mark_zombie()
        else:
            while state.cursor < len(items):
                emb = items[state.cursor]
                state.cursor += 1
                count, merge, scanned = self.extender.iep_embedding(
                    self.graph, self.iep_plan, emb.vertices()
                )
                processed += 1
                total_merge += merge
                total_count += count
                compute_serial += merge * intersect + scanned * emit
                emb.mark_zombie()
        state.compute_serial = compute_serial
        self.extender.account_count_only(processed, total_merge, total_count)
        if total_count:
            self.matches += total_count
            self._m_matches.inc(total_count)

    # ------------------------------------------------------------------
    # communication resolution (circulant scheduling, Section 4.3)
    # ------------------------------------------------------------------
    def _resolve_chunk(self, chunk: Chunk, state: _LevelState) -> None:
        me = self.machine.machine_id
        num_machines = self.cluster.num_machines
        if self.hds_enabled:
            self.hds.clear()  # the share table is per level/chunk
        chain_steps_before = self.hds.chain_steps
        cache_ops = 0.0

        # group pending fetches by owner machine; sources tallied in
        # plain locals and folded into the dicts/counters once after the
        # loop (same totals, no per-embedding dict hashing)
        groups: dict[int, list[ExtendableEmbedding]] = {}
        local_count = 0
        n_local = n_shared = n_cache = 0
        ebytes = self._edge_bytes
        hds_enabled = self.hds_enabled
        hds_probe = self.hds.probe
        hds_probe_cost = self.cost.hds_probe
        cache_query = self.cache.query
        owners = self._vertex_owner
        dead = self.cluster.dead
        failover_owner = self.cluster.failover_owner
        refund = chunk.refund
        hit = ProbeOutcome.HIT
        src_local = EdgeListSource.LOCAL
        src_shared = EdgeListSource.SHARED
        src_cache = EdgeListSource.CACHE
        for emb in chunk.items:
            if not emb.needs_fetch:
                local_count += 1
                continue
            v = emb.vertex
            reserved = ebytes[v]
            # failover-aware: a dead hash owner's partition is served by
            # its replica holder (docs/faults.md); fault-free runs take
            # the plain hash-owner fast path (cluster.serving_owner,
            # inlined here over the precomputed owner table)
            owner = owners[v]
            if dead and owner in dead:
                owner = failover_owner(owner)
            if owner == me:
                emb.mark_ready(src_local)
                n_local += 1
                refund(emb, reserved)  # local: pointer only
                local_count += 1
                continue
            if hds_enabled:
                cache_ops += hds_probe_cost
                outcome = hds_probe(v)
                if outcome is hit:
                    emb.mark_ready(src_shared)
                    n_shared += 1
                    refund(emb, reserved)  # pointer into the chunk
                    local_count += 1
                    continue
            if cache_query(v):
                emb.mark_ready(src_cache)
                n_cache += 1
                refund(emb, reserved)  # resident in the cache pool
                local_count += 1
                continue
            groups.setdefault(owner, []).append(emb)
        if n_local:
            self.fetch_sources[src_local] += n_local
            self._m_fetch[src_local].inc(n_local)
        if n_shared:
            self.fetch_sources[src_shared] += n_shared
            self._m_fetch[src_shared].inc(n_shared)
        if n_cache:
            self.fetch_sources[src_cache] += n_cache
            self._m_fetch[src_cache].inc(n_cache)
        state.batch_sizes[0] = local_count

        # circulant order: owner machines starting from me+1
        ordered: list[tuple[int, list[ExtendableEmbedding]]] = []
        for offset in range(1, num_machines):
            owner = (me + offset) % num_machines
            batch = groups.get(owner)
            if batch:
                ordered.append((owner, batch))
        transport = self.transport
        if transport is not None and ordered:
            # fire the whole chunk's demand up front, coalesced per
            # server worker and split to ring-sized requests — the
            # transport's flow control keeps only as many in flight as
            # its reply rings can hold, so every batch below finds its
            # reply already streaming while earlier batches compute
            transport.post_chunk(
                me,
                [(owner, [emb.vertex for emb in batch])
                 for owner, batch in ordered],
            )
        for owner, batch in ordered:
            if transport is not None:
                transport.collect(me, owner,
                                  [emb.vertex for emb in batch])
            server = self.cluster.machine(owner)
            network = self.cluster.network
            admit = self.cache.admit
            degrees = self._vertex_degrees
            src_remote = EdgeListSource.REMOTE
            if network.injector is None:
                payload = network.record_fetch_batch(
                    me, owner, [ebytes[emb.vertex] for emb in batch], server
                )
                for emb in batch:
                    v = emb.vertex
                    num_bytes = ebytes[v]
                    if admit(v, num_bytes, degrees[v]):
                        refund(emb, num_bytes)  # lives in the cache pool
                    emb.mark_ready(src_remote)
            else:
                # injected failures interleave retry state with each
                # fetch's bookkeeping: keep the one-at-a-time path
                payload = 0
                record_fetch = network.record_fetch
                for emb in batch:
                    v = emb.vertex
                    num_bytes = ebytes[v]
                    record_fetch(me, owner, num_bytes, server)
                    payload += num_bytes
                    if admit(v, num_bytes, degrees[v]):
                        refund(emb, num_bytes)  # lives in the cache pool
                    emb.mark_ready(src_remote)
            self.fetch_sources[src_remote] += len(batch)
            self._m_fetch[src_remote].inc(len(batch))
            comm = self.cluster.network.batch_time(payload, len(batch))
            # injected transient failures: their backoff waits extend
            # this batch's wire time; a straggler's slow link stretches it
            comm += self.cluster.network.drain_retry_seconds()
            comm *= self._slow_factor
            serve = self.cluster.network.serve_time(payload, len(batch))
            server.serve_seconds += serve / server.comm_threads
            state.comm_times.append(comm)
            state.batch_sizes.append(len(batch))
            if self._trace:
                self._tracer.record(Span(
                    "batch",
                    me,
                    level=chunk.level,
                    chunk=state.chunk_id,
                    batch=len(state.comm_times) - 1,
                    start=state.start,
                    attrs={
                        "owner": owner,
                        "requests": len(batch),
                        "payload_bytes": payload,
                        "comm_seconds": comm,
                        "serve_seconds": serve,
                    },
                ))

        cache_ops += (
            self.hds.chain_steps - chain_steps_before
        ) * self.cost.hds_probe
        cache_ops += self.cache.drain_cost()
        cache_wall = self._parallel(cache_ops)
        self.machine.clock.cache += cache_wall
        self._m_t_cache.inc(cache_wall)
        state.cache_seconds += cache_wall

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def _charge_chunk_setup(self, state: _LevelState, num_items: int) -> None:
        state.scheduler_serial += self.cost.chunk_setup
        state.scheduler_serial += (
            math.ceil(num_items / self.cost.mini_batch_size)
            * self.cost.mini_batch_dispatch
        )

    def _finalize_state(self, state: _LevelState) -> None:
        """Charge the chunk's pipelined time and release its memory."""
        penalty = self._compute_penalty()
        compute_par = self._parallel(state.compute_serial) * penalty
        total_batch = max(1, sum(state.batch_sizes))
        compute_per_batch = [
            compute_par * size / total_batch for size in state.batch_sizes
        ]
        if self.circulant:
            wall = pipeline_time(state.comm_times, compute_per_batch)
        else:
            # no pipelining: every fetch completes before computing
            wall = sum(state.comm_times) + compute_par
        scheduler_par = self._parallel(state.scheduler_serial)
        exposed = max(0.0, wall - compute_par)
        comm_total = sum(state.comm_times)
        hidden = max(0.0, comm_total - exposed)
        self.machine.clock.compute += compute_par
        self.machine.clock.network += exposed
        self.machine.clock.scheduler += scheduler_par
        self._m_t_compute.inc(compute_par)
        self._m_t_network.inc(exposed)
        self._m_t_scheduler.inc(scheduler_par)
        self._m_overlap.observe(hidden)
        if self._trace:
            self._tracer.record(Span(
                "chunk",
                self.machine.machine_id,
                level=state.chunk.level,
                chunk=state.chunk_id,
                start=state.start,
                attrs={
                    "compute": compute_par,
                    "network": exposed,
                    "scheduler": scheduler_par,
                    "cache": state.cache_seconds,
                    "items": len(state.chunk.items),
                    "batches": len(state.batch_sizes) - 1,
                    "comm_seconds": comm_total,
                    "hidden_seconds": hidden,
                },
            ))
        state.chunk.release()
