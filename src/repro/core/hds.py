"""Horizontal data sharing (paper Section 5.2).

Extendable embeddings in the same chunk often request the same edge
list (a hub vertex is the new vertex of many embeddings at once). A
per-level hash table with vertex-id keys dedups those fetches. To keep
the table nearly free, collisions are *dropped* rather than chained: if
the slot for ``v`` is occupied by a different vertex, ``v`` is simply
fetched again. The paper reports this trades a little redundant
communication for a large bookkeeping saving (4.4TB -> 33.8GB on
5-clique/LiveJournal while remaining cheap).
"""

from __future__ import annotations

from enum import Enum

_KNUTH = 2654435761
_MASK = 0xFFFFFFFF


class ProbeOutcome(Enum):
    HIT = "hit"  # same vertex already in the slot: share the pointer
    INSERTED = "inserted"  # slot was free: this fetch fills it
    DROPPED = "dropped"  # slot held a different vertex: fetch anyway


class HorizontalShareTable:
    """Collision-dropping per-chunk hash table of requested edge lists.

    ``chaining=True`` switches to the conventional design the paper
    argues *against*: collisions build a chain instead of being dropped.
    Chaining removes the residual duplicate fetches but pays a chain
    walk on every colliding probe — ``chain_steps`` counts those extra
    key comparisons so the ablation bench can charge their cost.
    """

    def __init__(self, num_slots: int = 8192, chaining: bool = False):
        self.num_slots = max(1, num_slots)
        self.chaining = chaining
        self._slots: dict[int, list[int]] = {}
        self.hits = 0
        self.inserts = 0
        self.drops = 0
        self.probes = 0
        self.chain_steps = 0

    def probe(self, vertex: int) -> ProbeOutcome:
        """Look up / claim the slot for ``vertex``."""
        self.probes += 1
        slot = ((vertex + 1) * _KNUTH & _MASK) % self.num_slots
        chain = self._slots.get(slot)
        if chain is None:
            self._slots[slot] = [vertex]
            self.inserts += 1
            return ProbeOutcome.INSERTED
        if chain[0] == vertex:
            self.hits += 1
            return ProbeOutcome.HIT
        if not self.chaining:
            self.drops += 1
            return ProbeOutcome.DROPPED
        # chained variant: walk the collision chain
        for occupant in chain[1:]:
            self.chain_steps += 1
            if occupant == vertex:
                self.hits += 1
                return ProbeOutcome.HIT
        self.chain_steps += 1
        chain.append(vertex)
        self.inserts += 1
        return ProbeOutcome.INSERTED

    def clear(self) -> None:
        """Reset for the next chunk (the table is per-level/per-chunk)."""
        self._slots.clear()
