"""Horizontal data sharing (paper Section 5.2).

Extendable embeddings in the same chunk often request the same edge
list (a hub vertex is the new vertex of many embeddings at once). A
per-level hash table with vertex-id keys dedups those fetches.

**Collision-dropping rationale (Section 5.2).** A conventional hash
table would resolve collisions by chaining, paying a pointer chase and
key comparison per colliding probe and dynamic allocation per chain
node — bookkeeping on *every* fetch, in the innermost communication
path. Khuzdul instead keeps exactly one vertex per slot: if the slot
for ``v`` is occupied by a different vertex, ``v``'s fetch is simply
issued again. A dropped entry costs one redundant edge-list transfer;
a chained entry costs CPU on every subsequent probe. Because the
table is sized so collisions are rare (and cleared per chunk, so
entries never age), the paper reports the drop design removes almost
all duplicate traffic anyway — 4.4 TB -> 33.8 GB on
5-clique/LiveJournal — while the table stays a single array probe.
The ``chaining=True`` variant exists to measure the rejected design
(``bench_ablations_design.py``).

Sharing is *horizontal* because it happens across embeddings at the
same level of the embedding tree, within one chunk; the complementary
*vertical* sharing (Section 5.1) reuses data along parent pointers
across levels. The table must be per-chunk: a chunk is the unit whose
fetched edge lists are resident together, so a hit may alias the
already-scheduled fetch's buffer.

Observability: when constructed with a
:class:`~repro.obs.metrics.MetricsScope`, every probe outcome is also
emitted as the ``hds.*`` counters documented in ``docs/metrics.md``
(attributed to the owning machine by the scope's labels). The plain
integer attributes (``hits``/``probes``/...) remain authoritative and
free, so ablation benches and reports work without instrumentation.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

from repro.obs import names
from repro.obs.metrics import MetricsScope, scope_or_null

_KNUTH = 2654435761
_MASK = 0xFFFFFFFF


class ProbeOutcome(Enum):
    HIT = "hit"  # same vertex already in the slot: share the pointer
    INSERTED = "inserted"  # slot was free: this fetch fills it
    DROPPED = "dropped"  # slot held a different vertex: fetch anyway


class HorizontalShareTable:
    """Collision-dropping per-chunk hash table of requested edge lists.

    ``chaining=True`` switches to the conventional design the paper
    argues *against*: collisions build a chain instead of being dropped.
    Chaining removes the residual duplicate fetches but pays a chain
    walk on every colliding probe — ``chain_steps`` counts those extra
    key comparisons so the ablation bench can charge their cost.
    """

    def __init__(
        self,
        num_slots: int = 8192,
        chaining: bool = False,
        metrics: Optional[MetricsScope] = None,
    ):
        self.num_slots = max(1, num_slots)
        self.chaining = chaining
        self._slots: dict[int, list[int]] = {}
        self.hits = 0
        self.inserts = 0
        self.drops = 0
        self.probes = 0
        self.chain_steps = 0
        metrics = scope_or_null(metrics)
        self._m_probes = metrics.counter(names.HDS_PROBES)
        self._m_hits = metrics.counter(names.HDS_HITS)
        self._m_inserts = metrics.counter(names.HDS_INSERTS)
        self._m_drops = metrics.counter(names.HDS_DROPS)
        self._m_chain_steps = metrics.counter(names.HDS_CHAIN_STEPS)

    def probe(self, vertex: int) -> ProbeOutcome:
        """Look up / claim the slot for ``vertex``."""
        self.probes += 1
        self._m_probes.inc()
        slot = ((vertex + 1) * _KNUTH & _MASK) % self.num_slots
        chain = self._slots.get(slot)
        if chain is None:
            self._slots[slot] = [vertex]
            self.inserts += 1
            self._m_inserts.inc()
            return ProbeOutcome.INSERTED
        if chain[0] == vertex:
            self.hits += 1
            self._m_hits.inc()
            return ProbeOutcome.HIT
        if not self.chaining:
            self.drops += 1
            self._m_drops.inc()
            return ProbeOutcome.DROPPED
        # chained variant: walk the collision chain
        for occupant in chain[1:]:
            self.chain_steps += 1
            self._m_chain_steps.inc()
            if occupant == vertex:
                self.hits += 1
                self._m_hits.inc()
                return ProbeOutcome.HIT
        self.chain_steps += 1
        self._m_chain_steps.inc()
        chain.append(vertex)
        self.inserts += 1
        self._m_inserts.inc()
        return ProbeOutcome.INSERTED

    def clear(self) -> None:
        """Reset for the next chunk (the table is per-level/per-chunk).

        Only the slots are cleared — the counters are cumulative per
        scheduler (i.e. per machine per pattern), which is what the
        engine aggregates into ``RunReport.extra['hds']``.
        """
        self._slots.clear()

    def invalidate(self, predicate=None) -> int:
        """Drop entries whose vertex satisfies ``predicate`` (all when
        ``None``). HDS entries alias buffers of fetches already
        scheduled within the current chunk, so when the machine that
        sourced those buffers is lost the aliases must go too; returns
        the number of vertices removed."""
        if predicate is None:
            removed = sum(len(chain) for chain in self._slots.values())
            self._slots.clear()
            return removed
        removed = 0
        for slot in list(self._slots):
            chain = [v for v in self._slots[slot] if not predicate(v)]
            removed += len(self._slots[slot]) - len(chain)
            if chain:
                self._slots[slot] = chain
            else:
                del self._slots[slot]
        return removed
