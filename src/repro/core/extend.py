"""The EXTEND interface (paper Section 3.2) and candidate computation.

``EXTEND`` is the sole interface between a client GPM system and the
Khuzdul engine: given an extendable embedding whose active edge lists
are available, produce its children (or, at the last level, hand the
completed embeddings to the application's UDF). Client systems here
are compiled :class:`~repro.patterns.schedule.Schedule` objects, so one
generic :class:`ScheduleExtender` plays the role the modified
Automine/GraphPi compilers play in the paper — emitting the
pattern-specific branch structure of Figure 5 from the schedule.

:func:`compute_candidates` is the inner intersection kernel shared by
every engine and baseline in this repository, which is what guarantees
all of them report identical embedding counts while differing only in
where costs are charged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core import kernels
from repro.graph.graph import Graph
from repro.obs import names
from repro.obs.metrics import MetricsScope, scope_or_null
from repro.patterns.schedule import CountingPlan, ExtensionStep, Schedule

#: Application callback: receives the embedding prefix (matching-order
#: positions 0..n-2) and the array of final vertices completing it.
MatchCallback = Callable[[tuple[int, ...], np.ndarray], None]

_EMPTY = np.empty(0, dtype=np.int32)


@dataclass
class ExtendResult:
    """Outcome of extending one embedding by one level.

    ``candidates`` are the data vertices that complete the step after
    every filter; ``raw`` is the unfiltered intersection kept when the
    schedule marks the step ``store_intermediate`` (vertical computation
    sharing); ``merge_elements`` counts the elements streamed through
    set operations (the engine's computation cost unit);
    ``scanned`` counts candidate-array elements passed through filters.
    """

    candidates: np.ndarray
    raw: Optional[np.ndarray]
    merge_elements: int
    scanned: int


def compute_candidates(
    graph: Graph,
    step: ExtensionStep,
    vertices: tuple[int, ...],
    intermediate: Optional[np.ndarray],
    vcs: bool,
) -> ExtendResult:
    """Candidates for matching-order position ``step.level``.

    Parameters
    ----------
    graph:
        The input graph (neighbor lists are sorted/unique CSR slices).
    step:
        The schedule step being executed.
    vertices:
        Data vertices already placed at positions ``0..step.level-1``.
    intermediate:
        The ancestor's stored raw intersection for ``step.reuse_level``
        (``None`` when unavailable).
    vcs:
        Whether vertical computation sharing is enabled; when off the
        full intersection is recomputed from the edge lists.
    """
    merge_elements = 0
    use_reuse = vcs and step.reuse_level is not None and intermediate is not None
    if use_reuse:
        base = intermediate
        remaining = step.extra_connected
    else:
        base = graph.neighbors(vertices[step.connected[0]])
        remaining = step.connected[1:]
    for position in remaining:
        other = graph.neighbors(vertices[position])
        merge_elements += len(base) + len(other)
        base = np.intersect1d(base, other, assume_unique=True)

    raw = base if step.store_intermediate else None
    candidates = base
    scanned = len(candidates)

    for position in step.disconnected:
        other = graph.neighbors(vertices[position])
        merge_elements += len(candidates) + len(other)
        candidates = np.setdiff1d(candidates, other, assume_unique=True)

    if len(candidates):
        # distinct-vertex constraint: drop already-used data vertices.
        # Patterns have at most a handful of vertices, so a few !=
        # passes beat np.isin's hash/sort machinery
        mask = candidates != vertices[0]
        for used in vertices[1:]:
            mask &= candidates != used
        candidates = candidates[mask]
    if step.larger_than and len(candidates):
        bound = max(vertices[j] for j in step.larger_than)
        candidates = candidates[candidates > bound]
    if step.smaller_than and len(candidates):
        bound = min(vertices[j] for j in step.smaller_than)
        candidates = candidates[candidates < bound]
    if step.label is not None and graph.labels is not None and len(candidates):
        candidates = candidates[graph.labels[candidates] == step.label]
    if step.edge_labels is not None and len(candidates):
        candidates = _filter_edge_labels(graph, step, vertices, candidates)

    return ExtendResult(
        candidates=candidates if len(candidates) else _EMPTY,
        raw=raw,
        merge_elements=merge_elements,
        scanned=scanned,
    )


def _filter_edge_labels(
    graph: Graph,
    step: ExtensionStep,
    vertices: tuple[int, ...],
    candidates: np.ndarray,
) -> np.ndarray:
    """Keep candidates whose connecting edges carry the required labels.

    For each connected position ``j`` the pattern demands label
    ``step.edge_labels[k]`` on the edge ``(v_j, candidate)``. Candidates
    are a subset of ``N(v_j)``, so their labels are found by binary
    search into the CSR slice.
    """
    assert step.edge_labels is not None
    if graph.edge_labels is None:
        # same branch as the batched kernel (kernels.extend_chunk): an
        # unlabeled graph satisfies exactly the all-zero requirement,
        # regardless of which per-source label slices exist
        if any(required != 0 for required in step.edge_labels):
            return candidates[:0]
        return candidates
    for position, required in zip(step.connected, step.edge_labels):
        if not len(candidates):
            break
        source = vertices[position]
        nbrs = graph.neighbors(source)
        label_slice = graph.edge_label_slice(source)
        if label_slice is None:
            if required != 0:
                return candidates[:0]
            continue
        offsets = np.searchsorted(nbrs, candidates)
        candidates = candidates[label_slice[offsets] == required]
    return candidates


def _is_neighbor(graph: Graph, source: int, candidate: int) -> bool:
    """Sorted-CSR membership probe (scalar analogue of the bulk
    :func:`~repro.core.kernels.adjacency_member`)."""
    nbrs = graph.neighbors(source)
    pos = int(np.searchsorted(nbrs, candidate))
    return pos < len(nbrs) and int(nbrs[pos]) == candidate


def iep_count(
    graph: Graph, plan: CountingPlan, vertices: tuple[int, ...]
) -> tuple[int, int, int]:
    """Scalar reference for the IEP terminal kernel.

    Evaluates one prefix embedding's counting plan: returns
    ``(count, merge_elements, scanned)``, element-identical to the
    embedding's row of :func:`repro.core.kernels.iep_chunk` — the same
    sequential intersection from each signature's first column (no
    probe-direction flip) and the same ``running + degree`` merge
    charge per stage, which is what keeps simulated accounting
    bit-identical across ``--extend-mode`` under ``--counting iep``.
    """
    prefix_size = len(vertices)
    merge_elements = 0
    scanned = 0
    cards: dict[tuple[int, ...], int] = {}
    for signature in plan.signatures:
        if len(signature) == 1:
            card = int(graph.degree(vertices[signature[0]]))
        else:
            base = graph.neighbors(vertices[signature[0]])
            for column in signature[1:]:
                other = graph.neighbors(vertices[column])
                merge_elements += len(base) + len(other)
                base = np.intersect1d(base, other, assume_unique=True)
            card = len(base)
            scanned += card
        for column in range(prefix_size):
            if all(
                _is_neighbor(graph, vertices[source], vertices[column])
                for source in signature
            ):
                card -= 1
        cards[signature] = card
    count = 0
    for term in plan.terms:
        value = term.coefficient
        for block in term.blocks:
            value *= cards[block]
        count += value
    return count, merge_elements, scanned


class ScheduleExtender:
    """The EXTEND function compiled from a :class:`Schedule`.

    This is the object a ported single-machine GPM system hands to the
    engine: ``step_for(level)`` selects the branch the paper's EXTEND
    pseudo-code switches on, and :meth:`extend_level` runs it. Porting
    Automine/GraphPi onto Khuzdul amounts to generating one of these
    from their matching-order compilers (see ``repro.systems``).
    """

    def __init__(
        self,
        schedule: Schedule,
        vcs: bool = True,
        metrics: Optional[MetricsScope] = None,
    ):
        self.schedule = schedule
        self.vcs = vcs
        self.bind_metrics(scope_or_null(metrics))

    def bind_metrics(self, metrics: MetricsScope) -> None:
        """(Re-)bind the ``extend.*``/``kernel.*`` counters."""
        self._m_calls = metrics.counter(names.EXTEND_CALLS)
        self._m_merge = metrics.counter(names.EXTEND_MERGE_ELEMENTS)
        self._m_candidates = metrics.counter(names.EXTEND_CANDIDATES)
        self._m_k_batches = metrics.counter(names.KERNEL_BATCHES)
        self._m_k_embeddings = metrics.counter(
            names.KERNEL_BATCHED_EMBEDDINGS
        )
        self._m_k_probe = metrics.counter(names.KERNEL_PROBE_ELEMENTS)
        self._m_k_count_only = metrics.counter(
            names.KERNEL_COUNT_ONLY_BATCHES
        )
        self._m_iep_batches = metrics.counter(names.KERNEL_IEP_BATCHES)
        self._m_iep_embeddings = metrics.counter(
            names.KERNEL_IEP_EMBEDDINGS
        )
        self._m_iep_terms = metrics.counter(names.KERNEL_IEP_TERMS)
        self._m_iep_probe = metrics.counter(
            names.KERNEL_IEP_PROBE_ELEMENTS
        )

    @property
    def num_levels(self) -> int:
        return self.schedule.num_levels

    @property
    def final_level(self) -> int:
        """Matching-order position of the last vertex."""
        return self.schedule.pattern.num_vertices - 1

    def step_for(self, level: int) -> ExtensionStep:
        """The step that places position ``level`` (1-based levels)."""
        return self.schedule.steps[level - 1]

    def needs_edge_list(self, position: int) -> bool:
        return self.schedule.needs_edge_list(position)

    def extend_level(
        self,
        graph: Graph,
        vertices: tuple[int, ...],
        level: int,
        intermediate_lookup: Callable[[int], Optional[np.ndarray]],
    ) -> ExtendResult:
        """Run the extension placing position ``level``."""
        step = self.step_for(level)
        intermediate = None
        if self.vcs and step.reuse_level is not None:
            intermediate = intermediate_lookup(step.reuse_level)
        result = compute_candidates(graph, step, vertices, intermediate,
                                    self.vcs)
        self._m_calls.inc()
        self._m_merge.inc(result.merge_elements)
        self._m_candidates.inc(len(result.candidates))
        return result

    # ------------------------------------------------------------------
    # batched path (repro.core.kernels, docs/performance.md)
    # ------------------------------------------------------------------
    def extend_chunk(
        self,
        graph: Graph,
        items: list,
        level: int,
        count_only: bool = False,
    ) -> kernels.ChunkExtendResult:
        """Extend a whole chunk of same-level embeddings in one batch.

        Produces per-embedding results element-identical to calling
        :meth:`extend_level` on each item. ``extend.*`` metrics are NOT
        emitted here — the scheduler consumes the batch one embedding
        at a time (possibly pausing mid-chunk), so per-embedding
        accounting happens at consumption time
        (:meth:`take_batch_result` / :meth:`account_count_only`),
        keeping partial runs bit-identical to the scalar path. Only the
        batched-only ``kernel.*`` counters are emitted here.
        """
        step = self.step_for(level)
        n = len(items)
        prefixes = np.empty((n, level), dtype=np.int64)
        nodes = items
        for column in range(level - 1, -1, -1):
            prefixes[:, column] = [node.vertex for node in nodes]
            if column:
                nodes = [node.parent for node in nodes]
        intermediates = None
        if self.vcs and step.reuse_level is not None:
            reuse = step.reuse_level
            intermediates = [emb.intermediate_at(reuse) for emb in items]
        batch = kernels.extend_chunk(
            graph, step, prefixes, intermediates,
            vcs=self.vcs, count_only=count_only,
        )
        self._m_k_batches.inc()
        self._m_k_embeddings.inc(n)
        self._m_k_probe.inc(batch.probe_elements)
        if count_only:
            self._m_k_count_only.inc()
        return batch

    def iep_chunk(
        self,
        graph: Graph,
        plan: CountingPlan,
        items: list,
        level: int,
    ) -> kernels.ChunkIepResult:
        """Evaluate the IEP counting plan over a chunk of complete
        prefix embeddings (level ``plan.prefix_schedule``'s last
        position). Mirrors :meth:`extend_chunk`'s prefix assembly; the
        ``extend.*`` accounting is deferred to the scheduler's
        :meth:`account_count_only` fold, and only the batched-only
        ``kernel.iep.*`` counters are emitted here.
        """
        n = len(items)
        prefixes = np.empty((n, level + 1), dtype=np.int64)
        nodes = items
        for column in range(level, -1, -1):
            prefixes[:, column] = [node.vertex for node in nodes]
            if column:
                nodes = [node.parent for node in nodes]
        batch = kernels.iep_chunk(graph, plan, prefixes)
        self._m_iep_batches.inc()
        self._m_iep_embeddings.inc(n)
        self._m_iep_terms.inc(len(plan.terms) * n)
        self._m_iep_probe.inc(batch.probe_elements)
        return batch

    def iep_embedding(
        self, graph: Graph, plan: CountingPlan, vertices: tuple[int, ...]
    ) -> tuple[int, int, int]:
        """Scalar-mode IEP evaluation of one prefix embedding.

        No ``kernel.iep.*`` increments — those counters are
        batched-only, matching the ``kernel.*`` split on the
        enumeration path; ``extend.*`` accounting happens via the
        scheduler's :meth:`account_count_only` fold.
        """
        return iep_count(graph, plan, vertices)

    def take_batch_result(
        self, batch: kernels.ChunkExtendResult, index: int
    ) -> ExtendResult:
        """Materialize embedding ``index``'s slice of a batch.

        The per-embedding analogue of :meth:`extend_level`'s return —
        including the ``extend.*`` metric increments, deferred to this
        consumption point so a run cut short mid-chunk reports the same
        totals as the scalar path.
        """
        candidates = batch.candidates_for(index)
        raw = None
        if batch.step.store_intermediate:
            raw = batch.raw_for(index)
        result = ExtendResult(
            candidates=candidates if len(candidates) else _EMPTY,
            raw=raw,
            merge_elements=int(batch.merge_elements[index]),
            scanned=int(batch.scanned[index]),
        )
        self._m_calls.inc()
        self._m_merge.inc(result.merge_elements)
        self._m_candidates.inc(len(result.candidates))
        return result

    def account_count_only(
        self, calls: int, merge_elements: int, candidates: int
    ) -> None:
        """``extend.*`` increments for count-only-drained embeddings.

        Takes whole-chunk integer tallies: integer counter folds are
        exact, so one bump per drained chunk reports the same totals as
        the scalar path's per-embedding increments.
        """
        self._m_calls.inc(calls)
        self._m_merge.inc(merge_elements)
        self._m_candidates.inc(candidates)
