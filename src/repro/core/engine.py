"""The Khuzdul distributed execution engine.

Ties the per-machine hybrid scheduler to the simulated cluster: builds
per-machine static caches, runs every machine's share of the
enumeration (machines interact only through read-only edge-list
fetches, so the simulation runs them in sequence while their clocks
advance independently), and assembles a :class:`RunReport` whose
simulated runtime is the slowest machine's clock.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.cache import CachePolicy, EdgeCache
from repro.core.extend import ScheduleExtender
from repro.core.runtime import RunReport
from repro.core.scheduler import NULL_UDF, MachineScheduler, Udf
from repro.errors import (
    ConfigurationError,
    FetchFailedError,
    MachineCrashError,
    OutOfMemoryError,
    SimTimeoutError,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.recovery import FailureSummary, Outcome, split_roots
from repro.obs import NULL_OBS, Observability, Span, names
from repro.patterns.schedule import Schedule, compile_counting_plan

#: Multi-pattern UDF: (pattern index, prefix vertices, candidates).
MultiUdf = Callable[[int, tuple[int, ...], np.ndarray], None]


@dataclass(frozen=True)
class EngineConfig:
    """Tunables of the Khuzdul engine (paper defaults, scaled).

    ``chunk_bytes`` plays the role of the paper's 4 GB default chunk in
    the analogue world; ``cache_fraction`` is the static cache budget as
    a fraction of the graph size (paper: 5-15%).
    """

    chunk_bytes: int = 1 << 20
    vcs: bool = True
    hds: bool = True
    hds_slots: int = 8192
    #: ablation: build collision chains instead of dropping (Section 5.2
    #: argues dropping is the better trade; see the design-ablation bench)
    hds_chaining: bool = False
    #: ablation: disable the circulant pipeline — fetch all batches of a
    #: chunk before computing any of it (Section 4.3)
    circulant: bool = True
    #: clamp the (pre-allocated) chunk size so that one chunk per tree
    #: level fits comfortably in node memory — the operator judgement
    #: the paper applied when picking 4 GB chunks for 64 GB nodes.
    #: Disable to expose the raw OOM behaviour (Figure 18).
    auto_fit_chunks: bool = True
    cache_fraction: float = 0.10
    cache_policy: CachePolicy = CachePolicy.STATIC
    cache_degree_threshold: int = 16
    numa_aware: bool = True
    #: EXTEND implementation: "batched" runs whole chunks through the
    #: vectorized kernels (repro.core.kernels, docs/performance.md),
    #: "scalar" keeps the per-embedding reference path. Counts and all
    #: simulated measurements are bit-identical either way.
    extend_mode: str = "batched"
    #: counting strategy for count-only queries (no UDF): "enumerate"
    #: materializes every level of the embedding tree; "iep" replaces
    #: the pairwise-unconstrained suffix of eligible schedules with the
    #: inclusion-exclusion terminal kernel (docs/performance.md).
    #: Counts are bit-identical either way; schedules without an
    #: eligible plan (labeled, induced, suffix < 2) silently fall back
    #: to enumeration.
    counting: str = "enumerate"
    #: simulated-seconds budget per machine; None = no timeout
    time_budget: Optional[float] = None
    #: injected faults for this engine's runs (docs/faults.md);
    #: None = fault-free execution with zero overhead
    faults: Optional[FaultPlan] = None
    #: reassign a crashed machine's remaining work to survivors; with
    #: False, a crash ends the run with a partial CRASHED report
    recover: bool = True
    #: durable chunk-granular checkpoints (docs/faults.md,
    #: "Durability"): persist the recovery cursor under this directory
    #: so a killed run can restart with ``resume`` and skip completed
    #: root chunks; None = no persistence
    checkpoint_dir: Optional[str] = None
    #: make every N-th completed root chunk durable (log fsync +
    #: aggregates snapshot); larger = less IO, more replay after a kill
    checkpoint_every: int = 1
    #: start from the checkpoint under ``checkpoint_dir`` instead of
    #: from scratch; the manifest must fingerprint-match this run
    resume: bool = False

    def __post_init__(self):
        if self.chunk_bytes < 1024:
            raise ConfigurationError("chunk_bytes must be at least 1KiB")
        if not 0.0 <= self.cache_fraction <= 1.0:
            raise ConfigurationError("cache_fraction must be within [0, 1]")
        if self.extend_mode not in ("batched", "scalar"):
            raise ConfigurationError(
                "extend_mode must be 'batched' or 'scalar', "
                f"got {self.extend_mode!r}"
            )
        if self.counting not in ("enumerate", "iep"):
            raise ConfigurationError(
                "counting must be 'enumerate' or 'iep', "
                f"got {self.counting!r}"
            )
        if self.checkpoint_every < 1:
            raise ConfigurationError("checkpoint_every must be >= 1")
        if self.resume and self.checkpoint_dir is None:
            raise ConfigurationError(
                "resume requires checkpoint_dir (nothing to resume from)"
            )
        if (self.checkpoint_dir is not None and self.faults is not None
                and not self.faults.empty):
            raise ConfigurationError(
                "durable checkpoints and injected fault plans are "
                "mutually exclusive: simulated crash recovery reassigns "
                "roots across machines, which the per-machine durable "
                "cursor does not describe (docs/faults.md)"
            )

    @staticmethod
    def memory_headroom_bytes(memory_bytes: int, levels: int) -> int:
        """Largest per-chunk budget that keeps ``levels`` chunks (plus
        partition, cache, and overflow slack) inside node memory."""
        return memory_bytes // (4 * levels)


class KhuzdulEngine:
    """Distributed GPM execution engine over a simulated cluster.

    One engine instance is bound to one :class:`Cluster`. Each call to
    :meth:`run`/:meth:`run_many` starts from clean clocks and fresh
    caches and returns a :class:`RunReport`.

    ``obs`` is the engine's observability bundle
    (:class:`~repro.obs.Observability`); it defaults to the shared
    no-op bundle, in which case instrumentation costs nothing and the
    report is byte-identical to an uninstrumented build. With an
    enabled bundle, every component emits the metrics/spans documented
    in ``docs/metrics.md`` and the report gains an
    ``extra['obs']`` summary (per-machine Figure 15 phase seconds from
    span data, span counts, emitted metric names). The bundle is reset
    at the start of each run, so a summary always describes one run.
    """

    def __init__(
        self,
        cluster: Cluster,
        config: Optional[EngineConfig] = None,
        obs: Optional[Observability] = None,
        backend=None,
    ):
        self.cluster = cluster
        self.config = config or EngineConfig()
        self.obs = obs if obs is not None else NULL_OBS
        #: execution backend (``repro.exec``); ``None`` runs the
        #: in-process simulated path directly. Duck-typed on purpose:
        #: this module must not import ``repro.exec`` (which imports
        #: the engine), so any object with
        #: ``execute(engine, schedules, udf, system, app, graph_name)``
        #: works — see :class:`repro.exec.Backend`.
        self.backend = backend

    # ------------------------------------------------------------------
    def run(
        self,
        schedule: Schedule,
        udf: Optional[Udf] = None,
        system: str = "khuzdul",
        app: str = "pattern",
        graph_name: str = "graph",
    ) -> RunReport:
        """Enumerate one pattern; returns the report with ``counts: int``."""
        counts, report = self._execute([schedule], _wrap_single(udf),
                                       system, app, graph_name)
        counts = self._finalize_counts([schedule], counts, udf)
        report.counts = counts[0]
        return report

    def run_many(
        self,
        schedules: Sequence[Schedule],
        udf: Optional[MultiUdf] = None,
        system: str = "khuzdul",
        app: str = "patterns",
        graph_name: str = "graph",
    ) -> RunReport:
        """Enumerate several patterns in one job (motifs, FSM rounds).

        Each pattern pays the engine's per-pattern start-up cost, which
        is what makes many-pattern workloads (FSM) relatively more
        expensive on Khuzdul than on a bare single-machine system
        (paper Table 4). The report's ``counts`` is a list aligned with
        ``schedules``.
        """
        counts, report = self._execute(list(schedules), udf,
                                       system, app, graph_name)
        counts = self._finalize_counts(schedules, counts, udf)
        report.counts = counts
        return report

    def _finalize_counts(
        self, schedules: Sequence[Schedule], counts: list[int], udf
    ) -> list[int]:
        """Fold IEP symmetry divisors into raw plan numerators.

        Everything below :meth:`run`/:meth:`run_many` — schedulers,
        checkpoints, process-backend workers, recovery replays — tallies
        the restriction-free numerator (each partial sum stays an exact
        integer, so re-executed or resumed shards merge by addition).
        The single exact division per query happens here, after every
        backend path has converged.
        """
        if self.config.counting != "iep" or udf is not None:
            return counts
        for index, schedule in enumerate(schedules):
            plan = compile_counting_plan(schedule)
            if plan is not None and plan.divisor > 1:
                counts[index] //= plan.divisor
        return counts

    # ------------------------------------------------------------------
    def _execute(
        self,
        schedules: list[Schedule],
        udf: Optional[MultiUdf],
        system: str,
        app: str,
        graph_name: str,
    ) -> tuple[list[int], RunReport]:
        if self.backend is not None:
            return self.backend.execute(
                self, schedules, udf, system, app, graph_name
            )
        if self.config.checkpoint_dir is not None:
            return self._execute_durable(schedules, udf, system, app,
                                         graph_name)
        return self._execute_inline(schedules, udf, system, app, graph_name)

    def execute_hosted(
        self,
        schedules: list[Schedule],
        udf: Optional[MultiUdf],
        system: str,
        app: str,
        graph_name: str,
        hosted: set,
        transport=None,
        checkpoint_sink=None,
        resume: Optional[dict] = None,
    ) -> tuple[list[int], RunReport]:
        """Run only ``hosted`` machine ids through the inline path.

        The execution-backend entry point (docs/execution.md): process
        backend workers call it with their hosted subset and the queue
        transport, and the parent's lost-worker re-execution calls it
        with a dead worker's subset and no transport. The restriction
        changes *which* schedulers run, never what any of them
        computes — which is why a re-executed subset reproduces a lost
        worker's counts and simulated measurements bit-exactly.

        ``checkpoint_sink``/``resume`` are the durability hooks
        (docs/faults.md): the sink observes every completed root
        chunk's absolute cursor, and ``resume`` seeds schedulers past
        already-completed roots.
        """
        return self._execute_inline(
            schedules, udf, system, app, graph_name,
            hosted=hosted, transport=transport,
            checkpoint_sink=checkpoint_sink, resume=resume,
        )

    def _execute_durable(
        self,
        schedules: list[Schedule],
        udf: Optional[MultiUdf],
        system: str,
        app: str,
        graph_name: str,
    ) -> tuple[list[int], RunReport]:
        """Inline execution under a durable checkpoint directory.

        Opens (or resumes) the :class:`CheckpointSession`, feeds it
        every completed root chunk, and restores mergeable UDF state
        from the aggregates snapshot on resume. A killed run restarted
        with ``resume=True`` skips completed chunks and reproduces the
        uninterrupted run's counts bit-exactly (docs/faults.md).
        """
        import pickle

        from repro.faults import durability

        config = self.config
        manifest = durability.run_manifest(
            self.cluster, schedules, config, system, app, graph_name
        )
        session = durability.CheckpointSession(
            config.checkpoint_dir, manifest,
            num_patterns=len(schedules),
            every=config.checkpoint_every,
            resume=config.resume,
        )
        obs = self.obs

        if udf is not None:
            if not callable(getattr(udf, "merge", None)):
                raise ConfigurationError(
                    "durable checkpoints need a mergeable UDF: resumed "
                    "runs restore snapshotted state via udf.merge(other) "
                    "(plain callables/closures run without "
                    "checkpoint_dir only)"
                )
            try:
                pickle.dumps(udf)
            except Exception as exc:
                raise ConfigurationError(
                    f"durable checkpoints need a picklable UDF (its "
                    f"state is snapshotted every flush): {exc}"
                ) from exc
            if config.resume and session.snapshot_udf is not None:
                udf.merge(pickle.loads(session.snapshot_udf))

        def snapshot_extra() -> dict:
            return {
                "udf": pickle.dumps(udf) if udf is not None else None,
                "metrics": obs.registry.dump() if obs.enabled else None,
            }

        session.snapshot_extra = snapshot_extra
        resume_state = (
            session.resume_state(with_udf=udf is not None)
            if config.resume else None
        )
        counts, report = self._execute_inline(
            schedules, udf, system, app, graph_name,
            checkpoint_sink=session.record, resume=resume_state,
        )
        session.finalize()
        stats = session.stats()
        report.extra["checkpoint"] = stats
        if obs.enabled:
            scope = obs.registry.scope()
            scope.counter(names.CHECKPOINT_RECORDS).inc(stats["records"])
            scope.counter(names.CHECKPOINT_FLUSHES).inc(stats["flushes"])
            scope.counter(names.CHECKPOINT_RESUMED_ROOTS).inc(
                stats["resumed_roots"]
            )
        return counts, report

    def _execute_inline(
        self,
        schedules: list[Schedule],
        udf: Optional[MultiUdf],
        system: str,
        app: str,
        graph_name: str,
        hosted: Optional[set] = None,
        transport=None,
        checkpoint_sink=None,
        resume: Optional[dict] = None,
    ) -> tuple[list[int], RunReport]:
        """The simulated single-process execution path.

        ``hosted``/``transport`` are the worker-process hooks of the
        ``process`` backend (docs/execution.md): with ``hosted`` set,
        only that subset of machine ids runs schedulers (the rest are
        replicas other workers drive), and ``transport`` routes each
        circulant batch's edge lists over real inter-process queues.
        Neither changes any simulated quantity, which is what keeps
        backend counts bit-identical.

        ``checkpoint_sink(pattern, machine, roots, matches)`` observes
        every completed root chunk with its *absolute* cursor;
        ``resume`` maps ``(pattern, machine)`` to an already-completed
        ``(roots, matches)`` prefix, which is sliced off the machine's
        root set and seeded into its counts before the scheduler runs.
        Roots are enumerated in a deterministic order, so skipping a
        completed prefix reproduces exactly the remaining work — the
        durability contract of docs/faults.md.
        """
        cluster = self.cluster
        config = self.config
        graph = cluster.graph
        obs = self.obs
        obs.reset()  # one summary per run
        cluster.reset_clocks()
        if obs.registry.enabled:
            # reset_clocks rebuilt the network model; re-attach metrics
            cluster.network.bind_metrics(obs.registry.scope())
        injector = None
        if config.faults is not None and not config.faults.empty:
            # the injector outlives reset_clocks' network rebuild, so it
            # must be (re-)attached here, once per run
            injector = FaultInjector(
                config.faults, metrics=obs.registry.scope()
            )
            cluster.network.attach_injector(injector)
        rec_scope = obs.registry.scope()
        m_reassigned_roots = rec_scope.counter(
            names.RECOVERY_REASSIGNED_ROOTS
        )
        m_reassigned_chunks = rec_scope.counter(
            names.RECOVERY_REASSIGNED_CHUNKS
        )
        m_invalidated = rec_scope.counter(names.RECOVERY_INVALIDATED_ENTRIES)

        failure: Optional[FailureSummary] = None
        recovered = False
        events: list[dict] = []
        recovery_stats = {
            "reassigned_roots": 0,
            "reassigned_chunks": 0,
            "invalidated_entries": 0,
            "checkpoints": 0,
        }

        cache_capacity = int(config.cache_fraction * graph.size_bytes())
        caches = []
        machine_scopes = []
        for machine in cluster.machines:
            scope = obs.registry.scope(machine=machine.machine_id)
            machine_scopes.append(scope)
            caches.append(
                EdgeCache(
                    cache_capacity,
                    config.cache_degree_threshold,
                    config.cache_policy,
                    cluster.cost,
                    metrics=scope,
                )
            )
        allocated = []
        try:
            for machine in cluster.machines:
                machine.allocate(cache_capacity)  # pre-allocated pool
                allocated.append(machine)
        except OutOfMemoryError as exc:
            failure = FailureSummary(
                Outcome.OUTOFMEM, exc.machine_id, str(exc),
                cluster.runtime(), events=events,
            )
        startup_counters = [
            scope.counter(names.TIME_SCHEDULER) for scope in machine_scopes
        ]

        counts = [0] * len(schedules)
        # Per-(schedule, machine) the engine builds a *fresh* scheduler
        # (and HDS table), so summing scheduler.hds.* below counts each
        # probe exactly once; the regression test
        # test_obs.py::test_hds_stats_not_double_counted pins this down.
        # The per-machine series live in the registry (hds.* counters);
        # this dict keeps the cluster-wide totals reports always carry.
        hds_stats = {"hits": 0, "probes": 0, "drops": 0}
        fetch_sources = {"local": 0, "remote": 0, "cache": 0, "shared": 0}
        chunks_created = 0

        def absorb(scheduler: MachineScheduler) -> None:
            """Fold a finished (or dying) scheduler's stats into the run."""
            nonlocal chunks_created
            hds_stats["hits"] += scheduler.hds.hits
            hds_stats["probes"] += scheduler.hds.probes
            hds_stats["drops"] += scheduler.hds.drops
            for source, count in scheduler.fetch_sources.items():
                fetch_sources[source.value] += count
            chunks_created += scheduler.chunks_created
            recovery_stats["checkpoints"] += scheduler.checkpoints_taken

        try:
            for index, schedule in enumerate(schedules):
                if failure is not None:
                    break
                # IEP counting plan (docs/performance.md): eligible
                # count-only schedules enumerate only the plan's prefix
                # pattern and drain complete prefixes through the
                # inclusion-exclusion terminal kernel. compile returns
                # None for ineligible schedules — those enumerate as
                # usual, so a mixed run_many works per pattern.
                iep_plan = None
                if config.counting == "iep" and udf is None:
                    iep_plan = compile_counting_plan(schedule)
                extender_schedule = (
                    schedule if iep_plan is None
                    else iep_plan.prefix_schedule
                )
                chunk_bytes = config.chunk_bytes
                if config.auto_fit_chunks:
                    if iep_plan is None:
                        levels = max(1, schedule.pattern.num_vertices - 2)
                    else:
                        # the DFS stack only ever holds prefix levels
                        levels = max(
                            1,
                            extender_schedule.pattern.num_vertices - 1,
                        )
                    headroom = config.memory_headroom_bytes(
                        cluster.config.memory_bytes, levels
                    )
                    chunk_bytes = max(1024, min(chunk_bytes, headroom))
                # Work queue of (machine, roots) shards. Fault-free runs
                # enqueue exactly one shard per machine; crash recovery
                # appends the orphaned remainder as survivor shards. A
                # durable resume slices each machine's completed prefix
                # off and seeds its checkpointed matches directly.
                shards: deque[_Shard] = deque()
                for machine in cluster.machines:
                    if (hosted is not None
                            and machine.machine_id not in hosted):
                        continue
                    roots = self._roots_for(machine.machine_id, schedule)
                    base_roots = base_matches = 0
                    if resume:
                        base_roots, base_matches = resume.get(
                            (index, machine.machine_id), (0, 0)
                        )
                        if base_roots:
                            base_roots = min(base_roots, len(roots))
                            counts[index] += base_matches
                            roots = roots[base_roots:]
                    shards.append(_Shard(
                        machine.machine_id, roots,
                        base_roots=base_roots, base_matches=base_matches,
                    ))
                while shards:
                    shard = shards.popleft()
                    mid = shard.machine_id
                    if mid in cluster.dead:
                        # owner died after this shard was queued (earlier
                        # pattern, or a multi-crash plan): bounce its
                        # whole share to the survivors
                        live = cluster.live_ids()
                        if not live:
                            failure = FailureSummary(
                                Outcome.CRASHED, mid,
                                "no live machine left to take over",
                                cluster.runtime(), events=events,
                            )
                            break
                        pieces = split_roots(shard.roots, live)
                        for survivor, share in pieces:
                            shards.append(_Shard(survivor, share,
                                                 recovery=True))
                        recovery_stats["reassigned_roots"] += len(shard.roots)
                        m_reassigned_roots.inc(len(shard.roots))
                        continue
                    machine = cluster.machines[mid]
                    machine.clock.scheduler += cluster.cost.engine_startup
                    startup_counters[mid].inc(cluster.cost.engine_startup)
                    if obs.tracer.enabled:
                        obs.tracer.record(Span(
                            "startup", mid,
                            start=machine.clock.total(),
                            attrs={"scheduler": cluster.cost.engine_startup,
                                   "pattern": index},
                        ))
                    if udf is None:
                        machine_udf: Udf = _NULL_UDF
                    else:
                        machine_udf = _bind_udf(udf, index)
                    scheduler = MachineScheduler(
                        cluster=cluster,
                        machine=machine,
                        extender=ScheduleExtender(
                            extender_schedule,
                            vcs=config.vcs,
                            metrics=machine_scopes[mid],
                        ),
                        cache=caches[mid],
                        udf=machine_udf,
                        chunk_bytes=chunk_bytes,
                        hds_enabled=config.hds,
                        hds_slots=config.hds_slots,
                        hds_chaining=config.hds_chaining,
                        vcs_enabled=config.vcs,
                        numa_aware=config.numa_aware,
                        circulant=config.circulant,
                        time_budget=config.time_budget,
                        obs=obs,
                        faults=injector,
                        transport=transport,
                        batched_extend=(config.extend_mode == "batched"),
                        iep_plan=iep_plan,
                        checkpoint_sink=(
                            _make_shard_sink(checkpoint_sink, index, shard)
                            if checkpoint_sink is not None
                            and not shard.recovery else None
                        ),
                    )
                    try:
                        shard_matches = scheduler.run(shard.roots)
                    except MachineCrashError as exc:
                        absorb(scheduler)
                        ckpt = scheduler.checkpoint
                        # only work up to the last checkpoint survives;
                        # everything past it is replayed by survivors,
                        # which is what keeps recovered counts exact
                        counts[index] += ckpt.matches
                        cluster.mark_dead(mid)
                        event = {
                            "kind": "crash",
                            "machine": mid,
                            "trigger": exc.trigger,
                            "pattern": index,
                            "roots_completed": ckpt.roots_completed,
                            "checkpoint_matches": ckpt.matches,
                        }
                        events.append(event)
                        if not config.recover:
                            failure = FailureSummary(
                                Outcome.CRASHED, mid, str(exc),
                                cluster.runtime(), events=events,
                            )
                            break
                        live = cluster.live_ids()
                        if not live:
                            failure = FailureSummary(
                                Outcome.CRASHED, mid,
                                "machine crashed and no survivors remain",
                                cluster.runtime(), events=events,
                            )
                            break
                        # survivors drop cache entries sourced from the
                        # dead partition (they would alias buffers the
                        # failover owner now serves afresh)
                        owner_of = cluster.partitioned.owner
                        invalidated = 0
                        for sid in live:
                            invalidated += caches[sid].invalidate(
                                lambda v: owner_of(v) == mid
                            )
                        recovery_stats["invalidated_entries"] += invalidated
                        m_invalidated.inc(invalidated)
                        remaining = shard.roots[ckpt.roots_completed:]
                        try:
                            for survivor, share in split_roots(
                                remaining, live
                            ):
                                self._charge_refetch(
                                    survivor, mid, share,
                                    machine_scopes[survivor],
                                )
                                shards.append(_Shard(survivor, share,
                                                     recovery=True))
                        except FetchFailedError as refetch_exc:
                            failure = FailureSummary(
                                Outcome.DEGRADED, mid, str(refetch_exc),
                                cluster.runtime(), events=events,
                            )
                            break
                        recovery_stats["reassigned_roots"] += len(remaining)
                        m_reassigned_roots.inc(len(remaining))
                        event["reassigned_roots"] = int(len(remaining))
                        event["survivors"] = live
                        recovered = True
                        continue
                    except OutOfMemoryError as exc:
                        absorb(scheduler)
                        counts[index] += scheduler.checkpoint.matches
                        failure = FailureSummary(
                            Outcome.OUTOFMEM, exc.machine_id, str(exc),
                            cluster.runtime(), events=events,
                        )
                        break
                    except FetchFailedError as exc:
                        absorb(scheduler)
                        counts[index] += scheduler.checkpoint.matches
                        events.append({
                            "kind": "fetch_failed",
                            "machine": mid,
                            "owner": exc.owner,
                            "attempts": exc.attempts,
                            "pattern": index,
                        })
                        failure = FailureSummary(
                            Outcome.DEGRADED, mid, str(exc),
                            cluster.runtime(), events=events,
                        )
                        break
                    except SimTimeoutError as exc:
                        absorb(scheduler)
                        counts[index] += scheduler.checkpoint.matches
                        failure = FailureSummary(
                            Outcome.TIMEOUT, mid, str(exc),
                            cluster.runtime(), events=events,
                        )
                        break
                    absorb(scheduler)
                    counts[index] += shard_matches
                    if shard.recovery:
                        recovery_stats["reassigned_chunks"] += (
                            scheduler.chunks_created
                        )
                        m_reassigned_chunks.inc(scheduler.chunks_created)
                    # the scheduler polices the budget at chunk
                    # boundaries; this engine-level check also covers
                    # runs that never reach one (trivial patterns) and
                    # the final overshoot of a machine's last chunk
                    if (
                        config.time_budget is not None
                        and machine.clock.total() > config.time_budget
                    ):
                        failure = FailureSummary(
                            Outcome.TIMEOUT, mid,
                            f"machine {mid} finished at "
                            f"{machine.clock.total():.3g}s, over the "
                            f"{config.time_budget:.3g}s budget",
                            cluster.runtime(), events=events,
                        )
                        break
        finally:
            for machine in allocated:
                machine.release(cache_capacity)

        if failure is None and injector is not None and (
            recovered or injector.fetch_failures > 0
        ):
            crash_events = [e for e in events if e["kind"] == "crash"]
            failure = FailureSummary(
                Outcome.RECOVERED,
                machine_id=(
                    crash_events[0]["machine"] if crash_events else None
                ),
                message=(
                    f"recovered: {len(crash_events)} machine(s) lost, "
                    f"{injector.fetch_failures} transient fetch "
                    f"failure(s) retried; counts are complete"
                ),
                simulated_seconds=cluster.runtime(),
                partial=False,
                events=events,
            )

        runtime = cluster.runtime()
        slowest = max(cluster.machines, key=lambda m: m.busy_seconds())
        total_hits = sum(c.hits for c in caches)
        total_queries = total_hits + sum(c.misses for c in caches)
        machine_breakdowns = []
        for machine in cluster.machines:
            buckets = machine.clock.as_dict()
            buckets["serve"] = machine.serve_seconds
            machine_breakdowns.append(buckets)
            if obs.registry.enabled:
                machine_scopes[machine.machine_id].counter(
                    names.TIME_SERVE
                ).inc(machine.serve_seconds)
        report = RunReport(
            system=system,
            app=app,
            graph_name=graph_name,
            counts=None,
            simulated_seconds=runtime,
            network_bytes=cluster.network.total_bytes(),
            breakdown=slowest.clock.as_dict(),
            machine_breakdowns=machine_breakdowns,
            machine_seconds=[m.busy_seconds() for m in cluster.machines],
            cache_hit_rate=(total_hits / total_queries) if total_queries else 0.0,
            cache_entries=sum(len(c) for c in caches),
            network_utilization=cluster.network.utilization(runtime),
            peak_memory_bytes=max(m.peak_bytes for m in cluster.machines),
            num_machines=cluster.num_machines,
            extra={
                "hds": hds_stats,
                "fetch_sources": fetch_sources,
                "chunks": chunks_created,
                "requests": cluster.network.total_requests(),
                "serve_seconds": max(m.serve_seconds for m in cluster.machines),
            },
            failure=failure,
        )
        if injector is not None or failure is not None:
            report.extra["faults"] = {
                **(injector.stats() if injector is not None else {}),
                "net_retries": cluster.network.retries,
                "retry_backoff_seconds": cluster.network.retry_seconds,
                "plan": (
                    config.faults.describe()
                    if config.faults is not None else None
                ),
            }
            report.extra["recovery"] = dict(recovery_stats)
        if graph.storage == "mmap":
            # out-of-core runs price the static cache against the
            # mapping: every cache miss is a gather the page cache may
            # have to fault in, every hit provably avoided one
            # (docs/storage.md)
            builder_stats = getattr(graph, "builder_stats", None) or {}
            report.extra["storage"] = {
                "mode": graph.storage,
                "mapped_bytes": graph.size_bytes(),
                "spill_runs": int(builder_stats.get("spill_runs", 0)),
                "merge_batches": int(builder_stats.get("merge_batches", 0)),
                "page_miss_gathers": int(total_queries - total_hits),
            }
            if obs.registry.enabled:
                storage_scope = obs.registry.scope()
                storage_scope.gauge(names.STORAGE_MAPPED_BYTES).set(
                    graph.size_bytes()
                )
                storage_scope.counter(names.STORAGE_SPILL_RUNS).inc(
                    int(builder_stats.get("spill_runs", 0))
                )
                storage_scope.counter(names.STORAGE_MERGE_BATCHES).inc(
                    int(builder_stats.get("merge_batches", 0))
                )
                storage_scope.counter(
                    names.STORAGE_PAGE_MISS_GATHERS
                ).inc(int(total_queries - total_hits))
        if hosted is not None:
            # raw cross-worker material the process backend needs to
            # reconstruct cluster-global fields; never present on
            # user-facing reports (the backend strips it after merging)
            report.extra["_worker"] = {
                "traffic_bytes": cluster.network.traffic_bytes.copy(),
                "num_batches": cluster.network.num_batches,
                "cache_hits": total_hits,
                "cache_queries": total_queries,
            }
        if obs.enabled:
            summary = obs.summary()
            summary["network"] = {
                "per_machine_sent_bytes": [
                    cluster.network.bytes_sent_by(m)
                    for m in range(cluster.num_machines)
                ],
                "per_machine_utilization":
                    cluster.network.per_machine_utilization(runtime),
                "num_batches": cluster.network.num_batches,
            }
            report.extra["obs"] = summary
        return counts, report

    def _charge_refetch(
        self, survivor_id: int, dead_id: int, roots: np.ndarray, scope
    ) -> None:
        """Bulk re-fetch of a survivor's share of the lost partition.

        Storage is replicated by assumption: the failover owner streams
        the orphaned roots' edge lists to the survivor in one batch
        before the replay starts. The transfer is real traffic (it goes
        through ``record_fetch``, so flaky-fetch faults apply to it too)
        and its wire time lands on the survivor's network clock.
        """
        cluster = self.cluster
        if len(roots) == 0:
            return
        source = cluster.failover_owner(dead_id)
        if source == survivor_id:
            return  # the replica holder already has the bytes locally
        graph = cluster.graph
        payload = int(
            sum(graph.edge_list_bytes(int(v)) for v in roots)
        )
        server = cluster.machines[source]
        cluster.network.record_fetch(survivor_id, source, payload, server)
        comm = cluster.network.batch_time(payload, 1)
        comm += cluster.network.drain_retry_seconds()
        cluster.machines[survivor_id].clock.network += comm
        scope.counter(names.TIME_NETWORK).inc(comm)
        serve = cluster.network.serve_time(payload, 1)
        server.serve_seconds += serve / server.comm_threads

    def _roots_for(self, machine_id: int, schedule: Schedule) -> np.ndarray:
        """Local partition vertices, filtered by the root label if any."""
        roots = self.cluster.partitioned.local_vertices(machine_id)
        root_label = schedule.root_label()
        if root_label is not None and self.cluster.graph.labels is not None:
            labels = self.cluster.graph.labels[roots]
            roots = roots[labels == root_label]
        return roots


@dataclass
class _Shard:
    """One unit of the engine's work queue: a machine and its roots.

    ``recovery`` marks shards created by reassignment, whose chunk
    creations feed the ``recovery.reassigned_chunks`` metric.
    ``base_roots``/``base_matches`` are the durable-resume prefix that
    was sliced off this machine's root set — the offsets that turn the
    scheduler's shard-relative checkpoint cursor back into the absolute
    one the chunk log records.
    """

    machine_id: int
    roots: np.ndarray
    recovery: bool = False
    base_roots: int = 0
    base_matches: int = 0


def _make_shard_sink(sink, pattern: int, shard: "_Shard"):
    """Adapt the engine-level checkpoint sink to one scheduler: add the
    pattern index and rebase the shard-relative cursor to absolute."""
    machine_id = shard.machine_id
    base_roots = shard.base_roots
    base_matches = shard.base_matches

    def on_checkpoint(ckpt) -> None:
        sink(pattern, machine_id,
             base_roots + ckpt.roots_completed,
             base_matches + ckpt.matches)

    return on_checkpoint


#: Default UDF: counting only. The sentinel lives in the scheduler
#: module (it recognizes it by identity for the count-only fast path);
#: this alias keeps the engine's historical name working.
_NULL_UDF = NULL_UDF


def _bind_udf(udf: MultiUdf, index: int) -> Udf:
    def bound(prefix: tuple[int, ...], candidates: np.ndarray) -> None:
        udf(index, prefix, candidates)

    return bound


def _wrap_single(udf: Optional[Udf]) -> Optional[MultiUdf]:
    if udf is None:
        return None

    def wrapped(index: int, prefix: tuple[int, ...], candidates) -> None:
        udf(prefix, candidates)

    return wrapped
