"""The Khuzdul distributed execution engine.

Ties the per-machine hybrid scheduler to the simulated cluster: builds
per-machine static caches, runs every machine's share of the
enumeration (machines interact only through read-only edge-list
fetches, so the simulation runs them in sequence while their clocks
advance independently), and assembles a :class:`RunReport` whose
simulated runtime is the slowest machine's clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.cache import CachePolicy, EdgeCache
from repro.core.extend import ScheduleExtender
from repro.core.runtime import RunReport
from repro.core.scheduler import MachineScheduler, Udf
from repro.errors import ConfigurationError
from repro.obs import NULL_OBS, Observability, Span, names
from repro.patterns.schedule import Schedule

#: Multi-pattern UDF: (pattern index, prefix vertices, candidates).
MultiUdf = Callable[[int, tuple[int, ...], np.ndarray], None]


@dataclass(frozen=True)
class EngineConfig:
    """Tunables of the Khuzdul engine (paper defaults, scaled).

    ``chunk_bytes`` plays the role of the paper's 4 GB default chunk in
    the analogue world; ``cache_fraction`` is the static cache budget as
    a fraction of the graph size (paper: 5-15%).
    """

    chunk_bytes: int = 1 << 20
    vcs: bool = True
    hds: bool = True
    hds_slots: int = 8192
    #: ablation: build collision chains instead of dropping (Section 5.2
    #: argues dropping is the better trade; see the design-ablation bench)
    hds_chaining: bool = False
    #: ablation: disable the circulant pipeline — fetch all batches of a
    #: chunk before computing any of it (Section 4.3)
    circulant: bool = True
    #: clamp the (pre-allocated) chunk size so that one chunk per tree
    #: level fits comfortably in node memory — the operator judgement
    #: the paper applied when picking 4 GB chunks for 64 GB nodes.
    #: Disable to expose the raw OOM behaviour (Figure 18).
    auto_fit_chunks: bool = True
    cache_fraction: float = 0.10
    cache_policy: CachePolicy = CachePolicy.STATIC
    cache_degree_threshold: int = 16
    numa_aware: bool = True
    #: simulated-seconds budget per machine; None = no timeout
    time_budget: Optional[float] = None

    def __post_init__(self):
        if self.chunk_bytes < 1024:
            raise ConfigurationError("chunk_bytes must be at least 1KiB")
        if not 0.0 <= self.cache_fraction <= 1.0:
            raise ConfigurationError("cache_fraction must be within [0, 1]")

    @staticmethod
    def memory_headroom_bytes(memory_bytes: int, levels: int) -> int:
        """Largest per-chunk budget that keeps ``levels`` chunks (plus
        partition, cache, and overflow slack) inside node memory."""
        return memory_bytes // (4 * levels)


class KhuzdulEngine:
    """Distributed GPM execution engine over a simulated cluster.

    One engine instance is bound to one :class:`Cluster`. Each call to
    :meth:`run`/:meth:`run_many` starts from clean clocks and fresh
    caches and returns a :class:`RunReport`.

    ``obs`` is the engine's observability bundle
    (:class:`~repro.obs.Observability`); it defaults to the shared
    no-op bundle, in which case instrumentation costs nothing and the
    report is byte-identical to an uninstrumented build. With an
    enabled bundle, every component emits the metrics/spans documented
    in ``docs/metrics.md`` and the report gains an
    ``extra['obs']`` summary (per-machine Figure 15 phase seconds from
    span data, span counts, emitted metric names). The bundle is reset
    at the start of each run, so a summary always describes one run.
    """

    def __init__(
        self,
        cluster: Cluster,
        config: Optional[EngineConfig] = None,
        obs: Optional[Observability] = None,
    ):
        self.cluster = cluster
        self.config = config or EngineConfig()
        self.obs = obs if obs is not None else NULL_OBS

    # ------------------------------------------------------------------
    def run(
        self,
        schedule: Schedule,
        udf: Optional[Udf] = None,
        system: str = "khuzdul",
        app: str = "pattern",
        graph_name: str = "graph",
    ) -> RunReport:
        """Enumerate one pattern; returns the report with ``counts: int``."""
        counts, report = self._execute([schedule], _wrap_single(udf),
                                       system, app, graph_name)
        report.counts = counts[0]
        return report

    def run_many(
        self,
        schedules: Sequence[Schedule],
        udf: Optional[MultiUdf] = None,
        system: str = "khuzdul",
        app: str = "patterns",
        graph_name: str = "graph",
    ) -> RunReport:
        """Enumerate several patterns in one job (motifs, FSM rounds).

        Each pattern pays the engine's per-pattern start-up cost, which
        is what makes many-pattern workloads (FSM) relatively more
        expensive on Khuzdul than on a bare single-machine system
        (paper Table 4). The report's ``counts`` is a list aligned with
        ``schedules``.
        """
        counts, report = self._execute(list(schedules), udf,
                                       system, app, graph_name)
        report.counts = counts
        return report

    # ------------------------------------------------------------------
    def _execute(
        self,
        schedules: list[Schedule],
        udf: Optional[MultiUdf],
        system: str,
        app: str,
        graph_name: str,
    ) -> tuple[list[int], RunReport]:
        cluster = self.cluster
        config = self.config
        graph = cluster.graph
        obs = self.obs
        obs.reset()  # one summary per run
        cluster.reset_clocks()
        if obs.registry.enabled:
            # reset_clocks rebuilt the network model; re-attach metrics
            cluster.network.bind_metrics(obs.registry.scope())

        cache_capacity = int(config.cache_fraction * graph.size_bytes())
        caches = []
        machine_scopes = []
        for machine in cluster.machines:
            machine.allocate(cache_capacity)  # pre-allocated pool
            scope = obs.registry.scope(machine=machine.machine_id)
            machine_scopes.append(scope)
            caches.append(
                EdgeCache(
                    cache_capacity,
                    config.cache_degree_threshold,
                    config.cache_policy,
                    cluster.cost,
                    metrics=scope,
                )
            )
        startup_counters = [
            scope.counter(names.TIME_SCHEDULER) for scope in machine_scopes
        ]

        counts = [0] * len(schedules)
        # Per-(schedule, machine) the engine builds a *fresh* scheduler
        # (and HDS table), so summing scheduler.hds.* below counts each
        # probe exactly once; the regression test
        # test_obs.py::test_hds_stats_not_double_counted pins this down.
        # The per-machine series live in the registry (hds.* counters);
        # this dict keeps the cluster-wide totals reports always carry.
        hds_stats = {"hits": 0, "probes": 0, "drops": 0}
        fetch_sources = {"local": 0, "remote": 0, "cache": 0, "shared": 0}
        chunks_created = 0
        try:
            for index, schedule in enumerate(schedules):
                chunk_bytes = config.chunk_bytes
                if config.auto_fit_chunks:
                    levels = max(1, schedule.pattern.num_vertices - 2)
                    headroom = config.memory_headroom_bytes(
                        cluster.config.memory_bytes, levels
                    )
                    chunk_bytes = max(1024, min(chunk_bytes, headroom))
                for machine in cluster.machines:
                    machine.clock.scheduler += cluster.cost.engine_startup
                    startup_counters[machine.machine_id].inc(
                        cluster.cost.engine_startup
                    )
                    if obs.tracer.enabled:
                        obs.tracer.record(Span(
                            "startup", machine.machine_id,
                            start=machine.clock.total(),
                            attrs={"scheduler": cluster.cost.engine_startup,
                                   "pattern": index},
                        ))
                    roots = self._roots_for(machine.machine_id, schedule)
                    if udf is None:
                        machine_udf: Udf = _NULL_UDF
                    else:
                        machine_udf = _bind_udf(udf, index)
                    scheduler = MachineScheduler(
                        cluster=cluster,
                        machine=machine,
                        extender=ScheduleExtender(
                            schedule,
                            vcs=config.vcs,
                            metrics=machine_scopes[machine.machine_id],
                        ),
                        cache=caches[machine.machine_id],
                        udf=machine_udf,
                        chunk_bytes=chunk_bytes,
                        hds_enabled=config.hds,
                        hds_slots=config.hds_slots,
                        hds_chaining=config.hds_chaining,
                        vcs_enabled=config.vcs,
                        numa_aware=config.numa_aware,
                        circulant=config.circulant,
                        time_budget=config.time_budget,
                        obs=obs,
                    )
                    counts[index] += scheduler.run(roots)
                    hds_stats["hits"] += scheduler.hds.hits
                    hds_stats["probes"] += scheduler.hds.probes
                    hds_stats["drops"] += scheduler.hds.drops
                    for source, count in scheduler.fetch_sources.items():
                        fetch_sources[source.value] += count
                    chunks_created += scheduler.chunks_created
        finally:
            for machine in cluster.machines:
                machine.release(cache_capacity)

        runtime = cluster.runtime()
        slowest = max(cluster.machines, key=lambda m: m.busy_seconds())
        total_hits = sum(c.hits for c in caches)
        total_queries = total_hits + sum(c.misses for c in caches)
        machine_breakdowns = []
        for machine in cluster.machines:
            buckets = machine.clock.as_dict()
            buckets["serve"] = machine.serve_seconds
            machine_breakdowns.append(buckets)
            if obs.registry.enabled:
                machine_scopes[machine.machine_id].counter(
                    names.TIME_SERVE
                ).inc(machine.serve_seconds)
        report = RunReport(
            system=system,
            app=app,
            graph_name=graph_name,
            counts=None,
            simulated_seconds=runtime,
            network_bytes=cluster.network.total_bytes(),
            breakdown=slowest.clock.as_dict(),
            machine_breakdowns=machine_breakdowns,
            machine_seconds=[m.busy_seconds() for m in cluster.machines],
            cache_hit_rate=(total_hits / total_queries) if total_queries else 0.0,
            cache_entries=sum(len(c) for c in caches),
            network_utilization=cluster.network.utilization(runtime),
            peak_memory_bytes=max(m.peak_bytes for m in cluster.machines),
            num_machines=cluster.num_machines,
            extra={
                "hds": hds_stats,
                "fetch_sources": fetch_sources,
                "chunks": chunks_created,
                "requests": cluster.network.total_requests(),
                "serve_seconds": max(m.serve_seconds for m in cluster.machines),
            },
        )
        if obs.enabled:
            summary = obs.summary()
            summary["network"] = {
                "per_machine_sent_bytes": [
                    cluster.network.bytes_sent_by(m)
                    for m in range(cluster.num_machines)
                ],
                "per_machine_utilization":
                    cluster.network.per_machine_utilization(runtime),
                "num_batches": cluster.network.num_batches,
            }
            report.extra["obs"] = summary
        return counts, report

    def _roots_for(self, machine_id: int, schedule: Schedule) -> np.ndarray:
        """Local partition vertices, filtered by the root label if any."""
        roots = self.cluster.partitioned.local_vertices(machine_id)
        root_label = schedule.root_label()
        if root_label is not None and self.cluster.graph.labels is not None:
            labels = self.cluster.graph.labels[roots]
            roots = roots[labels == root_label]
        return roots


def _NULL_UDF(prefix: tuple[int, ...], candidates: np.ndarray) -> None:
    """Default UDF: counting only (the scheduler tracks match totals)."""


def _bind_udf(udf: MultiUdf, index: int) -> Udf:
    def bound(prefix: tuple[int, ...], candidates: np.ndarray) -> None:
        udf(index, prefix, candidates)

    return bound


def _wrap_single(udf: Optional[Udf]) -> Optional[MultiUdf]:
    if udf is None:
        return None

    def wrapped(index: int, prefix: tuple[int, ...], candidates) -> None:
        udf(prefix, candidates)

    return wrapped
