"""Khuzdul reproduction: distributed graph pattern mining on a simulated cluster.

Reproduction of *Khuzdul: Efficient and Scalable Distributed Graph
Pattern Mining Engine* (Chen & Qian, ASPLOS 2023). The package provides

- :mod:`repro.graph` — CSR graphs, synthetic dataset analogues, 1-D
  hash partitioning, orientation preprocessing;
- :mod:`repro.patterns` — pattern graphs, isomorphism, symmetry-breaking
  restrictions, Automine/GraphPi matching-order schedules;
- :mod:`repro.cluster` — the simulated distributed cluster (machines,
  clock buckets, network traffic accounting);
- :mod:`repro.core` — the paper's contribution: extendable embeddings,
  the EXTEND interface, BFS-DFS hybrid chunked exploration with
  circulant scheduling, HDS, the static data cache, and the engine;
- :mod:`repro.systems` — the two client systems (k-Automine,
  k-GraphPi) and the GPM applications (TC, k-CC, k-MC, FSM);
- :mod:`repro.baselines` — the systems the paper compares against
  (G-thinker, replicated GraphPi, single-machine systems, aDFS-like,
  Fractal-like);
- :mod:`repro.analysis` — brute-force validation and table/figure
  reporting.
"""

from repro.cluster import Cluster, ClusterConfig, CostModel
from repro.core import EngineConfig, KhuzdulEngine, RunReport
from repro.graph import Graph, dataset
from repro.patterns import Pattern

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "ClusterConfig",
    "CostModel",
    "EngineConfig",
    "KhuzdulEngine",
    "RunReport",
    "Graph",
    "dataset",
    "Pattern",
    "__version__",
]
