"""Graph statistics: the skew diagnostics the reproduction relies on.

The paper's behaviour differences between datasets (Patents vs
LiveJournal vs UK) are degree-skew effects; these helpers quantify skew
so tests and benchmarks can assert the analogues preserve it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a graph's degree distribution."""

    num_vertices: int
    num_edges: int
    avg_degree: float
    max_degree: int
    median_degree: float
    p99_degree: float
    #: share of adjacency entries owned by the top-5% highest-degree
    #: vertices — the "hot-spot concentration" behind Section 5.3
    top5_degree_share: float
    #: Gini coefficient of the degree distribution (0 = uniform)
    gini: float


def degree_stats(graph: Graph) -> DegreeStats:
    """Compute :class:`DegreeStats` for ``graph``."""
    degrees = np.sort(graph.degrees().astype(np.float64))
    n = len(degrees)
    if n == 0 or degrees.sum() == 0:
        return DegreeStats(n, graph.num_edges, 0.0, 0, 0.0, 0.0, 0.0, 0.0)
    total = degrees.sum()
    top5 = max(1, int(round(0.05 * n)))
    top5_share = float(degrees[-top5:].sum() / total)
    # Gini via the sorted-rank formula
    ranks = np.arange(1, n + 1)
    gini = float((2 * ranks - n - 1).dot(degrees) / (n * total))
    return DegreeStats(
        num_vertices=n,
        num_edges=graph.num_edges,
        avg_degree=float(total / n),
        max_degree=int(degrees[-1]),
        median_degree=float(np.median(degrees)),
        p99_degree=float(np.percentile(degrees, 99)),
        top5_degree_share=top5_share,
        gini=gini,
    )


def hot_vertices(graph: Graph, fraction: float = 0.05) -> np.ndarray:
    """Ids of the top-``fraction`` highest-degree vertices (descending).

    These are the cache-worthy hot spots of Section 5.3.
    """
    count = max(1, int(round(fraction * graph.num_vertices)))
    degrees = graph.degrees()
    order = np.argsort(-degrees, kind="stable")
    return order[:count]


def traffic_concentration(graph: Graph, fraction: float = 0.05) -> float:
    """Share of total edge-list bytes held by the hottest vertices.

    Approximates the paper's observation that "the most frequently
    accessed 5% graph data for 3-motif mining on the UK graph contribute
    to 93% communication".
    """
    hot = hot_vertices(graph, fraction)
    total = sum(graph.edge_list_bytes(v) for v in graph.vertices())
    if total == 0:
        return 0.0
    return sum(graph.edge_list_bytes(int(v)) for v in hot) / total
