"""Builders: construct :class:`~repro.graph.graph.Graph` from edge data.

All builders normalize the input the same way the paper's preprocessing
does: self-loops and duplicate edges are removed, and undirected edges
are stored in both directions with sorted adjacency.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.graph import Graph


def from_edge_array(
    edges: np.ndarray,
    num_vertices: Optional[int] = None,
    labels: Optional[Sequence[int]] = None,
    directed: bool = False,
    edge_labels: Optional[Sequence[int]] = None,
) -> Graph:
    """Build a graph from an ``(m, 2)`` integer edge array.

    Self-loops and duplicate edges (including reversed duplicates for
    undirected graphs) are dropped, mirroring the paper's preprocessing.
    ``edge_labels`` (one per input edge) follow their edges through the
    normalization; when duplicates collapse, the first occurrence wins.
    """
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size == 0:
        edges = edges.reshape(0, 2)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise GraphFormatError("edges must have shape (m, 2)")
    if edges.size and edges.min() < 0:
        raise GraphFormatError("vertex ids must be non-negative")

    if num_vertices is None:
        num_vertices = int(edges.max()) + 1 if edges.size else 0
    elif edges.size and int(edges.max()) >= num_vertices:
        raise GraphFormatError("edge endpoint exceeds num_vertices")

    elabels: Optional[np.ndarray] = None
    if edge_labels is not None:
        elabels = np.asarray(edge_labels, dtype=np.int64)
        if len(elabels) != len(edges):
            raise GraphFormatError("edge_labels length must equal edges")

    # Drop self-loops.
    keep = edges[:, 0] != edges[:, 1]
    edges = edges[keep]
    if elabels is not None:
        elabels = elabels[keep]

    if not directed:
        # Store both directions, dedup on the directed pairs.
        edges = np.concatenate([edges, edges[:, ::-1]], axis=0)
        if elabels is not None:
            elabels = np.concatenate([elabels, elabels])
    if len(edges):
        keys = edges[:, 0] * num_vertices + edges[:, 1]
        _, unique_idx = np.unique(keys, return_index=True)
        unique_idx = np.sort(unique_idx)
        edges = edges[unique_idx]
        if elabels is not None:
            elabels = elabels[unique_idx]

    order = np.lexsort((edges[:, 1], edges[:, 0]))
    edges = edges[order]
    if elabels is not None:
        elabels = elabels[order].astype(np.int32)

    counts = np.bincount(edges[:, 0], minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = edges[:, 1].astype(np.int32)

    label_array = None
    if labels is not None:
        label_array = np.asarray(labels, dtype=np.int32)
    return Graph(indptr, indices, label_array, directed, elabels)


def from_edges(
    edges: Iterable[tuple[int, int]],
    num_vertices: Optional[int] = None,
    labels: Optional[Sequence[int]] = None,
    directed: bool = False,
    edge_labels: Optional[Sequence[int]] = None,
) -> Graph:
    """Build a graph from an iterable of ``(u, v)`` pairs."""
    edge_list = list(edges)
    array = np.array(edge_list, dtype=np.int64).reshape(len(edge_list), 2)
    return from_edge_array(array, num_vertices, labels, directed, edge_labels)


#: edge rows parsed per batch by :func:`iter_edge_list_batches`; bounds
#: loader memory at O(batch) for both storage modes
DEFAULT_PARSE_BATCH = 1 << 16


def iter_edge_list_batches(
    path: str | os.PathLike,
    batch_edges: int = DEFAULT_PARSE_BATCH,
) -> "Iterable[np.ndarray]":
    """Parse a whitespace-separated edge-list file in bounded chunks.

    Yields ``(m, 2)`` int64 arrays of at most ``batch_edges`` rows —
    the streaming-builder feed, so loading a file never materializes
    more than one chunk of Python objects regardless of file size.
    Comment (``#``/``%``) and blank lines are skipped; malformed lines
    raise :class:`~repro.errors.GraphFormatError` naming the file and
    line, exactly as the eager loader always has.
    """
    batch_edges = max(1, batch_edges)
    buffer: list[tuple[int, int]] = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(f"{path}:{line_no}: expected two ids")
            try:
                buffer.append((int(parts[0]), int(parts[1])))
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{line_no}: non-integer vertex id"
                ) from exc
            if len(buffer) >= batch_edges:
                yield np.array(buffer, dtype=np.int64)
                buffer.clear()
    if buffer:
        yield np.array(buffer, dtype=np.int64)


def read_edge_list(
    path: str | os.PathLike,
    directed: bool = False,
    batch_edges: int = DEFAULT_PARSE_BATCH,
) -> Graph:
    """Read a whitespace-separated edge-list file (``#`` lines ignored).

    This is the same format as the SNAP datasets the paper evaluates
    on. Parsing is chunked through :func:`iter_edge_list_batches` into
    the streaming builder, so memory stays O(chunk) rather than O(file)
    — the same path :func:`repro.graph.storage.build_store` uses to
    load files straight into an on-disk store.
    """
    from repro.graph.storage import from_edge_batches

    return from_edge_batches(
        iter_edge_list_batches(path, batch_edges), directed=directed
    )


def write_edge_list(graph: Graph, path: str | os.PathLike) -> None:
    """Write a graph as a whitespace-separated edge list (one edge once)."""
    with open(path, "w") as handle:
        handle.write(f"# |V|={graph.num_vertices} |E|={graph.num_edges}\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")
