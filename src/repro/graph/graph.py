"""Immutable CSR graph with sorted adjacency lists.

The whole engine operates on this representation: ``indptr``/``indices``
arrays in the classic CSR layout, with each vertex's neighbor list sorted
ascending so that extensions can use merge intersections, exactly like the
adjacency format the paper's C++ engine uses.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

import numpy as np

from repro.errors import GraphFormatError

#: Bytes used to represent one vertex id on the wire and in memory.
VERTEX_ID_BYTES = 4


class Graph:
    """An undirected (or oriented) graph in CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``num_vertices + 1``; neighbor list of
        vertex ``v`` is ``indices[indptr[v]:indptr[v+1]]``.
    indices:
        ``int32``/``int64`` array of neighbor ids, sorted ascending within
        each vertex's slice.
    labels:
        Optional per-vertex label array (``int``); ``None`` for unlabeled
        graphs.
    directed:
        ``True`` for oriented graphs produced by
        :func:`repro.graph.orientation.orient_by_degree`. Undirected
        graphs store each edge twice (both directions).
    """

    __slots__ = ("indptr", "indices", "labels", "directed", "edge_labels")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        labels: Optional[np.ndarray] = None,
        directed: bool = False,
        edge_labels: Optional[np.ndarray] = None,
    ):
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int32)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise GraphFormatError("indptr and indices must be 1-D arrays")
        if indptr[0] != 0 or indptr[-1] != len(indices):
            raise GraphFormatError("indptr does not cover indices")
        if np.any(np.diff(indptr) < 0):
            raise GraphFormatError("indptr must be non-decreasing")
        if labels is not None:
            labels = np.asarray(labels, dtype=np.int32)
            if len(labels) != len(indptr) - 1:
                raise GraphFormatError("labels length must equal num_vertices")
        if edge_labels is not None:
            edge_labels = np.asarray(edge_labels, dtype=np.int32)
            if len(edge_labels) != len(indices):
                raise GraphFormatError(
                    "edge_labels length must equal the adjacency length"
                )
        self.indptr = indptr
        self.indices = indices
        self.labels = labels
        self.directed = directed
        self.edge_labels = edge_labels

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        """Number of edges (undirected edges counted once)."""
        if self.directed:
            return len(self.indices)
        return len(self.indices) // 2

    @property
    def num_directed_edges(self) -> int:
        """Number of stored (directed) adjacency entries."""
        return len(self.indices)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor array of vertex ``v`` (a CSR slice, no copy)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        """Degree (out-degree for oriented graphs) of vertex ``v``."""
        return int(self.indptr[v + 1] - self.indptr[v])

    def degrees(self) -> np.ndarray:
        """Array of all vertex degrees."""
        return np.diff(self.indptr)

    def max_degree(self) -> int:
        """Largest degree in the graph (0 for an empty graph)."""
        if self.num_vertices == 0:
            return 0
        return int(self.degrees().max())

    def has_edge(self, u: int, v: int) -> bool:
        """Whether edge ``(u, v)`` exists (binary search on ``N(u)``)."""
        nbrs = self.neighbors(u)
        pos = np.searchsorted(nbrs, v)
        return bool(pos < len(nbrs) and nbrs[pos] == v)

    def label(self, v: int) -> int:
        """Label of vertex ``v`` (0 for unlabeled graphs)."""
        if self.labels is None:
            return 0
        return int(self.labels[v])

    def edge_label(self, u: int, v: int) -> int:
        """Label of edge ``(u, v)`` (0 for edge-unlabeled graphs).

        Raises :class:`KeyError` if the edge does not exist.
        """
        nbrs = self.neighbors(u)
        pos = int(np.searchsorted(nbrs, v))
        if pos >= len(nbrs) or nbrs[pos] != v:
            raise KeyError(f"edge ({u}, {v}) not in graph")
        if self.edge_labels is None:
            return 0
        return int(self.edge_labels[self.indptr[u] + pos])

    def edge_label_slice(self, v: int) -> Optional[np.ndarray]:
        """Edge labels aligned with ``neighbors(v)`` (None if unlabeled)."""
        if self.edge_labels is None:
            return None
        return self.edge_labels[self.indptr[v] : self.indptr[v + 1]]

    def vertices(self) -> range:
        """Iterable over all vertex ids."""
        return range(self.num_vertices)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over edges; undirected edges yielded once as ``u < v``."""
        for u in self.vertices():
            for v in self.neighbors(u):
                if self.directed or u < v:
                    yield (u, int(v))

    # ------------------------------------------------------------------
    # memory accounting (used by the simulated cluster)
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Approximate in-memory size used for memory-capacity checks."""
        n = self.num_vertices
        size = 8 * (n + 1) + VERTEX_ID_BYTES * len(self.indices)
        if self.labels is not None:
            size += 4 * n
        if self.edge_labels is not None:
            size += 4 * len(self.indices)
        return size

    def edge_list_bytes(self, v: int) -> int:
        """Wire size of ``N(v)``: an 8-byte header plus the vertex ids."""
        return 8 + VERTEX_ID_BYTES * self.degree(v)

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def with_labels(self, labels: Sequence[int]) -> "Graph":
        """Return a copy of this graph with per-vertex ``labels`` attached."""
        return Graph(self.indptr, self.indices,
                     np.asarray(labels, dtype=np.int32), self.directed,
                     self.edge_labels)

    def subgraph_degrees_percentile(self, q: float) -> float:
        """Degree at percentile ``q`` (skew diagnostics for generators)."""
        return float(np.percentile(self.degrees(), q))

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (
            f"Graph({kind}, |V|={self.num_vertices}, |E|={self.num_edges}, "
            f"max_deg={self.max_degree()})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        def _same(a, b):
            if a is None or b is None:
                return a is None and b is None
            return np.array_equal(a, b)

        return (
            self.directed == other.directed
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and _same(self.labels, other.labels)
            and _same(self.edge_labels, other.edge_labels)
        )

    def __hash__(self) -> int:  # Graphs are mutable-free; hash by identity
        return id(self)
