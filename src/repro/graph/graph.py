"""Immutable CSR graph with sorted adjacency lists.

The whole engine operates on this representation: ``indptr``/``indices``
arrays in the classic CSR layout, with each vertex's neighbor list sorted
ascending so that extensions can use merge intersections, exactly like the
adjacency format the paper's C++ engine uses.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

import numpy as np

from repro.errors import GraphFormatError

#: Bytes used to represent one vertex id on the wire and in memory.
VERTEX_ID_BYTES = 4


class Graph:
    """An undirected (or oriented) graph in CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``num_vertices + 1``; neighbor list of
        vertex ``v`` is ``indices[indptr[v]:indptr[v+1]]``.
    indices:
        ``int32``/``int64`` array of neighbor ids, sorted ascending within
        each vertex's slice.
    labels:
        Optional per-vertex label array (``int``); ``None`` for unlabeled
        graphs.
    directed:
        ``True`` for oriented graphs produced by
        :func:`repro.graph.orientation.orient_by_degree`. Undirected
        graphs store each edge twice (both directions).
    """

    __slots__ = (
        "indptr",
        "indices",
        "labels",
        "directed",
        "edge_labels",
        "_degrees",
        "_adjacency_keys",
        "_adjacency_matrix",
    )

    #: largest dense adjacency bitmap the kernels will materialize
    #: (bytes); |V|^2 above this falls back to composite-key probes
    DENSE_ADJACENCY_BYTES = 64 << 20

    #: storage mode tag; :class:`repro.graph.storage.MmapGraph`
    #: overrides this with ``"mmap"``. The kernels never look at it —
    #: only byte-accounting layers (admission, ``storage.*`` metrics)
    #: do, so storage selection stays out of ``core/``.
    storage = "ram"

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        labels: Optional[np.ndarray] = None,
        directed: bool = False,
        edge_labels: Optional[np.ndarray] = None,
    ):
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int32)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise GraphFormatError("indptr and indices must be 1-D arrays")
        if indptr[0] != 0 or indptr[-1] != len(indices):
            raise GraphFormatError("indptr does not cover indices")
        if np.any(np.diff(indptr) < 0):
            raise GraphFormatError("indptr must be non-decreasing")
        if labels is not None:
            labels = np.asarray(labels, dtype=np.int32)
            if len(labels) != len(indptr) - 1:
                raise GraphFormatError("labels length must equal num_vertices")
        if edge_labels is not None:
            edge_labels = np.asarray(edge_labels, dtype=np.int32)
            if len(edge_labels) != len(indices):
                raise GraphFormatError(
                    "edge_labels length must equal the adjacency length"
                )
        self.indptr = indptr
        self.indices = indices
        self.labels = labels
        self.directed = directed
        self.edge_labels = edge_labels
        #: lazy caches; the arrays above are immutable by contract
        self._degrees: Optional[np.ndarray] = None
        self._adjacency_keys: Optional[np.ndarray] = None
        self._adjacency_matrix: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        """Number of edges (undirected edges counted once)."""
        if self.directed:
            return len(self.indices)
        return len(self.indices) // 2

    @property
    def num_directed_edges(self) -> int:
        """Number of stored (directed) adjacency entries."""
        return len(self.indices)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor array of vertex ``v`` (a CSR slice, no copy)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def neighbors_batch(self, vs) -> tuple[np.ndarray, np.ndarray]:
        """Flattened gather of several neighbor lists.

        Returns ``(values, offsets)`` where vertex ``vs[i]``'s sorted
        neighbor list is ``values[offsets[i]:offsets[i + 1]]``. One
        vectorized gather instead of ``len(vs)`` per-vertex slices —
        the entry format of the batched EXTEND kernels
        (:mod:`repro.core.kernels`).
        """
        vs = np.asarray(vs, dtype=np.int64)
        starts = self.indptr[vs]
        counts = self.indptr[vs + 1] - starts
        offsets = np.zeros(len(vs) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        total = int(offsets[-1])
        if total == 0:
            return self.indices[:0], offsets
        gather = np.repeat(starts - offsets[:-1], counts)
        gather += np.arange(total, dtype=np.int64)
        return self.indices[gather], offsets

    def adjacency_keys(self) -> np.ndarray:
        """Globally sorted composite keys ``src * |V| + neighbor``.

        CSR entries are grouped by ascending source vertex and sorted
        within each group, so the composite key array is strictly
        increasing — one ``np.searchsorted`` against it answers
        membership/position queries for arbitrary ``(src, neighbor)``
        pairs in bulk. Built lazily (8 bytes per directed edge) for the
        batched EXTEND kernels; plain accessors never need it.
        """
        if self._adjacency_keys is None:
            num_vertices = np.int64(self.num_vertices)
            src = np.repeat(
                np.arange(self.num_vertices, dtype=np.int64), self.degrees()
            )
            keys = src * num_vertices + self.indices
            keys.setflags(write=False)
            self._adjacency_keys = keys
        return self._adjacency_keys

    def adjacency_matrix(self) -> Optional[np.ndarray]:
        """Dense boolean adjacency, or ``None`` when too large to pay for.

        ``matrix[u, v]`` answers ``has_edge(u, v)`` with a single load —
        random membership probes against it are an order of magnitude
        cheaper than binary searches, which is what the batched EXTEND
        kernels buy with it. Materialized lazily and only while
        ``|V|**2`` stays under :data:`DENSE_ADJACENCY_BYTES` (the
        bundled dataset analogues all qualify); larger graphs return
        ``None`` and the kernels keep the ``adjacency_keys`` probe path.
        """
        if self.num_vertices ** 2 > self.DENSE_ADJACENCY_BYTES:
            return None
        if self._adjacency_matrix is None:
            n = self.num_vertices
            matrix = np.zeros((n, n), dtype=bool)
            src = np.repeat(
                np.arange(n, dtype=np.int64), self.degrees()
            )
            matrix[src, self.indices] = True
            matrix.setflags(write=False)
            self._adjacency_matrix = matrix
        return self._adjacency_matrix

    def degree(self, v: int) -> int:
        """Degree (out-degree for oriented graphs) of vertex ``v``."""
        return int(self.indptr[v + 1] - self.indptr[v])

    def degrees(self) -> np.ndarray:
        """Array of all vertex degrees (memoized; returned read-only)."""
        if self._degrees is None:
            degrees = np.diff(self.indptr)
            degrees.setflags(write=False)
            self._degrees = degrees
        return self._degrees

    def max_degree(self) -> int:
        """Largest degree in the graph (0 for an empty graph)."""
        if self.num_vertices == 0:
            return 0
        return int(self.degrees().max())

    def has_edge(self, u: int, v: int) -> bool:
        """Whether edge ``(u, v)`` exists (binary search on ``N(u)``)."""
        nbrs = self.neighbors(u)
        pos = np.searchsorted(nbrs, v)
        return bool(pos < len(nbrs) and nbrs[pos] == v)

    def label(self, v: int) -> int:
        """Label of vertex ``v`` (0 for unlabeled graphs)."""
        if self.labels is None:
            return 0
        return int(self.labels[v])

    def edge_label(self, u: int, v: int) -> int:
        """Label of edge ``(u, v)`` (0 for edge-unlabeled graphs).

        Raises :class:`KeyError` if the edge does not exist.
        """
        nbrs = self.neighbors(u)
        pos = int(np.searchsorted(nbrs, v))
        if pos >= len(nbrs) or nbrs[pos] != v:
            raise KeyError(f"edge ({u}, {v}) not in graph")
        if self.edge_labels is None:
            return 0
        return int(self.edge_labels[self.indptr[u] + pos])

    def edge_label_slice(self, v: int) -> Optional[np.ndarray]:
        """Edge labels aligned with ``neighbors(v)`` (None if unlabeled)."""
        if self.edge_labels is None:
            return None
        return self.edge_labels[self.indptr[v] : self.indptr[v + 1]]

    def vertices(self) -> range:
        """Iterable over all vertex ids."""
        return range(self.num_vertices)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over edges; undirected edges yielded once as ``u < v``."""
        for u in self.vertices():
            for v in self.neighbors(u):
                if self.directed or u < v:
                    yield (u, int(v))

    # ------------------------------------------------------------------
    # memory accounting (used by the simulated cluster)
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Approximate in-memory size used for memory-capacity checks."""
        n = self.num_vertices
        size = 8 * (n + 1) + VERTEX_ID_BYTES * len(self.indices)
        if self.labels is not None:
            size += 4 * n
        if self.edge_labels is not None:
            size += 4 * len(self.indices)
        return size

    def edge_list_bytes(self, v: int) -> int:
        """Wire size of ``N(v)``: an 8-byte header plus the vertex ids."""
        return 8 + VERTEX_ID_BYTES * self.degree(v)

    def edge_list_bytes_all(self) -> np.ndarray:
        """Per-vertex :meth:`edge_list_bytes` as one array.

        The scheduler charges edge-list bytes once per created child and
        once per resolved fetch — a method call plus two ``indptr``
        loads each time adds up on million-child chunks, so the hot
        loops index this instead.
        """
        return 8 + VERTEX_ID_BYTES * self.degrees()

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def with_labels(self, labels: Sequence[int]) -> "Graph":
        """Return a copy of this graph with per-vertex ``labels`` attached."""
        return Graph(self.indptr, self.indices,
                     np.asarray(labels, dtype=np.int32), self.directed,
                     self.edge_labels)

    def subgraph_degrees_percentile(self, q: float) -> float:
        """Degree at percentile ``q`` (skew diagnostics for generators)."""
        return float(np.percentile(self.degrees(), q))

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (
            f"Graph({kind}, |V|={self.num_vertices}, |E|={self.num_edges}, "
            f"max_deg={self.max_degree()})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        def _same(a, b):
            if a is None or b is None:
                return a is None and b is None
            return np.array_equal(a, b)

        return (
            self.directed == other.directed
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and _same(self.labels, other.labels)
            and _same(self.edge_labels, other.edge_labels)
        )

    def __hash__(self) -> int:  # Graphs are mutable-free; hash by identity
        return id(self)
