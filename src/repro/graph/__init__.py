"""Graph substrate: CSR graphs, builders, generators, partitioning.

This package implements everything the Khuzdul engine needs from the
input-graph side: an immutable CSR representation with sorted adjacency
(`Graph`), builders from edge lists and files, synthetic dataset
generators that stand in for the paper's SNAP/WebGraph datasets, 1-D
hash partitioning with optional NUMA sub-partitions, and the
orientation (DAG) preprocessing used for triangle/clique counting on
large graphs.
"""

from repro.graph.graph import Graph
from repro.graph.builder import (
    from_edges,
    from_edge_array,
    read_edge_list,
    write_edge_list,
)
from repro.graph.generators import (
    erdos_renyi,
    power_law_graph,
    random_labels,
)
from repro.graph.datasets import dataset, DATASETS, DatasetSpec
from repro.graph.partition import HashPartitioner, PartitionedGraph
from repro.graph.orientation import orient_by_degree

__all__ = [
    "Graph",
    "from_edges",
    "from_edge_array",
    "read_edge_list",
    "write_edge_list",
    "erdos_renyi",
    "power_law_graph",
    "random_labels",
    "dataset",
    "DATASETS",
    "DatasetSpec",
    "HashPartitioner",
    "PartitionedGraph",
    "orient_by_degree",
]
