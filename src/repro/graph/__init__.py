"""Graph substrate: CSR graphs, builders, generators, partitioning.

This package implements everything the Khuzdul engine needs from the
input-graph side: an immutable CSR representation with sorted adjacency
(`Graph`), builders from edge lists and files, synthetic dataset
generators that stand in for the paper's SNAP/WebGraph datasets, 1-D
hash partitioning with optional NUMA sub-partitions, and the
orientation (DAG) preprocessing used for triangle/clique counting on
large graphs.
"""

from repro.graph.graph import Graph
from repro.graph.builder import (
    from_edges,
    from_edge_array,
    iter_edge_list_batches,
    read_edge_list,
    write_edge_list,
)
from repro.graph.generators import (
    erdos_renyi,
    power_law_edge_batches,
    power_law_graph,
    random_labels,
)
from repro.graph.datasets import dataset, load_dataset, DATASETS, DatasetSpec
from repro.graph.partition import HashPartitioner, PartitionedGraph
from repro.graph.orientation import orient_by_degree
from repro.graph.storage import (
    MmapGraph,
    build_store,
    from_edge_batches,
    open_store,
    resolve_storage,
    write_store,
)

__all__ = [
    "Graph",
    "MmapGraph",
    "from_edges",
    "from_edge_array",
    "from_edge_batches",
    "iter_edge_list_batches",
    "read_edge_list",
    "write_edge_list",
    "erdos_renyi",
    "power_law_edge_batches",
    "power_law_graph",
    "random_labels",
    "dataset",
    "load_dataset",
    "DATASETS",
    "DatasetSpec",
    "HashPartitioner",
    "PartitionedGraph",
    "orient_by_degree",
    "build_store",
    "open_store",
    "write_store",
    "resolve_storage",
]
