"""Vertex reordering preprocessing.

GPM systems commonly renumber vertices before mining: a degree-sorted
numbering makes the symmetry-breaking comparisons (``v_new > v_j``)
align with degree order — so restrictions prune towards low-degree
candidates — and packs hub adjacency together for locality. GraphPi and
Automine both apply such preprocessing; it composes with (and is
distinct from) the orientation transform in
:mod:`repro.graph.orientation`, which drops edge directions outright.

The functions here return both the transformed graph and the mapping
back to original ids, so applications can report embeddings in the
input numbering.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builder import from_edge_array
from repro.graph.graph import Graph


def reorder_by_degree(
    graph: Graph, descending: bool = True
) -> tuple[Graph, np.ndarray]:
    """Renumber vertices by degree; returns ``(graph, old_of_new)``.

    ``descending=True`` gives hubs the smallest ids (the common choice:
    restrictions of the form ``v_new > v_prev`` then bias enumeration
    roots towards hubs whose trees are pruned hardest). The returned
    ``old_of_new[i]`` is the original id of new vertex ``i``.
    """
    degrees = graph.degrees()
    keys = -degrees if descending else degrees
    old_of_new = np.lexsort((np.arange(graph.num_vertices), keys))
    return apply_order(graph, old_of_new), old_of_new


def apply_order(graph: Graph, old_of_new: np.ndarray) -> Graph:
    """Renumber ``graph`` so that new vertex ``i`` is ``old_of_new[i]``."""
    old_of_new = np.asarray(old_of_new, dtype=np.int64)
    if sorted(old_of_new.tolist()) != list(range(graph.num_vertices)):
        raise ValueError("old_of_new must be a permutation of vertex ids")
    new_of_old = np.empty_like(old_of_new)
    new_of_old[old_of_new] = np.arange(graph.num_vertices)

    edges = np.array(
        [(new_of_old[u], new_of_old[v]) for u, v in graph.edges()],
        dtype=np.int64,
    ).reshape(-1, 2)
    edge_labels = None
    if graph.edge_labels is not None:
        edge_labels = [graph.edge_label(u, v) for u, v in graph.edges()]
    labels = None
    if graph.labels is not None:
        labels = graph.labels[old_of_new]
    return from_edge_array(
        edges,
        num_vertices=graph.num_vertices,
        labels=labels,
        directed=graph.directed,
        edge_labels=edge_labels,
    )


def restore_ids(
    vertices: tuple[int, ...], old_of_new: np.ndarray
) -> tuple[int, ...]:
    """Map an embedding found on a reordered graph back to original ids."""
    return tuple(int(old_of_new[v]) for v in vertices)
