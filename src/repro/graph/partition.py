"""1-D hash graph partitioning (Section 2.2) with NUMA sub-partitions.

Vertices are assigned to machines by a multiplicative hash; machine ``i``
keeps the adjacency of every vertex it owns (all edges with at least one
endpoint in its vertex set, stored from the owned endpoint's side). With
NUMA support enabled (Section 5.4), each machine's partition is further
split into one sub-partition per socket by a second-level hash.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.graph import Graph

_KNUTH = 2654435761  # multiplicative hashing constant
_MASK = 0xFFFFFFFF


def _mix(v: int) -> int:
    """32-bit multiplicative hash; spreads consecutive ids across bins."""
    return ((v + 1) * _KNUTH) & _MASK


class HashPartitioner:
    """Maps vertices to machines (and sockets) by hashing.

    Parameters
    ----------
    num_machines:
        Number of cluster machines ``N``.
    sockets_per_machine:
        NUMA sockets per machine ``M``; each machine's partition is split
        into ``M`` sub-partitions when NUMA-aware mode is on.
    """

    def __init__(self, num_machines: int, sockets_per_machine: int = 1):
        if num_machines < 1:
            raise ConfigurationError("num_machines must be >= 1")
        if sockets_per_machine < 1:
            raise ConfigurationError("sockets_per_machine must be >= 1")
        self.num_machines = num_machines
        self.sockets_per_machine = sockets_per_machine

    def owner(self, v: int) -> int:
        """Machine id owning vertex ``v``."""
        return _mix(v) % self.num_machines

    def socket(self, v: int) -> int:
        """Socket id (within its machine) of vertex ``v``."""
        return (_mix(v) // self.num_machines) % self.sockets_per_machine

    def owners(self, vs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`owner` over an id array."""
        mixed = ((np.asarray(vs, dtype=np.int64) + 1) * _KNUTH) & _MASK
        return (mixed % self.num_machines).astype(np.int32)


class PartitionedGraph:
    """A graph plus its machine (and socket) assignment.

    The simulation keeps a single shared :class:`Graph`; machines consult
    this object to know which accesses are local, remote-socket, or
    remote-machine, and the cluster charges network traffic accordingly.
    """

    def __init__(self, graph: Graph, partitioner: HashPartitioner):
        self.graph = graph
        self.partitioner = partitioner
        owners = partitioner.owners(np.arange(graph.num_vertices))
        self._vertices_by_machine = [
            np.flatnonzero(owners == m).astype(np.int64)
            for m in range(partitioner.num_machines)
        ]
        self._owners = owners

    @property
    def num_machines(self) -> int:
        return self.partitioner.num_machines

    def owner(self, v: int) -> int:
        """Machine owning vertex ``v``."""
        return int(self._owners[v])

    def owners_all(self) -> np.ndarray:
        """Per-vertex owner machine ids (the scheduler's bulk view)."""
        return self._owners

    def socket(self, v: int) -> int:
        """Socket (within the owner machine) holding vertex ``v``."""
        return self.partitioner.socket(v)

    def local_vertices(self, machine: int) -> np.ndarray:
        """Vertex ids owned by ``machine`` (ascending)."""
        return self._vertices_by_machine[machine]

    def socket_vertices(self, machine: int, socket: int) -> np.ndarray:
        """Vertices of ``machine``'s sub-partition on ``socket``."""
        local = self._vertices_by_machine[machine]
        mask = np.fromiter(
            (self.partitioner.socket(int(v)) == socket for v in local),
            dtype=bool,
            count=len(local),
        )
        return local[mask]

    def partition_bytes(self, machine: int) -> int:
        """Memory footprint of ``machine``'s partition (CSR slice)."""
        local = self._vertices_by_machine[machine]
        degrees = self.graph.degrees()
        edge_entries = int(degrees[local].sum()) if len(local) else 0
        return 8 * (len(local) + 1) + 4 * edge_entries

    def machines(self) -> Iterator[int]:
        return iter(range(self.num_machines))

    def __repr__(self) -> str:
        sizes = [len(vs) for vs in self._vertices_by_machine]
        return (
            f"PartitionedGraph(machines={self.num_machines}, "
            f"partition_sizes={sizes})"
        )
