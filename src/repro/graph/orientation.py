"""Orientation (DAG) preprocessing for triangle/clique counting.

Converts an undirected graph into a DAG by keeping only edges that point
from lower to higher (degree, id) order. Every k-clique of the original
graph then appears exactly once as a directed k-clique, removing the
factorial redundancy — the Pangolin optimization the paper adopts for its
large-scale runs (Table 5) and credits for Pangolin's TC speed (Table 3).
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph


def orient_by_degree(graph: Graph) -> Graph:
    """Return the degree-ordered DAG orientation of ``graph``.

    Edge ``(u, v)`` is kept iff ``(deg(u), u) < (deg(v), v)``, the
    standard total order that makes clique enumeration visit each clique
    once in ascending rank order.
    """
    degrees = graph.degrees()
    indptr = np.zeros(graph.num_vertices + 1, dtype=np.int64)
    kept: list[np.ndarray] = []
    for u in graph.vertices():
        nbrs = graph.neighbors(u)
        du = degrees[u]
        dn = degrees[nbrs]
        mask = (dn > du) | ((dn == du) & (nbrs > u))
        keep = nbrs[mask]
        kept.append(keep)
        indptr[u + 1] = indptr[u] + len(keep)
    indices = (
        np.concatenate(kept) if kept else np.empty(0, dtype=np.int32)
    ).astype(np.int32)
    return Graph(indptr, indices, graph.labels, directed=True)


def orientation_rank(graph: Graph) -> np.ndarray:
    """Total-order rank used by :func:`orient_by_degree`.

    Vertices sorted by ``(degree, id)``; ``rank[v]`` gives the position
    of ``v`` in that order. Useful for verifying the DAG property in
    tests.
    """
    degrees = graph.degrees()
    order = np.lexsort((np.arange(graph.num_vertices), degrees))
    rank = np.empty(graph.num_vertices, dtype=np.int64)
    rank[order] = np.arange(graph.num_vertices)
    return rank
