"""Synthetic graph generators.

The paper evaluates on real SNAP/WebGraph datasets up to 128.7B edges.
Those are unavailable offline and far beyond pure-Python enumeration, so
the reproduction uses scaled-down synthetic analogues. The property that
matters for every mechanism Khuzdul exercises is *degree skew* (power-law
hot spots drive communication concentration, cache effectiveness, and
task imbalance), so the central generator is a Chung-Lu style power-law
model with a controllable exponent.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.builder import from_edge_array
from repro.graph.graph import Graph


def erdos_renyi(num_vertices: int, num_edges: int, seed: int = 0) -> Graph:
    """G(n, m) random graph: ``num_edges`` distinct undirected edges."""
    rng = np.random.default_rng(seed)
    edges = set()
    # Sample in bulk and dedup; loop until enough distinct edges.
    target = min(num_edges, num_vertices * (num_vertices - 1) // 2)
    while len(edges) < target:
        need = (target - len(edges)) * 2 + 16
        us = rng.integers(0, num_vertices, size=need)
        vs = rng.integers(0, num_vertices, size=need)
        for u, v in zip(us, vs):
            if u == v:
                continue
            edge = (int(u), int(v)) if u < v else (int(v), int(u))
            edges.add(edge)
            if len(edges) >= target:
                break
    array = np.array(sorted(edges), dtype=np.int64).reshape(len(edges), 2)
    return from_edge_array(array, num_vertices=num_vertices)


def power_law_graph(
    num_vertices: int,
    num_edges: int,
    exponent: float = 2.2,
    max_degree: Optional[int] = None,
    seed: int = 0,
) -> Graph:
    """Chung-Lu style power-law graph.

    Vertices get expected weights ``w_i ∝ (i + i0)^(-1/(exponent-1))``;
    endpoints of each edge are drawn proportionally to the weights. A
    smaller ``exponent`` produces a more skewed graph (bigger hubs);
    ``max_degree`` optionally caps the weight of the largest hub so that
    low-skew datasets like Patents can be modelled.

    The result is simple (no self-loops or duplicates), so the realized
    edge count can fall slightly below ``num_edges`` on dense corners.
    """
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (exponent - 1.0))
    if max_degree is not None:
        # Cap hub weights so the expected max degree stays near the cap.
        expected = weights / weights.sum() * (2.0 * num_edges)
        scale = np.minimum(1.0, max_degree / np.maximum(expected, 1e-12))
        weights = weights * scale
    probs = weights / weights.sum()

    edges = set()
    attempts = 0
    target = num_edges
    while len(edges) < target and attempts < 40:
        need = (target - len(edges)) * 2 + 32
        us = rng.choice(num_vertices, size=need, p=probs)
        vs = rng.choice(num_vertices, size=need, p=probs)
        for u, v in zip(us, vs):
            if u == v:
                continue
            edge = (int(u), int(v)) if u < v else (int(v), int(u))
            edges.add(edge)
            if len(edges) >= target:
                break
        attempts += 1
    array = np.array(sorted(edges), dtype=np.int64).reshape(len(edges), 2)
    return from_edge_array(array, num_vertices=num_vertices)


def power_law_weights(
    num_vertices: int,
    num_edges: int,
    exponent: float = 2.2,
    max_degree: Optional[int] = None,
) -> np.ndarray:
    """The Chung-Lu endpoint distribution shared by
    :func:`power_law_graph` and :func:`power_law_edge_batches`."""
    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (exponent - 1.0))
    if max_degree is not None:
        expected = weights / weights.sum() * (2.0 * num_edges)
        scale = np.minimum(1.0, max_degree / np.maximum(expected, 1e-12))
        weights = weights * scale
    return weights / weights.sum()


def power_law_edge_batches(
    num_vertices: int,
    num_edges: int,
    exponent: float = 2.2,
    max_degree: Optional[int] = None,
    seed: int = 0,
    batch_edges: int = 1 << 18,
):
    """Stream Chung-Lu candidate edges as bounded ``(m, 2)`` batches.

    The feed for the out-of-core builder (docs/storage.md): exactly
    ``num_edges`` endpoint pairs are drawn proportional to the
    power-law weights and yielded in batches, *without* the Python-set
    dedup loop of :func:`power_law_graph` — self-loops and duplicates
    are left in the stream because the streaming builder's
    external-sort pipeline drops them anyway, which is what makes
    generation O(batch) memory at any scale. Deterministic for a given
    seed, so the scale sweep's ram and mmap builds see an identical
    stream. The realized simple-edge count lands slightly below
    ``num_edges``, exactly as the eager generator's docstring warns.
    """
    probs = power_law_weights(num_vertices, num_edges, exponent, max_degree)
    rng = np.random.default_rng(seed)
    remaining = num_edges
    batch_edges = max(1, batch_edges)
    while remaining > 0:
        need = min(batch_edges, remaining)
        us = rng.choice(num_vertices, size=need, p=probs)
        vs = rng.choice(num_vertices, size=need, p=probs)
        yield np.stack([us, vs], axis=1).astype(np.int64)
        remaining -= need


def random_labels(
    graph: Graph, num_labels: int, seed: int = 0
) -> Graph:
    """Attach uniformly random vertex labels (paper's FSM setup for lj)."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_labels, size=graph.num_vertices)
    return graph.with_labels(labels)


def star_graph(num_leaves: int) -> Graph:
    """A star with vertex 0 at the center (worst-case skew fixture)."""
    edges = np.array([(0, i) for i in range(1, num_leaves + 1)], dtype=np.int64)
    return from_edge_array(edges, num_vertices=num_leaves + 1)


def complete_graph(num_vertices: int) -> Graph:
    """K_n (every pattern of size <= n appears; clique-count fixture)."""
    edges = np.array(
        [(u, v) for u in range(num_vertices) for v in range(u + 1, num_vertices)],
        dtype=np.int64,
    ).reshape(-1, 2)
    return from_edge_array(edges, num_vertices=num_vertices)


def cycle_graph(num_vertices: int) -> Graph:
    """A simple cycle (sparse fixture with known counts)."""
    edges = np.array(
        [(i, (i + 1) % num_vertices) for i in range(num_vertices)],
        dtype=np.int64,
    )
    return from_edge_array(edges, num_vertices=num_vertices)
