"""Shared-memory CSR export for multiprocess execution backends.

The ``process`` backend (``repro.exec``) runs one OS process per group
of simulated machines. All workers operate on the *same* input graph,
so instead of pickling the CSR arrays into every child (one copy per
worker), the parent exports them once into POSIX shared memory
(:mod:`multiprocessing.shared_memory`) and each worker maps the
segments read-only — edge lists are then shared zero-copy, exactly the
role the replicated/partitioned graph storage plays on a real Khuzdul
cluster node.

Layout: one shared-memory segment per CSR array (``indptr``,
``indices``, and the optional ``labels`` / ``edge_labels``), described
by a picklable :class:`SharedCsrHandle`. The arrays backing the
attached :class:`~repro.graph.graph.Graph` are views straight into the
mapped segments; nothing is copied on the worker side.

Lifecycle contract: the *parent* creates the segments and is the only
side that may :func:`unlink <SharedCsr.unlink>` them; workers attach
with :func:`attach_csr` and close their mapping when done. Attachment
opts out of :mod:`multiprocessing.resource_tracker` registration where
Python supports it (``track=False``, >= 3.13). On older Pythons the
attach-side registration is deliberately left alone: workers are
*children* of the creating process and share its resource tracker, so
their register is a set-level no-op — while an explicit unregister
would strip the parent's own registration and make the parent's later
``unlink()`` trip the tracker (the flip side of bpo-39959, which only
bites *unrelated* attaching processes).
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.graph import Graph

#: bounded attempts at claiming a fresh segment name before giving up
_CREATE_ATTEMPTS = 8


@dataclass(frozen=True)
class _SegmentSpec:
    """One shared array: segment name plus enough to rebuild the view."""

    name: str
    dtype: str
    length: int


def create_segment(nbytes: int) -> shared_memory.SharedMemory:
    """Create one shared-memory segment (creator side owns the unlink).

    The generic entry point of this module's segment lifecycle: the CSR
    export below uses it for graph arrays, and the process backend's
    reply rings (:mod:`repro.exec.ring`) use it for fetch-reply
    payloads — same mechanism, same creator-unlinks contract.

    Names are explicit (``repro_<pid>_<nonce>``) so crash-leaked
    segments are attributable, and creation retries with jittered
    backoff on a name collision — concurrent runs (or a leak from a
    SIGKILLed one) must not abort a fresh run outright. Attempts are
    bounded; exhausting them raises a structured
    :class:`~repro.errors.ConfigurationError`.
    """
    size = max(1, nbytes)
    last_error: Optional[BaseException] = None
    for attempt in range(_CREATE_ATTEMPTS):
        name = f"repro_{os.getpid():x}_{os.urandom(4).hex()}"
        try:
            return shared_memory.SharedMemory(
                name=name, create=True, size=size
            )
        except FileExistsError as exc:
            last_error = exc
            time.sleep(random.uniform(0.5, 1.5) * 0.002 * (attempt + 1))
    raise ConfigurationError(
        f"could not allocate a shared-memory segment after "
        f"{_CREATE_ATTEMPTS} name collisions (stale segments from a "
        f"killed run? see docs/faults.md on checkpoint-directory "
        f"segment reaping): {last_error}"
    )


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach a segment by name without resource-tracker registration
    (see the module docstring for why attachers must not register)."""
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track kwarg; registration is
        # a no-op here because workers share the parent's tracker
        return shared_memory.SharedMemory(name=name)


@dataclass(frozen=True)
class SharedCsrHandle:
    """Picklable description of a graph exported with :func:`share_csr`."""

    indptr: _SegmentSpec
    indices: _SegmentSpec
    labels: Optional[_SegmentSpec]
    edge_labels: Optional[_SegmentSpec]
    directed: bool

    def segment_names(self) -> list[str]:
        return [
            spec.name
            for spec in (self.indptr, self.indices, self.labels,
                         self.edge_labels)
            if spec is not None
        ]


@dataclass(frozen=True)
class MmapCsrHandle:
    """Picklable description of an mmap-backed graph (docs/storage.md).

    The store file on shared disk plays the role shared memory plays
    for in-RAM graphs: workers re-open the mapping read-only by path
    instead of attaching segments, so there are no segments to create,
    track, or unlink — :meth:`segment_names` is empty and the
    durability manifest written for crash reaping stays valid (an
    empty segment list is a no-op for the reaper). The fingerprint
    (the store's header CRC) guards against the path being swapped
    for a different graph between export and attach.
    """

    path: str
    fingerprint: int
    directed: bool

    def segment_names(self) -> list[str]:
        return []


class SharedCsr:
    """An attached (or owned) set of shared CSR segments.

    Owns the ``SharedMemory`` objects so they can be closed (and, on
    the creating side, unlinked) deterministically; ``graph`` is a
    :class:`Graph` whose arrays are views into the segments.
    """

    def __init__(self, handle: SharedCsrHandle, graph: Graph,
                 segments: list[shared_memory.SharedMemory], owner: bool):
        self.handle = handle
        self.graph = graph
        self._segments = segments
        self._owner = owner
        self._closed = False

    def close(self) -> None:
        """Drop this process's mapping (safe to call twice)."""
        if self._closed:
            return
        self._closed = True
        # the Graph holds views into the buffers; drop them first so
        # closing the mmap cannot invalidate live exported arrays
        self.graph = None
        for segment in self._segments:
            try:
                segment.close()
            except (OSError, BufferError):  # pragma: no cover - best effort
                pass

    def unlink(self) -> None:
        """Destroy the segments (creator side only; implies close)."""
        segments = list(self._segments)
        self.close()
        if not self._owner:
            return
        for segment in segments:
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


def _export_array(array: np.ndarray, name_hint: str):
    """Copy one array into a fresh shared-memory segment."""
    array = np.ascontiguousarray(array)
    segment = create_segment(array.nbytes)
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
    view[:] = array
    spec = _SegmentSpec(segment.name, array.dtype.str, len(array))
    return spec, segment


def _attach_segment(spec: _SegmentSpec) -> shared_memory.SharedMemory:
    """Attach without resource-tracker registration (see module doc)."""
    return attach_segment(spec.name)


def _view(spec: _SegmentSpec,
          segment: shared_memory.SharedMemory) -> np.ndarray:
    return np.ndarray((spec.length,), dtype=np.dtype(spec.dtype),
                      buffer=segment.buf)


def share_csr(graph: Graph) -> SharedCsr:
    """Export ``graph`` for worker processes; returns the owning handle.

    In-RAM graphs are copied into shared-memory segments and the
    returned :class:`SharedCsr` *owns* them: call
    :meth:`SharedCsr.unlink` when every worker is done. An mmap-backed
    graph (one carrying a ``store_path``) needs no export at all —
    the store file *is* the shared medium — so the handle is a
    path-only :class:`MmapCsrHandle`, there are no segments, and
    close/unlink are no-ops.
    """
    store_path = getattr(graph, "store_path", None)
    if store_path is not None:
        handle = MmapCsrHandle(
            str(store_path),
            int(getattr(graph, "fingerprint", 0)),
            graph.directed,
        )
        return SharedCsr(handle, graph, [], owner=False)
    segments: list[shared_memory.SharedMemory] = []
    try:
        indptr_spec, seg = _export_array(graph.indptr, "indptr")
        segments.append(seg)
        indices_spec, seg = _export_array(graph.indices, "indices")
        segments.append(seg)
        labels_spec = edge_labels_spec = None
        if graph.labels is not None:
            labels_spec, seg = _export_array(graph.labels, "labels")
            segments.append(seg)
        if graph.edge_labels is not None:
            edge_labels_spec, seg = _export_array(graph.edge_labels,
                                                  "edge_labels")
            segments.append(seg)
    except Exception:
        for segment in segments:
            segment.close()
            segment.unlink()
        raise
    handle = SharedCsrHandle(indptr_spec, indices_spec, labels_spec,
                             edge_labels_spec, graph.directed)
    shared = _rebuild(handle, segments, owner=True)
    return shared


def attach_csr(handle) -> SharedCsr:
    """Map a graph exported by :func:`share_csr` in another process.

    Dispatches on the handle: shared-memory handles attach their
    segments; :class:`MmapCsrHandle` re-opens the store file read-only
    (rejecting a swapped/stale store by fingerprint), so the worker
    path is identical either way — ``attach_csr(handle).graph``.
    """
    if isinstance(handle, MmapCsrHandle):
        from repro.graph.storage import open_store

        graph = open_store(handle.path)
        if handle.fingerprint and graph.fingerprint != handle.fingerprint:
            raise ConfigurationError(
                f"{handle.path}: store fingerprint changed between "
                f"export ({handle.fingerprint:#x}) and attach "
                f"({graph.fingerprint:#x}); the store was rebuilt or "
                f"replaced while workers were starting"
            )
        return SharedCsr(handle, graph, [], owner=False)
    segments: list[shared_memory.SharedMemory] = []
    try:
        specs = [handle.indptr, handle.indices]
        if handle.labels is not None:
            specs.append(handle.labels)
        if handle.edge_labels is not None:
            specs.append(handle.edge_labels)
        for spec in specs:
            segments.append(_attach_segment(spec))
    except Exception:
        for segment in segments:
            segment.close()
        raise
    return _rebuild(handle, segments, owner=False)


def _rebuild(handle: SharedCsrHandle,
             segments: list[shared_memory.SharedMemory],
             owner: bool) -> SharedCsr:
    """Build the Graph-of-views over already-mapped segments."""
    cursor = iter(segments)
    indptr = _view(handle.indptr, next(cursor))
    indices = _view(handle.indices, next(cursor))
    labels = edge_labels = None
    if handle.labels is not None:
        labels = _view(handle.labels, next(cursor))
    if handle.edge_labels is not None:
        edge_labels = _view(handle.edge_labels, next(cursor))
    graph = Graph(indptr, indices, labels, handle.directed, edge_labels)
    return SharedCsr(handle, graph, segments, owner)
