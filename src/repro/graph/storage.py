"""Out-of-core CSR storage: on-disk stores and the streaming builder.

The paper's headline graphs (WDC12, 128.7B edges) are orders of
magnitude beyond RAM; HUGE (PAPERS.md) makes bounded-memory operation
the baseline requirement at that scale. This module generalizes the
graph substrate into a pluggable storage layer (docs/storage.md):

- :func:`write_store` / :func:`open_store` — serialize a
  :class:`~repro.graph.graph.Graph` into a single versioned store file
  and reopen it as a :class:`MmapGraph` whose CSR arrays are read-only
  ``numpy.memmap`` views. A memmap *is* an ndarray, so the kernels,
  the scheduler drains, and both execution backends run unchanged on
  it — storage selection never branches inside ``core/``.
- :func:`build_store` / :func:`from_edge_batches` — the streaming
  builder: edge batches flow through a counting pass plus an
  external-sort (spill runs + k-way vectorized merge) pipeline that
  never materializes the full edge list in memory, producing exactly
  the arrays :func:`~repro.graph.builder.from_edge_array` would
  (bit-identical normalization: self-loops dropped, undirected edges
  mirrored, duplicates collapse first-occurrence-wins).
- :func:`resolve_storage` — the ``--storage {ram,mmap,auto}`` policy:
  ``auto`` flips to ``mmap`` when :meth:`Graph.size_bytes` exceeds the
  configured resident cap.

File layout (docs/storage.md): a 16-byte preamble (magic, version,
header length, header CRC32) followed by a JSON header naming every
array's dtype/length/offset/CRC32, then the arrays themselves at
64-byte-aligned offsets. Stale, truncated, or corrupt stores are
rejected by name — the same manifest discipline the durable
checkpoints use (docs/faults.md, "Durability").
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.graph import Graph

#: store-file magic ("Khuzdul CSR")
MAGIC = b"KCSR"
#: bump on any incompatible layout change; older stores are rejected
#: by name as stale
STORE_VERSION = 1
#: preamble: magic + u32 version + u32 header length + u32 header CRC
_PREAMBLE = struct.Struct("<4sIII")
#: array sections start on this alignment
_ALIGN = 64
#: edge batches are buffered up to this many normalized entries before
#: being sorted into one spill run (bounds builder memory)
DEFAULT_RUN_ENTRIES = 1 << 20
#: entries pulled per run per merge step (bounds merge memory at
#: ``runs * chunk`` entries)
DEFAULT_MERGE_CHUNK = 1 << 17
#: reverse-direction entries of an undirected edge rank after every
#: forward entry, mirroring from_edge_array's concat order
_REVERSE_RANK_BASE = np.int64(1) << 62

#: CRC is computed over arrays in slices of this many bytes
_CRC_BLOCK = 1 << 22


class MmapGraph(Graph):
    """A :class:`Graph` whose CSR arrays are read-only file mappings.

    Identical array interface — the arrays *are* ndarrays (memmap
    views), so every kernel and accessor works unchanged; only the
    byte-accounting layers (admission control, ``storage.*`` metrics)
    look at :attr:`storage` to learn the graph is not resident.
    """

    __slots__ = ("store_path", "fingerprint", "builder_stats")

    #: storage mode tag ("ram" on the base class)
    storage = "mmap"


@dataclass(frozen=True)
class BuildStats:
    """What the streaming builder did (also recorded in the header)."""

    num_vertices: int
    num_entries: int  # directed adjacency entries written
    source_edges: int  # input rows consumed (before normalization)
    spill_runs: int
    merge_batches: int


def resolve_storage(
    mode: str,
    size_bytes: int,
    resident_cap_bytes: Optional[int] = None,
) -> str:
    """The ``--storage`` policy: ``ram``/``mmap`` are explicit;
    ``auto`` picks ``mmap`` exactly when the graph would not fit the
    configured resident cap."""
    if mode in ("ram", "mmap"):
        return mode
    if mode != "auto":
        raise GraphFormatError(
            f"storage must be 'ram', 'mmap', or 'auto', got {mode!r}"
        )
    if resident_cap_bytes is not None and size_bytes > resident_cap_bytes:
        return "mmap"
    return "ram"


# ---------------------------------------------------------------------
# store file format
# ---------------------------------------------------------------------
def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _array_crc(array: np.ndarray) -> int:
    """CRC32 of an array's raw bytes, computed in bounded slices (a
    memmapped operand is never pulled into memory whole)."""
    view = np.ascontiguousarray(array).view(np.uint8).reshape(-1)
    crc = 0
    for start in range(0, view.nbytes, _CRC_BLOCK):
        crc = zlib.crc32(view[start:start + _CRC_BLOCK].tobytes(), crc)
    return crc


def _layout(arrays: dict[str, np.ndarray], header_hint: int = 4096):
    """Assign aligned offsets after a header of roughly ``header_hint``
    bytes; returns (sections, total_bytes). Re-run with the real header
    length until stable (the JSON mentions the offsets it implies)."""
    offset = _aligned(_PREAMBLE.size + header_hint)
    sections = {}
    for name, array in arrays.items():
        sections[name] = {
            "dtype": array.dtype.str,
            "length": int(len(array)),
            "offset": offset,
            "crc32": _array_crc(array),
        }
        offset = _aligned(offset + array.nbytes)
    return sections, offset


def _header_bytes(
    directed: bool,
    num_vertices: int,
    sections: dict,
    total_bytes: int,
    builder: Optional[dict],
) -> bytes:
    header = {
        "format": "khuzdul-csr-store",
        "version": STORE_VERSION,
        "directed": bool(directed),
        "num_vertices": int(num_vertices),
        "arrays": sections,
        "total_bytes": int(total_bytes),
        "builder": builder or {},
    }
    return json.dumps(header, sort_keys=True).encode("utf-8")


def _write_store_file(
    path: Path,
    arrays: dict[str, np.ndarray],
    directed: bool,
    num_vertices: int,
    builder: Optional[dict] = None,
) -> None:
    """Write one store file atomically (tmp + rename)."""
    # two passes: offsets depend on header length, header mentions
    # offsets; a second layout with the real length always converges
    # because offsets are monotone in the header size and aligned
    sections, total = _layout(arrays)
    header = _header_bytes(directed, num_vertices, sections, total, builder)
    sections, total = _layout(arrays, header_hint=len(header))
    header = _header_bytes(directed, num_vertices, sections, total, builder)
    if _aligned(_PREAMBLE.size + len(header)) != sections_start(sections):
        # one more round for the rare length flip at an alignment edge
        sections, total = _layout(arrays, header_hint=len(header))
        header = _header_bytes(directed, num_vertices, sections, total,
                               builder)

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(_PREAMBLE.pack(
                MAGIC, STORE_VERSION, len(header), zlib.crc32(header)
            ))
            handle.write(header)
            for name, array in arrays.items():
                handle.seek(sections[name]["offset"])
                np.ascontiguousarray(array).tofile(handle)
            handle.truncate(total)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def sections_start(sections: dict) -> int:
    return min(s["offset"] for s in sections.values()) if sections else 0


def write_store(graph: Graph, path: str | os.PathLike,
                builder: Optional[dict] = None) -> Path:
    """Serialize an in-RAM graph into a store file (atomic replace)."""
    arrays: dict[str, np.ndarray] = {
        "indptr": np.asarray(graph.indptr, dtype=np.int64),
        "indices": np.asarray(graph.indices, dtype=np.int32),
    }
    if graph.labels is not None:
        arrays["labels"] = np.asarray(graph.labels, dtype=np.int32)
    if graph.edge_labels is not None:
        arrays["edge_labels"] = np.asarray(graph.edge_labels,
                                           dtype=np.int32)
    path = Path(path)
    _write_store_file(path, arrays, graph.directed, graph.num_vertices,
                      builder)
    return path


def read_header(path: str | os.PathLike) -> dict:
    """Parse and validate the store preamble + header.

    Every rejection is a structured :class:`GraphFormatError` naming
    the file and the reason (truncated / foreign / stale / corrupt) —
    a bad store must never surface as an unpickling or numpy error
    deep inside a worker.
    """
    path = Path(path)
    try:
        size = path.stat().st_size
        with open(path, "rb") as handle:
            preamble = handle.read(_PREAMBLE.size)
            if len(preamble) < _PREAMBLE.size:
                raise GraphFormatError(
                    f"{path}: truncated store (only {len(preamble)} "
                    f"bytes; even the preamble is incomplete)"
                )
            magic, version, header_len, header_crc = _PREAMBLE.unpack(
                preamble
            )
            if magic != MAGIC:
                raise GraphFormatError(
                    f"{path}: not a Khuzdul CSR store (magic {magic!r})"
                )
            if version != STORE_VERSION:
                raise GraphFormatError(
                    f"{path}: stale store version {version} (this build "
                    f"reads version {STORE_VERSION}); rebuild the store"
                )
            header_raw = handle.read(header_len)
    except OSError as exc:
        raise GraphFormatError(f"{path}: cannot read store: {exc}") from exc
    if len(header_raw) < header_len:
        raise GraphFormatError(
            f"{path}: truncated store (header cut short at "
            f"{len(header_raw)}/{header_len} bytes)"
        )
    if zlib.crc32(header_raw) != header_crc:
        raise GraphFormatError(
            f"{path}: corrupt store header (CRC mismatch)"
        )
    try:
        header = json.loads(header_raw.decode("utf-8"))
    except ValueError as exc:  # pragma: no cover - crc catches this first
        raise GraphFormatError(
            f"{path}: corrupt store header (bad JSON: {exc})"
        ) from exc
    expected = int(header.get("total_bytes", -1))
    if size != expected:
        raise GraphFormatError(
            f"{path}: truncated store ({size} bytes on disk, header "
            f"promises {expected})"
        )
    header["_fingerprint"] = header_crc
    return header


def open_store(path: str | os.PathLike, verify: bool = False) -> MmapGraph:
    """Open a store read-only; the returned graph's arrays are
    ``numpy.memmap`` views (nothing is loaded eagerly beyond
    ``indptr`` validation).

    ``verify=True`` additionally checks every array's recorded CRC32 —
    a full sequential read, so it is opt-in (builders verify their own
    output; servers trust the header + size check).
    """
    path = Path(path)
    header = read_header(path)
    sections = header["arrays"]

    def _map(name: str) -> Optional[np.ndarray]:
        spec = sections.get(name)
        if spec is None:
            return None
        array = np.memmap(
            path, dtype=np.dtype(spec["dtype"]), mode="r",
            offset=spec["offset"], shape=(spec["length"],),
        )
        if verify and _array_crc(array) != spec["crc32"]:
            raise GraphFormatError(
                f"{path}: corrupt store: array {name!r} fails its "
                f"recorded CRC32"
            )
        return array

    indptr, indices = _map("indptr"), _map("indices")
    labels, edge_labels = _map("labels"), _map("edge_labels")
    try:
        graph = MmapGraph(
            indptr, indices, labels, header["directed"], edge_labels
        )
    except GraphFormatError as exc:
        # the mapped arrays parse but do not form a valid CSR graph
        raise GraphFormatError(
            f"{path}: corrupt store: {exc}"
        ) from exc
    graph.store_path = str(path)
    graph.fingerprint = header["_fingerprint"]
    graph.builder_stats = dict(header.get("builder") or {})
    return graph


# ---------------------------------------------------------------------
# streaming builder: normalize -> spill runs -> k-way merge
# ---------------------------------------------------------------------
def _normalize_batch(
    edges,
    elabels: Optional[np.ndarray],
    directed: bool,
    num_vertices: Optional[int],
    kept_base: int,
):
    """One batch through from_edge_array's normalization, streamed.

    Returns ``(keys, labels, ranks, max_id, kept_rows, raw_rows)``:
    composite
    ``(u << 32) | v`` keys of every directed entry the batch
    contributes (self-loops dropped, undirected mirrored), plus — when
    edge labels ride along — the labels and the global tie-break ranks
    reproducing from_edge_array's first-occurrence-wins order exactly
    (all forward entries outrank all reverse entries; within each,
    input order wins).
    """
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size == 0:
        edges = edges.reshape(0, 2)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise GraphFormatError("edges must have shape (m, 2)")
    if edges.size and edges.min() < 0:
        raise GraphFormatError("vertex ids must be non-negative")
    raw_rows = len(edges)
    max_id = int(edges.max()) if edges.size else -1
    if num_vertices is not None and max_id >= num_vertices:
        raise GraphFormatError("edge endpoint exceeds num_vertices")
    if max_id >= 1 << 31:
        raise GraphFormatError(
            "vertex ids must fit 31 bits (int32 adjacency)"
        )
    if elabels is not None:
        elabels = np.asarray(elabels, dtype=np.int64)
        if len(elabels) != len(edges):
            raise GraphFormatError("edge_labels length must equal edges")

    keep = edges[:, 0] != edges[:, 1]
    edges = edges[keep]
    if elabels is not None:
        elabels = elabels[keep]
    kept = len(edges)

    keys = (edges[:, 0] << np.int64(32)) | edges[:, 1]
    labels = ranks = None
    if not directed:
        reverse = (edges[:, 1] << np.int64(32)) | edges[:, 0]
        keys = np.concatenate([keys, reverse])
        if elabels is not None:
            labels = np.concatenate([elabels, elabels]).astype(np.int32)
            base = np.arange(kept, dtype=np.int64) + kept_base
            ranks = np.concatenate([base, base + _REVERSE_RANK_BASE])
    elif elabels is not None:
        labels = elabels.astype(np.int32)
        ranks = np.arange(kept, dtype=np.int64) + kept_base
    return keys, labels, ranks, max_id, kept, raw_rows


def _dedup_sorted_run(keys, labels, ranks):
    """Sort one buffered run by key (ranked ties resolved by rank) and
    collapse duplicate keys, keeping the lowest-ranked occurrence."""
    if ranks is not None:
        order = np.lexsort((ranks, keys))
    else:
        order = np.argsort(keys, kind="stable")
    keys = keys[order]
    first = np.ones(len(keys), dtype=bool)
    if len(keys) > 1:
        first[1:] = keys[1:] != keys[:-1]
    out_labels = labels[order][first] if labels is not None else None
    out_ranks = ranks[order][first] if ranks is not None else None
    return keys[first], out_labels, out_ranks


class _RunSet:
    """Sorted, key-unique spill runs — on disk or in memory.

    With a spill directory, each run is saved via ``np.save`` and read
    back through ``np.load(mmap_mode='r')`` so the merge touches only
    the window it is consuming; without one (the in-RAM builder path)
    the runs stay plain arrays. Either way the merge code is identical.
    """

    def __init__(self, spill_dir: Optional[Path]):
        self._spill_dir = spill_dir
        self.runs: list[dict] = []

    def add(self, keys, labels, ranks) -> None:
        run = {"keys": keys, "labels": labels, "ranks": ranks}
        if self._spill_dir is not None:
            index = len(self.runs)
            for field in ("keys", "labels", "ranks"):
                if run[field] is None:
                    continue
                target = self._spill_dir / f"run{index}.{field}.npy"
                np.save(target, run[field])
                run[field] = np.load(target, mmap_mode="r")
        self.runs.append(run)


def _merge_runs(
    runs: list[dict],
    chunk: int,
    emit,
) -> int:
    """K-way vectorized merge of sorted key-unique runs.

    Each step windows every run, takes all entries strictly below the
    smallest not-yet-fully-windowed run's last visible key (so a key
    can never straddle two steps), sorts the gathered block once, and
    collapses cross-run duplicates lowest-rank-first. Memory stays at
    ``O(len(runs) * chunk)`` entries. Returns the merge-step count.
    """
    ranked = any(run["ranks"] is not None for run in runs)
    labeled = any(run["labels"] is not None for run in runs)
    pos = [0] * len(runs)
    lengths = [len(run["keys"]) for run in runs]
    merge_batches = 0
    window = chunk
    while True:
        active = [i for i in range(len(runs)) if pos[i] < lengths[i]]
        if not active:
            break
        bound = None
        ends = {}
        for i in active:
            end = min(pos[i] + window, lengths[i])
            ends[i] = end
            if end < lengths[i]:
                last = int(runs[i]["keys"][end - 1])
                if bound is None or last < bound:
                    bound = last
        key_parts, label_parts, rank_parts = [], [], []
        took = False
        for i in active:
            keys = np.asarray(runs[i]["keys"][pos[i]:ends[i]])
            take = (
                len(keys) if bound is None
                else int(np.searchsorted(keys, bound, side="left"))
            )
            if take == 0:
                continue
            took = True
            key_parts.append(keys[:take])
            if labeled:
                label_parts.append(
                    np.asarray(runs[i]["labels"][pos[i]:pos[i] + take])
                )
            if ranked:
                rank_parts.append(
                    np.asarray(runs[i]["ranks"][pos[i]:pos[i] + take])
                )
            pos[i] += take
        if not took:
            # every visible window is pinned at the bound key; widen
            # the windows until the bounding run reveals what follows
            window *= 2
            continue
        window = chunk
        keys = np.concatenate(key_parts)
        labels = np.concatenate(label_parts) if labeled else None
        ranks = np.concatenate(rank_parts) if ranked else None
        keys, labels, _ = _dedup_sorted_run(keys, labels, ranks)
        emit(keys, labels)
        merge_batches += 1
    return merge_batches


class _StreamingCsrBuilder:
    """Shared pipeline behind :func:`build_store` and
    :func:`from_edge_batches`: buffer normalized batches, spill sorted
    runs, merge once at the end."""

    def __init__(
        self,
        directed: bool,
        num_vertices: Optional[int],
        spill_dir: Optional[Path],
        run_entries: int,
        merge_chunk: int,
    ):
        self.directed = directed
        self.num_vertices = num_vertices
        self.run_entries = max(1024, run_entries)
        self.merge_chunk = max(1024, merge_chunk)
        self._runs = _RunSet(spill_dir)
        self._buffer: list[tuple] = []
        self._buffered = 0
        self._kept_rows = 0
        self._source_edges = 0
        self._max_id = -1

    def consume(self, batches: Iterable) -> None:
        for batch in batches:
            if isinstance(batch, tuple):
                edges, elabels = batch
            else:
                edges, elabels = batch, None
            keys, labels, ranks, max_id, kept, raw = _normalize_batch(
                edges, elabels, self.directed, self.num_vertices,
                self._kept_rows,
            )
            self._source_edges += raw
            self._kept_rows += kept
            self._max_id = max(self._max_id, max_id)
            if len(keys) == 0:
                continue
            self._buffer.append((keys, labels, ranks))
            self._buffered += len(keys)
            if self._buffered >= self.run_entries:
                self._spill()

    def _spill(self) -> None:
        if not self._buffer:
            return
        keys = np.concatenate([part[0] for part in self._buffer])
        labels = ranks = None
        if self._buffer[0][1] is not None:
            labels = np.concatenate([part[1] for part in self._buffer])
        if self._buffer[0][2] is not None:
            ranks = np.concatenate([part[2] for part in self._buffer])
        self._buffer.clear()
        self._buffered = 0
        self._runs.add(*_dedup_sorted_run(keys, labels, ranks))

    def finish(self, emit) -> tuple[int, int, int]:
        """Spill the tail, merge every run into ``emit(keys, labels)``;
        returns ``(num_vertices, spill_runs, merge_batches)``."""
        self._spill()
        num_vertices = (
            self.num_vertices if self.num_vertices is not None
            else self._max_id + 1
        )
        merge_batches = _merge_runs(
            self._runs.runs, self.merge_chunk, emit
        )
        return num_vertices, len(self._runs.runs), merge_batches

    @property
    def source_edges(self) -> int:
        return self._source_edges


def _split_keys(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    return keys >> np.int64(32), (keys & np.int64(0xFFFFFFFF))


def from_edge_batches(
    batches: Iterable,
    num_vertices: Optional[int] = None,
    labels: Optional[Sequence[int]] = None,
    directed: bool = False,
    run_entries: int = DEFAULT_RUN_ENTRIES,
    merge_chunk: int = DEFAULT_MERGE_CHUNK,
) -> Graph:
    """Build an in-RAM :class:`Graph` from a stream of edge batches.

    Each batch is an ``(m, 2)`` integer array, or an
    ``(edges, edge_labels)`` tuple for edge-labeled input. The result
    is bit-identical to concatenating every batch and calling
    :func:`~repro.graph.builder.from_edge_array` — pinned by
    ``tests/test_storage.py`` — but peak transient memory is bounded
    by the run/merge windows instead of the whole edge list.
    """
    builder = _StreamingCsrBuilder(
        directed, num_vertices, None, run_entries, merge_chunk
    )
    builder.consume(batches)
    index_parts: list[np.ndarray] = []
    label_parts: list[np.ndarray] = []
    counts: Optional[np.ndarray] = None

    def emit(keys: np.ndarray, elabels: Optional[np.ndarray]) -> None:
        nonlocal counts
        src, dst = _split_keys(keys)
        index_parts.append(dst.astype(np.int32))
        if elabels is not None:
            label_parts.append(elabels)
        block = np.bincount(src)
        if counts is None:
            counts = block.astype(np.int64)
        elif len(block) > len(counts):
            block = block.astype(np.int64)
            block[:len(counts)] += counts
            counts = block
        else:
            counts[:len(block)] += block

    n, _, _ = builder.finish(emit)
    indptr = np.zeros(n + 1, dtype=np.int64)
    if counts is not None:
        indptr[1:len(counts) + 1] = np.cumsum(counts)
        indptr[len(counts) + 1:] = indptr[len(counts)]
    indices = (
        np.concatenate(index_parts) if index_parts
        else np.zeros(0, dtype=np.int32)
    )
    edge_labels = np.concatenate(label_parts) if label_parts else None
    label_array = (
        np.asarray(labels, dtype=np.int32) if labels is not None else None
    )
    return Graph(indptr, indices, label_array, directed, edge_labels)


def build_store(
    batches: Iterable,
    path: str | os.PathLike,
    num_vertices: Optional[int] = None,
    labels: Optional[Sequence[int]] = None,
    directed: bool = False,
    run_entries: int = DEFAULT_RUN_ENTRIES,
    merge_chunk: int = DEFAULT_MERGE_CHUNK,
) -> BuildStats:
    """Stream edge batches into an on-disk store without ever holding
    the full edge list.

    The pipeline: normalized batches buffer up to ``run_entries``
    composite keys, spill as sorted unique runs into a scratch
    directory, and a final k-way merge streams the globally sorted
    adjacency straight to disk while a counting pass accumulates
    per-vertex degrees for ``indptr``. The finished file carries the
    versioned header + per-array CRCs; a crash mid-build leaves only
    scratch files, never a half-valid store (atomic rename).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory(
        prefix=path.name + ".build.", dir=path.parent
    ) as scratch_name:
        scratch = Path(scratch_name)
        builder = _StreamingCsrBuilder(
            directed, num_vertices, scratch, run_entries, merge_chunk
        )
        builder.consume(batches)

        indices_tmp = open(scratch / "indices.i32", "w+b")
        elabels_tmp = open(scratch / "elabels.i32", "w+b")
        counts: Optional[np.ndarray] = None
        entries = 0
        labeled_edges = False

        def emit(keys: np.ndarray, elabels: Optional[np.ndarray]) -> None:
            nonlocal counts, entries, labeled_edges
            src, dst = _split_keys(keys)
            dst.astype(np.int32).tofile(indices_tmp)
            entries += len(keys)
            if elabels is not None:
                labeled_edges = True
                elabels.astype(np.int32).tofile(elabels_tmp)
            block = np.bincount(src)
            if counts is None:
                counts = block.astype(np.int64)
            elif len(block) > len(counts):
                block = block.astype(np.int64)
                block[:len(counts)] += counts
                counts = block
            else:
                counts[:len(block)] += block

        n, spill_runs, merge_batches = builder.finish(emit)
        indptr = np.zeros(n + 1, dtype=np.int64)
        if counts is not None:
            indptr[1:len(counts) + 1] = np.cumsum(counts)
            indptr[len(counts) + 1:] = indptr[len(counts)]

        indices_tmp.flush()
        elabels_tmp.flush()
        arrays: dict[str, np.ndarray] = {
            "indptr": indptr,
            "indices": np.memmap(
                indices_tmp, dtype=np.int32, mode="r", shape=(entries,)
            ) if entries else np.zeros(0, dtype=np.int32),
        }
        if labels is not None:
            label_array = np.asarray(labels, dtype=np.int32)
            if len(label_array) != n:
                raise GraphFormatError(
                    "labels length must equal num_vertices"
                )
            arrays["labels"] = label_array
        if labeled_edges:
            arrays["edge_labels"] = np.memmap(
                elabels_tmp, dtype=np.int32, mode="r", shape=(entries,)
            )
        stats = BuildStats(
            num_vertices=n,
            num_entries=entries,
            source_edges=builder.source_edges,
            spill_runs=spill_runs,
            merge_batches=merge_batches,
        )
        _write_store_file(
            path, arrays, directed, n,
            builder={
                "spill_runs": stats.spill_runs,
                "merge_batches": stats.merge_batches,
                "source_edges": stats.source_edges,
            },
        )
        # release the scratch mappings before TemporaryDirectory sweeps
        arrays.clear()
        indices_tmp.close()
        elabels_tmp.close()
    return stats


def iter_graph_edge_batches(
    graph: Graph, batch_edges: int = 1 << 18
) -> Iterator[np.ndarray]:
    """Yield a graph's undirected edge set (``u < v`` once per edge, or
    every stored arc for directed graphs) as bounded ``(m, 2)`` batches
    — the bridge from an existing in-RAM graph to the streaming
    builder."""
    n = graph.num_vertices
    start = 0
    indptr = graph.indptr
    while start < n:
        stop = min(n, start + max(1, batch_edges // 4))
        values, offsets = graph.neighbors_batch(
            np.arange(start, stop, dtype=np.int64)
        )
        src = np.repeat(
            np.arange(start, stop, dtype=np.int64), np.diff(offsets)
        )
        dst = values.astype(np.int64)
        if not graph.directed:
            keep = src < dst
            src, dst = src[keep], dst[keep]
        if len(src):
            yield np.stack([src, dst], axis=1)
        start = stop
