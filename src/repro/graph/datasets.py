"""Named scaled-down analogues of the paper's datasets (Table 1).

Each :class:`DatasetSpec` preserves the *relative* properties that drive
Khuzdul's behaviour — size ordering, average degree, and degree skew
(Patents is deliberately low-skew; UK/Twitter/Clueweb/WDC are hub-heavy)
— at a scale where pure-Python enumeration finishes in seconds. The
``scale`` argument of :func:`dataset` lets benchmarks grow or shrink all
analogues together.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Optional

from repro.errors import GraphFormatError
from repro.graph.generators import power_law_graph, random_labels
from repro.graph.graph import Graph


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one synthetic dataset analogue.

    ``paper_vertices`` / ``paper_edges`` record what the real dataset
    looked like (for documentation and for the memory-footprint model of
    replication-based baselines); the remaining fields parameterize the
    generator.
    """

    name: str
    paper_vertices: float
    paper_edges: float
    num_vertices: int
    num_edges: int
    exponent: float
    max_degree: Optional[int]
    seed: int
    labels: Optional[int] = None  # number of label classes, if labeled

    def scaled(self, scale: float) -> "DatasetSpec":
        """Return a copy with vertex/edge counts multiplied by ``scale``."""
        return DatasetSpec(
            name=self.name,
            paper_vertices=self.paper_vertices,
            paper_edges=self.paper_edges,
            num_vertices=max(8, int(self.num_vertices * scale)),
            num_edges=max(8, int(self.num_edges * scale)),
            exponent=self.exponent,
            max_degree=(
                None if self.max_degree is None
                else max(4, int(self.max_degree * scale))
            ),
            seed=self.seed,
            labels=self.labels,
        )


#: Dataset analogues, keyed by the paper's abbreviations (Table 1), plus
#: the three graphs of the aDFS comparison (Figure 10).
DATASETS: dict[str, DatasetSpec] = {
    # small graphs (Table 1, rows 1-3)
    "mico": DatasetSpec("mico", 96.6e3, 1.1e6, 400, 4200, 2.6, 60, 11,
                        labels=5),
    "patents": DatasetSpec("patents", 3.8e6, 16.5e6, 1600, 7000, 3.5, 24, 12,
                           labels=6),
    "livejournal": DatasetSpec("livejournal", 4.8e6, 42.9e6, 1600, 12000,
                               2.3, 400, 13, labels=4),
    # medium graphs (Table 1, rows 4-6)
    "uk": DatasetSpec("uk", 39.5e6, 0.94e9, 2400, 26000, 1.9, 1400, 14),
    "twitter": DatasetSpec("twitter", 41.7e6, 1.5e9, 2600, 30000, 1.9, 1600,
                           15),
    "friendster": DatasetSpec("friendster", 65.6e6, 1.8e9, 3000, 30000, 2.7,
                              120, 16),
    # massive graphs (Table 1, rows 7-9)
    "clueweb": DatasetSpec("clueweb", 978.4e6, 42.6e9, 5000, 60000, 1.9,
                           3200, 17),
    "uk14": DatasetSpec("uk14", 787.8e6, 47.6e9, 5000, 64000, 1.95, 2400,
                        18),
    "wdc": DatasetSpec("wdc", 3.5e9, 128.7e9, 7000, 90000, 1.9, 4000, 19),
    # aDFS comparison graphs (Figure 10)
    "skitter": DatasetSpec("skitter", 1.7e6, 11.1e6, 1000, 6000, 2.2, 200,
                           20),
    "orkut": DatasetSpec("orkut", 3.1e6, 117.2e6, 1400, 16000, 2.4, 250,
                         21),
}


@lru_cache(maxsize=64)
def _build(name: str, scale: float, labeled: bool) -> Graph:
    spec = DATASETS[name].scaled(scale)
    graph = power_law_graph(
        spec.num_vertices,
        spec.num_edges,
        exponent=spec.exponent,
        max_degree=spec.max_degree,
        seed=spec.seed,
    )
    if labeled:
        num_labels = spec.labels if spec.labels is not None else 16
        graph = random_labels(graph, num_labels, seed=spec.seed + 1000)
    return graph


def dataset(name: str, scale: float = 1.0, labeled: bool = False) -> Graph:
    """Build (and memoize) the named dataset analogue.

    Parameters
    ----------
    name:
        A key of :data:`DATASETS` (paper abbreviations: ``mico``,
        ``patents``, ``livejournal``, ``uk``, ``twitter``, ``friendster``,
        ``clueweb``, ``uk14``, ``wdc``, plus ``skitter``/``orkut``).
    scale:
        Multiplier on vertex/edge counts; 1.0 is the default bench scale.
    labeled:
        Attach vertex labels (needed for FSM). Unlabeled datasets get
        random labels, matching the paper's treatment of lj for FSM.
    """
    if name not in DATASETS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    return _build(name, scale, labeled)


def store_directory() -> Path:
    """Where on-disk dataset stores live: ``REPRO_STORE_DIR`` when set,
    else a per-user directory under the system temp dir."""
    configured = os.environ.get("REPRO_STORE_DIR")
    if configured:
        return Path(configured)
    return Path(tempfile.gettempdir()) / f"repro-stores-{os.getuid()}"


def load_dataset(
    name: str,
    scale: float = 1.0,
    labeled: bool = False,
    storage: str = "ram",
    resident_cap_bytes: Optional[int] = None,
    store_dir: Optional[str | os.PathLike] = None,
):
    """Build the named analogue under the ``--storage`` policy.

    ``ram`` is exactly :func:`dataset`. ``mmap`` materializes the same
    graph into an on-disk store (cached under :func:`store_directory`,
    keyed by name/scale/labeled) and reopens it memory-mapped; a cached
    store that fails validation — stale version, truncation, a build
    interrupted before the atomic rename — is rebuilt, never trusted.
    ``auto`` resolves via :func:`repro.graph.storage.resolve_storage`
    against ``resident_cap_bytes``.
    """
    from repro.graph.storage import open_store, resolve_storage, write_store

    graph = dataset(name, scale=scale, labeled=labeled)
    mode = resolve_storage(storage, graph.size_bytes(), resident_cap_bytes)
    if mode == "ram":
        return graph
    directory = Path(store_dir) if store_dir is not None else store_directory()
    label_tag = "labeled" if labeled else "plain"
    path = directory / f"{name}-s{scale:g}-{label_tag}.kcsr"
    if path.exists():
        try:
            cached = open_store(path)
            if cached == graph:
                return cached
        except GraphFormatError:
            pass  # stale/corrupt cache: fall through and rebuild
    write_store(graph, path)
    return open_store(path)
