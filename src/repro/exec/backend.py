"""The pluggable execution-backend interface.

A backend decides *where* a job's per-machine schedulers run; it never
decides *what* they compute. ``KhuzdulEngine._execute`` dispatches to
``engine.backend.execute(...)`` when a backend is attached and falls
back to the in-process simulated path otherwise, so the engine itself
never imports this package (``repro.exec`` sits above ``repro.core``
in the layer map — see docs/architecture.md).

The hard contract every backend must honour (docs/execution.md): for
any (graph, schedules, configuration), the returned pattern counts are
bit-identical to the inline path's, at any worker count.

Failure semantics are part of the contract too: a backend whose
workers are real OS processes must never let a worker death wedge the
run or escape as a raw traceback — it converts deaths, peer timeouts,
and wall-clock expiry into a structured
:class:`~repro.faults.recovery.FailureSummary` on the returned report
(``CRASHED``/``RECOVERED``/``TIMEOUT``), the same vocabulary the
simulated fault injector uses (docs/faults.md).
"""

from __future__ import annotations

import abc

from repro.core.runtime import RunReport


class Backend(abc.ABC):
    """Executes one engine job and returns ``(counts, report)``."""

    #: backend name as shown by ``--backend`` and the outcome line
    name: str = "backend"

    @abc.abstractmethod
    def execute(
        self,
        engine,
        schedules,
        udf,
        system: str,
        app: str,
        graph_name: str,
    ) -> tuple[list[int], RunReport]:
        """Run ``schedules`` on ``engine``'s cluster.

        ``engine`` is the calling :class:`~repro.core.engine.KhuzdulEngine`;
        backends read its cluster, config, and observability bundle from
        it rather than holding state of their own, so one backend object
        can serve many engines.
        """


class InlineBackend(Backend):
    """The default: the single-process simulated path, unchanged.

    Attaching ``InlineBackend()`` is byte-identical to attaching no
    backend at all (``backend=None``) — it exists so code can treat
    "which backend" uniformly as an object.
    """

    name = "inline"

    def execute(self, engine, schedules, udf, system, app, graph_name):
        return engine._execute_inline(
            schedules, udf, system, app, graph_name
        )
