"""The process backend: one OS process per group of simulated machines.

Execution plan (docs/execution.md):

1. Export the graph's CSR arrays into shared memory once
   (:mod:`repro.graph.csr`) — workers map them zero-copy.
2. Build the queue fabric (per-worker request inboxes, per-worker-pair
   reply queues) and spawn ``workers`` processes, each running
   :func:`repro.exec.worker.worker_main`: the unmodified inline
   scheduler loop over the machines it hosts (``m % workers``), with
   inter-machine edge-list batches travelling as real messages in
   circulant order, one batch in flight while the previous computes.
3. Collect per-worker results, broadcast the shutdown sentinel (a
   worker's responder must outlive its own compute — other workers may
   still fetch from it), then collect responder stats and join.
4. Merge: counts sum; worker partial reports fold through
   ``merge_reports(parallel=True)``; cluster-global fields that need
   cross-worker data (machine finish times, traffic matrix, cache hit
   rate, utilization) are reconstructed here; worker metric/span dumps
   are absorbed into the parent observability bundle; wall-clock
   ``exec.*`` metrics are emitted on top.

Determinism: a machine's scheduler sees the same graph, roots, and
configuration regardless of which process hosts it, and the transport
never alters simulated accounting — so counts are bit-identical to the
inline backend at any worker count (the invariant
``tests/test_exec.py`` pins down). Wall-clock ``exec.*`` readings are
the only nondeterministic outputs.

Not supported here (raise :class:`~repro.errors.ConfigurationError`
up front): fault plans (injected crash recovery reassigns roots across
workers, which this backend does not replicate) and non-mergeable
UDFs (a per-worker UDF copy must be foldable via ``udf.merge(other)``,
like :class:`~repro.systems.base.MniDomainCollector`).
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as queue_mod
from time import perf_counter
from typing import Optional

from repro.core.runtime import RunReport
from repro.errors import ConfigurationError
from repro.exec.backend import Backend
from repro.exec.messages import SHUTDOWN
from repro.exec.transport import Endpoints
from repro.exec.worker import worker_main
from repro.graph.csr import share_csr
from repro.obs import names
from repro.systems.base import merge_reports

_HDS_KEYS = ("hits", "probes", "drops")
_FETCH_KEYS = ("local", "remote", "cache", "shared")
_CLOCK_KEYS = ("compute", "scheduler", "cache", "network")


class ProcessBackend(Backend):
    """Real multiprocess execution over shared-memory graph storage."""

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
        timeout: float = 600.0,
    ):
        #: worker-process count; None = one per simulated machine,
        #: always clamped to the machine count (a machine's scheduler
        #: is single-threaded state, it cannot be split further)
        self.workers = workers
        #: multiprocessing start method; None prefers ``fork`` (cheap,
        #: Linux) and falls back to ``spawn`` — worker args are kept
        #: picklable so both work
        self.start_method = start_method
        #: wall-clock budget for collecting worker messages before the
        #: run is declared wedged and the fleet is torn down
        self.timeout = timeout

    # ------------------------------------------------------------------
    def execute(self, engine, schedules, udf, system, app, graph_name):
        config = engine.config
        cluster = engine.cluster
        if config.faults is not None and not config.faults.empty:
            raise ConfigurationError(
                "fault injection requires the inline backend: the "
                "process backend does not replicate cross-worker crash "
                "recovery (docs/execution.md)"
            )
        self._validate_udf(udf)
        machines = cluster.num_machines
        workers = self.workers if self.workers else machines
        workers = max(1, min(workers, machines))
        obs = engine.obs
        obs.reset()
        cluster.reset_clocks()  # the parent cluster sits idle; keep it clean

        context = self._context()
        started = perf_counter()
        shared = share_csr(cluster.graph)
        processes = []
        try:
            result_queue = context.Queue()
            endpoints = Endpoints(
                num_workers=workers,
                inboxes=[context.Queue() for _ in range(workers)],
                replies={
                    (server, requester): context.Queue()
                    for server in range(workers)
                    for requester in range(workers)
                },
            )
            job = (system, app, graph_name)
            for worker_id in range(workers):
                processes.append(context.Process(
                    target=worker_main,
                    args=(worker_id, workers, shared.handle, cluster.config,
                          config, list(schedules), udf, job, obs.enabled,
                          endpoints, result_queue),
                    name=f"repro-exec-{worker_id}",
                    daemon=True,
                ))
            for process in processes:
                process.start()
            results = self._collect(result_queue, processes, workers,
                                    "result")
            for inbox in endpoints.inboxes:
                inbox.put(SHUTDOWN)
            stats = self._collect(result_queue, processes, workers, "stats")
            for process in processes:
                process.join(timeout=30.0)
        finally:
            for process in processes:
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=10.0)
            shared.unlink()
        wall = perf_counter() - started
        return self._merge(engine, udf, system, app, graph_name,
                           len(schedules), workers, results, stats, wall)

    # ------------------------------------------------------------------
    def _validate_udf(self, udf) -> None:
        if udf is None:
            return
        if not callable(getattr(udf, "merge", None)):
            raise ConfigurationError(
                "the process backend needs a mergeable UDF: each worker "
                "gets its own copy, so the object must expose "
                "merge(other) to fold them back (plain callables/"
                "closures run on the inline backend only)"
            )
        try:
            pickle.dumps(udf)
        except Exception as exc:
            raise ConfigurationError(
                f"UDF cannot be pickled into worker processes: {exc}"
            ) from exc

    def _context(self):
        if self.start_method is not None:
            return multiprocessing.get_context(self.start_method)
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )

    def _collect(self, result_queue, processes, expected, tag) -> dict:
        """Gather one tagged message per worker, watching for deaths."""
        collected: dict[int, dict] = {}
        deadline = perf_counter() + self.timeout
        while len(collected) < expected:
            remaining = deadline - perf_counter()
            if remaining <= 0:
                raise RuntimeError(
                    f"process backend timed out after {self.timeout:.0f}s "
                    f"awaiting {tag!r} messages "
                    f"({len(collected)}/{expected} received)"
                )
            try:
                message = result_queue.get(timeout=min(1.0, remaining))
            except queue_mod.Empty:
                dead = [
                    process.name for process in processes
                    if process.exitcode not in (None, 0)
                ]
                if dead:
                    raise RuntimeError(
                        f"worker process(es) died without reporting: {dead}"
                    ) from None
                continue
            kind, worker_id, payload = message
            if kind == "error":
                raise RuntimeError(f"worker {worker_id} failed:\n{payload}")
            if kind != tag:
                raise RuntimeError(
                    f"protocol violation: got {kind!r} while awaiting {tag!r}"
                )
            collected[worker_id] = payload
        return collected

    # ------------------------------------------------------------------
    def _merge(self, engine, udf, system, app, graph_name, num_schedules,
               workers, results, stats, wall) -> tuple[list[int], RunReport]:
        ordered = [results[worker_id] for worker_id in range(workers)]
        reports = [entry["report"] for entry in ordered]
        counts = [
            sum(entry["counts"][index] for entry in ordered)
            for index in range(num_schedules)
        ]
        merged = merge_reports(reports, system, app, graph_name,
                               parallel=True)
        machines = engine.cluster.num_machines
        cost = engine.cluster.cost

        # machine finish times need cross-worker data: machine j's clock
        # buckets come from its host worker, but its responder serve
        # seconds accumulate in *every* worker that fetched from it —
        # the zip-summed breakdowns hold both, so busy = max(clock, serve)
        breakdowns = merged.machine_breakdowns
        machine_seconds = [
            max(
                sum(buckets.get(key, 0.0) for key in _CLOCK_KEYS),
                buckets.get("serve", 0.0),
            )
            for buckets in breakdowns
        ]
        runtime = max(machine_seconds) if machine_seconds else 0.0
        slowest = (
            max(range(len(machine_seconds)),
                key=machine_seconds.__getitem__)
            if machine_seconds else 0
        )

        workers_extra = [entry["report"].extra["_worker"]
                         for entry in ordered]
        traffic = sum(extra["traffic_bytes"] for extra in workers_extra)
        cache_hits = sum(extra["cache_hits"] for extra in workers_extra)
        cache_queries = sum(extra["cache_queries"]
                            for extra in workers_extra)
        num_batches = sum(extra["num_batches"] for extra in workers_extra)

        if udf is not None:
            for entry in ordered:
                if entry["udf"] is not None:
                    udf.merge(entry["udf"])

        failures = [report.failure for report in reports
                    if report.failure is not None]
        failure = min(
            failures,
            key=lambda f: f.machine_id if f.machine_id is not None else -1,
        ) if failures else None

        busiest_out = float(traffic.sum(axis=1).max()) if machines else 0.0
        merged.counts = None
        merged.simulated_seconds = runtime
        merged.network_bytes = int(traffic.sum())
        merged.breakdown = {
            key: breakdowns[slowest].get(key, 0.0) for key in _CLOCK_KEYS
        } if breakdowns else {}
        merged.machine_seconds = machine_seconds
        merged.cache_hit_rate = (
            cache_hits / cache_queries if cache_queries else 0.0
        )
        merged.cache_entries = sum(r.cache_entries for r in reports)
        merged.network_utilization = (
            busiest_out / (cost.network_bandwidth * runtime)
            if runtime > 0.0 else 0.0
        )
        merged.peak_memory_bytes = max(r.peak_memory_bytes for r in reports)
        merged.num_machines = machines
        merged.failure = failure
        merged.extra = {
            "hds": {
                key: sum(r.extra["hds"][key] for r in reports)
                for key in _HDS_KEYS
            },
            "fetch_sources": {
                key: sum(r.extra["fetch_sources"][key] for r in reports)
                for key in _FETCH_KEYS
            },
            "chunks": sum(r.extra["chunks"] for r in reports),
            "requests": sum(r.extra["requests"] for r in reports),
            "serve_seconds": (
                max(buckets.get("serve", 0.0) for buckets in breakdowns)
                if breakdowns else 0.0
            ),
        }

        busy = [entry["busy_seconds"] for entry in ordered]
        wait = [entry["requester"]["wait_seconds"] for entry in ordered]
        messages = sum(entry["requester"]["messages"] for entry in ordered)
        shipped = sum(stats[worker_id]["served_bytes"]
                      for worker_id in range(workers))
        depth = self._merge_depth(
            [stats[worker_id]["queue_depth"]
             for worker_id in range(workers)]
        )
        merged.extra["exec"] = {
            "backend": self.name,
            "workers": workers,
            "wall_seconds": wall,
            "worker_busy_seconds": busy,
            "worker_wait_seconds": wait,
            "messages": messages,
            "bytes_shipped": shipped,
            "queue_depth": {
                "count": depth[0], "total": depth[1],
                "min": depth[2], "max": depth[3],
            },
        }

        obs = engine.obs
        if obs.enabled:
            for entry in ordered:  # worker-id order keeps spans stable
                dump = entry["obs"]
                if dump is not None:
                    obs.registry.absorb(dump["metrics"])
                    obs.tracer.absorb(dump["spans"], dump["dropped"])
            self._emit_exec_metrics(obs, workers, wall, busy, wait,
                                    messages, shipped, depth)
            summary = obs.summary()
            summary["network"] = {
                "per_machine_sent_bytes": [
                    int(traffic[machine].sum())
                    for machine in range(machines)
                ],
                "per_machine_utilization": [
                    (float(traffic[machine].sum())
                     / (cost.network_bandwidth * runtime))
                    if runtime > 0.0 else 0.0
                    for machine in range(machines)
                ],
                "num_batches": num_batches,
            }
            merged.extra["obs"] = summary
        return counts, merged

    @staticmethod
    def _merge_depth(summaries) -> tuple[int, float, float, float]:
        count = sum(s[0] for s in summaries)
        if not count:
            return (0, 0.0, 0.0, 0.0)
        present = [s for s in summaries if s[0]]
        return (
            count,
            sum(s[1] for s in present),
            min(s[2] for s in present),
            max(s[3] for s in present),
        )

    def _emit_exec_metrics(self, obs, workers, wall, busy, wait,
                           messages, shipped, depth) -> None:
        scope = obs.registry.scope()
        scope.gauge(names.EXEC_WORKERS).set(workers)
        scope.gauge(names.EXEC_WALL_SECONDS).set(wall)
        for worker_id, (busy_s, wait_s) in enumerate(zip(busy, wait)):
            scope.counter(
                names.EXEC_WORKER_BUSY_SECONDS, worker=worker_id
            ).inc(busy_s)
            scope.counter(
                names.EXEC_WORKER_WAIT_SECONDS, worker=worker_id
            ).inc(wait_s)
        scope.counter(names.EXEC_MESSAGES).inc(messages)
        scope.counter(names.EXEC_BYTES_SHIPPED).inc(shipped)
        if depth[0]:
            scope.histogram(names.EXEC_QUEUE_DEPTH).merge_summary(*depth)
