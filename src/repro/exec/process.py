"""The process backend: one OS process per group of simulated machines.

Execution plan (docs/execution.md):

1. Export the graph's CSR arrays into shared memory once
   (:mod:`repro.graph.csr`) — workers map them zero-copy.
2. Build the transport fabric (per-worker request inboxes, one
   shared-memory reply *ring* per ordered worker pair plus a pickled
   fallback queue per requester, per-worker death notices, a fleet
   stop event) and spawn ``workers`` processes, each running
   :func:`repro.exec.worker.worker_main`: the unmodified inline
   scheduler loop over the machines it hosts (``m % workers``), with
   each chunk's edge-list demand coalesced per server worker and its
   replies streaming back as raw ring frames while earlier batches
   compute (docs/execution.md describes the ring protocol).
3. Collect per-worker results while *watching worker liveness*: every
   ``heartbeat`` seconds without a message, the parent sweeps worker
   exit codes; a dead or silent worker is marked lost, its death
   notice is published to the fleet (so peers blocked on its replies
   abort within a bounded wait instead of deadlocking), and the
   ``on_worker_death`` policy applies — ``fail`` returns a structured
   ``CRASHED`` report immediately, ``recover`` *redistributes* the
   lost workers' machines across the surviving workers (each survivor
   replays its share against the shared graph, resuming past the
   chunks the dead worker's shipped checkpoint deltas already cover)
   and reports ``RECOVERED`` with complete counts. The parent replays
   inline only machines no survivor could cover (survivor died
   mid-recovery, or no survivors at all).
4. Broadcast the shutdown sentinel (a worker's responder must outlive
   its own compute — other workers may still fetch from it), collect
   responder stats, and join. Shared-memory segments are unlinked on
   every exit path — including SIGINT/SIGTERM and interpreter exit,
   via chained signal handlers and an ``atexit`` hook registered for
   the duration of the run.

Durability (docs/faults.md): workers ship one ``CKPT`` delta per
completed root chunk — the parent's in-memory progress ledger feeds
redistribution, and with ``checkpoint_dir`` set the parent also owns a
:class:`~repro.faults.durability.CheckpointSession`, appending deltas
to the durable log so a killed run resumes (workers receive the resume
map and skip completed chunks). A ``shm.json`` ledger of live segment
names lets a resumed run reap segments leaked by a SIGKILLed parent.
5. Merge: counts sum; worker partial reports fold through
   ``merge_reports(parallel=True)``; cluster-global fields that need
   cross-worker data (machine finish times, traffic matrix, cache hit
   rate, utilization) are reconstructed here; worker metric/span dumps
   are absorbed into the parent observability bundle; wall-clock
   ``exec.*`` metrics are emitted on top.

Determinism: a machine's scheduler sees the same graph, roots, and
configuration regardless of which process hosts it, and the transport
never alters simulated accounting — so counts are bit-identical to the
inline backend at any worker count (the invariant
``tests/test_exec.py`` pins down). This is also what makes worker-death
recovery exact: re-executing a lost worker's hosted machines inline
reproduces precisely the results the worker would have returned.
Wall-clock ``exec.*`` readings (and ``net.peer_timeouts``) are the
only nondeterministic outputs.

Not supported here (raise :class:`~repro.errors.ConfigurationError`
up front): fault plans (injected crash recovery reassigns roots across
workers, which this backend does not replicate) and non-mergeable
UDFs (a per-worker UDF copy must be foldable via ``udf.merge(other)``,
like :class:`~repro.systems.base.MniDomainCollector`).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_mod
from dataclasses import dataclass, field
from time import perf_counter
from typing import Optional

from repro.cluster.cluster import Cluster
from repro.core.engine import KhuzdulEngine
from repro.core.runtime import RunReport
from repro.errors import ConfigurationError
from repro.exec.backend import Backend
from repro.exec.messages import (
    CKPT,
    DONE,
    ERROR,
    PEER_DEAD,
    RECOVERY,
    RESULT,
    SHUTDOWN,
    STATS,
    RecoverAssignment,
)
from repro.exec.ring import create_ring
from repro.exec.transport import (
    Endpoints,
    zero_requester_stats,
    zero_responder_stats,
)
from repro.exec.janitor import install_janitor, remove_janitor
from repro.exec.worker import worker_main
from repro.faults import durability
from repro.faults.recovery import (
    FailureSummary,
    Outcome,
    worker_death_event,
    worker_loss_summary,
)
from repro.graph.csr import share_csr
from repro.obs import Observability, names
from repro.systems.base import merge_reports

_HDS_KEYS = ("hits", "probes", "drops")
_FETCH_KEYS = ("local", "remote", "cache", "shared")
_CLOCK_KEYS = ("compute", "scheduler", "cache", "network")

#: the two worker-death policies ``--on-worker-death`` accepts
DEATH_POLICIES = ("fail", "recover")

#: default per-pair reply-ring capacity (data bytes); 1 MiB holds a
#: full adaptive budget of frames per pair while keeping a 4-worker
#: fabric's shared-memory footprint around a dozen MiB
RING_BYTES = 1 << 20


class _CollectTimeout(Exception):
    """The wall-clock collection budget expired (converted to a
    structured ``TIMEOUT`` report, never raised to callers)."""


@dataclass
class _FleetState:
    """Liveness bookkeeping for one ``execute`` call."""

    #: sweeps of worker exit codes the parent performed
    heartbeat_checks: int = 0
    #: bounded-wait expirations reported by workers that aborted on a
    #: dead peer (their requester stats never arrive)
    peer_timeout_messages: int = 0
    #: worker_id -> human-readable death reason
    deaths: dict = field(default_factory=dict)
    #: workers that aborted on a dead peer (PEER_DEAD): their compute
    #: is lost like a death, but the *process* is alive in its control
    #: loop — a valid target for redistributed replays
    aborted: set = field(default_factory=set)
    #: lost workers whose hosted machines were replayed (on survivors
    #: or inline)
    reexecuted: set = field(default_factory=set)


def _error_reason(traceback_text: str) -> str:
    """The last non-empty traceback line — enough to name the failure
    without shipping a full Python traceback into the report."""
    lines = [ln.strip() for ln in traceback_text.splitlines() if ln.strip()]
    return f"uncaught worker error: {lines[-1]}" if lines else \
        "uncaught worker error"


class ProcessBackend(Backend):
    """Real multiprocess execution over shared-memory graph storage."""

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
        timeout: float = 600.0,
        heartbeat: float = 1.0,
        on_worker_death: str = "fail",
        ring_bytes: int = RING_BYTES,
    ):
        #: worker-process count; None = one per simulated machine,
        #: always clamped to the machine count (a machine's scheduler
        #: is single-threaded state, it cannot be split further)
        self.workers = workers
        #: multiprocessing start method; None prefers ``fork`` (cheap,
        #: Linux) and falls back to ``spawn`` — worker args are kept
        #: picklable so both work
        self.start_method = start_method
        #: wall-clock budget for collecting worker messages before the
        #: run is declared wedged; expiry yields a structured TIMEOUT
        #: report, never a raised exception
        self.timeout = timeout
        #: liveness-check interval: the parent sweeps worker exit codes
        #: at least this often while idle, so a dead worker is detected
        #: within roughly two heartbeats — never at the full timeout
        if heartbeat <= 0:
            raise ConfigurationError("heartbeat must be positive")
        self.heartbeat = heartbeat
        #: what to do when a worker process dies mid-run: ``fail``
        #: returns a partial CRASHED report immediately; ``recover``
        #: re-executes the lost workers' hosted machines through the
        #: deterministic inline path (counts stay exact)
        if on_worker_death not in DEATH_POLICIES:
            raise ConfigurationError(
                f"on_worker_death must be one of {DEATH_POLICIES}, "
                f"got {on_worker_death!r}"
            )
        self.on_worker_death = on_worker_death
        #: capacity of each (server, requester) shared-memory reply
        #: ring; replies that cannot fit take the pickled fallback path
        if ring_bytes < 1024:
            raise ConfigurationError("ring_bytes must be at least 1KiB")
        self.ring_bytes = ring_bytes

    # ------------------------------------------------------------------
    def execute(self, engine, schedules, udf, system, app, graph_name):
        config = engine.config
        cluster = engine.cluster
        if config.faults is not None and not config.faults.empty:
            raise ConfigurationError(
                "fault injection requires the inline backend: the "
                "process backend does not replicate cross-worker crash "
                "recovery (docs/execution.md)"
            )
        if config.checkpoint_dir is not None and udf is not None:
            raise ConfigurationError(
                "durable checkpoints with a UDF require the inline "
                "backend: per-worker UDF state cannot be snapshotted "
                "consistently across processes (docs/faults.md)"
            )
        self._validate_udf(udf)
        machines = cluster.num_machines
        workers = self.workers if self.workers else machines
        workers = max(1, min(workers, machines))
        obs = engine.obs
        obs.reset()
        cluster.reset_clocks()  # the parent cluster sits idle; keep it clean

        # durable checkpointing: the parent owns the session — workers
        # only ship deltas (docs/faults.md)
        session = None
        resume_state = None
        if config.checkpoint_dir is not None:
            manifest = durability.run_manifest(
                cluster, schedules, config, system, app, graph_name)
            session = durability.CheckpointSession(
                config.checkpoint_dir, manifest, len(schedules),
                every=config.checkpoint_every, resume=config.resume)
            if config.resume:
                durability.reap_stale_segments(config.checkpoint_dir)
                resume_state = session.resume_state()
            session.snapshot_extra = lambda: {
                "udf": None,
                "metrics": obs.registry.dump() if obs.enabled else None,
            }
        #: fleet-wide progress ledger, (pattern, machine) -> absolute
        #: (roots, matches) cursor; feeds redistribution resume maps
        progress: dict = dict(resume_state) if resume_state else {}

        def on_ckpt(pattern, machine, roots, matches):
            key = (pattern, machine)
            if roots > progress.get(key, (0, 0))[0]:
                progress[key] = (roots, matches)
            if session is not None:
                session.record(pattern, machine, roots, matches)

        context = self._context()
        started = perf_counter()
        shared = share_csr(cluster.graph)
        processes = []
        result_queue = None
        endpoints = None
        rings = {}
        fleet = _FleetState()

        def unlink_segments():
            # idempotent: every unlink below tolerates a repeat call,
            # so the signal/atexit hooks and the finally block may race
            for ring in list(rings.values()):
                try:
                    ring.unlink()
                except Exception:  # pragma: no cover - best effort
                    pass
            try:
                shared.unlink()
            except Exception:  # pragma: no cover - best effort
                pass

        previous_handlers = install_janitor(unlink_segments)
        try:
            result_queue = context.Queue()
            # one shared-memory reply ring per ordered worker pair
            # (same-worker fetches take the transport's local fast
            # path, so self-pairs never exist); the parent owns the
            # segments and is the only side that unlinks them
            rings = {
                (server, requester): create_ring(self.ring_bytes)
                for server in range(workers)
                for requester in range(workers)
                if server != requester
            }
            if session is not None:
                durability.write_shm_names(
                    config.checkpoint_dir,
                    shared.handle.segment_names()
                    + [ring.handle.name for ring in rings.values()],
                )
            endpoints = Endpoints(
                num_workers=workers,
                inboxes=[context.Queue() for _ in range(workers)],
                rings={pair: ring.handle for pair, ring in rings.items()},
                fallbacks=[context.Queue() for _ in range(workers)],
                deaths=[context.Event() for _ in range(workers)],
                stop=context.Event(),
                controls=(
                    [context.Queue() for _ in range(workers)]
                    if self.on_worker_death == "recover" else None
                ),
                parent_pid=os.getpid(),
            )
            job = (system, app, graph_name)
            for worker_id in range(workers):
                processes.append(context.Process(
                    target=worker_main,
                    args=(worker_id, workers, shared.handle, cluster.config,
                          config, list(schedules), udf, job, obs.enabled,
                          endpoints, result_queue, resume_state),
                    name=f"repro-exec-{worker_id}",
                    daemon=True,
                ))
            for process in processes:
                process.start()

            try:
                results = self._collect(
                    result_queue, processes, endpoints,
                    set(range(workers)), RESULT, fleet,
                    fail_fast=(self.on_worker_death == "fail"),
                    ckpt=on_ckpt,
                )
            except _CollectTimeout as exc:
                return self._failed_report(
                    engine, system, app, graph_name, len(schedules),
                    workers, perf_counter() - started, fleet,
                    Outcome.TIMEOUT, str(exc),
                )
            if fleet.deaths and self.on_worker_death == "fail":
                return self._failed_report(
                    engine, system, app, graph_name, len(schedules),
                    workers, perf_counter() - started, fleet,
                    Outcome.CRASHED, None,
                )
            entries = [
                {**payload, "worker_id": worker_id, "kind": "result"}
                for worker_id, payload in sorted(results.items())
            ]
            lost = sorted(set(range(workers)) - set(results))
            redistribution = None
            if lost:
                # on_worker_death == "recover": redistribute the lost
                # workers' machines across the survivors; the progress
                # ledger (the dead workers' shipped deltas) lets each
                # replay skip already-completed chunks
                fleet.reexecuted = set(lost)
                # replay targets: workers that returned a result, plus
                # aborted-on-a-dead-peer workers — their compute died
                # but the process is alive in its control loop
                survivors = sorted(set(results) | fleet.aborted)
                try:
                    recovery_entries, redistribution = self._redistribute(
                        result_queue, processes, endpoints, engine,
                        schedules, udf, system, app, graph_name, lost,
                        survivors, workers, machines, fleet,
                        progress, on_ckpt,
                    )
                except _CollectTimeout as exc:
                    return self._failed_report(
                        engine, system, app, graph_name, len(schedules),
                        workers, perf_counter() - started, fleet,
                        Outcome.TIMEOUT, str(exc),
                    )
                entries.extend(recovery_entries)
            # release survivors from their control loops before the
            # shutdown sentinel so responders drain in order
            if endpoints.controls is not None:
                for control in endpoints.controls:
                    control.put(DONE)
            for inbox in endpoints.inboxes:
                inbox.put(SHUTDOWN)
            try:
                stats = self._collect(
                    result_queue, processes, endpoints,
                    set(results) - set(fleet.deaths), STATS, fleet,
                    fail_fast=False, ckpt=on_ckpt,
                )
            except _CollectTimeout as exc:
                return self._failed_report(
                    engine, system, app, graph_name, len(schedules),
                    workers, perf_counter() - started, fleet,
                    Outcome.TIMEOUT, str(exc),
                )
            for worker_id in range(workers):
                stats.setdefault(worker_id, zero_responder_stats())
        finally:
            # teardown runs on every path: publish the stop signal so
            # bounded transport waits abort, unblock feeder threads by
            # draining the result queue, then reap (or terminate) the
            # fleet and unlink the shared-memory segments (graph CSR
            # and reply rings alike — the parent owns both)
            if endpoints is not None:
                endpoints.stop.set()
            self._drain(result_queue)
            for process in processes:
                process.join(timeout=2.0)
            self._drain(result_queue)
            for process in processes:
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=10.0)
            unlink_segments()
            remove_janitor(unlink_segments, previous_handlers)
            if session is not None:
                durability.clear_shm_names(config.checkpoint_dir)
        wall = perf_counter() - started
        counts, report = self._merge(
            engine, udf, system, app, graph_name, len(schedules),
            workers, entries, stats, wall, fleet, redistribution)
        if session is not None:
            session.finalize()
            report.extra["checkpoint"] = session.stats()
            if obs.enabled:
                scope = obs.registry.scope()
                scope.counter(names.CHECKPOINT_RECORDS).inc(
                    session.records_written)
                scope.counter(names.CHECKPOINT_FLUSHES).inc(session.flushes)
                scope.counter(names.CHECKPOINT_RESUMED_ROOTS).inc(
                    session.stats()["resumed_roots"])
        return counts, report

    # ------------------------------------------------------------------
    def _validate_udf(self, udf) -> None:
        if udf is None:
            return
        if not callable(getattr(udf, "merge", None)):
            raise ConfigurationError(
                "the process backend needs a mergeable UDF: each worker "
                "gets its own copy, so the object must expose "
                "merge(other) to fold them back (plain callables/"
                "closures run on the inline backend only)"
            )
        try:
            pickle.dumps(udf)
        except Exception as exc:
            raise ConfigurationError(
                f"UDF cannot be pickled into worker processes: {exc}"
            ) from exc

    def _context(self):
        if self.start_method is not None:
            return multiprocessing.get_context(self.start_method)
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )

    # ------------------------------------------------------------------
    # collection with liveness detection
    # ------------------------------------------------------------------
    def _collect(self, result_queue, processes, endpoints, pending, tag,
                 fleet, fail_fast, ckpt=None) -> dict:
        """Gather one tagged message per pending worker.

        Every queue wait is bounded by ``heartbeat``; each expiry
        sweeps worker exit codes, so a dead worker is *marked lost*
        (death notice published to its peers) within about two
        heartbeats instead of stalling until the full ``timeout``.
        With ``fail_fast`` the first death ends collection immediately;
        otherwise collection continues until every pending worker has
        either reported or been marked lost.

        ``ckpt`` consumes checkpoint deltas *before* the pending
        filter: a dying worker's last shipped cursors are exactly what
        redistribution needs, so they must be recorded even once the
        worker is marked lost.
        """
        collected: dict[int, dict] = {}
        expected = len(pending)
        deadline = perf_counter() + self.timeout
        suspects: dict[int, float] = {}
        while pending:
            remaining = deadline - perf_counter()
            if remaining <= 0:
                raise _CollectTimeout(
                    f"process backend timed out after "
                    f"{self.timeout:.0f}s awaiting {tag!r} messages "
                    f"({len(collected)}/{expected} received)"
                )
            try:
                message = result_queue.get(
                    timeout=min(self.heartbeat, max(0.01, remaining))
                )
            except queue_mod.Empty:
                self._sweep(processes, endpoints, pending, fleet, suspects)
                if fail_fast and fleet.deaths:
                    break
                continue
            kind, worker_id, payload = message
            if kind == CKPT:
                if ckpt is not None:
                    ckpt(*payload)
                continue
            if worker_id not in pending:
                continue  # late message from a worker already marked lost
            if kind == ERROR:
                self._mark_lost(endpoints, pending, fleet, worker_id,
                                _error_reason(payload))
            elif kind == PEER_DEAD:
                fleet.peer_timeout_messages += max(
                    1, int(payload.get("liveness_timeouts", 0))
                )
                fleet.aborted.add(worker_id)
                self._mark_lost(endpoints, pending, fleet, worker_id,
                                payload["message"])
            elif kind == tag:
                collected[worker_id] = payload
                pending.discard(worker_id)
                suspects.pop(worker_id, None)
            else:
                raise RuntimeError(
                    f"protocol violation: got {kind!r} while awaiting "
                    f"{tag!r}"
                )
            if fail_fast and fleet.deaths:
                break
        return collected

    def _sweep(self, processes, endpoints, pending, fleet,
               suspects) -> None:
        """One liveness pass over the pending workers' exit codes."""
        fleet.heartbeat_checks += 1
        now = perf_counter()
        grace = max(self.heartbeat, 0.5)
        for worker_id in sorted(pending):
            exitcode = processes[worker_id].exitcode
            if exitcode is None:
                suspects.pop(worker_id, None)
                continue
            first_seen = suspects.setdefault(worker_id, now)
            if exitcode == 0 and now - first_seen < grace:
                # clean exit: give an already-flushed message one grace
                # interval to surface before declaring the worker silent
                continue
            if exitcode == 0:
                reason = "exited silently without reporting"
            elif exitcode > 0:
                reason = f"exited with code {exitcode} before reporting"
            else:
                reason = f"killed by signal {-exitcode} before reporting"
            self._mark_lost(endpoints, pending, fleet, worker_id, reason)

    @staticmethod
    def _mark_lost(endpoints, pending, fleet, worker_id, reason) -> None:
        """Record a death and publish the notice to the fleet, so peers
        blocked on the dead worker's replies abort their bounded waits."""
        fleet.deaths[worker_id] = reason
        pending.discard(worker_id)
        if endpoints.deaths is not None:
            endpoints.deaths[worker_id].set()

    @staticmethod
    def _drain(result_queue) -> None:
        """Discard undelivered messages so child feeder threads blocked
        on a full pipe can flush and let their processes exit."""
        if result_queue is None:
            return
        while True:
            try:
                result_queue.get_nowait()
            except queue_mod.Empty:
                return
            except (OSError, EOFError):  # pragma: no cover - torn queue
                return

    # ------------------------------------------------------------------
    # lost-worker redistribution (on_worker_death == "recover")
    # ------------------------------------------------------------------
    def _redistribute(self, result_queue, processes, endpoints, engine,
                      schedules, udf, system, app, graph_name, lost,
                      survivors, workers, machines, fleet, progress,
                      ckpt) -> tuple[list[dict], dict]:
        """Round-robin the lost workers' machines across survivors.

        The determinism contract makes the replays exact: the inline
        path, restricted to any machine subset, computes bit-identically
        what the dead worker would have returned — and the progress
        ledger (the dead worker's shipped deltas) lets each survivor
        resume past chunks already completed, seeding their checkpointed
        matches instead of recomputing them. The parent replays inline
        only machines no survivor covered (a survivor died mid-recovery,
        or no survivors exist at all).
        """
        lost_machines = sorted(
            machine for worker_id in lost
            for machine in self._machines_of(worker_id, workers, machines)
        )
        assignment: dict[int, list[int]] = {}
        if survivors:
            for index, machine in enumerate(lost_machines):
                target = survivors[index % len(survivors)]
                assignment.setdefault(target, []).append(machine)
        for worker_id in sorted(assignment):
            hosted = set(assignment[worker_id])
            endpoints.controls[worker_id].put(RecoverAssignment(
                machines=tuple(assignment[worker_id]),
                resume={
                    key: cursor for key, cursor in progress.items()
                    if key[1] in hosted
                },
            ))
        recoveries: dict[int, dict] = {}
        if assignment:
            recoveries = self._collect(
                result_queue, processes, endpoints, set(assignment),
                RECOVERY, fleet, fail_fast=False, ckpt=ckpt,
            )
        entries = [
            {**payload, "worker_id": worker_id, "kind": "recovery"}
            for worker_id, payload in sorted(recoveries.items())
        ]
        uncovered = sorted(
            machine
            for worker_id, hosted in assignment.items()
            if worker_id not in recoveries
            for machine in hosted
        ) if survivors else lost_machines
        if uncovered:
            entries.append(self._replay_inline(
                engine, schedules, udf, system, app, graph_name,
                uncovered, progress, ckpt,
            ))
        redistribution = {
            "machines": sum(
                len(hosted) for worker_id, hosted in assignment.items()
                if worker_id in recoveries
            ),
            "workers": {
                worker_id: list(hosted)
                for worker_id, hosted in sorted(assignment.items())
                if worker_id in recoveries
            },
            "inline_fallback": len(uncovered),
        }
        return entries, redistribution

    def _replay_inline(self, engine, schedules, udf, system, app,
                       graph_name, replay_machines, progress,
                       ckpt) -> dict:
        """Parent-side inline replay of machines no survivor covered.

        Mirrors a spawned worker: fresh cluster view, fresh
        observability bundle, pickled UDF copy — resumed past whatever
        the progress ledger already covers.
        """
        parent = engine.cluster
        cluster = Cluster(parent.graph, parent.config)
        obs = Observability() if engine.obs.enabled else None
        recovery_engine = KhuzdulEngine(cluster, engine.config, obs=obs)
        udf_copy = (
            pickle.loads(pickle.dumps(udf)) if udf is not None else None
        )
        hosted = set(replay_machines)
        resume = {
            key: cursor for key, cursor in progress.items()
            if key[1] in hosted
        }
        replay_started = perf_counter()
        counts, report = recovery_engine.execute_hosted(
            schedules, udf_copy, system, app, graph_name,
            hosted=hosted, transport=None,
            checkpoint_sink=ckpt, resume=resume or None,
        )
        payload = {
            "counts": counts,
            "report": report,
            "udf": udf_copy,
            "busy_seconds": perf_counter() - replay_started,
            "requester": zero_requester_stats(),
            "obs": None,
            "worker_id": None,
            "kind": "inline",
            "machines": list(replay_machines),
        }
        if obs is not None:
            payload["obs"] = {
                "metrics": obs.registry.dump(),
                "spans": obs.tracer.spans,
                "dropped": obs.tracer.dropped,
            }
        return payload

    # ------------------------------------------------------------------
    # structured fail-fast reports (never a bare stall or traceback)
    # ------------------------------------------------------------------
    @staticmethod
    def _machines_of(worker_id: int, workers: int,
                     machines: int) -> list[int]:
        return [m for m in range(machines) if m % workers == worker_id]

    def _death_events(self, fleet, workers, machines) -> list[dict]:
        return [
            worker_death_event(
                worker_id,
                self._machines_of(worker_id, workers, machines),
                reason,
                worker_id in fleet.reexecuted,
            )
            for worker_id, reason in sorted(fleet.deaths.items())
        ]

    def _failed_report(self, engine, system, app, graph_name,
                       num_schedules, workers, wall, fleet, outcome,
                       message) -> tuple[list[int], RunReport]:
        machines = engine.cluster.num_machines
        events = self._death_events(fleet, workers, machines)
        if outcome is Outcome.CRASHED:
            failure = worker_loss_summary(events, recovered=False)
        else:
            failure = FailureSummary(outcome, message=message or "",
                                     events=events)
        report = RunReport(
            system=system, app=app, graph_name=graph_name, counts=None,
            simulated_seconds=0.0, num_machines=machines, failure=failure,
        )
        report.extra["exec"] = self._exec_extra(
            workers, wall, fleet, peer_timeouts=fleet.peer_timeout_messages,
            events=events,
        )
        obs = engine.obs
        if obs.enabled:
            scope = obs.registry.scope()
            scope.gauge(names.EXEC_WORKERS).set(workers)
            scope.gauge(names.EXEC_WALL_SECONDS).set(wall)
            self._emit_liveness_metrics(
                scope, fleet, fleet.peer_timeout_messages
            )
            report.extra["obs"] = obs.summary()
        return [0] * num_schedules, report

    def _exec_extra(self, workers, wall, fleet, peer_timeouts,
                    events) -> dict:
        extra = {
            "backend": self.name,
            "workers": workers,
            "wall_seconds": wall,
            "heartbeat_seconds": self.heartbeat,
            "heartbeat_checks": fleet.heartbeat_checks,
            "on_worker_death": self.on_worker_death,
            "worker_deaths": len(fleet.deaths),
            "peer_timeouts": peer_timeouts,
        }
        if events:
            extra["worker_death_events"] = events
        return extra

    def _emit_liveness_metrics(self, scope, fleet, peer_timeouts) -> None:
        scope.gauge(names.EXEC_HEARTBEAT_INTERVAL).set(self.heartbeat)
        scope.counter(names.EXEC_HEARTBEAT_CHECKS).inc(
            fleet.heartbeat_checks
        )
        scope.counter(names.EXEC_WORKER_DEATHS).inc(len(fleet.deaths))
        scope.counter(names.NET_PEER_TIMEOUTS).inc(peer_timeouts)

    # ------------------------------------------------------------------
    def _merge(self, engine, udf, system, app, graph_name, num_schedules,
               workers, entries, stats, wall, fleet,
               redistribution=None) -> tuple[list[int], RunReport]:
        """Fold the run's entries — per-worker results plus any
        redistribution replays (machine-disjoint by construction) —
        into one report."""
        ordered = entries
        reports = [entry["report"] for entry in ordered]
        counts = [
            sum(entry["counts"][index] for entry in ordered)
            for index in range(num_schedules)
        ]
        merged = merge_reports(reports, system, app, graph_name,
                               parallel=True)
        machines = engine.cluster.num_machines
        cost = engine.cluster.cost

        # machine finish times need cross-worker data: machine j's clock
        # buckets come from its host worker, but its responder serve
        # seconds accumulate in *every* worker that fetched from it —
        # the zip-summed breakdowns hold both, so busy = max(clock, serve)
        breakdowns = merged.machine_breakdowns
        machine_seconds = [
            max(
                sum(buckets.get(key, 0.0) for key in _CLOCK_KEYS),
                buckets.get("serve", 0.0),
            )
            for buckets in breakdowns
        ]
        runtime = max(machine_seconds) if machine_seconds else 0.0
        slowest = (
            max(range(len(machine_seconds)),
                key=machine_seconds.__getitem__)
            if machine_seconds else 0
        )

        workers_extra = [entry["report"].extra["_worker"]
                         for entry in ordered]
        traffic = sum(extra["traffic_bytes"] for extra in workers_extra)
        cache_hits = sum(extra["cache_hits"] for extra in workers_extra)
        cache_queries = sum(extra["cache_queries"]
                            for extra in workers_extra)
        num_batches = sum(extra["num_batches"] for extra in workers_extra)

        if udf is not None:
            for entry in ordered:
                if entry["udf"] is not None:
                    udf.merge(entry["udf"])

        failures = [report.failure for report in reports
                    if report.failure is not None]
        failure = min(
            failures,
            key=lambda f: f.machine_id if f.machine_id is not None else -1,
        ) if failures else None
        death_events = []
        if fleet.deaths:
            death_events = self._death_events(fleet, workers, machines)
            if failure is not None and failure.fatal:
                # a fatal simulated outcome (OOM/timeout) wins; the real
                # deaths still land on its event log
                failure.events = list(failure.events) + death_events
            elif fleet.reexecuted:
                failure = worker_loss_summary(death_events, recovered=True)
            # deaths that cost nothing (after every result was in) leave
            # the run clean; they are recorded in extra["exec"] only

        busiest_out = float(traffic.sum(axis=1).max()) if machines else 0.0
        merged.counts = None
        merged.simulated_seconds = runtime
        merged.network_bytes = int(traffic.sum())
        merged.breakdown = {
            key: breakdowns[slowest].get(key, 0.0) for key in _CLOCK_KEYS
        } if breakdowns else {}
        merged.machine_seconds = machine_seconds
        merged.cache_hit_rate = (
            cache_hits / cache_queries if cache_queries else 0.0
        )
        merged.cache_entries = sum(r.cache_entries for r in reports)
        merged.network_utilization = (
            busiest_out / (cost.network_bandwidth * runtime)
            if runtime > 0.0 else 0.0
        )
        merged.peak_memory_bytes = max(r.peak_memory_bytes for r in reports)
        merged.num_machines = machines
        merged.failure = failure
        merged.extra = {
            "hds": {
                key: sum(r.extra["hds"][key] for r in reports)
                for key in _HDS_KEYS
            },
            "fetch_sources": {
                key: sum(r.extra["fetch_sources"][key] for r in reports)
                for key in _FETCH_KEYS
            },
            "chunks": sum(r.extra["chunks"] for r in reports),
            "requests": sum(r.extra["requests"] for r in reports),
            "serve_seconds": (
                max(buckets.get("serve", 0.0) for buckets in breakdowns)
                if breakdowns else 0.0
            ),
        }

        # per-worker wall-clock lists: recovery replays accrue to the
        # survivor that ran them; the parent's own inline fallback
        # (worker_id None) is reported via the redistribution extra
        busy = [0.0] * workers
        wait = [0.0] * workers
        for entry in ordered:
            worker_id = entry.get("worker_id")
            if worker_id is None:
                continue
            busy[worker_id] += entry["busy_seconds"]
            wait[worker_id] += entry["requester"]["wait_seconds"]
        requesters = [entry["requester"] for entry in ordered]
        responders = [stats[worker_id] for worker_id in range(workers)]
        messages = sum(r["messages"] for r in requesters)
        peer_timeouts = fleet.peer_timeout_messages + sum(
            int(r.get("liveness_timeouts", 0)) for r in requesters
        )
        shipped = sum(s["served_bytes"] for s in responders)
        depth = self._merge_depth([s["queue_depth"] for s in responders])
        occupancy = self._merge_depth(
            [s["ring_occupancy"] for s in responders]
        )
        coalesced_batch = self._merge_depth(
            [r["coalesced_batch"] for r in requesters]
        )
        fallbacks = sum(s["fallbacks_served"] for s in responders)
        ring_wait = sum(s["ring_wait_seconds"] for s in responders)
        local_requests = sum(r["local_requests"] for r in requesters)
        adaptive = [0] * workers
        for entry in ordered:
            if entry["kind"] == "result":
                adaptive[entry["worker_id"]] = (
                    entry["requester"]["adaptive_chunk_bytes"]
                )
        merged.extra["exec"] = {
            **self._exec_extra(workers, wall, fleet,
                               peer_timeouts=peer_timeouts,
                               events=death_events),
            "worker_busy_seconds": busy,
            "worker_wait_seconds": wait,
            "messages": messages,
            "bytes_shipped": shipped,
            "queue_depth": {
                "count": depth[0], "total": depth[1],
                "min": depth[2], "max": depth[3],
            },
            "ring_bytes": self.ring_bytes,
            "ring_fallbacks": fallbacks,
            "ring_backpressure_seconds": ring_wait,
            "ring_occupancy": {
                "count": occupancy[0], "total": occupancy[1],
                "min": occupancy[2], "max": occupancy[3],
            },
            "coalesced_requests": sum(
                r["coalesced_requests"] for r in requesters
            ),
            "coalesced_batch_vertices": {
                "count": coalesced_batch[0], "total": coalesced_batch[1],
                "min": coalesced_batch[2], "max": coalesced_batch[3],
            },
            "local_fast_requests": local_requests,
            "adaptive_chunk_bytes": adaptive,
        }
        if redistribution is not None:
            merged.extra["exec"]["redistribution"] = redistribution

        obs = engine.obs
        if obs.enabled:
            for entry in ordered:  # worker-id order keeps spans stable
                dump = entry["obs"]
                if dump is not None:
                    obs.registry.absorb(dump["metrics"])
                    obs.tracer.absorb(dump["spans"], dump["dropped"])
            self._emit_exec_metrics(obs, workers, wall, busy, wait,
                                    messages, shipped, depth, fleet,
                                    peer_timeouts, requesters,
                                    occupancy, coalesced_batch,
                                    fallbacks, local_requests, adaptive,
                                    redistribution)
            summary = obs.summary()
            summary["network"] = {
                "per_machine_sent_bytes": [
                    int(traffic[machine].sum())
                    for machine in range(machines)
                ],
                "per_machine_utilization": [
                    (float(traffic[machine].sum())
                     / (cost.network_bandwidth * runtime))
                    if runtime > 0.0 else 0.0
                    for machine in range(machines)
                ],
                "num_batches": num_batches,
            }
            merged.extra["obs"] = summary
        return counts, merged

    @staticmethod
    def _merge_depth(summaries) -> tuple[int, float, float, float]:
        count = sum(s[0] for s in summaries)
        if not count:
            return (0, 0.0, 0.0, 0.0)
        present = [s for s in summaries if s[0]]
        return (
            count,
            sum(s[1] for s in present),
            min(s[2] for s in present),
            max(s[3] for s in present),
        )

    def _emit_exec_metrics(self, obs, workers, wall, busy, wait,
                           messages, shipped, depth, fleet,
                           peer_timeouts, requesters, occupancy,
                           coalesced_batch, fallbacks, local_requests,
                           adaptive, redistribution=None) -> None:
        scope = obs.registry.scope()
        scope.gauge(names.EXEC_WORKERS).set(workers)
        scope.gauge(names.EXEC_WALL_SECONDS).set(wall)
        for worker_id, (busy_s, wait_s) in enumerate(zip(busy, wait)):
            scope.counter(
                names.EXEC_WORKER_BUSY_SECONDS, worker=worker_id
            ).inc(busy_s)
            scope.counter(
                names.EXEC_WORKER_WAIT_SECONDS, worker=worker_id
            ).inc(wait_s)
        scope.counter(names.EXEC_MESSAGES).inc(messages)
        scope.counter(names.EXEC_BYTES_SHIPPED).inc(shipped)
        if depth[0]:
            scope.histogram(names.EXEC_QUEUE_DEPTH).merge_summary(*depth)
        scope.gauge(names.EXEC_RING_CAPACITY).set(self.ring_bytes)
        if occupancy[0]:
            scope.histogram(
                names.EXEC_RING_OCCUPANCY
            ).merge_summary(*occupancy)
        scope.counter(names.EXEC_RING_FALLBACKS).inc(fallbacks)
        scope.counter(names.EXEC_LOCAL_FAST_REQUESTS).inc(local_requests)
        scope.counter(names.NET_COALESCED_REQUESTS).inc(
            sum(r["coalesced_requests"] for r in requesters)
        )
        if coalesced_batch[0]:
            scope.histogram(
                names.NET_COALESCED_BATCH_VERTICES
            ).merge_summary(*coalesced_batch)
        for worker_id, chunk_bytes in enumerate(adaptive):
            scope.gauge(
                names.EXEC_ADAPTIVE_CHUNK_BYTES, worker=worker_id
            ).set(chunk_bytes)
        if redistribution is not None:
            scope.counter(names.RECOVERY_REDISTRIBUTED_MACHINES).inc(
                redistribution["machines"]
            )
        self._emit_liveness_metrics(scope, fleet, peer_timeouts)
