"""Shared-memory SPSC reply rings for the process backend.

PR 3 moved the *graph* into shared memory but left fetch **replies** on
``multiprocessing`` queues: every reply was pickled in the server's
feeder thread, squeezed through a pipe, and unpickled by the requester
— per-message overhead that BENCH_PR5.json showed eating all of the
backend's parallelism. This module extends the ``graph/csr.py``
mechanism to the reply path: one fixed-capacity byte ring per ordered
worker pair, backed by a single ``multiprocessing.shared_memory``
segment, carrying raw numpy frames with no pickling and exactly one
copy in and one copy out.

Memory layout of a ring segment (``capacity`` data bytes)::

    offset 0    int64 head   — total bytes ever published (producer-owned)
    offset 64   int64 tail   — total bytes ever consumed (consumer-owned)
    offset 128  data[capacity]

``head`` and ``tail`` are monotonically increasing counters; the byte
at logical position ``p`` lives at ``data[p % capacity]``, so frames
wrap around the segment edge transparently. Head and tail sit on
separate cache lines, and each is written by exactly one side — the
producer publishes a frame by bumping ``head`` *after* the frame bytes
are fully copied in, the consumer frees space by bumping ``tail`` after
copying bytes out. Aligned 8-byte stores are atomic on every platform
CPython supports, so the pair needs no lock: this is the classic
single-producer/single-consumer ring, which the transport's topology
guarantees (one responder thread writes each ring, one scheduler main
thread reads it).

Capacity/backpressure rules:

* a write smaller than the free space copies in and publishes
  immediately;
* a write larger than the free space but not larger than the capacity
  **backpressures**: the producer waits in short bounded sleeps for the
  consumer to drain, re-checking the abort callback (fleet stop /
  requester death) at every expiry, so a dead consumer can never wedge
  a responder;
* a write larger than the capacity itself can never fit — callers must
  route such payloads through their slow-path fallback (the transport
  sends the oversized reply pickled over a queue and publishes only a
  small marker frame here, keeping ring order intact).

Reads mirror writes: ``read_exact`` blocks in bounded waits until the
requested bytes are published, re-checking the same abort callback, so
a dead producer surfaces as an abort instead of a hang — the same
stop/death-notice discipline as every other transport wait
(docs/execution.md, "Real-process failure semantics").
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.graph.csr import attach_segment, create_segment

#: bytes reserved for the head/tail counters ahead of the data region
_HEADER_BYTES = 128
#: first bounded sleep when a ring wait cannot progress; doubles up to
#: the liveness cap so a ready ring costs at most one tiny sleep
_INITIAL_WAIT_SECONDS = 0.00005
#: cap on any single ring-wait sleep between abort re-checks
_MAX_WAIT_SECONDS = 0.002
#: spins (pure re-reads, no sleep) before the first sleep — covers the
#: common case where the peer publishes within microseconds
_SPIN_ROUNDS = 100


@dataclass(frozen=True)
class RingHandle:
    """Picklable description of a ring created with :func:`create_ring`."""

    name: str
    capacity: int


class RingAborted(Exception):
    """A bounded ring wait was abandoned by its abort callback (fleet
    stop or peer death); the caller converts this into its own
    structured error (the transport raises ``PeerDeadError``)."""


class ReplyRing:
    """One attached (or owned) shared-memory SPSC byte ring.

    Exactly one process/thread may call the producer methods
    (:meth:`write`) and exactly one may call the consumer methods
    (:meth:`read_exact`, :meth:`readable`); the transport's pair
    topology enforces this.
    """

    def __init__(self, handle: RingHandle, segment, owner: bool):
        self.handle = handle
        self.capacity = handle.capacity
        self._segment = segment
        self._owner = owner
        self._closed = False
        buf = segment.buf
        self._head = np.ndarray((1,), dtype=np.int64, buffer=buf, offset=0)
        self._tail = np.ndarray((1,), dtype=np.int64, buffer=buf, offset=64)
        self._data = np.ndarray((handle.capacity,), dtype=np.uint8,
                                buffer=buf, offset=_HEADER_BYTES)
        # wall-clock accounting (read by the owning side's stats)
        self.wait_seconds = 0.0
        self.waits = 0
        #: ring occupancy in bytes sampled after each published frame
        #: (count, total, min, max) — feeds exec.ring.occupancy_bytes
        self._occ_count = 0
        self._occ_total = 0
        self._occ_min = float("inf")
        self._occ_max = float("-inf")

    # ------------------------------------------------------------------
    # shared plumbing
    # ------------------------------------------------------------------
    def _wait(self, ready: Callable[[], bool],
              abort: Optional[Callable[[], bool]]) -> None:
        """Spin briefly, then sleep in bounded steps until ``ready``.

        ``abort`` is re-checked at every expiry; returning ``True``
        raises :class:`RingAborted` — the ring-wait incarnation of the
        transport's death-notice re-check discipline.
        """
        for _ in range(_SPIN_ROUNDS):
            if ready():
                return
        started = time.perf_counter()
        self.waits += 1
        wait = _INITIAL_WAIT_SECONDS
        while True:
            if abort is not None and abort():
                self.wait_seconds += time.perf_counter() - started
                raise RingAborted()
            time.sleep(wait)
            if ready():
                self.wait_seconds += time.perf_counter() - started
                return
            wait = min(wait * 2.0, _MAX_WAIT_SECONDS)

    def _copy_in(self, position: int, chunk: np.ndarray) -> None:
        """Copy ``chunk`` (flat uint8) at logical ``position``, wrapping."""
        capacity = self.capacity
        offset = position % capacity
        first = min(len(chunk), capacity - offset)
        self._data[offset:offset + first] = chunk[:first]
        if first < len(chunk):
            self._data[: len(chunk) - first] = chunk[first:]

    def _copy_out(self, position: int, nbytes: int) -> np.ndarray:
        capacity = self.capacity
        offset = position % capacity
        out = np.empty(nbytes, dtype=np.uint8)
        first = min(nbytes, capacity - offset)
        out[:first] = self._data[offset:offset + first]
        if first < nbytes:
            out[first:] = self._data[: nbytes - first]
        return out

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def free_bytes(self) -> int:
        return self.capacity - int(self._head[0] - self._tail[0])

    def write(self, chunks: Sequence[np.ndarray],
              abort: Optional[Callable[[], bool]] = None) -> None:
        """Publish one frame (the concatenation of ``chunks``) atomically.

        Blocks with bounded, abort-aware waits while the ring lacks
        space (backpressure). The head pointer moves once, after every
        byte is in place, so the consumer never observes a partial
        frame — and an aborted write leaves the ring untouched.
        Raises ``ValueError`` if the frame exceeds the ring capacity
        (the caller's oversized-payload fallback must handle it).
        """
        flat = [np.ascontiguousarray(c).view(np.uint8).reshape(-1)
                for c in chunks]
        total = sum(len(c) for c in flat)
        if total > self.capacity:
            raise ValueError(
                f"frame of {total} bytes exceeds ring capacity "
                f"{self.capacity}"
            )
        self._wait(lambda: self.free_bytes() >= total, abort)
        position = int(self._head[0])
        for chunk in flat:
            self._copy_in(position, chunk)
            position += len(chunk)
        self._head[0] = position  # publish: single aligned store
        occupancy = int(self._head[0] - self._tail[0])
        self._occ_count += 1
        self._occ_total += occupancy
        if occupancy < self._occ_min:
            self._occ_min = occupancy
        if occupancy > self._occ_max:
            self._occ_max = occupancy

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def readable(self) -> int:
        return int(self._head[0] - self._tail[0])

    def read_exact(self, nbytes: int,
                   abort: Optional[Callable[[], bool]] = None) -> np.ndarray:
        """Block (bounded, abort-aware) for ``nbytes`` and consume them."""
        self._wait(lambda: self.readable() >= nbytes, abort)
        out = self._copy_out(int(self._tail[0]), nbytes)
        self._tail[0] = self._tail[0] + nbytes  # free: single store
        return out

    # ------------------------------------------------------------------
    # stats & lifecycle
    # ------------------------------------------------------------------
    def occupancy_summary(self) -> tuple[int, float, float, float]:
        """(count, total, min, max) of sampled post-write occupancies."""
        if not self._occ_count:
            return (0, 0.0, 0.0, 0.0)
        return (self._occ_count, float(self._occ_total),
                float(self._occ_min), float(self._occ_max))

    def close(self) -> None:
        """Drop this process's mapping (safe to call twice)."""
        if self._closed:
            return
        self._closed = True
        # the views alias the mapped buffer; drop them before closing
        self._head = self._tail = self._data = None
        try:
            self._segment.close()
        except (OSError, BufferError):  # pragma: no cover - best effort
            pass

    def unlink(self) -> None:
        """Destroy the segment (creator side only; implies close)."""
        segment = self._segment
        self.close()
        if not self._owner:
            return
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def create_ring(capacity: int) -> ReplyRing:
    """Create an owned ring with ``capacity`` data bytes (parent side)."""
    if capacity < 1024:
        raise ValueError("ring capacity must be at least 1KiB")
    segment = create_segment(_HEADER_BYTES + capacity)
    handle = RingHandle(segment.name, capacity)
    ring = ReplyRing(handle, segment, owner=True)
    ring._head[0] = 0
    ring._tail[0] = 0
    return ring


def attach_ring(handle: RingHandle) -> ReplyRing:
    """Attach a ring created elsewhere (worker side; never unlinks)."""
    return ReplyRing(handle, attach_segment(handle.name), owner=False)
