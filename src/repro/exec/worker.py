"""Worker-process entry point of the process backend.

Each worker attaches the shared-memory graph, rebuilds its own
deterministic view of the cluster (hash partitioning is pure, so every
worker computes identical partitions), and runs the *unmodified*
inline execution path — restricted to the machines it hosts (machine
``m`` lives on worker ``m % num_workers``) and with the queue
transport plugged into the scheduler's circulant loop. Reusing the
engine's hosted entry point wholesale is the determinism argument in
code form: there is no second scheduler implementation that could
drift from the simulated one.

Result protocol on the shared result queue (tag, worker_id, payload):

- ``(RESULT, w, {...})`` — counts, partial report, udf copy,
  observability dump, requester-side transport stats. Posted when the
  worker's compute loop finishes.
- ``(STATS, w, {...})`` — responder-side transport stats. Posted
  after the shutdown sentinel, because the responder keeps serving
  other workers until every worker is done.
- ``(PEER_DEAD, w, {...})`` — a bounded transport wait found its
  serving peer dead (the parent's death notice was set); this worker's
  compute is lost and the parent applies its ``on_worker_death``
  policy. The process itself stays alive and enters the control loop,
  so the recover policy can hand it replay work.
- ``(CKPT, w, (pattern, machine, roots, matches))`` — one per
  completed root chunk, carrying the absolute cursor. The parent's
  progress ledger is built from these (durable log and/or
  redistribution resume maps), so they are shipped unconditionally.
- ``(RECOVERY, w, {...})`` — a redistributed replay of a dead peer's
  machines finished; RESULT-shaped payload restricted to them.
- ``(ERROR, w, traceback_text)`` — any unexpected failure. Expected
  engine outcomes (OOM / simulated timeout) are *not* errors: the
  inline path already converts them into a structured
  ``FailureSummary`` on the partial report.

After its RESULT a worker enters a control loop (when the fabric has
control queues): the parent may hand it ``RecoverAssignment`` work —
replay a dead peer's machines against the shared graph with the
transport disabled (every worker maps the full graph, so no fetches
are needed) — until the DONE sentinel releases it to drain the
responder and post STATS.

Every exit path closes the shared-memory mapping and stops the
responder thread; the parent is the only side that ever unlinks the
segments.
"""

from __future__ import annotations

import os
import pickle
import signal
import traceback
from queue import Empty
from time import perf_counter

from repro.cluster.cluster import Cluster
from repro.core.engine import KhuzdulEngine
from repro.errors import PeerDeadError
from repro.exec.messages import (
    CKPT,
    DONE,
    ERROR,
    PEER_DEAD,
    RECOVERY,
    RESULT,
    STATS,
    RecoverAssignment,
)
from repro.exec.transport import (
    LIVENESS_INTERVAL_SECONDS,
    WorkerTransport,
    zero_requester_stats,
)
from repro.graph.csr import attach_csr
from repro.obs import Observability

#: chaos-injection contract (benchmarks/chaos.py): a worker whose id
#: matches ``REPRO_CHAOS=worker-kill:<wid>:<n>`` SIGKILLs itself after
#: shipping its n-th checkpoint delta — a real mid-compute crash at a
#: deterministic chunk boundary
CHAOS_ENV = "REPRO_CHAOS"


def _chaos_kill_threshold(worker_id: int) -> int:
    spec = os.environ.get(CHAOS_ENV, "")
    if spec.startswith("worker-kill:"):
        try:
            _, wid, count = spec.split(":")
            if int(wid) == worker_id:
                return max(1, int(count))
        except ValueError:
            pass
    return 0


class _DeltaSink:
    """Ships completed-chunk cursors to the parent as CKPT messages."""

    def __init__(self, worker_id: int, result_queue) -> None:
        self.worker_id = worker_id
        self.result_queue = result_queue
        self.shipped = 0
        self.kill_after = _chaos_kill_threshold(worker_id)

    def __call__(self, pattern: int, machine: int, roots: int,
                 matches: int) -> None:
        self.result_queue.put(
            (CKPT, self.worker_id, (pattern, machine, roots, matches)))
        self.shipped += 1
        if self.kill_after and self.shipped >= self.kill_after:
            os.kill(os.getpid(), signal.SIGKILL)


def _obs_dump(obs) -> dict | None:
    if obs is None:
        return None
    return {
        "metrics": obs.registry.dump(),
        "spans": obs.tracer.spans,
        "dropped": obs.tracer.dropped,
    }


def worker_main(
    worker_id: int,
    num_workers: int,
    handle,
    cluster_config,
    engine_config,
    schedules,
    udf,
    job: tuple[str, str, str],
    obs_enabled: bool,
    endpoints,
    result_queue,
    resume=None,
) -> None:
    system, app, graph_name = job
    transport = None
    try:
        shared = attach_csr(handle)
    except BaseException:
        result_queue.put((ERROR, worker_id, traceback.format_exc()))
        return
    try:
        # the replay path needs a UDF untouched by this worker's own
        # phase-1 merge-ins; snapshot it before compute mutates it
        pristine_udf = pickle.dumps(udf) if udf is not None else None
        cluster = Cluster(shared.graph, cluster_config)
        obs = Observability() if obs_enabled else None
        engine = KhuzdulEngine(cluster, engine_config, obs=obs)
        transport = WorkerTransport(worker_id, endpoints, shared.graph)
        transport.start()
        hosted = {
            machine for machine in range(cluster.num_machines)
            if machine % num_workers == worker_id
        }
        sink = _DeltaSink(worker_id, result_queue)
        started = perf_counter()
        try:
            counts, report = engine.execute_hosted(
                schedules, udf, system, app, graph_name,
                hosted=hosted, transport=transport,
                checkpoint_sink=sink,
                resume={
                    key: value for key, value in resume.items()
                    if key[1] in hosted
                } if resume else None,
            )
        except PeerDeadError as exc:
            # this worker's own compute is lost, but the *process* is
            # healthy: report the abort and stay available — under the
            # recover policy the parent may hand this worker replay
            # work (possibly its own machines, resumed from the deltas
            # it already shipped) through the control loop below
            result_queue.put((PEER_DEAD, worker_id, {
                "peer": exc.peer_worker,
                "message": str(exc),
                "liveness_timeouts": transport.liveness_timeouts,
            }))
        else:
            elapsed = perf_counter() - started
            payload = {
                "counts": counts,
                "report": report,
                "udf": udf,
                "busy_seconds": max(
                    0.0, elapsed - transport.wait_seconds),
                "requester": transport.requester_stats(),
                "obs": _obs_dump(obs),
            }
            result_queue.put((RESULT, worker_id, payload))
        if endpoints.controls is not None:
            _control_loop(
                worker_id, endpoints, result_queue, shared,
                cluster_config, engine_config, schedules, pristine_udf,
                job, obs_enabled, sink,
            )
        # keep serving other workers until the parent says everyone is
        # done; only then are the responder-side stats complete
        transport.join()
        result_queue.put((STATS, worker_id, transport.responder_stats()))
    except BaseException:
        result_queue.put((ERROR, worker_id, traceback.format_exc()))
    finally:
        if transport is not None:
            transport.stop()
            # ring mappings may only be dropped once the responder
            # thread stops writing them; its serve loop re-checks the
            # stop request every bounded poll, so this join is bounded
            if transport.join(timeout=5.0):
                transport.close()
        shared.close()


def _control_loop(
    worker_id: int,
    endpoints,
    result_queue,
    shared,
    cluster_config,
    engine_config,
    schedules,
    pristine_udf,
    job: tuple[str, str, str],
    obs_enabled: bool,
    sink: _DeltaSink,
) -> None:
    """Serve redistributed-recovery assignments until DONE.

    Waits are bounded so a parent that dies without sending DONE
    cannot wedge the worker: every timeout re-checks the fleet-wide
    stop event.
    """
    system, app, graph_name = job
    control = endpoints.controls[worker_id]
    while True:
        try:
            message = control.get(timeout=LIVENESS_INTERVAL_SECONDS)
        except Empty:
            if endpoints.stopping():
                return
            continue
        if message == DONE:
            return
        if not isinstance(message, RecoverAssignment):
            raise RuntimeError(
                f"worker {worker_id}: unexpected control message "
                f"{message!r}")
        # a fresh engine per assignment: the phase-1 engine's scheduler
        # state is spent, and the replay must start from the pristine
        # UDF so merged state is counted exactly once
        replay_udf = (
            pickle.loads(pristine_udf) if pristine_udf is not None else None
        )
        cluster = Cluster(shared.graph, cluster_config)
        obs = Observability() if obs_enabled else None
        engine = KhuzdulEngine(cluster, engine_config, obs=obs)
        started = perf_counter()
        counts, report = engine.execute_hosted(
            schedules, replay_udf, system, app, graph_name,
            hosted=set(message.machines), transport=None,
            checkpoint_sink=sink,
            resume=dict(message.resume) if message.resume else None,
        )
        payload = {
            "counts": counts,
            "report": report,
            "udf": replay_udf,
            "busy_seconds": perf_counter() - started,
            "requester": zero_requester_stats(),
            "obs": _obs_dump(obs),
            "machines": list(message.machines),
        }
        result_queue.put((RECOVERY, worker_id, payload))
