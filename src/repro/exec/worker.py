"""Worker-process entry point of the process backend.

Each worker attaches the shared-memory graph, rebuilds its own
deterministic view of the cluster (hash partitioning is pure, so every
worker computes identical partitions), and runs the *unmodified*
inline execution path — restricted to the machines it hosts (machine
``m`` lives on worker ``m % num_workers``) and with the queue
transport plugged into the scheduler's circulant loop. Reusing the
engine's hosted entry point wholesale is the determinism argument in
code form: there is no second scheduler implementation that could
drift from the simulated one.

Result protocol on the shared result queue (tag, worker_id, payload):

- ``(RESULT, w, {...})`` — counts, partial report, udf copy,
  observability dump, requester-side transport stats. Posted when the
  worker's compute loop finishes.
- ``(STATS, w, {...})`` — responder-side transport stats. Posted
  after the shutdown sentinel, because the responder keeps serving
  other workers until every worker is done.
- ``(PEER_DEAD, w, {...})`` — a bounded transport wait found its
  serving peer dead (the parent's death notice was set); this worker's
  compute is lost and the parent applies its ``on_worker_death``
  policy.
- ``(ERROR, w, traceback_text)`` — any unexpected failure. Expected
  engine outcomes (OOM / simulated timeout) are *not* errors: the
  inline path already converts them into a structured
  ``FailureSummary`` on the partial report.

Every exit path closes the shared-memory mapping and stops the
responder thread; the parent is the only side that ever unlinks the
segments.
"""

from __future__ import annotations

import traceback
from time import perf_counter

from repro.cluster.cluster import Cluster
from repro.core.engine import KhuzdulEngine
from repro.errors import PeerDeadError
from repro.exec.messages import ERROR, PEER_DEAD, RESULT, STATS
from repro.exec.transport import WorkerTransport
from repro.graph.csr import attach_csr
from repro.obs import Observability


def worker_main(
    worker_id: int,
    num_workers: int,
    handle,
    cluster_config,
    engine_config,
    schedules,
    udf,
    job: tuple[str, str, str],
    obs_enabled: bool,
    endpoints,
    result_queue,
) -> None:
    system, app, graph_name = job
    transport = None
    try:
        shared = attach_csr(handle)
    except BaseException:
        result_queue.put((ERROR, worker_id, traceback.format_exc()))
        return
    try:
        cluster = Cluster(shared.graph, cluster_config)
        obs = Observability() if obs_enabled else None
        engine = KhuzdulEngine(cluster, engine_config, obs=obs)
        transport = WorkerTransport(worker_id, endpoints, shared.graph)
        transport.start()
        hosted = {
            machine for machine in range(cluster.num_machines)
            if machine % num_workers == worker_id
        }
        started = perf_counter()
        counts, report = engine.execute_hosted(
            schedules, udf, system, app, graph_name,
            hosted=hosted, transport=transport,
        )
        elapsed = perf_counter() - started
        payload = {
            "counts": counts,
            "report": report,
            "udf": udf,
            "busy_seconds": max(0.0, elapsed - transport.wait_seconds),
            "requester": transport.requester_stats(),
            "obs": None,
        }
        if obs is not None:
            payload["obs"] = {
                "metrics": obs.registry.dump(),
                "spans": obs.tracer.spans,
                "dropped": obs.tracer.dropped,
            }
        result_queue.put((RESULT, worker_id, payload))
        # keep serving other workers until the parent says everyone is
        # done; only then are the responder-side stats complete
        transport.join()
        result_queue.put((STATS, worker_id, transport.responder_stats()))
    except PeerDeadError as exc:
        result_queue.put((PEER_DEAD, worker_id, {
            "peer": exc.peer_worker,
            "message": str(exc),
            "liveness_timeouts": (
                transport.liveness_timeouts if transport is not None else 0
            ),
        }))
    except BaseException:
        result_queue.put((ERROR, worker_id, traceback.format_exc()))
    finally:
        if transport is not None:
            transport.stop()
            # ring mappings may only be dropped once the responder
            # thread stops writing them; its serve loop re-checks the
            # stop request every bounded poll, so this join is bounded
            if transport.join(timeout=5.0):
                transport.close()
        shared.close()
