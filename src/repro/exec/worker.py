"""Worker-process entry point of the process backend.

Each worker attaches the shared-memory graph, rebuilds its own
deterministic view of the cluster (hash partitioning is pure, so every
worker computes identical partitions), and runs the *unmodified*
inline execution path — restricted to the machines it hosts (machine
``m`` lives on worker ``m % num_workers``) and with the queue
transport plugged into the scheduler's circulant loop. Reusing
``KhuzdulEngine._execute_inline`` wholesale is the determinism
argument in code form: there is no second scheduler implementation
that could drift from the simulated one.

Result protocol on the shared result queue (tag, worker_id, payload):

- ``("result", w, {...})`` — counts, partial report, udf copy,
  observability dump, requester-side transport stats. Posted when the
  worker's compute loop finishes.
- ``("stats", w, {...})`` — responder-side transport stats. Posted
  after the shutdown sentinel, because the responder keeps serving
  other workers until every worker is done.
- ``("error", w, traceback_text)`` — any unexpected failure. Expected
  engine outcomes (OOM / simulated timeout) are *not* errors: the
  inline path already converts them into a structured
  ``FailureSummary`` on the partial report.
"""

from __future__ import annotations

import traceback
from time import perf_counter

from repro.cluster.cluster import Cluster
from repro.core.engine import KhuzdulEngine
from repro.exec.transport import WorkerTransport
from repro.graph.csr import attach_csr
from repro.obs import Observability


def worker_main(
    worker_id: int,
    num_workers: int,
    handle,
    cluster_config,
    engine_config,
    schedules,
    udf,
    job: tuple[str, str, str],
    obs_enabled: bool,
    endpoints,
    result_queue,
) -> None:
    system, app, graph_name = job
    transport = None
    try:
        shared = attach_csr(handle)
    except BaseException:
        result_queue.put(("error", worker_id, traceback.format_exc()))
        return
    try:
        cluster = Cluster(shared.graph, cluster_config)
        obs = Observability() if obs_enabled else None
        engine = KhuzdulEngine(cluster, engine_config, obs=obs)
        transport = WorkerTransport(worker_id, endpoints, shared.graph)
        transport.start()
        hosted = {
            machine for machine in range(cluster.num_machines)
            if machine % num_workers == worker_id
        }
        started = perf_counter()
        counts, report = engine._execute_inline(
            schedules, udf, system, app, graph_name,
            hosted=hosted, transport=transport,
        )
        elapsed = perf_counter() - started
        payload = {
            "counts": counts,
            "report": report,
            "udf": udf,
            "busy_seconds": max(0.0, elapsed - transport.wait_seconds),
            "requester": transport.requester_stats(),
            "obs": None,
        }
        if obs is not None:
            payload["obs"] = {
                "metrics": obs.registry.dump(),
                "spans": obs.tracer.spans,
                "dropped": obs.tracer.dropped,
            }
        result_queue.put(("result", worker_id, payload))
        # keep serving other workers until the parent says everyone is
        # done; only then are the responder-side stats complete
        transport.join()
        result_queue.put(("stats", worker_id, transport.responder_stats()))
    except BaseException:
        result_queue.put(("error", worker_id, traceback.format_exc()))
    finally:
        shared.close()
