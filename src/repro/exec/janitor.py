"""Shared-memory janitor: cleanup that survives interrupted owners.

Both owners of POSIX shared-memory segments in this repository — the
process backend's per-run graph/ring segments and the mining service's
resident graph segment (docs/service.md) — must not leak them past an
interrupted process: a SIGINT/SIGTERM mid-run, or a plain interpreter
exit, has to unlink whatever is still mapped. This module is the one
implementation of that contract (extracted from the process backend so
the service can reuse it verbatim):

- ``install_janitor(cleanup)`` registers ``cleanup`` with ``atexit``
  and chains it in front of the current SIGINT/SIGTERM handlers; the
  chained handler runs the cleanup, restores whoever was installed
  before, and re-raises the signal so default semantics
  (KeyboardInterrupt, termination exit status) are preserved.
- ``remove_janitor(cleanup, previous)`` undoes both on the normal exit
  path.

``cleanup`` must be idempotent: the signal path, the ``atexit`` hook,
and the owner's own ``finally`` block may race, and each tolerates the
segments already being gone. A SIGKILL defeats any in-process hook by
definition — that case is covered by the on-disk ``shm.json`` ledger
(:mod:`repro.faults.durability`), which lets the *next* run reap what
this one leaked.
"""

from __future__ import annotations

import atexit
import os
import signal


def install_janitor(cleanup) -> dict:
    """Arm ``cleanup`` for atexit and SIGINT/SIGTERM; returns the
    previous signal handlers for :func:`remove_janitor`."""
    atexit.register(cleanup)
    previous: dict = {}
    try:
        for signum in (signal.SIGINT, signal.SIGTERM):
            def handler(received, frame, signum=signum):
                cleanup()
                # restore whoever was installed before us, then
                # re-raise so default semantics (KeyboardInterrupt,
                # termination exit status) are preserved
                prior = previous.get(received)
                signal.signal(
                    received,
                    prior if prior is not None else signal.SIG_DFL,
                )
                os.kill(os.getpid(), received)
            previous[signum] = signal.signal(signum, handler)
    except ValueError:  # pragma: no cover - not the main thread
        pass
    return previous


def remove_janitor(cleanup, previous) -> None:
    """Disarm a janitor installed by :func:`install_janitor`."""
    atexit.unregister(cleanup)
    for signum, handler in previous.items():
        try:
            signal.signal(
                signum, handler if handler is not None else signal.SIG_DFL
            )
        except (ValueError, TypeError):  # pragma: no cover
            pass
