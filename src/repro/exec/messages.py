"""Wire types of the process backend's fetch protocol.

Requests are **coalesced**: the requester groups one chunk's pending
circulant batches by *server worker* (not per embedding, not even per
server machine) and ships each group as one
:class:`CoalescedFetchRequest` carrying per-machine vertex segments —
one inbox message amortizes the queue/pickle overhead over every fetch
the chunk needs from that worker. The transport may split a very large
group into several consecutive requests so each reply frame fits its
shared-memory ring (see :mod:`repro.exec.transport`).

Replies do not travel as pickled messages at all: the responder writes
the concatenated edge lists as a raw frame into the (server worker,
requester worker) shared-memory ring (:mod:`repro.exec.ring`). Only
oversized payloads fall back to a pickled queue, announced in-band by
a marker frame so ring order is preserved.

Ordering contract (what makes one ring per worker pair enough): a
worker runs one scheduler at a time, so its requests to any given
server worker are posted in the order it will await them, the inbox is
FIFO, and the responder serves it single-threaded — reply frames
therefore land on the pair ring in exactly the awaited order. The
transport still validates every frame against the awaited (kind,
element count) pair and fails loudly on a protocol violation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Inbox sentinel: the parent posts one per worker once every worker's
#: results are in; the responder thread exits on receipt.
SHUTDOWN = "__exec_shutdown__"

# ---------------------------------------------------------------------
# result-queue message kinds: every message a worker posts to the
# parent is a (kind, worker_id, payload) triple with one of these tags
# ---------------------------------------------------------------------
#: compute finished — payload carries counts/report/udf/obs/stats
RESULT = "result"
#: responder drained after SHUTDOWN — payload carries responder stats
STATS = "stats"
#: unexpected failure — payload is the formatted traceback text
ERROR = "error"
#: a bounded transport wait found its serving peer dead — payload is
#: ``{"peer": worker_id, "message": str}``; the parent treats the
#: sender as lost (its compute aborted) and applies the
#: ``on_worker_death`` policy
PEER_DEAD = "peer_dead"
#: completed-root-chunk delta — payload is ``(pattern, machine, roots,
#: matches)`` with the *absolute* cursor. Workers ship one per root
#: chunk so the parent always knows the fleet's progress: with a
#: checkpoint directory it appends them to the durable log, and on a
#: worker death the redistribution pass uses them to skip the dead
#: worker's completed chunks (docs/execution.md)
CKPT = "ckpt"
#: a redistributed-recovery replay finished — payload has the same
#: shape as a RESULT payload, restricted to the replayed machines
RECOVERY = "recovery"

# ---------------------------------------------------------------------
# control-queue messages (parent -> worker, after the worker's RESULT)
# ---------------------------------------------------------------------
#: no (more) recovery work: leave the control loop, await SHUTDOWN
DONE = "__exec_done__"


@dataclass(frozen=True)
class RecoverAssignment:
    """Replay these machines on the receiving (surviving) worker.

    Sent on a survivor's control queue when a peer died under
    ``--on-worker-death recover``. ``resume`` maps
    ``(pattern, machine)`` to the dead worker's last shipped cursor
    ``(roots, matches)``, so the survivor skips chunks the dead worker
    already completed — the same resume mechanism durable checkpoints
    use (docs/faults.md).
    """

    machines: tuple[int, ...]
    resume: dict


@dataclass(frozen=True)
class Segment:
    """One server machine's share of a coalesced request."""

    server_machine: int
    #: vertex ids whose edge lists are requested, in batch order
    vertices: np.ndarray


@dataclass(frozen=True)
class CoalescedFetchRequest:
    """One chunk's edge-list demand on one server worker (possibly one
    split of it), addressed to that worker's inbox.

    The responder serves every segment with a single bulk adjacency
    gather and answers with exactly one reply frame on the
    ``(server worker, requester worker)`` ring: the segments'
    edge lists concatenated in segment order.
    """

    requester_worker: int
    #: per-machine vertex batches, in the requester's circulant order
    segments: tuple[Segment, ...]
