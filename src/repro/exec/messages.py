"""Wire types of the process backend's fetch protocol.

Requests are **coalesced**: the requester groups one chunk's pending
circulant batches by *server worker* (not per embedding, not even per
server machine) and ships each group as one
:class:`CoalescedFetchRequest` carrying per-machine vertex segments —
one inbox message amortizes the queue/pickle overhead over every fetch
the chunk needs from that worker. The transport may split a very large
group into several consecutive requests so each reply frame fits its
shared-memory ring (see :mod:`repro.exec.transport`).

Replies do not travel as pickled messages at all: the responder writes
the concatenated edge lists as a raw frame into the (server worker,
requester worker) shared-memory ring (:mod:`repro.exec.ring`). Only
oversized payloads fall back to a pickled queue, announced in-band by
a marker frame so ring order is preserved.

Ordering contract (what makes one ring per worker pair enough): a
worker runs one scheduler at a time, so its requests to any given
server worker are posted in the order it will await them, the inbox is
FIFO, and the responder serves it single-threaded — reply frames
therefore land on the pair ring in exactly the awaited order. The
transport still validates every frame against the awaited (kind,
element count) pair and fails loudly on a protocol violation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Inbox sentinel: the parent posts one per worker once every worker's
#: results are in; the responder thread exits on receipt.
SHUTDOWN = "__exec_shutdown__"

# ---------------------------------------------------------------------
# result-queue message kinds: every message a worker posts to the
# parent is a (kind, worker_id, payload) triple with one of these tags
# ---------------------------------------------------------------------
#: compute finished — payload carries counts/report/udf/obs/stats
RESULT = "result"
#: responder drained after SHUTDOWN — payload carries responder stats
STATS = "stats"
#: unexpected failure — payload is the formatted traceback text
ERROR = "error"
#: a bounded transport wait found its serving peer dead — payload is
#: ``{"peer": worker_id, "message": str}``; the parent treats the
#: sender as lost (its compute aborted) and applies the
#: ``on_worker_death`` policy
PEER_DEAD = "peer_dead"


@dataclass(frozen=True)
class Segment:
    """One server machine's share of a coalesced request."""

    server_machine: int
    #: vertex ids whose edge lists are requested, in batch order
    vertices: np.ndarray


@dataclass(frozen=True)
class CoalescedFetchRequest:
    """One chunk's edge-list demand on one server worker (possibly one
    split of it), addressed to that worker's inbox.

    The responder serves every segment with a single bulk adjacency
    gather and answers with exactly one reply frame on the
    ``(server worker, requester worker)`` ring: the segments'
    edge lists concatenated in segment order.
    """

    requester_worker: int
    #: per-machine vertex batches, in the requester's circulant order
    segments: tuple[Segment, ...]
