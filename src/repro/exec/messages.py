"""Wire types of the process backend's fetch protocol.

One message class per direction: a :class:`FetchRequest` travels to
the inbox of the worker hosting the serving machine, and the matching
:class:`FetchReply` comes back on the (server worker, requester
worker) reply queue carrying the *actual* edge lists, concatenated.
Both are plain picklable dataclasses; payloads are numpy arrays so
``multiprocessing``'s pickling moves them in one buffer.

Ordering contract (what makes one reply queue per worker pair enough):
a worker runs one scheduler at a time, so its requests to any given
server worker are posted in the order it will await them, the inbox is
FIFO, and the responder serves it single-threaded — replies therefore
arrive on the pair queue in exactly the awaited order. The transport
still validates every reply against the awaited (server, requester,
lengths) triple and fails loudly on a protocol violation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Inbox sentinel: the parent posts one per worker once every worker's
#: results are in; the responder thread exits on receipt.
SHUTDOWN = "__exec_shutdown__"

# ---------------------------------------------------------------------
# result-queue message kinds: every message a worker posts to the
# parent is a (kind, worker_id, payload) triple with one of these tags
# ---------------------------------------------------------------------
#: compute finished — payload carries counts/report/udf/obs/stats
RESULT = "result"
#: responder drained after SHUTDOWN — payload carries responder stats
STATS = "stats"
#: unexpected failure — payload is the formatted traceback text
ERROR = "error"
#: a bounded transport wait found its serving peer dead — payload is
#: ``{"peer": worker_id, "message": str}``; the parent treats the
#: sender as lost (its compute aborted) and applies the
#: ``on_worker_death`` policy
PEER_DEAD = "peer_dead"


@dataclass(frozen=True)
class FetchRequest:
    """One circulant batch's edge-list demand, addressed to the worker
    hosting ``server_machine``."""

    requester_machine: int
    requester_worker: int
    server_machine: int
    #: vertex ids whose edge lists are requested, in batch order
    vertices: np.ndarray


@dataclass(frozen=True)
class FetchReply:
    """The served batch: all requested edge lists, concatenated."""

    server_machine: int
    requester_machine: int
    #: requested adjacency lists back to back (graph index dtype)
    payload: np.ndarray
    #: per-vertex degrees, aligned with the request's ``vertices``
    lengths: np.ndarray
