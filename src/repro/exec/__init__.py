"""repro.exec — pluggable execution backends for the engine.

The engine's simulated semantics stay identical across backends; a
backend only chooses *where* the per-machine schedulers run:

- ``inline`` (default): the historical single-process simulated path.
- ``process``: one OS process per group of simulated machines, the
  graph shared zero-copy through ``multiprocessing.shared_memory``,
  inter-machine fetches travelling as real batched messages in
  circulant order.

See docs/execution.md for the interface, wire protocol, and the
determinism contract (bit-identical counts across backends).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.exec.backend import Backend, InlineBackend
from repro.exec.process import ProcessBackend

#: backend names accepted by ``make_backend`` and the CLI ``--backend``
BACKENDS = ("inline", "process")


def make_backend(
    name: str,
    workers: Optional[int] = None,
    heartbeat: Optional[float] = None,
    on_worker_death: Optional[str] = None,
    ring_bytes: Optional[int] = None,
):
    """Build the backend for a CLI/config name.

    Returns ``None`` for ``inline`` — attaching no backend at all *is*
    the inline path, and keeping it literally the same code object as
    before is the cheapest possible determinism argument.

    ``heartbeat`` and ``on_worker_death`` tune the process backend's
    liveness detection and ``ring_bytes`` its per-pair reply-ring
    capacity (``None`` keeps the backend defaults); the inline backend
    has no worker processes to watch, so they are silently ignored
    there.
    """
    if name == "inline":
        return None
    if name == "process":
        kwargs = {}
        if heartbeat is not None:
            kwargs["heartbeat"] = heartbeat
        if on_worker_death is not None:
            kwargs["on_worker_death"] = on_worker_death
        if ring_bytes is not None:
            kwargs["ring_bytes"] = ring_bytes
        return ProcessBackend(workers=workers, **kwargs)
    raise ConfigurationError(
        f"unknown execution backend {name!r}; expected one of {BACKENDS}"
    )


__all__ = [
    "BACKENDS",
    "Backend",
    "InlineBackend",
    "ProcessBackend",
    "make_backend",
]
