"""Inter-worker fetch transport of the process backend.

Topology: one request inbox per worker (many producers, one consumer —
the worker's responder thread), one shared-memory reply ring per
ordered worker pair (:mod:`repro.exec.ring`), and one pickled fallback
queue per requester for payloads too large for their ring. The
responder serves every request from the shared-memory graph with one
bulk adjacency gather (``Graph.neighbors_batch`` — the batched worker
kernel) while the worker's main thread runs the chunk scheduler, so
serving remote fetches genuinely overlaps local computation — the role
of Khuzdul's dedicated communication threads.

The scheduler drives the requester side through
:meth:`WorkerTransport.post_chunk` (fire the whole chunk's coalesced,
ring-sized requests up front) and one :meth:`WorkerTransport.collect`
per circulant batch (block for that server machine's edge lists). Key
properties:

* **Coalescing** — pending fetches are grouped per *server worker* and
  shipped as :class:`~repro.exec.messages.CoalescedFetchRequest`
  messages, one (or a few ring-sized splits) per worker per chunk,
  instead of one message per server machine. Fewer messages, and every
  reply is a raw ring frame: no pickling on the hot path.
* **Deterministic framing** — requester and responder read the *same*
  shared graph, so the requester predicts every reply's exact byte
  size from vertex degrees. It reads whole frames in one call,
  validates the element count, and slices per-machine payloads out by
  the known segment lengths — no length table travels on the wire.
* **Deadlock-free flow control** — the requester only posts a request
  once the *predicted* reply bytes of everything in flight on that
  ring fit its capacity (oversized payloads count only their marker
  frame). A responder therefore never blocks on a full ring, so no
  producer/consumer wait cycle can form; excess requests simply wait,
  unposted, until :meth:`collect` drains earlier frames.
* **Local fast path** — a fetch addressed to a machine hosted by the
  requesting worker itself never becomes a message: ``collect`` serves
  it synchronously from the shared graph.
* **Adaptive sizing** — :class:`AdaptiveChunker` picks the per-request
  reply-byte budget from measured per-chunk wall-clock, growing it
  when rounds are IPC-dominated and shrinking it when rounds run long
  (better pipelining). Purely a transport concern: simulated
  accounting never sees it.

Liveness: no wait in this module is unbounded. The responder polls its
inbox with a timeout and re-checks the fleet stop event; ring reads,
ring writes, and fallback-queue gets all run in short bounded waits
that re-check the relevant peer's death notice (published by the
parent's sentinel watcher) and the stop event, so a dead peer becomes
a structured :class:`~repro.errors.PeerDeadError` on the requester
side — and a silently dropped reply on the responder side — instead of
a deadlock (docs/execution.md, "Real-process failure semantics").
"""

from __future__ import annotations

import os
import queue as queue_mod
import threading
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Optional, Sequence

import numpy as np

from repro.errors import PeerDeadError, TransportCorruptionError
from repro.exec.messages import SHUTDOWN, CoalescedFetchRequest, Segment
from repro.exec.ring import RingAborted, attach_ring
from repro.graph.graph import Graph

#: how long one reply may take before the worker assumes the fleet is
#: wedged and aborts (generous: covers heavily loaded CI machines)
REPLY_TIMEOUT_SECONDS = 300.0
#: cap on any single bounded wait between liveness re-checks — the
#: worker-side detection bound for a dead peer or a fleet stop
LIVENESS_INTERVAL_SECONDS = 1.0
#: reply-frame header: int64 [magic, sequence, kind, payload elements].
#: The magic word and the per-pair monotone sequence let the requester
#: detect ring corruption (a torn/misaligned frame, a stale segment, a
#: desynced producer) *structurally* instead of misreading garbage as
#: edge lists — validation failures raise
#: :class:`~repro.errors.TransportCorruptionError`
FRAME_HEADER_BYTES = 32
#: first header word of every well-formed frame ("ringfrme" in ASCII)
FRAME_MAGIC = 0x72696E6766726D65
#: frame kinds: payload inline in the ring / oversized-payload marker
#: (the actual edge lists travel pickled on the requester's fallback
#: queue; the marker keeps the ring's frame order intact)
FRAME_DATA = 0
FRAME_FALLBACK = 1


def zero_requester_stats() -> dict:
    """Requester-side stats shape, all zero (lost/replayed workers)."""
    return {
        "wait_seconds": 0.0,
        "messages": 0,
        "bytes_received": 0,
        "liveness_timeouts": 0,
        "fallbacks": 0,
        "local_requests": 0,
        "local_bytes": 0,
        "coalesced_requests": 0,
        "coalesced_batch": (0, 0.0, 0.0, 0.0),
        "adaptive_chunk_bytes": 0,
    }


def zero_responder_stats() -> dict:
    """Responder-side stats shape, all zero (workers that died before
    reporting theirs — their wall-clock serve numbers died with them)."""
    return {
        "served_requests": 0,
        "served_bytes": 0,
        "queue_depth": (0, 0.0, 0.0, 0.0),
        "ring_occupancy": (0, 0.0, 0.0, 0.0),
        "ring_wait_seconds": 0.0,
        "fallbacks_served": 0,
    }


@dataclass
class Endpoints:
    """The fabric the parent builds and every worker shares.

    ``inboxes[w]`` receives :class:`CoalescedFetchRequest`s (and the
    shutdown sentinel) for worker ``w``; ``rings[(sw, rw)]`` is the
    :class:`~repro.exec.ring.RingHandle` of the shared-memory reply
    ring from server worker ``sw`` to requester worker ``rw`` (no
    self-pairs: same-worker fetches take the local fast path);
    ``fallbacks[rw]`` is requester ``rw``'s pickled queue for replies
    too large for their ring. Machine ``m`` is hosted by worker
    ``m % num_workers``.

    ``deaths[w]`` is a per-worker death notice (a multiprocessing
    ``Event`` the *parent's* sentinel watcher sets when worker ``w``
    dies) and ``stop`` is the fleet-wide teardown signal; both default
    to ``None`` for callers that build a fabric without liveness
    tracking (unit tests), in which case waits still stay bounded by
    :data:`REPLY_TIMEOUT_SECONDS`.
    """

    num_workers: int
    inboxes: list
    #: (server worker, requester worker) -> RingHandle, for all pairs
    #: with distinct workers
    rings: dict = field(default_factory=dict)
    #: per-requester slow-path queues for oversized reply payloads
    fallbacks: list = field(default_factory=list)
    #: per-worker death notices set by the parent's liveness watcher
    deaths: Optional[list] = None
    #: fleet-wide stop signal set by the parent during teardown
    stop: Optional[object] = None
    #: per-worker control queues (parent -> worker): after a worker's
    #: RESULT, the parent may send :class:`RecoverAssignment` messages
    #: (redistributed recovery of a dead peer's machines) followed by
    #: the DONE sentinel; None for fabrics without recovery support
    controls: Optional[list] = None
    #: pid of the parent that built the fabric. Workers treat a changed
    #: ppid (the parent was SIGKILLed and init adopted them) as a stop
    #: signal, so orphans exit within a bounded wait instead of
    #: spinning forever on events nobody will ever set
    parent_pid: Optional[int] = None

    def worker_of(self, machine: int) -> int:
        return machine % self.num_workers

    def peer_dead(self, worker: int) -> bool:
        return self.deaths is not None and self.deaths[worker].is_set()

    def stopping(self) -> bool:
        if self.stop is not None and self.stop.is_set():
            return True
        return (
            self.parent_pid is not None
            and os.getpid() != self.parent_pid
            and os.getppid() != self.parent_pid
        )


class AdaptiveChunker:
    """Transport-level reply-size budget, tuned by chunk wall-clock.

    ``target_bytes`` bounds the predicted reply payload of one
    coalesced request (one ring frame). Feedback loop, evaluated when
    each chunk's round of requests begins: if the previous round
    finished faster than :data:`LOW_SECONDS`, per-message overhead
    dominates — double the target (fewer, fatter frames); if it ran
    longer than :data:`HIGH_SECONDS`, halve it (finer frames pipeline
    the compute/communication overlap better). Clamped to
    ``[min_bytes, ring capacity - header]`` so an in-budget frame
    always fits its ring. Only IPC framing changes — the simulated
    accounting never sees this knob.
    """

    #: rounds faster than this are IPC-dominated: grow the budget
    LOW_SECONDS = 0.002
    #: rounds slower than this want finer pipelining: shrink it
    HIGH_SECONDS = 0.25

    def __init__(self, capacity: int, min_bytes: int = 4096):
        self.max_bytes = max(1, capacity - FRAME_HEADER_BYTES)
        self.min_bytes = min(min_bytes, self.max_bytes)
        self.target_bytes = max(self.min_bytes, self.max_bytes // 4)
        self.grows = 0
        self.shrinks = 0
        self._round_started: Optional[float] = None

    def begin_round(self) -> None:
        """Adapt from the previous round's wall-clock; start a new one."""
        now = perf_counter()
        if self._round_started is not None:
            elapsed = now - self._round_started
            if elapsed < self.LOW_SECONDS:
                grown = min(self.target_bytes * 2, self.max_bytes)
                self.grows += grown != self.target_bytes
                self.target_bytes = grown
            elif elapsed > self.HIGH_SECONDS:
                shrunk = max(self.target_bytes // 2, self.min_bytes)
                self.shrinks += shrunk != self.target_bytes
                self.target_bytes = shrunk
        self._round_started = now


@dataclass
class _FrameDesc:
    """What the requester expects from one posted request's reply."""

    #: (server machine, element count) per segment, in request order
    segments: list
    total_elems: int
    payload_bytes: int
    #: whether the frame fits the ring inline (else: fallback marker)
    fits: bool
    #: ring bytes this request occupies while in flight (flow control)
    ring_cost: int


class WorkerTransport:
    """One worker's view of the fetch fabric (requester + responder)."""

    def __init__(self, worker_id: int, endpoints: Endpoints, graph: Graph):
        self.worker_id = worker_id
        self.endpoints = endpoints
        self.graph = graph
        self._itemsize = graph.indices.dtype.itemsize
        self._dtype = graph.indices.dtype
        self._degrees = graph.degrees()
        capacity = (
            next(iter(endpoints.rings.values())).capacity
            if endpoints.rings else 1 << 20
        )
        self.ring_capacity = capacity
        self.chunker = AdaptiveChunker(capacity)
        # lazily attached rings: producer side keyed (me, rw),
        # consumer side keyed (sw, me); attach once, close on close()
        self._producer_rings: dict = {}
        self._consumer_rings: dict = {}
        self._rings_lock = threading.Lock()
        # requester-side flow control / reassembly (main thread only)
        self._pending: dict[int, deque] = {}
        self._inflight: dict[int, int] = {}
        self._descriptors: dict[int, deque] = {}
        self._buffers: dict[int, list] = {}
        self._buffered_elems: dict[int, int] = {}
        self._fallback_stash: dict[int, deque] = {}
        #: next frame sequence expected per server worker (main thread)
        self._frame_seq_in: dict[int, int] = {}
        #: next frame sequence to stamp per requester (responder thread)
        self._frame_seq_out: dict[int, int] = {}
        # requester-side accounting (main thread only)
        self.wait_seconds = 0.0
        self.requests_posted = 0
        self.frames_received = 0
        self.bytes_received = 0
        self.fallbacks_received = 0
        self.local_requests = 0
        self.local_bytes = 0
        #: bounded reply waits that crossed a liveness re-check interval
        #: before the reply arrived (feeds net.peer_timeouts)
        self.liveness_timeouts = 0
        self._batch_count = 0
        self._batch_total = 0
        self._batch_min = float("inf")
        self._batch_max = float("-inf")
        # responder-side accounting (responder thread only)
        self.served_requests = 0
        self.served_bytes = 0
        self.fallbacks_served = 0
        self._depth_count = 0
        self._depth_total = 0
        self._depth_min = float("inf")
        self._depth_max = float("-inf")
        self._thread: threading.Thread | None = None
        self._stopped = threading.Event()
        self._stop_requested = threading.Event()

    # ------------------------------------------------------------------
    # ring plumbing (shared by both sides; attach-once under a lock)
    # ------------------------------------------------------------------
    def _ring(self, cache: dict, pair: tuple[int, int]):
        ring = cache.get(pair)
        if ring is None:
            with self._rings_lock:
                ring = cache.get(pair)
                if ring is None:
                    ring = attach_ring(self.endpoints.rings[pair])
                    cache[pair] = ring
        return ring

    def close(self) -> None:
        """Drop every ring mapping this transport attached. Only safe
        once the responder thread has exited (call after :meth:`join`);
        the parent remains the only side that unlinks."""
        with self._rings_lock:
            for ring in self._producer_rings.values():
                ring.close()
            for ring in self._consumer_rings.values():
                ring.close()
            self._producer_rings.clear()
            self._consumer_rings.clear()

    # ------------------------------------------------------------------
    # responder side
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start serving this worker's inbox on a daemon thread."""
        self._thread = threading.Thread(
            target=self._serve, name=f"exec-responder-{self.worker_id}",
            daemon=True,
        )
        self._thread.start()

    def _serve(self) -> None:
        inbox = self.endpoints.inboxes[self.worker_id]
        try:
            while True:
                # bounded: a peer that dies before sending SHUTDOWN
                # must not wedge this thread (and thereby join())
                try:
                    message = inbox.get(timeout=LIVENESS_INTERVAL_SECONDS)
                except queue_mod.Empty:
                    if (self._stop_requested.is_set()
                            or self.endpoints.stopping()):
                        break
                    continue
                if message == SHUTDOWN:
                    break
                self._observe_depth(inbox)
                self._serve_one(message)
        finally:
            self._stopped.set()

    def _serve_one(self, message: CoalescedFetchRequest) -> None:
        """Serve one coalesced request: a single bulk adjacency gather
        for every segment, answered as one ring frame (or a fallback
        queue item plus a marker frame when it cannot fit inline)."""
        vertices = np.concatenate(
            [seg.vertices for seg in message.segments]
        ) if len(message.segments) > 1 else message.segments[0].vertices
        payload, _ = self.graph.neighbors_batch(vertices)
        self.served_requests += 1
        self.served_bytes += payload.nbytes
        requester = message.requester_worker
        ring = self._ring(self._producer_rings, (self.worker_id, requester))

        def abort() -> bool:
            return (self._stop_requested.is_set()
                    or self.endpoints.stopping()
                    or self.endpoints.peer_dead(requester))

        fits = FRAME_HEADER_BYTES + payload.nbytes <= ring.capacity
        sequence = self._frame_seq_out.get(requester, 0)
        try:
            if fits:
                header = np.array(
                    [FRAME_MAGIC, sequence, FRAME_DATA, len(payload)],
                    dtype=np.int64)
                ring.write([header, payload], abort)
            else:
                # oversized: ship the payload pickled, keep ring order
                # with a marker frame the requester knows to expect
                self.fallbacks_served += 1
                self.endpoints.fallbacks[requester].put(
                    (self.worker_id, payload)
                )
                marker = np.array(
                    [FRAME_MAGIC, sequence, FRAME_FALLBACK, len(payload)],
                    dtype=np.int64)
                ring.write([marker], abort)
            self._frame_seq_out[requester] = sequence + 1
        except RingAborted:
            # the requester died or the fleet is stopping: drop the
            # reply and keep serving whoever is still alive
            pass

    def _observe_depth(self, inbox) -> None:
        try:
            depth = inbox.qsize()
        except NotImplementedError:  # pragma: no cover - macOS
            return
        self._depth_count += 1
        self._depth_total += depth
        if depth < self._depth_min:
            self._depth_min = depth
        if depth > self._depth_max:
            self._depth_max = depth

    def stop(self) -> None:
        """Ask the responder to exit even if SHUTDOWN never arrives."""
        self._stop_requested.set()

    def join(self, timeout: float | None = None) -> bool:
        """Wait for the responder to see the shutdown sentinel (or a
        stop signal — the serve loop re-checks both every
        :data:`LIVENESS_INTERVAL_SECONDS`, so this cannot hang once
        either is set)."""
        stopped = self._stopped.wait(timeout)
        if stopped and self._thread is not None:
            self._thread.join(timeout)
        return stopped

    # ------------------------------------------------------------------
    # requester side (called by MachineScheduler)
    # ------------------------------------------------------------------
    def post_chunk(self, requester_machine: int,
                   batches: Sequence[tuple[int, Sequence[int]]]) -> None:
        """Fire one chunk's entire fetch demand, coalesced and split.

        ``batches`` is the chunk's circulant order: (server machine,
        vertices) pairs. Batches whose server machine is hosted *here*
        are skipped (``collect`` serves them synchronously); the rest
        are grouped per server worker, greedily packed into requests
        whose predicted reply payload fits the adaptive budget, and
        posted immediately — except where the ring's in-flight budget
        is exhausted, in which case the surplus requests wait unposted
        until :meth:`collect` drains earlier frames (the deadlock-free
        flow control described in the module docstring).
        """
        self.chunker.begin_round()
        target = self.chunker.target_bytes
        itemsize = self._itemsize
        degrees = self._degrees
        worker_of = self.endpoints.worker_of
        # per-server-worker open request being packed:
        # [segments, seg_elems, payload_bytes]
        builders: dict[int, list] = {}
        order: list[int] = []
        for server_machine, vertices in batches:
            server_worker = worker_of(server_machine)
            if server_worker == self.worker_id:
                continue  # local fast path: served at collect time
            if server_worker not in builders:
                builders[server_worker] = [[], [], 0]
                order.append(server_worker)
            builder = builders[server_worker]
            start = 0
            vertices = np.asarray(vertices, dtype=np.int64)
            elems = degrees[vertices]
            for index, count in enumerate(elems.tolist()):
                nbytes = count * itemsize
                if builder[2] and builder[2] + nbytes > target:
                    # budget reached: flush [start, index) and open a
                    # fresh request (a single vertex may exceed the
                    # budget on its own — it travels alone, and the
                    # responder falls back if it cannot fit the ring)
                    if index > start:
                        self._push_segment(
                            builder, server_machine,
                            vertices[start:index],
                            int(elems[start:index].sum()),
                        )
                        start = index
                    self._flush(server_worker, builder)
                builder[2] += nbytes
            if len(vertices) > start:
                self._push_segment(
                    builder, server_machine, vertices[start:],
                    int(elems[start:].sum()),
                )
        for server_worker in order:
            builder = builders[server_worker]
            if builder[0]:
                self._flush(server_worker, builder)
            self._pump(server_worker)

    @staticmethod
    def _push_segment(builder, server_machine, vertices, elems) -> None:
        builder[0].append(Segment(server_machine, vertices))
        builder[1].append((server_machine, elems))

    def _flush(self, server_worker: int, builder) -> None:
        """Close the open request: queue it (message + expectation)."""
        segments, seg_elems, _ = builder
        total_elems = sum(elems for _, elems in seg_elems)
        payload_bytes = total_elems * self._itemsize
        fits = (FRAME_HEADER_BYTES + payload_bytes) <= self.ring_capacity
        desc = _FrameDesc(
            segments=seg_elems,
            total_elems=total_elems,
            payload_bytes=payload_bytes,
            fits=fits,
            ring_cost=(FRAME_HEADER_BYTES + payload_bytes if fits
                       else FRAME_HEADER_BYTES),
        )
        message = CoalescedFetchRequest(self.worker_id, tuple(segments))
        self._pending.setdefault(server_worker, deque()).append(
            (message, desc)
        )
        self._batch_count += 1
        total_vertices = sum(len(seg.vertices) for seg in segments)
        self._batch_total += total_vertices
        if total_vertices < self._batch_min:
            self._batch_min = total_vertices
        if total_vertices > self._batch_max:
            self._batch_max = total_vertices
        builder[0] = []
        builder[1] = []
        builder[2] = 0

    def _pump(self, server_worker: int) -> None:
        """Post queued requests while their predicted reply frames fit
        the ring's remaining in-flight budget — the invariant that
        keeps responders from ever blocking on a full ring."""
        pending = self._pending.get(server_worker)
        if not pending:
            return
        inflight = self._inflight.setdefault(server_worker, 0)
        inbox = self.endpoints.inboxes[server_worker]
        descriptors = self._descriptors.setdefault(server_worker, deque())
        while pending and inflight + pending[0][1].ring_cost \
                <= self.ring_capacity:
            message, desc = pending.popleft()
            inbox.put(message)
            descriptors.append(desc)
            inflight += desc.ring_cost
            self.requests_posted += 1
        self._inflight[server_worker] = inflight

    def collect(self, requester_machine: int, server_machine: int,
                vertices: Sequence[int]) -> np.ndarray:
        """Return one circulant batch's edge lists, concatenated.

        Machines hosted on this worker are served synchronously from
        the shared graph (no message ever existed). Remote machines
        drain reply frames — in posted order, which is collect order —
        off the server worker's ring until this machine's payload is
        fully buffered; every frame consumed frees in-flight budget
        and may post deferred requests. All waits are bounded and
        re-check the serving peer's death notice, so a dead peer
        surfaces as :class:`~repro.errors.PeerDeadError` within
        :data:`LIVENESS_INTERVAL_SECONDS` of the parent noticing it.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        expected = int(self._degrees[vertices].sum())
        server_worker = self.endpoints.worker_of(server_machine)
        if server_worker == self.worker_id:
            payload, _ = self.graph.neighbors_batch(vertices)
            self.local_requests += 1
            self.local_bytes += payload.nbytes
            return payload
        while self._buffered_elems.get(server_machine, 0) < expected:
            self._read_frame(server_worker, server_machine)
        got = self._buffered_elems.pop(server_machine, 0)
        parts = self._buffers.pop(server_machine, [])
        if got != expected:
            raise RuntimeError(
                f"fetch payload mismatch from machine {server_machine}: "
                f"expected {expected} vertices, got {got}"
            )
        payload = parts[0] if len(parts) == 1 else np.concatenate(
            parts
        ) if parts else np.empty(0, dtype=self._dtype)
        self.bytes_received += payload.nbytes
        return payload

    def _read_frame(self, server_worker: int, server_machine: int) -> None:
        """Consume the next expected frame from one ring; buffer its
        per-machine payload slices; release in-flight budget."""
        descriptors = self._descriptors.get(server_worker)
        if not descriptors:
            raise RuntimeError(
                f"fetch protocol violation: collect for machine "
                f"{server_machine} with no posted request on worker "
                f"{server_worker}"
            )
        desc = descriptors.popleft()
        ring = self._ring(self._consumer_rings,
                          (server_worker, self.worker_id))
        started = perf_counter()
        deadline = started + REPLY_TIMEOUT_SECONDS

        def abort() -> bool:
            return (self.endpoints.peer_dead(server_worker)
                    or self.endpoints.stopping()
                    or perf_counter() >= deadline)

        try:
            if desc.fits:
                raw = ring.read_exact(
                    FRAME_HEADER_BYTES + desc.payload_bytes, abort
                )
                header = raw[:FRAME_HEADER_BYTES].view(np.int64)
                payload = raw[FRAME_HEADER_BYTES:].view(self._dtype)
            else:
                raw = ring.read_exact(FRAME_HEADER_BYTES, abort)
                header = raw.view(np.int64)
                payload = None
        except RingAborted:
            self._abort_wait(started, server_worker, server_machine)
        elapsed = perf_counter() - started
        self.wait_seconds += elapsed
        self.liveness_timeouts += int(elapsed // LIVENESS_INTERVAL_SECONDS)
        magic, sequence, kind, elems = (
            int(header[0]), int(header[1]), int(header[2]), int(header[3])
        )
        expected_seq = self._frame_seq_in.get(server_worker, 0)
        if magic != FRAME_MAGIC or sequence != expected_seq:
            # the frame boundary itself is untrustworthy: structural
            # ring corruption, not a mere protocol mismatch
            raise TransportCorruptionError(
                self.worker_id, server_worker,
                f"bad frame header: magic={magic:#018x} "
                f"(want {FRAME_MAGIC:#018x}), sequence={sequence} "
                f"(want {expected_seq})"
            )
        self._frame_seq_in[server_worker] = expected_seq + 1
        expected_kind = FRAME_DATA if desc.fits else FRAME_FALLBACK
        if kind != expected_kind or elems != desc.total_elems:
            raise RuntimeError(
                f"fetch protocol violation: awaited frame "
                f"(kind={expected_kind}, elems={desc.total_elems}) from "
                f"worker {server_worker}, got (kind={kind}, elems={elems})"
            )
        if payload is None:
            payload = self._fallback_get(server_worker, server_machine,
                                         deadline)
            self.fallbacks_received += 1
            if len(payload) != desc.total_elems:
                raise RuntimeError(
                    f"fetch payload mismatch from worker {server_worker}: "
                    f"fallback carried {len(payload)} vertices, awaited "
                    f"{desc.total_elems}"
                )
        self.frames_received += 1
        inflight = self._inflight.get(server_worker, 0) - desc.ring_cost
        self._inflight[server_worker] = max(0, inflight)
        self._pump(server_worker)
        cursor = 0
        for machine, elems in desc.segments:
            part = payload[cursor:cursor + elems]
            cursor += elems
            self._buffers.setdefault(machine, []).append(part)
            self._buffered_elems[machine] = (
                self._buffered_elems.get(machine, 0) + elems
            )

    def _abort_wait(self, started: float, server_worker: int,
                    server_machine: int):
        """A bounded ring wait gave up: name the reason and raise."""
        elapsed = perf_counter() - started
        self.wait_seconds += elapsed
        if (self.endpoints.peer_dead(server_worker)
                or self.endpoints.stopping()):
            self.liveness_timeouts += max(
                1, int(elapsed // LIVENESS_INTERVAL_SECONDS)
            )
            raise PeerDeadError(
                self.worker_id, server_worker, server_machine
            ) from None
        raise RuntimeError(
            f"worker {self.worker_id}: no reply from machine "
            f"{server_machine} (worker {server_worker}) within "
            f"{REPLY_TIMEOUT_SECONDS:.0f}s"
        ) from None

    def _fallback_get(self, server_worker: int, server_machine: int,
                      deadline: float) -> np.ndarray:
        """Bounded, liveness-aware get of one oversized payload.

        All server workers share this requester's fallback queue;
        items from other workers surfaced while waiting are stashed
        (per-worker order is preserved by the shared FIFO)."""
        stash = self._fallback_stash.get(server_worker)
        if stash:
            return stash.popleft()
        channel = self.endpoints.fallbacks[self.worker_id]
        started = perf_counter()
        while True:
            remaining = deadline - perf_counter()
            try:
                sender, payload = channel.get(
                    timeout=min(LIVENESS_INTERVAL_SECONDS,
                                max(0.001, remaining))
                )
            except queue_mod.Empty:
                self.liveness_timeouts += 1
                if (self.endpoints.peer_dead(server_worker)
                        or self.endpoints.stopping()
                        or perf_counter() >= deadline):
                    self._abort_wait(started, server_worker,
                                     server_machine)
                continue
            if sender == server_worker:
                self.wait_seconds += perf_counter() - started
                return payload
            self._fallback_stash.setdefault(sender, deque()).append(payload)

    # ------------------------------------------------------------------
    # stats shipped to the parent (feed the exec.*/net.* metrics)
    # ------------------------------------------------------------------
    def requester_stats(self) -> dict:
        """Main-thread stats: complete once the compute loop returns."""
        batch = (
            (self._batch_count, float(self._batch_total),
             float(self._batch_min), float(self._batch_max))
            if self._batch_count else (0, 0.0, 0.0, 0.0)
        )
        return {
            "wait_seconds": self.wait_seconds,
            "messages": self.requests_posted + self.frames_received,
            "bytes_received": self.bytes_received,
            "liveness_timeouts": self.liveness_timeouts,
            "fallbacks": self.fallbacks_received,
            "local_requests": self.local_requests,
            "local_bytes": self.local_bytes,
            "coalesced_requests": self.requests_posted,
            "coalesced_batch": batch,
            "adaptive_chunk_bytes": self.chunker.target_bytes,
        }

    def responder_stats(self) -> dict:
        """Responder stats: complete only after shutdown (the responder
        may serve other workers long after this worker's compute ends)."""
        depth = (
            (self._depth_count, float(self._depth_total),
             float(self._depth_min), float(self._depth_max))
            if self._depth_count
            else (0, 0.0, 0.0, 0.0)
        )
        occupancy = [0, 0.0, float("inf"), float("-inf")]
        ring_wait = 0.0
        for ring in list(self._producer_rings.values()):
            count, total, low, high = ring.occupancy_summary()
            occupancy[0] += count
            occupancy[1] += total
            occupancy[2] = min(occupancy[2], low) if count else occupancy[2]
            occupancy[3] = max(occupancy[3], high) if count else occupancy[3]
            ring_wait += ring.wait_seconds
        if not occupancy[0]:
            occupancy = [0, 0.0, 0.0, 0.0]
        return {
            "served_requests": self.served_requests,
            "served_bytes": self.served_bytes,
            "queue_depth": depth,
            "ring_occupancy": tuple(occupancy),
            "ring_wait_seconds": ring_wait,
            "fallbacks_served": self.fallbacks_served,
        }
