"""Inter-worker fetch transport of the process backend.

Topology: one request inbox per worker (many producers, one consumer —
the worker's responder thread), plus one reply queue per ordered
worker pair. The responder serves every request from the
shared-memory graph (zero-copy reads) while the worker's main thread
runs the chunk scheduler, so serving remote fetches genuinely
overlaps local computation — the role of Khuzdul's dedicated
communication threads.

The scheduler drives the requester side through two calls per
circulant batch: :meth:`WorkerTransport.post` (fire the request) and
:meth:`WorkerTransport.collect` (block for the reply and validate
it). The scheduler posts batch *i+1* before collecting batch *i*, so
one batch is always in flight — the paper's compute/communication
pipelining, on real queues.
"""

from __future__ import annotations

import queue as queue_mod
import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Sequence

import numpy as np

from repro.exec.messages import SHUTDOWN, FetchReply, FetchRequest
from repro.graph.graph import Graph

#: how long one reply may take before the worker assumes the fleet is
#: wedged and aborts (generous: covers heavily loaded CI machines)
REPLY_TIMEOUT_SECONDS = 300.0


@dataclass
class Endpoints:
    """The queue fabric the parent builds and every worker shares.

    ``inboxes[w]`` receives :class:`FetchRequest`s (and the shutdown
    sentinel) for worker ``w``; ``replies[(sw, rw)]`` carries
    :class:`FetchReply`s from server worker ``sw`` to requester worker
    ``rw``. Machine ``m`` is hosted by worker ``m % num_workers``.
    """

    num_workers: int
    inboxes: list
    replies: dict

    def worker_of(self, machine: int) -> int:
        return machine % self.num_workers


class WorkerTransport:
    """One worker's view of the fetch fabric (requester + responder)."""

    def __init__(self, worker_id: int, endpoints: Endpoints, graph: Graph):
        self.worker_id = worker_id
        self.endpoints = endpoints
        self.graph = graph
        # requester-side accounting (main thread only)
        self.wait_seconds = 0.0
        self.requests_posted = 0
        self.replies_received = 0
        self.bytes_received = 0
        # responder-side accounting (responder thread only)
        self.served_requests = 0
        self.served_bytes = 0
        self._depth_count = 0
        self._depth_total = 0
        self._depth_min = float("inf")
        self._depth_max = float("-inf")
        self._thread: threading.Thread | None = None
        self._stopped = threading.Event()

    # ------------------------------------------------------------------
    # responder side
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start serving this worker's inbox on a daemon thread."""
        self._thread = threading.Thread(
            target=self._serve, name=f"exec-responder-{self.worker_id}",
            daemon=True,
        )
        self._thread.start()

    def _serve(self) -> None:
        inbox = self.endpoints.inboxes[self.worker_id]
        replies = self.endpoints.replies
        try:
            while True:
                message = inbox.get()
                if message == SHUTDOWN:
                    break
                self._observe_depth(inbox)
                payload, lengths = self._build_payload(message.vertices)
                self.served_requests += 1
                self.served_bytes += payload.nbytes
                replies[(self.worker_id, message.requester_worker)].put(
                    FetchReply(message.server_machine,
                               message.requester_machine, payload, lengths)
                )
        finally:
            self._stopped.set()

    def _observe_depth(self, inbox) -> None:
        try:
            depth = inbox.qsize()
        except NotImplementedError:  # pragma: no cover - macOS
            return
        self._depth_count += 1
        self._depth_total += depth
        if depth < self._depth_min:
            self._depth_min = depth
        if depth > self._depth_max:
            self._depth_max = depth

    def _build_payload(
        self, vertices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Concatenate the requested edge lists from the shared graph."""
        graph = self.graph
        lists = [graph.neighbors(int(v)) for v in vertices]
        lengths = np.fromiter(
            (len(lst) for lst in lists), dtype=np.int64, count=len(lists)
        )
        if lists:
            payload = np.concatenate(lists)
        else:
            payload = np.empty(0, dtype=graph.indices.dtype)
        return payload, lengths

    def join(self, timeout: float | None = None) -> bool:
        """Wait for the responder to see the shutdown sentinel."""
        stopped = self._stopped.wait(timeout)
        if stopped and self._thread is not None:
            self._thread.join(timeout)
        return stopped

    # ------------------------------------------------------------------
    # requester side (called by MachineScheduler)
    # ------------------------------------------------------------------
    def post(self, requester_machine: int, server_machine: int,
             vertices: Sequence[int]) -> None:
        """Fire one circulant batch's fetch request (non-blocking)."""
        server_worker = self.endpoints.worker_of(server_machine)
        self.endpoints.inboxes[server_worker].put(FetchRequest(
            requester_machine, self.worker_id, server_machine,
            np.asarray(vertices, dtype=np.int64),
        ))
        self.requests_posted += 1

    def collect(self, requester_machine: int, server_machine: int,
                vertices: Sequence[int]) -> np.ndarray:
        """Block for a posted batch's reply; validate and return it."""
        server_worker = self.endpoints.worker_of(server_machine)
        channel = self.endpoints.replies[(server_worker, self.worker_id)]
        started = perf_counter()
        try:
            reply = channel.get(timeout=REPLY_TIMEOUT_SECONDS)
        except queue_mod.Empty:
            raise RuntimeError(
                f"worker {self.worker_id}: no reply from machine "
                f"{server_machine} (worker {server_worker}) within "
                f"{REPLY_TIMEOUT_SECONDS:.0f}s"
            ) from None
        self.wait_seconds += perf_counter() - started
        if (reply.server_machine != server_machine
                or reply.requester_machine != requester_machine):
            raise RuntimeError(
                f"fetch protocol violation: awaited reply "
                f"({server_machine}->{requester_machine}), got "
                f"({reply.server_machine}->{reply.requester_machine})"
            )
        expected = sum(self.graph.degree(int(v)) for v in vertices)
        if int(reply.lengths.sum()) != len(reply.payload) \
                or len(reply.payload) != expected:
            raise RuntimeError(
                f"fetch payload mismatch from machine {server_machine}: "
                f"expected {expected} vertices, got {len(reply.payload)}"
            )
        self.replies_received += 1
        self.bytes_received += reply.payload.nbytes
        return reply.payload

    # ------------------------------------------------------------------
    # stats shipped to the parent (feed the exec.* metrics)
    # ------------------------------------------------------------------
    def requester_stats(self) -> dict:
        """Main-thread stats: complete once the compute loop returns."""
        return {
            "wait_seconds": self.wait_seconds,
            "messages": self.requests_posted + self.replies_received,
            "bytes_received": self.bytes_received,
        }

    def responder_stats(self) -> dict:
        """Responder stats: complete only after shutdown (the responder
        may serve other workers long after this worker's compute ends)."""
        depth = (
            (self._depth_count, float(self._depth_total),
             float(self._depth_min), float(self._depth_max))
            if self._depth_count
            else (0, 0.0, 0.0, 0.0)
        )
        return {
            "served_requests": self.served_requests,
            "served_bytes": self.served_bytes,
            "queue_depth": depth,
        }
