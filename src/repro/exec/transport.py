"""Inter-worker fetch transport of the process backend.

Topology: one request inbox per worker (many producers, one consumer —
the worker's responder thread), plus one reply queue per ordered
worker pair. The responder serves every request from the
shared-memory graph (zero-copy reads) while the worker's main thread
runs the chunk scheduler, so serving remote fetches genuinely
overlaps local computation — the role of Khuzdul's dedicated
communication threads.

The scheduler drives the requester side through two calls per
circulant batch: :meth:`WorkerTransport.post` (fire the request) and
:meth:`WorkerTransport.collect` (block for the reply and validate
it). The scheduler posts batch *i+1* before collecting batch *i*, so
one batch is always in flight — the paper's compute/communication
pipelining, on real queues.

Liveness: no wait in this module is unbounded. The responder polls its
inbox with a timeout and re-checks the fleet stop event, so ``join``
cannot hang when a peer dies before sending SHUTDOWN; the requester's
reply wait starts short and backs off exponentially up to a cap,
re-checking the serving peer's death notice (published by the parent's
sentinel watcher) at every expiry, so a dead peer becomes a structured
:class:`~repro.errors.PeerDeadError` instead of a deadlock
(docs/execution.md, "Real-process failure semantics").
"""

from __future__ import annotations

import queue as queue_mod
import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Optional, Sequence

import numpy as np

from repro.errors import PeerDeadError
from repro.exec.messages import SHUTDOWN, FetchReply, FetchRequest
from repro.graph.graph import Graph

#: how long one reply may take before the worker assumes the fleet is
#: wedged and aborts (generous: covers heavily loaded CI machines)
REPLY_TIMEOUT_SECONDS = 300.0
#: first bounded reply wait; doubles on each expiry (capped below) so a
#: fast reply costs one short sleep and a dead peer is noticed quickly
INITIAL_WAIT_SECONDS = 0.05
#: cap on any single bounded wait between liveness re-checks — the
#: worker-side detection bound for a dead peer or a fleet stop
LIVENESS_INTERVAL_SECONDS = 1.0


@dataclass
class Endpoints:
    """The queue fabric the parent builds and every worker shares.

    ``inboxes[w]`` receives :class:`FetchRequest`s (and the shutdown
    sentinel) for worker ``w``; ``replies[(sw, rw)]`` carries
    :class:`FetchReply`s from server worker ``sw`` to requester worker
    ``rw``. Machine ``m`` is hosted by worker ``m % num_workers``.

    ``deaths[w]`` is a per-worker death notice (a multiprocessing
    ``Event`` the *parent's* sentinel watcher sets when worker ``w``
    dies) and ``stop`` is the fleet-wide teardown signal; both default
    to ``None`` for callers that build a fabric without liveness
    tracking (unit tests), in which case waits still stay bounded by
    :data:`REPLY_TIMEOUT_SECONDS`.
    """

    num_workers: int
    inboxes: list
    replies: dict
    #: per-worker death notices set by the parent's liveness watcher
    deaths: Optional[list] = None
    #: fleet-wide stop signal set by the parent during teardown
    stop: Optional[object] = None

    def worker_of(self, machine: int) -> int:
        return machine % self.num_workers

    def peer_dead(self, worker: int) -> bool:
        return self.deaths is not None and self.deaths[worker].is_set()

    def stopping(self) -> bool:
        return self.stop is not None and self.stop.is_set()


class WorkerTransport:
    """One worker's view of the fetch fabric (requester + responder)."""

    def __init__(self, worker_id: int, endpoints: Endpoints, graph: Graph):
        self.worker_id = worker_id
        self.endpoints = endpoints
        self.graph = graph
        # requester-side accounting (main thread only)
        self.wait_seconds = 0.0
        self.requests_posted = 0
        self.replies_received = 0
        self.bytes_received = 0
        #: bounded reply waits that expired and re-checked peer
        #: liveness before the reply arrived (feeds net.peer_timeouts)
        self.liveness_timeouts = 0
        # responder-side accounting (responder thread only)
        self.served_requests = 0
        self.served_bytes = 0
        self._depth_count = 0
        self._depth_total = 0
        self._depth_min = float("inf")
        self._depth_max = float("-inf")
        self._thread: threading.Thread | None = None
        self._stopped = threading.Event()
        self._stop_requested = threading.Event()

    # ------------------------------------------------------------------
    # responder side
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start serving this worker's inbox on a daemon thread."""
        self._thread = threading.Thread(
            target=self._serve, name=f"exec-responder-{self.worker_id}",
            daemon=True,
        )
        self._thread.start()

    def _serve(self) -> None:
        inbox = self.endpoints.inboxes[self.worker_id]
        replies = self.endpoints.replies
        try:
            while True:
                # bounded: a peer that dies before sending SHUTDOWN
                # must not wedge this thread (and thereby join())
                try:
                    message = inbox.get(timeout=LIVENESS_INTERVAL_SECONDS)
                except queue_mod.Empty:
                    if (self._stop_requested.is_set()
                            or self.endpoints.stopping()):
                        break
                    continue
                if message == SHUTDOWN:
                    break
                self._observe_depth(inbox)
                payload, lengths = self._build_payload(message.vertices)
                self.served_requests += 1
                self.served_bytes += payload.nbytes
                replies[(self.worker_id, message.requester_worker)].put(
                    FetchReply(message.server_machine,
                               message.requester_machine, payload, lengths)
                )
        finally:
            self._stopped.set()

    def _observe_depth(self, inbox) -> None:
        try:
            depth = inbox.qsize()
        except NotImplementedError:  # pragma: no cover - macOS
            return
        self._depth_count += 1
        self._depth_total += depth
        if depth < self._depth_min:
            self._depth_min = depth
        if depth > self._depth_max:
            self._depth_max = depth

    def _build_payload(
        self, vertices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Concatenate the requested edge lists from the shared graph."""
        graph = self.graph
        lists = [graph.neighbors(int(v)) for v in vertices]
        lengths = np.fromiter(
            (len(lst) for lst in lists), dtype=np.int64, count=len(lists)
        )
        if lists:
            payload = np.concatenate(lists)
        else:
            payload = np.empty(0, dtype=graph.indices.dtype)
        return payload, lengths

    def stop(self) -> None:
        """Ask the responder to exit even if SHUTDOWN never arrives."""
        self._stop_requested.set()

    def join(self, timeout: float | None = None) -> bool:
        """Wait for the responder to see the shutdown sentinel (or a
        stop signal — the serve loop re-checks both every
        :data:`LIVENESS_INTERVAL_SECONDS`, so this cannot hang once
        either is set)."""
        stopped = self._stopped.wait(timeout)
        if stopped and self._thread is not None:
            self._thread.join(timeout)
        return stopped

    # ------------------------------------------------------------------
    # requester side (called by MachineScheduler)
    # ------------------------------------------------------------------
    def post(self, requester_machine: int, server_machine: int,
             vertices: Sequence[int]) -> None:
        """Fire one circulant batch's fetch request (non-blocking)."""
        server_worker = self.endpoints.worker_of(server_machine)
        self.endpoints.inboxes[server_worker].put(FetchRequest(
            requester_machine, self.worker_id, server_machine,
            np.asarray(vertices, dtype=np.int64),
        ))
        self.requests_posted += 1

    def collect(self, requester_machine: int, server_machine: int,
                vertices: Sequence[int]) -> np.ndarray:
        """Block for a posted batch's reply; validate and return it.

        The wait is a sequence of bounded ``get``s with capped
        exponential backoff; every expiry re-checks the serving
        worker's death notice and the fleet stop event, so a dead peer
        surfaces as :class:`~repro.errors.PeerDeadError` within
        :data:`LIVENESS_INTERVAL_SECONDS` of the parent noticing it.
        """
        server_worker = self.endpoints.worker_of(server_machine)
        channel = self.endpoints.replies[(server_worker, self.worker_id)]
        started = perf_counter()
        deadline = started + REPLY_TIMEOUT_SECONDS
        wait = INITIAL_WAIT_SECONDS
        while True:
            remaining = deadline - perf_counter()
            try:
                reply = channel.get(timeout=min(wait, max(0.001, remaining)))
                break
            except queue_mod.Empty:
                self.liveness_timeouts += 1
                if (self.endpoints.peer_dead(server_worker)
                        or self.endpoints.stopping()):
                    raise PeerDeadError(
                        self.worker_id, server_worker, server_machine
                    ) from None
                if perf_counter() >= deadline:
                    raise RuntimeError(
                        f"worker {self.worker_id}: no reply from machine "
                        f"{server_machine} (worker {server_worker}) within "
                        f"{REPLY_TIMEOUT_SECONDS:.0f}s"
                    ) from None
                wait = min(wait * 2.0, LIVENESS_INTERVAL_SECONDS)
        self.wait_seconds += perf_counter() - started
        if (reply.server_machine != server_machine
                or reply.requester_machine != requester_machine):
            raise RuntimeError(
                f"fetch protocol violation: awaited reply "
                f"({server_machine}->{requester_machine}), got "
                f"({reply.server_machine}->{reply.requester_machine})"
            )
        expected = sum(self.graph.degree(int(v)) for v in vertices)
        if int(reply.lengths.sum()) != len(reply.payload) \
                or len(reply.payload) != expected:
            raise RuntimeError(
                f"fetch payload mismatch from machine {server_machine}: "
                f"expected {expected} vertices, got {len(reply.payload)}"
            )
        self.replies_received += 1
        self.bytes_received += reply.payload.nbytes
        return reply.payload

    # ------------------------------------------------------------------
    # stats shipped to the parent (feed the exec.* metrics)
    # ------------------------------------------------------------------
    def requester_stats(self) -> dict:
        """Main-thread stats: complete once the compute loop returns."""
        return {
            "wait_seconds": self.wait_seconds,
            "messages": self.requests_posted + self.replies_received,
            "bytes_received": self.bytes_received,
            "liveness_timeouts": self.liveness_timeouts,
        }

    def responder_stats(self) -> dict:
        """Responder stats: complete only after shutdown (the responder
        may serve other workers long after this worker's compute ends)."""
        depth = (
            (self._depth_count, float(self._depth_total),
             float(self._depth_min), float(self._depth_max))
            if self._depth_count
            else (0, 0.0, 0.0, 0.0)
        )
        return {
            "served_requests": self.served_requests,
            "served_bytes": self.served_bytes,
            "queue_depth": depth,
        }
