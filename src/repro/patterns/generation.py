"""Exhaustive pattern generation.

Motif counting needs every connected size-k pattern up to isomorphism;
FSM grows labeled candidate patterns edge by edge. Both build on the
canonical codes from :mod:`repro.patterns.canonical`.
"""

from __future__ import annotations

from itertools import combinations
from functools import lru_cache

from repro.errors import PatternError
from repro.patterns.canonical import canonical_code
from repro.patterns.pattern import Pattern


@lru_cache(maxsize=8)
def connected_patterns(k: int) -> list[Pattern]:
    """All connected ``k``-vertex patterns, one per isomorphism class.

    Enumerates every edge subset of K_k, keeps connected graphs, and
    deduplicates by canonical code. Sizes match the graph-theory
    sequence: 1, 1, 2, 6, 21 for k = 1..5.
    """
    if k < 1:
        raise PatternError("pattern size must be >= 1")
    if k == 1:
        return [Pattern(1, [])]
    all_edges = list(combinations(range(k), 2))
    seen: dict[tuple, Pattern] = {}
    for mask in range(1 << len(all_edges)):
        edges = [all_edges[i] for i in range(len(all_edges)) if mask >> i & 1]
        if len(edges) < k - 1:
            continue  # too few edges to connect k vertices
        pattern = Pattern(k, edges)
        if not pattern.is_connected():
            continue
        code = canonical_code(pattern)
        if code not in seen:
            seen[code] = pattern
    return list(seen.values())


def single_edge_patterns(labels: set[int]) -> list[Pattern]:
    """All labeled single-edge patterns over a label set (FSM seeds)."""
    result = []
    for a in sorted(labels):
        for b in sorted(labels):
            if a <= b:
                result.append(Pattern(2, [(0, 1)], (a, b)))
    return result


def grow_pattern(pattern: Pattern, labels: set[int]) -> list[Pattern]:
    """All one-edge extensions of a labeled pattern (FSM growth).

    Adds either a fresh labeled vertex attached to one existing vertex,
    or a new edge between two existing non-adjacent vertices, and
    deduplicates by canonical code.
    """
    seen: dict[tuple, Pattern] = {}
    # forward extension: new labeled vertex
    for anchor in range(pattern.num_vertices):
        for label in sorted(labels):
            grown = pattern.add_vertex([anchor], label=label)
            seen.setdefault(canonical_code(grown), grown)
    # backward extension: close an edge between existing vertices
    for u in range(pattern.num_vertices):
        for v in range(u + 1, pattern.num_vertices):
            if not pattern.has_edge(u, v):
                grown = pattern.add_edge(u, v)
                seen.setdefault(canonical_code(grown), grown)
    return list(seen.values())
