"""Isomorphism and automorphism computation for small pattern graphs.

A degree/label-pruned backtracking search (a compact VF2 relative) is
plenty for the <= 7-vertex patterns GPM systems mine; the same routine
also enumerates a pattern's automorphism group, which feeds the
symmetry-breaking restriction generator.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.patterns.pattern import Pattern


def _compatible(p0: Pattern, p1: Pattern, v0: int, v1: int) -> bool:
    """Cheap local invariants: degree and label must match."""
    return p0.degree(v0) == p1.degree(v1) and p0.label(v0) == p1.label(v1)


def _extend(
    p0: Pattern,
    p1: Pattern,
    mapping: list[Optional[int]],
    used: list[bool],
    depth: int,
) -> Iterator[tuple[int, ...]]:
    """Backtracking core: map p0 vertex ``depth`` onto some p1 vertex."""
    if depth == p0.num_vertices:
        yield tuple(mapping)  # type: ignore[arg-type]
        return
    for candidate in range(p1.num_vertices):
        if used[candidate] or not _compatible(p0, p1, depth, candidate):
            continue
        ok = True
        for prior in range(depth):
            has0 = p0.has_edge(prior, depth)
            has1 = p1.has_edge(mapping[prior], candidate)  # type: ignore[arg-type]
            if has0 != has1:
                ok = False
                break
            if has0 and p0.edge_label(prior, depth) != p1.edge_label(
                mapping[prior], candidate  # type: ignore[arg-type]
            ):
                ok = False
                break
        if not ok:
            continue
        mapping[depth] = candidate
        used[candidate] = True
        yield from _extend(p0, p1, mapping, used, depth + 1)
        mapping[depth] = None
        used[candidate] = False


def find_isomorphisms(p0: Pattern, p1: Pattern) -> list[tuple[int, ...]]:
    """All bijections ``f`` with ``(u,v) in E0 <=> (f(u),f(v)) in E1``.

    Labels are respected: ``label0(v) == label1(f(v))`` for all ``v``.
    """
    if p0.num_vertices != p1.num_vertices or p0.num_edges != p1.num_edges:
        return []
    if sorted(p0.degree(v) for v in range(p0.num_vertices)) != sorted(
        p1.degree(v) for v in range(p1.num_vertices)
    ):
        return []
    if sorted(p0.label(v) for v in range(p0.num_vertices)) != sorted(
        p1.label(v) for v in range(p1.num_vertices)
    ):
        return []
    mapping: list[Optional[int]] = [None] * p0.num_vertices
    used = [False] * p1.num_vertices
    return list(_extend(p0, p1, mapping, used, 0))


def are_isomorphic(p0: Pattern, p1: Pattern) -> bool:
    """Whether two patterns have the same structure (and labels)."""
    for _ in _first_isomorphism(p0, p1):
        return True
    return False


def _first_isomorphism(p0: Pattern, p1: Pattern) -> Iterator[tuple[int, ...]]:
    if p0.num_vertices != p1.num_vertices or p0.num_edges != p1.num_edges:
        return
    mapping: list[Optional[int]] = [None] * p0.num_vertices
    used = [False] * p1.num_vertices
    yield from _extend(p0, p1, mapping, used, 0)


def automorphisms(pattern: Pattern) -> list[tuple[int, ...]]:
    """The automorphism group of ``pattern`` as permutation tuples.

    Always contains the identity; its size divides ``n!`` and equals the
    overcount factor of unrestricted pattern enumeration.
    """
    return find_isomorphisms(pattern, pattern)
