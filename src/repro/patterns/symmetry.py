"""Symmetry-breaking restrictions (GraphPi / GraphZero style).

Unrestricted pattern-aware enumeration finds each embedding once per
pattern automorphism. The standard fix — the one GraphPi's restriction
generator produces — is a set of ordering constraints ``(a, b)`` on
pattern vertices, meaning the data vertex matched to ``a`` must have a
smaller id than the one matched to ``b``. The stabilizer-chain
construction below guarantees exactly one member of each automorphism
orbit satisfies all restrictions, so every embedding is counted exactly
once (property-tested: restricted count x |Aut| == unrestricted count).
"""

from __future__ import annotations

from functools import lru_cache

from repro.patterns.isomorphism import automorphisms
from repro.patterns.pattern import Pattern


@lru_cache(maxsize=512)
def symmetry_restrictions(pattern: Pattern) -> tuple[tuple[int, int], ...]:
    """Ordering constraints that break all automorphisms of ``pattern``.

    Returns pairs ``(a, b)`` of pattern vertices requiring
    ``embedding[a] < embedding[b]``. Empty for asymmetric patterns.
    """
    group = automorphisms(pattern)
    restrictions: list[tuple[int, int]] = []
    current = group
    while len(current) > 1:
        moved = [
            v
            for v in range(pattern.num_vertices)
            if any(perm[v] != v for perm in current)
        ]
        pivot = min(moved)
        for perm in current:
            image = perm[pivot]
            if image != pivot and (pivot, image) not in restrictions:
                restrictions.append((pivot, image))
        current = [perm for perm in current if perm[pivot] == pivot]
    return tuple(sorted(restrictions))


def satisfies_restrictions(
    mapping: tuple[int, ...], restrictions: tuple[tuple[int, int], ...]
) -> bool:
    """Whether a pattern->data vertex assignment obeys the restrictions."""
    return all(mapping[a] < mapping[b] for a, b in restrictions)
