"""Canonical codes for small patterns.

The canonical code of a pattern is the lexicographically smallest
``(labels, edge bitmask)`` encoding over all vertex permutations. Two
patterns are isomorphic iff their codes are equal, which gives motif
counting and FSM a cheap dictionary key for deduplicating candidate
patterns. Exhaustive permutation search is fine at GPM pattern sizes
(<= 7 vertices -> <= 5040 permutations).
"""

from __future__ import annotations

from itertools import permutations

from repro.patterns.pattern import Pattern

CanonicalCode = tuple[tuple[int, ...], tuple[tuple[int, int, int], ...]]


def _encode(pattern: Pattern, perm: tuple[int, ...]) -> CanonicalCode:
    """Encode under ``perm`` (new id of old vertex ``v`` is ``perm[v]``).

    Edges are encoded with their labels (0 when edge-unlabeled), so two
    patterns share a code iff they are isomorphic including labels.
    """
    inverse = [0] * len(perm)
    for old, new in enumerate(perm):
        inverse[new] = old
    labels = tuple(pattern.label(inverse[new]) for new in range(len(perm)))
    edges = tuple(
        sorted(
            (min(perm[u], perm[v]), max(perm[u], perm[v]),
             pattern.edge_label(u, v))
            for u, v in pattern.edges
        )
    )
    return labels, edges


def canonical_code(pattern: Pattern) -> CanonicalCode:
    """Smallest encoding of ``pattern`` over all vertex permutations."""
    n = pattern.num_vertices
    best: CanonicalCode | None = None
    for perm in permutations(range(n)):
        code = _encode(pattern, perm)
        if best is None or code < best:
            best = code
    assert best is not None
    return best


def canonical_form(pattern: Pattern) -> Pattern:
    """A concrete pattern relabeled into its canonical vertex order."""
    labels, coded_edges = canonical_code(pattern)
    label_arg = labels if pattern.labels is not None else None
    edges = [(u, v) for u, v, _ in coded_edges]
    edge_labels = None
    if pattern.edge_labels is not None:
        edge_labels = {(u, v): lab for u, v, lab in coded_edges}
    return Pattern(pattern.num_vertices, edges, label_arg, edge_labels)
