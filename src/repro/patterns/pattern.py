"""Pattern graphs: the small connected graphs a GPM task searches for."""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.errors import PatternError


class Pattern:
    """A small undirected pattern graph, optionally vertex-labeled.

    Pattern vertices are ``0..num_vertices-1``. Patterns are immutable
    and hashable (by vertex count, edge set, and labels), so they can be
    used as dictionary keys in motif/FSM counters.

    Parameters
    ----------
    num_vertices:
        Number of pattern vertices (>= 1).
    edges:
        Iterable of undirected edges ``(u, v)``; duplicates collapse,
        self-loops are rejected.
    labels:
        Optional per-vertex labels. ``None`` means unlabeled.
    """

    __slots__ = ("num_vertices", "edges", "labels", "edge_labels",
                 "_adj", "_hash")

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[tuple[int, int]],
        labels: Optional[Sequence[int]] = None,
        edge_labels: Optional[Mapping[tuple[int, int], int]] = None,
    ):
        if num_vertices < 1:
            raise PatternError("pattern needs at least one vertex")
        normalized = set()
        for u, v in edges:
            if u == v:
                raise PatternError(f"self-loop on pattern vertex {u}")
            if not (0 <= u < num_vertices and 0 <= v < num_vertices):
                raise PatternError(f"edge ({u},{v}) out of range")
            normalized.add((min(u, v), max(u, v)))
        if labels is not None:
            labels = tuple(int(x) for x in labels)
            if len(labels) != num_vertices:
                raise PatternError("labels length must equal num_vertices")
        normalized_elabels: Optional[frozenset] = None
        if edge_labels is not None:
            items = {}
            for (u, v), value in dict(edge_labels).items():
                key = (min(u, v), max(u, v))
                if key not in normalized:
                    raise PatternError(
                        f"edge label on non-existent edge {key}"
                    )
                items[key] = int(value)
            missing = normalized - set(items)
            if missing:
                raise PatternError(
                    f"edge labels missing for edges {sorted(missing)}"
                )
            normalized_elabels = frozenset(items.items())
        self.num_vertices = num_vertices
        self.edges = frozenset(normalized)
        self.labels = labels
        self.edge_labels = normalized_elabels
        adj: list[set[int]] = [set() for _ in range(num_vertices)]
        for u, v in self.edges:
            adj[u].add(v)
            adj[v].add(u)
        self._adj = tuple(frozenset(s) for s in adj)
        self._hash = hash(
            (num_vertices, self.edges, labels, normalized_elabels)
        )

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def neighbors(self, v: int) -> frozenset[int]:
        """Pattern vertices adjacent to ``v``."""
        return self._adj[v]

    def degree(self, v: int) -> int:
        return len(self._adj[v])

    def has_edge(self, u: int, v: int) -> bool:
        return (min(u, v), max(u, v)) in self.edges

    def label(self, v: int) -> int:
        """Label of pattern vertex ``v`` (0 when unlabeled)."""
        if self.labels is None:
            return 0
        return self.labels[v]

    def edge_label(self, u: int, v: int) -> int:
        """Label of pattern edge ``(u, v)`` (0 when edge-unlabeled)."""
        key = (min(u, v), max(u, v))
        if key not in self.edges:
            raise PatternError(f"edge {key} not in pattern")
        if self.edge_labels is None:
            return 0
        return dict(self.edge_labels)[key]

    def is_connected(self) -> bool:
        """Whether the pattern is a single connected component."""
        if self.num_vertices == 1:
            return True
        seen = {0}
        frontier = [0]
        while frontier:
            u = frontier.pop()
            for w in self._adj[u]:
                if w not in seen:
                    seen.add(w)
                    frontier.append(w)
        return len(seen) == self.num_vertices

    def relabel(self, perm: Sequence[int]) -> "Pattern":
        """Apply a vertex permutation: new vertex ``perm[v]`` is old ``v``."""
        edges = [(perm[u], perm[v]) for u, v in self.edges]
        labels = None
        if self.labels is not None:
            labels = [0] * self.num_vertices
            for old, new in enumerate(perm):
                labels[new] = self.labels[old]
        edge_labels = None
        if self.edge_labels is not None:
            edge_labels = {
                (perm[u], perm[v]): value
                for (u, v), value in self.edge_labels
            }
        return Pattern(self.num_vertices, edges, labels, edge_labels)

    def with_labels(self, labels: Sequence[int]) -> "Pattern":
        return Pattern(self.num_vertices, self.edges, labels,
                       dict(self.edge_labels) if self.edge_labels else None)

    def with_edge_labels(
        self, edge_labels: Mapping[tuple[int, int], int]
    ) -> "Pattern":
        """Attach per-edge labels (one per pattern edge)."""
        return Pattern(self.num_vertices, self.edges, self.labels,
                       edge_labels)

    def unlabeled(self) -> "Pattern":
        """Forget vertex and edge labels."""
        return Pattern(self.num_vertices, self.edges)

    def add_vertex(self, attach_to: Iterable[int],
                   label: Optional[int] = None) -> "Pattern":
        """Extend with a new vertex connected to ``attach_to`` (FSM growth)."""
        attach = list(attach_to)
        if not attach:
            raise PatternError("new pattern vertex must attach to something")
        if self.edge_labels is not None:
            raise PatternError(
                "growth of edge-labeled patterns is not supported"
            )
        new = self.num_vertices
        edges = list(self.edges) + [(a, new) for a in attach]
        labels = None
        if self.labels is not None:
            labels = list(self.labels) + [0 if label is None else label]
        elif label is not None:
            labels = [0] * self.num_vertices + [label]
        return Pattern(new + 1, edges, labels)

    def add_edge(self, u: int, v: int) -> "Pattern":
        """Add an edge between two existing pattern vertices (FSM growth)."""
        if self.edge_labels is not None:
            raise PatternError(
                "growth of edge-labeled patterns is not supported"
            )
        return Pattern(self.num_vertices, list(self.edges) + [(u, v)],
                       self.labels)

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return (
            self.num_vertices == other.num_vertices
            and self.edges == other.edges
            and self.labels == other.labels
            and self.edge_labels == other.edge_labels
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        edge_str = sorted(self.edges)
        label_str = f", labels={self.labels}" if self.labels else ""
        elabel_str = (
            f", edge_labels={dict(sorted(self.edge_labels))}"
            if self.edge_labels
            else ""
        )
        return (
            f"Pattern({self.num_vertices}, {edge_str}{label_str}"
            f"{elabel_str})"
        )
